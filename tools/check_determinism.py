#!/usr/bin/env python
"""Determinism self-lint for the ``repro`` source tree.

Reproducibility is a core contract of this repository: every
simulation, synthesis, and analysis result must be a pure function of
its inputs and an explicit seed.  This checker walks the ASTs under
``src/repro`` and rejects the two ways nondeterminism usually sneaks
in:

* **Global random state** — any use of the stdlib ``random`` module
  (its module-level functions share hidden global state), and any
  ``numpy.random`` module-level *call* other than the sanctioned
  seeded constructors (``default_rng``/``SeedSequence``/generator
  classes).  Calling ``default_rng()`` / ``SeedSequence()`` with no
  arguments is also rejected: a missing seed silently pulls OS
  entropy.  Referencing ``np.random.Generator`` for type annotations
  is fine — only calls are checked.

* **Wall-clock reads** — ``time.time``/``perf_counter``/``datetime``
  etc. outside the sanctioned entry points.  The CLI may time its own
  progress and the telemetry layer exists to record clocks; analysis,
  model, runtime, and synthesis code must not observe time at all.

Run it directly (CI does)::

    python tools/check_determinism.py [--root src/repro]

Exit status is 0 when clean, 1 with one ``path:line: message`` line
per violation otherwise.
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys
from typing import Iterator

#: Files (relative to the scan root) that may read wall clocks: the
#: CLI times its own batch runs; the telemetry layer's whole purpose
#: is recording clocks.  Keep this list short and deliberate.
CLOCK_ALLOWLIST = frozenset(
    {
        "cli.py",
        "telemetry/trace.py",
        "telemetry/ledger.py",
        "telemetry/profiler.py",
        # The service layer timestamps job lifecycles (wall clock
        # never reaches simulation state).
        "service/jobs.py",
        "service/server.py",
        "service/client.py",
        # Supervision and chaos read deadlines and backoff clocks;
        # faults and jitter are hash-derived, never RNG-stateful.
        "service/supervision.py",
        "chaos/harness.py",
        # Distributed tracing and the structured service log stamp
        # epoch timestamps onto observer-only records.
        "telemetry/distributed.py",
        "service/slog.py",
    }
)

#: Module-level ``numpy.random`` attributes that may be *called*:
#: explicitly seeded constructors and generator classes.
ALLOWED_NUMPY_RANDOM_CALLS = frozenset(
    {"default_rng", "SeedSequence", "Generator", "PCG64", "Philox"}
)

#: ``time`` module attributes that read a clock.
TIME_CLOCK_READS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
    }
)

#: ``datetime``-class methods that read a clock.
DATETIME_CLOCK_READS = frozenset({"now", "utcnow", "today"})


class _Checker(ast.NodeVisitor):
    """Collect determinism violations of one module."""

    def __init__(self, relative: str) -> None:
        self.relative = relative
        self.clock_ok = relative in CLOCK_ALLOWLIST
        self.violations: list[tuple[int, str]] = []
        #: Local alias -> canonical module name ("random", "time",
        #: "datetime", "numpy", "numpy.random").
        self.aliases: dict[str, str] = {}
        #: Names imported *from* datetime ("datetime", "date", ...).
        self.datetime_names: set[str] = set()

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append((node.lineno, message))

    # -- imports ------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            target = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.report(
                    node,
                    "stdlib 'random' uses hidden global state; use an "
                    "explicit numpy Generator threaded from a seed",
                )
            elif alias.name.split(".")[0] in {
                "time",
                "datetime",
                "numpy",
            }:
                self.aliases[target] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "random" or module.startswith("random."):
            self.report(
                node,
                "stdlib 'random' uses hidden global state; use an "
                "explicit numpy Generator threaded from a seed",
            )
        elif module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.aliases[alias.asname or "random"] = (
                        "numpy.random"
                    )
        elif module == "numpy.random":
            for alias in node.names:
                if alias.name not in ALLOWED_NUMPY_RANDOM_CALLS:
                    self.report(
                        node,
                        f"numpy.random.{alias.name} draws from global "
                        f"state; import a seeded constructor instead",
                    )
                else:
                    self.aliases[alias.asname or alias.name] = (
                        f"numpy.random.{alias.name}"
                    )
        elif module == "time":
            for alias in node.names:
                if (
                    alias.name in TIME_CLOCK_READS
                    and not self.clock_ok
                ):
                    self.report(
                        node,
                        f"time.{alias.name} reads a clock; only the "
                        f"CLI and the telemetry layer may observe "
                        f"time",
                    )
        elif module == "datetime":
            for alias in node.names:
                self.datetime_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls --------------------------------------------------------

    def _dotted(self, node: ast.AST) -> str | None:
        """Resolve ``a.b.c`` to a canonical dotted name, or ``None``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            self._check_call(node, dotted)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if parts[0] == "numpy" and len(parts) >= 2 and parts[1] == "random":
            if len(parts) == 2:
                return  # calling the module itself: not a thing
            name = parts[2]
            if name not in ALLOWED_NUMPY_RANDOM_CALLS:
                self.report(
                    node,
                    f"numpy.random.{name} draws from numpy's global "
                    f"RNG; use a Generator threaded from an explicit "
                    f"seed",
                )
            elif name in {"default_rng", "SeedSequence"} and not (
                node.args or node.keywords
            ):
                self.report(
                    node,
                    f"numpy.random.{name}() without a seed pulls OS "
                    f"entropy; pass the run's seed explicitly",
                )
        if parts[0] == "time" and len(parts) == 2:
            if parts[1] in TIME_CLOCK_READS and not self.clock_ok:
                self.report(
                    node,
                    f"time.{parts[1]}() reads a clock; only the CLI "
                    f"and the telemetry layer may observe time",
                )
        if not self.clock_ok:
            # datetime.datetime.now(), datetime.date.today(), and the
            # from-imported forms datetime.now() / date.today().
            if (
                len(parts) >= 2
                and parts[-1] in DATETIME_CLOCK_READS
                and (
                    parts[0] == "datetime"
                    or parts[-2] in {"datetime", "date"}
                    and parts[0] in self.datetime_names
                )
            ):
                self.report(
                    node,
                    f"{dotted}() reads the wall clock; only the CLI "
                    f"and the telemetry layer may observe time",
                )


def check_file(path: pathlib.Path, relative: str) -> list[str]:
    """Return the violations of one source file, formatted."""
    tree = ast.parse(
        path.read_text(encoding="utf-8"), filename=str(path)
    )
    checker = _Checker(relative)
    checker.visit(tree)
    return [
        f"{path}:{line}: {message}"
        for line, message in sorted(checker.violations)
    ]


def iter_sources(root: pathlib.Path) -> Iterator[pathlib.Path]:
    """Yield every Python source under *root*, deterministically."""
    yield from sorted(root.rglob("*.py"))


def run(root: pathlib.Path) -> list[str]:
    """Check every module under *root*; return all violations."""
    violations: list[str] = []
    for path in iter_sources(root):
        relative = path.relative_to(root).as_posix()
        violations.extend(check_file(path, relative))
    return violations


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default="src/repro",
        help="package root to scan (default src/repro)",
    )
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    violations = run(root)
    for violation in violations:
        print(violation)
    if violations:
        print(
            f"determinism check: {len(violations)} violation(s)",
            file=sys.stderr,
        )
        return 1
    print("determinism check: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
