#!/usr/bin/env python3
"""Run the benchmark suite and write one aggregated perf artifact.

``python tools/bench_record.py --out BENCH_10.json`` executes the
``benchmarks/`` suite under pytest-benchmark, captures both the
machine-readable timing JSON and the human ``=== experiment ===``
paper-vs-measured tables the ``report`` fixture prints, and folds
them into a single perf-trajectory document::

    {
      "suite": "benchmarks",
      "scale": 1.0,                  # REPRO_BENCH_SCALE in effect
      "exit_status": 0,             # pytest's exit status
      "benchmarks": [               # one entry per timed benchmark
        {"name": ..., "min_s": ..., "mean_s": ...,
         "stddev_s": ..., "rounds": ...},
      ],
      "experiments": {              # one entry per report table
        "<experiment>": [
          {"quantity": ..., "paper": ..., "measured": ...},
        ],
      },
      "multipliers": {              # measured "<n>x" values, parsed
        "<experiment>": {"<quantity>": 1.06},
      }
    }

CI uploads the artifact per commit, so the measured multipliers
(telemetry overheads, shard speedups, adaptive savings, ...) form a
queryable trajectory across the repository's history instead of
scrolling away in job logs.  The runner is stdlib-only and returns
pytest's own exit status, so wiring it into CI cannot mask a red
benchmark run.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``=== experiment name ===`` table headers printed by ``report``.
_TABLE_HEADER = re.compile(r"^=== (?P<name>.+) ===$")

#: A measured multiplier cell: ``1.06x``, ``10.0x``, ``<= 1.1x``.
_MULTIPLIER = re.compile(r"(?P<value>\d+(?:\.\d+)?)x\s*$")


def parse_report_tables(stdout: str) -> dict[str, list[dict]]:
    """Parse the ``report`` fixture's tables out of pytest stdout.

    Rows are aligned with two-or-more spaces between the three
    columns; a table ends at the first line that does not split into
    three fields (blank line, the next test's dot, ...).
    """
    tables: dict[str, list[dict]] = {}
    current: "list[dict] | None" = None
    for raw in stdout.splitlines():
        line = raw.rstrip()
        match = _TABLE_HEADER.match(line.strip())
        if match:
            current = tables.setdefault(match.group("name"), [])
            continue
        if current is None:
            continue
        fields = re.split(r"\s{2,}", line.strip())
        if len(fields) != 3:
            current = None
            continue
        quantity, paper, measured = fields
        if (quantity, paper, measured) == (
            "quantity", "paper", "measured"
        ):
            continue
        current.append(
            {
                "quantity": quantity,
                "paper": paper,
                "measured": measured,
            }
        )
    return tables


def extract_multipliers(
    tables: dict[str, list[dict]]
) -> dict[str, dict[str, float]]:
    """Pull every measured ``<n>x`` cell out of the report tables."""
    multipliers: dict[str, dict[str, float]] = {}
    for experiment, rows in tables.items():
        for row in rows:
            match = _MULTIPLIER.search(row["measured"])
            if match:
                multipliers.setdefault(experiment, {})[
                    row["quantity"]
                ] = float(match.group("value"))
    return multipliers


def summarize_benchmarks(document: dict) -> list[dict]:
    """Per-benchmark timing summary from pytest-benchmark's JSON."""
    summary = []
    for bench in document.get("benchmarks", []):
        stats = bench.get("stats", {})
        summary.append(
            {
                "name": bench.get("fullname", bench.get("name", "?")),
                "min_s": stats.get("min"),
                "mean_s": stats.get("mean"),
                "stddev_s": stats.get("stddev"),
                "rounds": stats.get("rounds"),
            }
        )
    summary.sort(key=lambda entry: entry["name"])
    return summary


def run_suite(
    select: "str | None", timings: bool, bench_json: Path
) -> tuple[int, str]:
    """Run pytest over ``benchmarks/``; return (status, stdout)."""
    command = [
        sys.executable, "-m", "pytest", "benchmarks", "-q", "-s",
    ]
    if timings:
        command.append(f"--benchmark-json={bench_json}")
    else:
        command.append("--benchmark-disable")
    if select:
        command.extend(["-k", select])
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    completed = subprocess.run(
        command, cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    sys.stdout.write(completed.stdout)
    return completed.returncode, completed.stdout


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the benchmark suite and write an "
        "aggregated perf-trajectory JSON artifact"
    )
    parser.add_argument(
        "--out", default="BENCH_10.json", metavar="FILE",
        help="output artifact path (default BENCH_10.json)",
    )
    parser.add_argument(
        "-k", "--select", metavar="EXPR",
        help="pytest -k selection forwarded to the suite",
    )
    parser.add_argument(
        "--no-timings", action="store_true",
        help="run with --benchmark-disable (CI smoke mode): the "
        "artifact then carries report tables and multipliers only",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as scratch:
        bench_json = Path(scratch) / "pytest-benchmark.json"
        status, stdout = run_suite(
            args.select, not args.no_timings, bench_json
        )
        timings: list[dict] = []
        if bench_json.exists():
            timings = summarize_benchmarks(
                json.loads(bench_json.read_text())
            )

    tables = parse_report_tables(stdout)
    artifact = {
        "suite": "benchmarks",
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1")),
        "exit_status": status,
        "benchmarks": timings,
        "experiments": tables,
        "multipliers": extract_multipliers(tables),
    }
    out = Path(args.out)
    out.write_text(json.dumps(artifact, indent=2, sort_keys=True))
    print(
        f"wrote {out} ({len(timings)} timed benchmarks, "
        f"{len(tables)} experiment tables, "
        f"exit status {status})"
    )
    return status


if __name__ == "__main__":
    sys.exit(main())
