"""Tests for the command-line front-end."""

import json
import re

import pytest

from repro.cli import main
from repro.experiments import (
    THREE_TANK_HTL,
    baseline_implementation,
    scenario1_implementation,
    three_tank_architecture,
    three_tank_htl,
)
from repro.io import (
    architecture_to_dict,
    implementation_from_dict,
    implementation_to_dict,
)

BINDINGS = """
def _hold(level):
    return 0.0

FUNCTIONS = {
    "read1": lambda s: s,
    "read2": lambda s: s,
    "t1": lambda l: 0.0001,
    "t2": lambda l: 0.0001,
    "estimate1": lambda l, u: 0.0,
    "estimate2": lambda l, u: 0.0,
    "t1_hold": _hold,
    "t2_hold": _hold,
}
CONDITIONS = {}
"""


@pytest.fixture
def workspace(tmp_path):
    htl = tmp_path / "three_tank.htl"
    htl.write_text(THREE_TANK_HTL)
    strict_htl = tmp_path / "three_tank_strict.htl"
    strict_htl.write_text(three_tank_htl(lrc_u=0.9975))
    arch = tmp_path / "arch.json"
    arch.write_text(
        json.dumps(architecture_to_dict(three_tank_architecture()))
    )
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(implementation_to_dict(baseline_implementation()))
    )
    scenario1 = tmp_path / "scenario1.json"
    scenario1.write_text(
        json.dumps(implementation_to_dict(scenario1_implementation()))
    )
    bindings = tmp_path / "bindings.py"
    bindings.write_text(BINDINGS)
    return tmp_path


def test_check_command(workspace, capsys):
    status = main(["check", "--htl", str(workspace / "three_tank.htl")])
    assert status == 0
    out = capsys.readouterr().out
    assert "6 tasks" in out
    assert "t1: LET [200, 400]" in out


def test_analyze_valid(workspace, capsys):
    status = main([
        "analyze",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
    ])
    assert status == 0
    assert "VALID" in capsys.readouterr().out


def test_analyze_invalid_returns_nonzero(workspace, capsys):
    status = main([
        "analyze",
        "--htl", str(workspace / "three_tank_strict.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
    ])
    assert status == 1
    assert "INVALID" in capsys.readouterr().out


def test_synthesize_writes_mapping(workspace, capsys):
    output = workspace / "synth.json"
    status = main([
        "synthesize",
        "--htl", str(workspace / "three_tank_strict.htl"),
        "--arch", str(workspace / "arch.json"),
        "-o", str(output),
    ])
    assert status == 0
    implementation = implementation_from_dict(
        json.loads(output.read_text())
    )
    # The synthesiser rediscovers scenario 2: duplicated sensors.
    assert len(implementation.sensors_of("s1")) >= 2
    out = capsys.readouterr().out
    assert "synthesised" in out


def test_ecode_command(workspace, capsys):
    status = main([
        "ecode",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "scenario1.json"),
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "e-code (period 500)" in out
    assert "RELEASE t1" in out
    assert "distributed timeline" in out


def test_report_command(workspace, capsys):
    status = main([
        "report",
        "--htl", str(workspace / "three_tank_strict.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
    ])
    assert status == 1  # strict requirement, baseline mapping: invalid
    out = capsys.readouterr().out
    assert "design report" in out
    assert "single-component upgrades" in out


def test_simulate_with_bindings(workspace, capsys):
    status = main([
        "simulate",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "scenario1.json"),
        "--bindings", str(workspace / "bindings.py"),
        "--iterations", "300",
        "--bernoulli",
        "--slack", "0.05",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "observed vs analytic SRG" in out


def test_simulate_unplug(workspace, capsys):
    status = main([
        "simulate",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
        "--bindings", str(workspace / "bindings.py"),
        "--iterations", "100",
        "--unplug", "h2:5000",
    ])
    # u2 dies at t=5000 -> the LRC check fails -> exit status 1.
    assert status == 1
    out = capsys.readouterr().out
    assert "u2" in out


def test_simulate_bad_unplug_syntax(workspace, capsys):
    status = main([
        "simulate",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
        "--bindings", str(workspace / "bindings.py"),
        "--unplug", "h2",
    ])
    assert status == 2
    assert "HOST:TIME" in capsys.readouterr().err


def test_missing_spec_is_an_error(workspace, capsys):
    status = main(["check"])
    assert status == 2
    assert "provide a specification" in capsys.readouterr().err


def test_check_with_spec_json(workspace, tmp_path, capsys):
    from repro.experiments import three_tank_spec
    from repro.io import specification_to_dict

    spec_file = tmp_path / "spec.json"
    spec_file.write_text(
        json.dumps(specification_to_dict(three_tank_spec()))
    )
    status = main(["check", "--spec", str(spec_file)])
    assert status == 0
    assert "6 tasks" in capsys.readouterr().out


def test_analyze_with_spec_json(workspace, tmp_path, capsys):
    from repro.experiments import three_tank_spec
    from repro.io import specification_to_dict

    spec_file = tmp_path / "spec.json"
    spec_file.write_text(
        json.dumps(specification_to_dict(three_tank_spec()))
    )
    status = main([
        "analyze",
        "--spec", str(spec_file),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
    ])
    assert status == 0
    assert "VALID" in capsys.readouterr().out


def test_dot_dataflow(workspace, capsys):
    status = main([
        "dot",
        "--htl", str(workspace / "three_tank.htl"),
        "--view", "dataflow",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph dataflow {")
    assert '"l1" -> "u1"' in out


def test_dot_mapping(workspace, capsys):
    status = main([
        "dot",
        "--htl", str(workspace / "three_tank.htl"),
        "--view", "mapping",
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
    ])
    assert status == 0
    assert "cluster_" in capsys.readouterr().out


def test_dot_mapping_requires_arch(workspace, capsys):
    status = main([
        "dot",
        "--htl", str(workspace / "three_tank.htl"),
        "--view", "mapping",
    ])
    assert status == 2
    assert "needs --arch" in capsys.readouterr().err


def test_normalize(workspace, capsys):
    status = main([
        "normalize", "--htl", str(workspace / "three_tank.htl"),
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert out.startswith("program ThreeTankSystem {")
    # Canonical output re-normalises to itself.
    from repro.htl.pretty import normalise

    assert normalise(out) == out


def test_module_entry_point():
    import subprocess
    import sys

    completed = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True,
    )
    assert completed.returncode == 0
    assert "synthesize" in completed.stdout


def test_check_format_json(workspace, capsys):
    status = main([
        "check",
        "--htl", str(workspace / "three_tank.htl"),
        "--format", "json",
    ])
    assert status == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert data["period"] == 500
    assert data["tasks"]["t1"]["let"] == [200, 400]


def test_analyze_format_json(workspace, capsys):
    status = main([
        "analyze",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
        "--format", "json",
    ])
    assert status == 0
    data = json.loads(capsys.readouterr().out)
    assert data["valid"] is True
    assert data["schedulable"] is True
    names = [entry["communicator"] for entry in data["communicators"]]
    assert names == sorted(names)


def test_analyze_format_json_invalid(workspace, capsys):
    status = main([
        "analyze",
        "--htl", str(workspace / "three_tank_strict.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
        "--format", "json",
    ])
    assert status == 1
    data = json.loads(capsys.readouterr().out)
    assert data["valid"] is False
    violated = [
        entry for entry in data["communicators"]
        if not entry["satisfied"]
    ]
    assert violated


# -- lint exit status ------------------------------------------------------


RACY_HTL = """\
program racy {
  communicator a : float period 10 init 0.0 lrc 0.5 ;
  communicator b : float period 10 init 0.0 lrc 0.9 ;
  communicator c : float period 10 init 0.0 lrc 0.9 ;
  module M {
    task t1 input (a[0]) output (b[1]) ;
    task t2 input (b[0]) output (c[1]) ;
    task t3 input (c[0]) output (b[1]) ;
    mode m period 10 { invoke t1 ; invoke t2 ; invoke t3 ; }
  }
}
"""


def test_lint_exits_nonzero_on_lrt_errors(tmp_path, capsys):
    racy = tmp_path / "racy.htl"
    racy.write_text(RACY_HTL)
    status = main(["lint", "--htl", str(racy)])
    assert status == 1
    out = capsys.readouterr().out
    assert "LRT001" in out


def test_lint_exits_zero_on_clean_program(workspace, capsys):
    status = main(["lint", "--htl", str(workspace / "three_tank.htl")])
    assert status == 0


def test_lint_smoke_via_subprocess(tmp_path):
    # The CI smoke contract: `repro lint` exits non-zero on a spec
    # with an LRT error, through the real console entry point.
    import os
    import subprocess
    import sys

    racy = tmp_path / "racy.htl"
    racy.write_text(RACY_HTL)
    env = dict(os.environ)
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--htl", str(racy)],
        capture_output=True, text=True, env=env,
    )
    assert completed.returncode == 1
    assert "error" in completed.stdout


# -- online monitoring and recovery ---------------------------------------


def test_simulate_monitor_writes_events(workspace, tmp_path, capsys):
    events = tmp_path / "events.jsonl"
    status = main([
        "simulate",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
        "--bindings", str(workspace / "bindings.py"),
        "--iterations", "100",
        "--unplug", "h2:5000",
        "--monitor",
        "--events", str(events),
    ])
    # The unplug drives u2 below its LRC: alarm events + exit 1.
    assert status == 1
    out = capsys.readouterr().out
    assert "lrc-alarm" in out
    lines = [
        json.loads(line)
        for line in events.read_text().splitlines() if line
    ]
    assert any(
        e["kind"] == "lrc-alarm" and e["communicator"] == "u2"
        for e in lines
    )


def test_simulate_recover_re_replicate(workspace, capsys):
    status = main([
        "simulate",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "scenario1.json"),
        "--bindings", str(workspace / "bindings.py"),
        "--iterations", "60",
        "--unplug", "h2:5000",
        "--recover", "re-replicate",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "recovery-committed" in out


def test_simulate_recover_degrade_needs_impl(workspace, capsys):
    status = main([
        "simulate",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
        "--bindings", str(workspace / "bindings.py"),
        "--recover", "degrade",
    ])
    assert status == 2
    assert "--degrade-impl" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Telemetry: --trace / --metrics / --profile and the trace command.
# ----------------------------------------------------------------------


def _simulate(workspace, *extra):
    return main([
        "simulate",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
        "--bindings", str(workspace / "bindings.py"),
        *extra,
    ])


def test_simulate_trace_writes_chrome_json(workspace, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    status = _simulate(
        workspace, "--iterations", "20", "--bernoulli",
        "--trace", str(trace),
    )
    assert status == 0
    assert "trace events" in capsys.readouterr().out
    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    assert doc["otherData"]["run_id"] == "s0"
    for event in events:
        assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert "dur" in event
        elif event["ph"] == "i":
            assert event["s"] == "t"
    assert any(e["cat"] == "iteration" for e in events)


def test_simulate_trace_jsonl_extension(workspace, tmp_path):
    trace = tmp_path / "trace.jsonl"
    assert _simulate(
        workspace, "--iterations", "5", "--trace", str(trace),
    ) == 0
    docs = [
        json.loads(line)
        for line in trace.read_text().splitlines() if line
    ]
    assert docs and all("ph" in d for d in docs)


def test_simulate_metrics_and_profile(workspace, tmp_path, capsys):
    metrics = tmp_path / "metrics.prom"
    status = _simulate(
        workspace, "--iterations", "20", "--bernoulli",
        "--metrics", str(metrics), "--profile",
    )
    assert status == 0
    out = capsys.readouterr().out
    assert "metrics dashboard" in out
    assert "stage profile" in out
    text = metrics.read_text()
    assert "# TYPE repro_iterations_total counter" in text
    assert "repro_srg_lrc_margin" in text


def test_simulate_batch_metrics_and_profile(workspace, tmp_path, capsys):
    metrics = tmp_path / "metrics.prom"
    status = _simulate(
        workspace, "--iterations", "20", "--runs", "4",
        "--bernoulli", "--metrics", str(metrics), "--profile",
    )
    assert status == 0
    out = capsys.readouterr().out
    assert "repro_batch_runs" in metrics.read_text()
    assert "fault-precompute" in out


def test_simulate_batch_trace_is_an_error(workspace, tmp_path, capsys):
    status = _simulate(
        workspace, "--runs", "4",
        "--trace", str(tmp_path / "x.json"),
    )
    assert status == 2
    assert "--runs 1" in capsys.readouterr().err


def test_simulate_recover_trace_stamps_run_id(
    workspace, tmp_path, capsys
):
    trace = tmp_path / "trace.json"
    status = _simulate(
        workspace, "--iterations", "60", "--unplug", "h2:5000",
        "--recover", "re-replicate", "--seed", "7",
        "--trace", str(trace),
    )
    assert status in (0, 1)  # LRC verdict depends on the seed
    doc = json.loads(trace.read_text())
    assert doc["otherData"]["run_id"] == "s7"
    resilience = [
        e for e in doc["traceEvents"] if e["cat"] == "resilience"
    ]
    assert any(e["name"] == "recovery-committed" for e in resilience)
    assert all(e["args"]["run_id"] == "s7" for e in resilience)


def test_trace_command_summarises(workspace, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    _simulate(workspace, "--iterations", "10", "--trace", str(trace))
    capsys.readouterr()
    status = main(["trace", str(trace), "--top", "3"])
    assert status == 0
    out = capsys.readouterr().out
    assert "trace summary" in out
    assert "span stats" in out


def test_trace_command_empty_file_exits_2(tmp_path, capsys):
    empty = tmp_path / "empty.json"
    empty.write_text("")
    assert main(["trace", str(empty)]) == 2
    assert "empty" in capsys.readouterr().err


def test_trace_command_malformed_file_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ph": "i"}\n{oops\n')
    assert main(["trace", str(bad)]) == 2
    assert "line 2" in capsys.readouterr().err


def test_trace_command_missing_file_exits_2(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.json")]) == 2
    assert "cannot read" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Trace-file robustness (ISSUE 5 satellite).
# ----------------------------------------------------------------------


def test_trace_command_skips_blank_jsonl_lines(workspace, tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _simulate(workspace, "--iterations", "5", "--trace", str(trace))
    padded = tmp_path / "padded.jsonl"
    lines = trace.read_text().splitlines()
    padded.write_text(
        "\n" + "\n\n".join(lines) + "\n\n"
    )
    capsys.readouterr()
    assert main(["trace", str(padded)]) == 0
    assert "trace summary" in capsys.readouterr().out


def test_trace_command_whitespace_only_file_exits_2(tmp_path, capsys):
    blank = tmp_path / "blank.jsonl"
    blank.write_text("\n\n   \n")
    assert main(["trace", str(blank)]) == 2
    err = capsys.readouterr().err
    assert "empty" in err
    assert len(err.strip().splitlines()) == 1  # one clean line, no trace


def test_trace_command_truncated_jsonl_exits_2(workspace, tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _simulate(workspace, "--iterations", "5", "--trace", str(trace))
    truncated = tmp_path / "truncated.jsonl"
    text = trace.read_text()
    truncated.write_text(text[: len(text) // 2])  # cut mid-line
    capsys.readouterr()
    assert main(["trace", str(truncated)]) == 2
    err = capsys.readouterr().err
    assert "is not valid JSON" in err
    assert len(err.strip().splitlines()) == 1


def test_trace_command_binary_file_exits_2(tmp_path, capsys):
    binary = tmp_path / "trace.bin"
    binary.write_bytes(b"\x89PNG\r\n\x1a\n\x00\xff\xfe garbage")
    assert main(["trace", str(binary)]) == 2
    assert "is not text" in capsys.readouterr().err


def test_trace_command_non_object_line_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ph": "i", "name": "x"}\n[1, 2]\n')
    assert main(["trace", str(bad)]) == 2
    assert "line 2" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Postmortem forensics (ISSUE 5 tentpole).
# ----------------------------------------------------------------------


def _unplug_with_forensics(workspace, tmp_path, capsys):
    forensics = tmp_path / "forensics.json"
    status = _simulate(
        workspace,
        "--iterations", "60",
        "--seed", "7",
        "--bernoulli",
        "--unplug", "h2:5000",
        "--postmortem", str(forensics),
    )
    assert status == 1  # the unplug makes the LRC check fail
    out = capsys.readouterr().out
    assert "wrote forensics" in out
    return forensics


def test_postmortem_names_unplugged_host(workspace, tmp_path, capsys):
    forensics = _unplug_with_forensics(workspace, tmp_path, capsys)
    assert main(["postmortem", str(forensics)]) == 0
    out = capsys.readouterr().out
    # The pull-the-plug acceptance check: the top blame source is the
    # host the run unplugged.
    blame_lines = [l for l in out.splitlines() if "% of blame" in l]
    assert blame_lines and "host:h2" in blame_lines[0]
    assert "unreliable writes by communicator" in out
    assert "u2" in out


def test_postmortem_counterfactual_mask(workspace, tmp_path, capsys):
    forensics = _unplug_with_forensics(workspace, tmp_path, capsys)
    assert main([
        "postmortem", str(forensics), "--mask", "host:h2",
    ]) == 0
    out = capsys.readouterr().out
    assert "counterfactual: with host:h2 up" in out
    # Masking the root cause flips at least one unreliable write.
    match = re.search(r"(\d+) of (\d+) unreliable\s+writes", out)
    assert match and int(match.group(1)) > 0


def test_postmortem_json_format(workspace, tmp_path, capsys):
    forensics = _unplug_with_forensics(workspace, tmp_path, capsys)
    assert main([
        "postmortem", str(forensics),
        "--mask", "host:h2,sensor:sen1",
        "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["blame"][0]["source"] == "host:h2"
    (cf,) = doc["counterfactuals"]
    assert cf["masked"] == ["host:h2", "sensor:sen1"]
    assert cf["flips"] > 0


def test_postmortem_bad_mask_exits_2(workspace, tmp_path, capsys):
    forensics = _unplug_with_forensics(workspace, tmp_path, capsys)
    assert main(["postmortem", str(forensics), "--mask", "h2"]) == 2
    assert "KIND:NAME" in capsys.readouterr().err


def test_postmortem_rejects_non_forensics_file(tmp_path, capsys):
    assert main(["postmortem", str(tmp_path / "nope.json")]) == 2
    assert "cannot read" in capsys.readouterr().err
    other = tmp_path / "other.json"
    other.write_text('{"traceEvents": []}')
    assert main(["postmortem", str(other)]) == 2
    assert "chains" in capsys.readouterr().err


def test_postmortem_needs_single_run(workspace, tmp_path, capsys):
    status = _simulate(
        workspace,
        "--runs", "4",
        "--postmortem", str(tmp_path / "f.json"),
    )
    assert status == 2
    assert "single run" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The run ledger (ISSUE 5 tentpole).
# ----------------------------------------------------------------------


def test_simulate_records_ledger_and_runs_cli(
    workspace, tmp_path, capsys
):
    ledger = tmp_path / "runs"
    for seed in ("3", "4"):
        _simulate(
            workspace,
            "--iterations", "40",
            "--seed", seed,
            "--bernoulli",
            "--ledger", str(ledger),
        )
    out = capsys.readouterr().out
    assert "ledger: recorded entry #0" in out
    assert "ledger: recorded entry #1" in out

    assert main(["runs", "list", "--ledger", str(ledger)]) == 0
    listing = capsys.readouterr().out
    assert "#0" in listing and "#1" in listing and "min margin" in listing

    assert main(["runs", "show", "--ledger", str(ledger)]) == 0
    shown = capsys.readouterr().out
    assert "ledger entry #1" in shown  # default entry is 'latest'
    assert "per-communicator rates and LRC margins" in shown

    assert main([
        "runs", "diff", "#0", "#1", "--ledger", str(ledger),
    ]) == 0
    assert "ledger diff: #0" in capsys.readouterr().out

    # Two healthy seeds stay within a generous threshold.
    assert main([
        "runs", "regress", "--ledger", str(ledger),
        "--baseline", "#0", "--threshold", "0.05",
    ]) == 0
    assert "regress OK" in capsys.readouterr().out


def test_runs_regress_fails_on_margin_drop(workspace, tmp_path, capsys):
    ledger = tmp_path / "runs"
    _simulate(
        workspace,
        "--iterations", "60", "--seed", "7",
        "--ledger", str(ledger),
    )
    _simulate(
        workspace,
        "--iterations", "60", "--seed", "7",
        "--unplug", "h2:5000",
        "--ledger", str(ledger),
    )
    capsys.readouterr()
    status = main([
        "runs", "regress", "--ledger", str(ledger), "--baseline", "#0",
    ])
    assert status == 1
    out = capsys.readouterr().out
    assert "regress FAIL" in out
    assert "u2" in out


def test_runs_on_missing_ledger(tmp_path, capsys):
    ledger = tmp_path / "void"
    assert main(["runs", "list", "--ledger", str(ledger)]) == 0
    assert "ledger is empty" in capsys.readouterr().out
    assert main(["runs", "show", "--ledger", str(ledger)]) == 2
    assert "is empty" in capsys.readouterr().err


def test_resilient_simulate_records_ledger_and_forensics(
    workspace, tmp_path, capsys
):
    ledger = tmp_path / "runs"
    forensics = tmp_path / "forensics.json"
    status = _simulate(
        workspace,
        "--iterations", "60",
        "--seed", "7",
        "--unplug", "h2:5000",
        "--monitor",
        "--postmortem", str(forensics),
        "--ledger", str(ledger),
    )
    out = capsys.readouterr().out
    assert "wrote forensics" in out
    assert "ledger: recorded entry #0" in out
    doc = json.loads(forensics.read_text())
    # The monitor alarm froze an aggregate chain via the event relay.
    assert any(c["trigger"] == "lrc-alarm" for c in doc["chains"])
    assert main(["postmortem", str(forensics)]) == 0
    assert "host:h2" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Input validation (PR 7 satellite) and sharded batches.
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "extra, message",
    [
        (("--runs", "0"), "--runs must be >= 1"),
        (("--runs", "-3"), "--runs must be >= 1"),
        (("--iterations", "0"), "--iterations must be >= 1"),
        (("--runs", "5", "--jobs", "0"), "--jobs must be >= 1"),
        (("--runs", "5", "--jobs", "-2"), "--jobs must be >= 1"),
        (("--runs", "1", "--jobs", "2"), "use --runs > 1"),
    ],
)
def test_simulate_input_validation_exits_2(
    workspace, capsys, extra, message
):
    status = _simulate(workspace, *extra)
    assert status == 2
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert message in err
    assert len(err.strip().splitlines()) == 1  # one line, no traceback


def test_simulate_jobs_output_matches_serial(
    workspace, tmp_path, capsys
):
    common = (
        "--iterations", "60", "--runs", "20", "--seed", "3",
        "--bernoulli",
    )
    assert _simulate(
        workspace, *common, "--ledger", str(tmp_path / "serial")
    ) == 0
    serial_out = capsys.readouterr().out
    assert _simulate(
        workspace, *common, "--jobs", "3",
        "--ledger", str(tmp_path / "sharded"),
    ) == 0
    sharded_out = capsys.readouterr().out

    def body(text):
        # Everything except the ledger path line is seed-determined.
        return [
            line for line in text.splitlines()
            if not line.startswith("ledger:")
        ]

    assert body(serial_out) == body(sharded_out)

    def record(path):
        doc = json.loads((path / "ledger.jsonl").read_text())
        del doc["recorded_at"]
        return doc

    assert record(tmp_path / "serial") == record(tmp_path / "sharded")


def test_serve_and_submit_round_trip(workspace, tmp_path, capsys):
    # Drive the real daemon in-process on an ephemeral port.
    import threading

    from repro.service import ReliabilityService
    from repro.service.server import make_server
    from repro.telemetry import RunLedger

    exec(BINDINGS, (namespace := {}))
    service = ReliabilityService(
        workers=1,
        ledger=str(tmp_path / "runs"),
        functions=namespace["FUNCTIONS"],
    ).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = str(server.server_address[1])
    submit = [
        "submit", "--port", port,
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
        "--runs", "10", "--iterations", "30", "--seed", "2",
    ]
    try:
        assert main(submit) == 0
        out = capsys.readouterr().out
        assert "submitted job-1" in out
        assert '"cache": "miss"' in out
        assert main(submit) == 0
        assert '"cache": "hit"' in capsys.readouterr().out
        assert main(["jobs", "--port", port]) == 0
        listing = capsys.readouterr().out
        assert "job-1" in listing and "cache=hit" in listing
        assert main(["jobs", "--port", port, "--metrics"]) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert metrics["runs_simulated_total"] == 10
        assert metrics["mc_cache_hits"] == 1
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
    assert len(RunLedger(tmp_path / "runs").records()) == 2


def test_submit_unreachable_daemon_exits_2(workspace, capsys):
    status = main([
        "submit", "--port", "1",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
    ])
    assert status == 2
    assert "cannot reach repro service" in capsys.readouterr().err


def test_serve_rejects_bad_workers(capsys):
    assert main(["serve", "--workers", "0"]) == 2
    assert "--workers must be >= 1" in capsys.readouterr().err


def test_serve_rejects_bad_robustness_flags(capsys):
    assert main(["serve", "--queue-limit", "0"]) == 2
    assert "--queue-limit must be >= 1" in capsys.readouterr().err
    assert main(["serve", "--shard-retries", "-1"]) == 2
    assert "--shard-retries must be >= 0" in capsys.readouterr().err
    assert main(["serve", "--shard-deadline", "0"]) == 2
    assert "--shard-deadline must be > 0" in capsys.readouterr().err
    assert main(["serve", "--cache-entries", "0"]) == 2
    assert "--cache-entries must be >= 1" in capsys.readouterr().err
    assert main(["serve", "--timeout", "-2"]) == 2
    assert "--timeout must be > 0" in capsys.readouterr().err


def test_submit_rejects_bad_timeout(workspace, capsys):
    status = main([
        "submit", "--port", "1",
        "--htl", str(workspace / "three_tank.htl"),
        "--arch", str(workspace / "arch.json"),
        "--impl", str(workspace / "baseline.json"),
        "--timeout", "0",
    ])
    assert status == 2
    assert "--timeout must be > 0" in capsys.readouterr().err
