"""Tests for E-code generation."""

import pytest

from repro.htl import Opcode, generate_ecode


def test_pipeline_ecode(pipe_spec, pipe_arch, pipe_impl):
    ecode = generate_ecode(pipe_spec, pipe_arch, pipe_impl)
    assert ecode.period == 20
    ops = [i.opcode for i in ecode.instructions]
    # 2 sensor updates (raw at 0 and 10), 2 votes, 2 snapshots,
    # 2 releases, 3 dispatches, 3 broadcasts.
    assert ops.count(Opcode.UPDATE) == 2
    assert ops.count(Opcode.VOTE) == 2
    assert ops.count(Opcode.SNAPSHOT) == 2
    assert ops.count(Opcode.RELEASE) == 2
    assert ops.count(Opcode.DISPATCH) == 3
    assert ops.count(Opcode.BROADCAST) == 3


def test_instructions_sorted_by_time_then_opcode(
    pipe_spec, pipe_arch, pipe_impl
):
    ecode = generate_ecode(pipe_spec, pipe_arch, pipe_impl)
    keys = [(i.time, i.opcode) for i in ecode.instructions]
    assert keys == sorted(keys)


def test_vote_carries_absolute_write_time(pipe_spec, pipe_arch, pipe_impl):
    ecode = generate_ecode(pipe_spec, pipe_arch, pipe_impl)
    votes = {i.args[0]: i for i in ecode.instructions
             if i.opcode is Opcode.VOTE}
    assert votes["filter"].when == 10
    assert votes["filter"].time == 10
    assert votes["control"].when == 20
    assert votes["control"].time == 0  # wraps to the next period


def test_snapshot_before_release_at_same_instant(
    pipe_spec, pipe_arch, pipe_impl
):
    ecode = generate_ecode(pipe_spec, pipe_arch, pipe_impl)
    at_zero = ecode.at(0)
    opcodes = [i.opcode for i in at_zero]
    assert opcodes.index(Opcode.SNAPSHOT) < opcodes.index(Opcode.RELEASE)


def test_ecode_without_timeline(pipe_spec, pipe_arch, pipe_impl):
    ecode = generate_ecode(
        pipe_spec, pipe_arch, pipe_impl, include_timeline=False
    )
    assert ecode.timeline is None
    assert all(
        i.opcode not in (Opcode.DISPATCH, Opcode.BROADCAST)
        for i in ecode.instructions
    )


def test_offsets_and_at(pipe_spec, pipe_arch, pipe_impl):
    ecode = generate_ecode(pipe_spec, pipe_arch, pipe_impl)
    assert 0 in ecode.offsets()
    assert all(ecode.at(o) for o in ecode.offsets())
    assert ecode.at(3) == []


def test_render_lists_instructions(pipe_spec, pipe_arch, pipe_impl):
    text = generate_ecode(pipe_spec, pipe_arch, pipe_impl).render()
    assert "RELEASE filter" in text
    assert "VOTE control" in text
    assert "e-code (period 20)" in text


def test_three_tank_ecode_counts(tank_spec, tank_arch, tank_scenario1):
    ecode = generate_ecode(tank_spec, tank_arch, tank_scenario1)
    ops = [i.opcode for i in ecode.instructions]
    # s1, s2 update once per 500 each.
    assert ops.count(Opcode.UPDATE) == 2
    assert ops.count(Opcode.VOTE) == 6
    assert ops.count(Opcode.RELEASE) == 6
    # 8 replications -> 8 dispatches and 8 broadcasts.
    assert ops.count(Opcode.DISPATCH) == 8
    assert ops.count(Opcode.BROADCAST) == 8
    assert ecode.timeline is not None and ecode.timeline.feasible


def test_iteration_protocol(pipe_spec, pipe_arch, pipe_impl):
    ecode = generate_ecode(pipe_spec, pipe_arch, pipe_impl)
    assert list(ecode) == list(ecode.instructions)
