"""Tests for replica-output voting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RuntimeSimulationError
from repro.model import BOTTOM
from repro.model.values import is_reliable_value
from repro.runtime import first_non_bottom, majority_vote


def test_first_non_bottom_picks_reliable_value():
    assert first_non_bottom([BOTTOM, 3.0, 3.0]) == 3.0
    assert first_non_bottom([5.0]) == 5.0


def test_first_non_bottom_all_bottom():
    assert first_non_bottom([BOTTOM, BOTTOM]) is BOTTOM
    assert first_non_bottom([]) is BOTTOM


def test_first_non_bottom_rejects_disagreement():
    with pytest.raises(RuntimeSimulationError, match="disagree"):
        first_non_bottom([1.0, 2.0])


def test_first_non_bottom_accepts_agreement():
    assert first_non_bottom([2.0, 2.0, BOTTOM, 2.0]) == 2.0


def test_majority_vote_basic():
    assert majority_vote([1.0, 2.0, 1.0]) == 1.0


def test_majority_vote_tolerates_disagreement():
    assert majority_vote([1.0, 2.0]) == 1.0  # tie -> first occurrence


def test_majority_vote_ignores_bottom():
    assert majority_vote([BOTTOM, 7.0, BOTTOM]) == 7.0


def test_majority_vote_all_bottom():
    assert majority_vote([BOTTOM, BOTTOM]) is BOTTOM
    assert majority_vote([]) is BOTTOM


def test_majority_vote_counts_not_positions():
    assert majority_vote([3.0, 5.0, 5.0, 3.0, 5.0]) == 5.0


def test_majority_vote_tie_breaks_by_first_occurrence():
    # b reaches its final count before a does, but a occurs first.
    assert majority_vote([1.0, 2.0, 2.0, 1.0]) == 1.0


ballots = st.lists(
    st.one_of(st.just(BOTTOM), st.integers(min_value=0, max_value=5)),
    max_size=12,
)


@given(ballots)
def test_majority_vote_never_raises_and_is_sound(values):
    winner = majority_vote(values)
    reliable = [v for v in values if is_reliable_value(v)]
    if not reliable:
        assert winner is BOTTOM
        return
    counts = {}
    for v in reliable:
        counts[v] = counts.get(v, 0) + 1
    best = max(counts.values())
    assert counts[winner] == best
    # Ties break by first occurrence: no maximally frequent value may
    # appear (for the first time) before the winner does.
    for v in reliable:
        if v == winner:
            break
        assert counts[v] < best
