"""Tests for replica-output voting."""

import pytest

from repro.errors import RuntimeSimulationError
from repro.model import BOTTOM
from repro.runtime import first_non_bottom, majority_vote


def test_first_non_bottom_picks_reliable_value():
    assert first_non_bottom([BOTTOM, 3.0, 3.0]) == 3.0
    assert first_non_bottom([5.0]) == 5.0


def test_first_non_bottom_all_bottom():
    assert first_non_bottom([BOTTOM, BOTTOM]) is BOTTOM
    assert first_non_bottom([]) is BOTTOM


def test_first_non_bottom_rejects_disagreement():
    with pytest.raises(RuntimeSimulationError, match="disagree"):
        first_non_bottom([1.0, 2.0])


def test_first_non_bottom_accepts_agreement():
    assert first_non_bottom([2.0, 2.0, BOTTOM, 2.0]) == 2.0


def test_majority_vote_basic():
    assert majority_vote([1.0, 2.0, 1.0]) == 1.0


def test_majority_vote_tolerates_disagreement():
    assert majority_vote([1.0, 2.0]) == 1.0  # tie -> first occurrence


def test_majority_vote_ignores_bottom():
    assert majority_vote([BOTTOM, 7.0, BOTTOM]) == 7.0


def test_majority_vote_all_bottom():
    assert majority_vote([BOTTOM, BOTTOM]) is BOTTOM
    assert majority_vote([]) is BOTTOM


def test_majority_vote_counts_not_positions():
    assert majority_vote([3.0, 5.0, 5.0, 3.0, 5.0]) == 5.0
