"""Tests for the unreliable-value symbol."""

import pickle

from repro.model import BOTTOM, Bottom, is_reliable_value


def test_bottom_is_singleton():
    assert Bottom() is BOTTOM
    assert Bottom() is Bottom()


def test_bottom_is_falsy():
    assert not BOTTOM
    assert bool(BOTTOM) is False


def test_bottom_repr():
    assert repr(BOTTOM) == "BOTTOM"


def test_bottom_survives_pickling():
    assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM


def test_bottom_is_unreliable():
    assert not is_reliable_value(BOTTOM)


def test_falsy_values_are_reliable():
    assert is_reliable_value(0)
    assert is_reliable_value(0.0)
    assert is_reliable_value(False)
    assert is_reliable_value("")
    assert is_reliable_value(None)


def test_ordinary_values_are_reliable():
    assert is_reliable_value(3.14)
    assert is_reliable_value("value")


def test_bottom_equality_only_with_itself():
    assert BOTTOM == BOTTOM
    assert BOTTOM != 0
    assert BOTTOM != ""
