"""Tests for value faults (dropping the fail-silence assumption)."""

import numpy as np
import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.errors import RuntimeSimulationError
from repro.mapping import Implementation
from repro.model import Communicator, Specification, Task
from repro.runtime import (
    CompositeFaults,
    NoFaults,
    ScriptedFaults,
    Simulator,
    ValueFaults,
    majority_vote,
)


def triple_modular_system():
    """One task replicated on three hosts (classic TMR)."""
    comms = [
        Communicator("x", period=10, lrc=0.9, init=0.0),
        Communicator("y", period=10, lrc=0.9, init=0.0),
    ]
    tasks = [
        Task("t", [("x", 0)], [("y", 1)], function=lambda x: x + 1.0),
    ]
    spec = Specification(comms, tasks)
    arch = Architecture(
        hosts=[Host("h1"), Host("h2"), Host("h3")],
        sensors=[Sensor("s")],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    impl = Implementation(
        {"t": {"h1", "h2", "h3"}}, {"x": {"s"}}
    )
    return spec, arch, impl


def test_probability_validation():
    with pytest.raises(RuntimeSimulationError):
        ValueFaults(probability=1.5)


def test_corruption_only_hits_listed_hosts():
    faults = ValueFaults(1.0, hosts={"h1"}, magnitude=100.0)
    rng = np.random.default_rng(0)
    assert faults.corrupt_outputs("t", "h1", 0, (1.0,), rng) == (101.0,)
    assert faults.corrupt_outputs("t", "h2", 0, (1.0,), rng) == (1.0,)


def test_corruption_skips_non_numeric_values():
    faults = ValueFaults(1.0, magnitude=5.0)
    rng = np.random.default_rng(0)
    assert faults.corrupt_outputs(
        "t", "h", 0, ("text", True, 2.0), rng
    ) == ("text", True, 7.0)


def test_default_injector_never_corrupts():
    rng = np.random.default_rng(0)
    assert NoFaults().corrupt_outputs("t", "h", 0, (1.0,), rng) == (1.0,)


def test_majority_voting_masks_one_value_faulty_host():
    spec, arch, impl = triple_modular_system()
    faults = ValueFaults(1.0, hosts={"h2"}, magnitude=100.0)
    result = Simulator(
        spec, arch, impl, faults=faults, voter=majority_vote, seed=0
    ).run(10)
    # 2-of-3 majority suppresses h2's corrupted value: y = x + 1 = 1.
    assert result.values["y"][1:] == [1.0] * 9


def test_first_non_bottom_trips_its_agreement_check():
    spec, arch, impl = triple_modular_system()
    faults = ValueFaults(1.0, hosts={"h2"}, magnitude=100.0)
    simulator = Simulator(spec, arch, impl, faults=faults, seed=0)
    with pytest.raises(RuntimeSimulationError, match="disagree"):
        simulator.run(5)


def test_two_faulty_hosts_defeat_tmr():
    spec, arch, impl = triple_modular_system()
    faults = ValueFaults(1.0, hosts={"h2", "h3"}, magnitude=100.0)
    result = Simulator(
        spec, arch, impl, faults=faults, voter=majority_vote, seed=0
    ).run(5)
    # Two corrupted replicas outvote the correct one.
    assert result.values["y"][1] == 101.0


def test_composite_applies_all_corruptions():
    first = ValueFaults(1.0, hosts={"h1"}, magnitude=1.0)
    second = ValueFaults(1.0, hosts={"h1"}, magnitude=10.0)
    combined = CompositeFaults([first, second])
    rng = np.random.default_rng(0)
    assert combined.corrupt_outputs("t", "h1", 0, (0.0,), rng) == (11.0,)


def test_composite_silence_and_corruption():
    # h2 silenced, h3 corrupted: majority of {correct, corrupted}
    # degenerates to a tie broken by order — the correct value comes
    # first because hosts vote in sorted order.
    spec, arch, impl = triple_modular_system()
    faults = CompositeFaults([
        ScriptedFaults(host_outages={"h2": [(0, None)]}),
        ValueFaults(1.0, hosts={"h3"}, magnitude=100.0),
    ])
    result = Simulator(
        spec, arch, impl, faults=faults, voter=majority_vote, seed=0
    ).run(5)
    assert result.values["y"][1] == 1.0


def test_zero_probability_is_noop_at_runtime():
    spec, arch, impl = triple_modular_system()
    clean = Simulator(spec, arch, impl, seed=3).run(10)
    noisy = Simulator(
        spec, arch, impl,
        faults=ValueFaults(0.0, magnitude=100.0), seed=3,
    ).run(10)
    assert clean.values == noisy.values
