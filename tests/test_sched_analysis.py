"""Tests for the schedulability report."""

import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.mapping import Implementation
from repro.model import Communicator, Specification, Task
from repro.sched import check_schedulability


def test_pipeline_schedulable(pipe_spec, pipe_arch, pipe_impl):
    report = check_schedulability(pipe_spec, pipe_arch, pipe_impl)
    assert report.schedulable
    assert report.reasons == ()
    loads = {load.host: load for load in report.host_loads}
    assert loads["a"].job_count == 2
    assert loads["a"].demand == 4
    assert loads["a"].utilisation == pytest.approx(4 / 20)
    assert loads["b"].job_count == 1
    assert report.network_load.demand == 3


def test_three_tank_schedulable(tank_spec, tank_arch, tank_scenario1):
    report = check_schedulability(tank_spec, tank_arch, tank_scenario1)
    assert report.schedulable
    assert report.timeline.verify(tank_spec) == []


def test_summary_text(pipe_spec, pipe_arch, pipe_impl):
    text = check_schedulability(pipe_spec, pipe_arch, pipe_impl).summary()
    assert "SCHEDULABLE" in text
    assert "host a" in text
    assert "network" in text


def overload_case(wcet):
    comms = [
        Communicator("a", period=10),
        Communicator("b", period=10),
    ]
    tasks = [Task("t", [("a", 0)], [("b", 1)])]
    spec = Specification(comms, tasks)
    arch = Architecture(
        hosts=[Host("h", 0.9)],
        sensors=[Sensor("s", 0.9)],
        metrics=ExecutionMetrics(default_wcet=wcet, default_wctt=1),
    )
    impl = Implementation({"t": {"h"}}, {"a": {"s"}})
    return spec, arch, impl


def test_window_overflow_reported():
    spec, arch, impl = overload_case(wcet=10)
    report = check_schedulability(spec, arch, impl)
    assert not report.schedulable
    assert any("exceeds the LET window" in r for r in report.reasons)


def test_feasible_boundary_case():
    # wcet 9 + wctt 1 exactly fills the window [0, 10].
    spec, arch, impl = overload_case(wcet=9)
    report = check_schedulability(spec, arch, impl)
    assert report.schedulable


def test_utilisation_overflow_reported():
    comms = [
        Communicator("a", period=10),
        Communicator("b", period=10),
        Communicator("c", period=10),
    ]
    tasks = [
        Task("t1", [("a", 0)], [("b", 1)]),
        Task("t2", [("a", 0)], [("c", 1)]),
    ]
    spec = Specification(comms, tasks)
    arch = Architecture(
        hosts=[Host("h", 0.9)],
        sensors=[Sensor("s", 0.9)],
        metrics=ExecutionMetrics(default_wcet=7, default_wctt=1),
    )
    impl = Implementation({"t1": {"h"}, "t2": {"h"}}, {"a": {"s"}})
    report = check_schedulability(spec, arch, impl)
    assert not report.schedulable
    assert any("utilisation" in r for r in report.reasons)


def test_replication_increases_load(tank_spec, tank_arch,
                                    tank_baseline, tank_scenario1):
    base = check_schedulability(tank_spec, tank_arch, tank_baseline)
    repl = check_schedulability(tank_spec, tank_arch, tank_scenario1)
    base_loads = {l.host: l.demand for l in base.host_loads}
    repl_loads = {l.host: l.demand for l in repl.host_loads}
    assert repl_loads["h1"] > base_loads["h1"]
    assert repl_loads["h2"] > base_loads["h2"]
    assert repl.network_load.demand > base.network_load.demand
