"""Tests and properties for the reliability-block-diagram substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.reliability import Block, KOutOfN, Parallel, Series, Unit
from repro.reliability.rbd import replicated_unit

probabilities = st.floats(min_value=0.0, max_value=1.0)
prob_lists = st.lists(probabilities, min_size=1, max_size=6)


def test_unit_reliability():
    assert Unit(0.9).reliability() == 0.9
    assert Unit(0.9).failure_probability() == pytest.approx(0.1)


def test_unit_bounds():
    with pytest.raises(AnalysisError):
        Unit(-0.1)
    with pytest.raises(AnalysisError):
        Unit(1.1)


def test_unit_repr_carries_label():
    assert "h1" in repr(Unit(0.5, label="h1"))


def test_series_multiplies():
    block = Series([Unit(0.9), Unit(0.8)])
    assert block.reliability() == pytest.approx(0.72)


def test_parallel_or():
    block = Parallel([Unit(0.9), Unit(0.8)])
    assert block.reliability() == pytest.approx(1 - 0.1 * 0.2)


def test_empty_compositions_rejected():
    with pytest.raises(AnalysisError):
        Series([])
    with pytest.raises(AnalysisError):
        Parallel([])
    with pytest.raises(AnalysisError):
        KOutOfN(1, [])


def test_k_out_of_n_bounds():
    with pytest.raises(AnalysisError):
        KOutOfN(0, [Unit(0.5)])
    with pytest.raises(AnalysisError):
        KOutOfN(3, [Unit(0.5), Unit(0.5)])


def test_two_out_of_three_voting():
    # Classic TMR with p = 0.9: 3p^2(1-p) + p^3.
    block = KOutOfN(2, [Unit(0.9)] * 3)
    expected = 3 * 0.9**2 * 0.1 + 0.9**3
    assert block.reliability() == pytest.approx(expected)


def test_composition_sugar():
    series = Unit(0.9).in_series_with(Unit(0.8))
    assert isinstance(series, Series)
    assert series.reliability() == pytest.approx(0.72)
    parallel = Unit(0.9).in_parallel_with(Unit(0.8))
    assert isinstance(parallel, Parallel)
    assert parallel.reliability() == pytest.approx(0.98)


def test_replicated_unit():
    block = replicated_unit([0.9, 0.8], label="t")
    assert block.reliability() == pytest.approx(0.98)


def test_nested_diagram():
    # (u1 OR u2) AND u3
    block = Series([Parallel([Unit(0.9), Unit(0.9)]), Unit(0.99)])
    assert block.reliability() == pytest.approx((1 - 0.01) * 0.99)


# -- properties ----------------------------------------------------------


@given(prob_lists)
def test_k_equals_one_matches_parallel(probs):
    units = [Unit(p) for p in probs]
    assert KOutOfN(1, units).reliability() == pytest.approx(
        Parallel(units).reliability()
    )


@given(prob_lists)
def test_k_equals_n_matches_series(probs):
    units = [Unit(p) for p in probs]
    assert KOutOfN(len(units), units).reliability() == pytest.approx(
        Series(units).reliability()
    )


@given(prob_lists)
def test_series_below_parallel(probs):
    units = [Unit(p) for p in probs]
    assert (
        Series(units).reliability()
        <= Parallel(units).reliability() + 1e-12
    )


@given(prob_lists, probabilities)
def test_parallel_monotone_in_extra_unit(probs, extra):
    units = [Unit(p) for p in probs]
    base = Parallel(units).reliability()
    grown = Parallel(units + [Unit(extra)]).reliability()
    assert grown >= base - 1e-12


@given(prob_lists, probabilities)
def test_series_antitone_in_extra_unit(probs, extra):
    units = [Unit(p) for p in probs]
    base = Series(units).reliability()
    grown = Series(units + [Unit(extra)]).reliability()
    assert grown <= base + 1e-12


@given(prob_lists, st.integers(min_value=1, max_value=6))
def test_k_out_of_n_antitone_in_k(probs, k):
    units = [Unit(p) for p in probs]
    k = min(k, len(units))
    if k > 1:
        assert (
            KOutOfN(k, units).reliability()
            <= KOutOfN(k - 1, units).reliability() + 1e-12
        )


@given(prob_lists)
def test_reliability_in_unit_interval(probs):
    units = [Unit(p) for p in probs]
    for block in (Series(units), Parallel(units), KOutOfN(1, units)):
        assert -1e-12 <= block.reliability() <= 1 + 1e-12
