"""Tests for specification validation and derived timing."""

import pytest

from repro.errors import SpecificationError
from repro.model import Communicator, Specification, Task


def comm(name, period, lrc=0.9):
    return Communicator(name, period=period, lrc=lrc)


def test_duplicate_communicator_rejected():
    with pytest.raises(SpecificationError, match="duplicate communicator"):
        Specification([comm("c", 10), comm("c", 20)], [])


def test_duplicate_task_rejected():
    tasks = [
        Task("t", [("a", 0)], [("b", 1)]),
        Task("t", [("a", 0)], [("c", 1)]),
    ]
    with pytest.raises(SpecificationError, match="duplicate task"):
        Specification([comm("a", 10), comm("b", 10), comm("c", 10)], tasks)


def test_name_shared_between_task_and_communicator_rejected():
    tasks = [Task("a", [("a", 0)], [("b", 1)])]
    with pytest.raises(SpecificationError, match="both a task"):
        Specification([comm("a", 10), comm("b", 10)], tasks)


def test_undeclared_communicator_rejected():
    tasks = [Task("t", [("missing", 0)], [("b", 1)])]
    with pytest.raises(SpecificationError, match="undeclared"):
        Specification([comm("b", 10)], tasks)


def test_read_must_precede_write():
    # read at 10 (instance 1 of a), write at 10 (instance 1 of b).
    tasks = [Task("t", [("a", 1)], [("b", 1)])]
    with pytest.raises(SpecificationError, match="restriction 2"):
        Specification([comm("a", 10), comm("b", 10)], tasks)


def test_single_writer_enforced():
    tasks = [
        Task("t1", [("a", 0)], [("b", 1)]),
        Task("t2", [("a", 0)], [("b", 2)]),
    ]
    with pytest.raises(SpecificationError, match="restriction 3"):
        Specification([comm("a", 10), comm("b", 10)], tasks)


def test_empty_specification_needs_communicators():
    with pytest.raises(SpecificationError, match="at least one"):
        Specification([], [])


def test_periods_map():
    spec = Specification([comm("a", 10), comm("b", 15)], [])
    assert spec.periods() == {"a": 10, "b": 15}


def test_base_tick_is_gcd():
    spec = Specification([comm("a", 10), comm("b", 15)], [])
    assert spec.base_tick() == 5


def test_lcm_period():
    spec = Specification([comm("a", 10), comm("b", 15)], [])
    assert spec.lcm_period() == 30


def test_period_without_tasks_is_lcm():
    spec = Specification([comm("a", 10), comm("b", 15)], [])
    assert spec.period() == 30


def test_period_covers_latest_write():
    # lcm = 10, but the task writes instance 3 of b at time 30.
    tasks = [Task("t", [("a", 0)], [("b", 3)])]
    spec = Specification([comm("a", 10), comm("b", 10)], tasks)
    assert spec.period() == 30


def test_period_rounds_up_to_lcm_multiple():
    # lcm = 20; write at 30 -> period 40.
    tasks = [Task("t", [("a", 0)], [("b", 3)])]
    spec = Specification([comm("a", 20), comm("b", 10)], tasks)
    assert spec.period() == 40


def test_read_write_let_accessors(pipe_spec):
    assert pipe_spec.read_time("filter") == 0
    assert pipe_spec.write_time("filter") == 10
    assert pipe_spec.let("control") == (10, 20)


def test_writer_of(pipe_spec):
    assert pipe_spec.writer_of("flt").name == "filter"
    assert pipe_spec.writer_of("raw") is None


def test_writer_of_unknown_communicator(pipe_spec):
    with pytest.raises(SpecificationError, match="unknown communicator"):
        pipe_spec.writer_of("nope")


def test_input_communicators(pipe_spec):
    assert pipe_spec.input_communicators() == {"raw"}


def test_output_communicators(pipe_spec):
    assert pipe_spec.output_communicators() == {"cmd"}


def test_readers_of(pipe_spec):
    readers = pipe_spec.readers_of("flt")
    assert [t.name for t in readers] == ["control"]
    assert pipe_spec.readers_of("cmd") == []


def test_iteration_and_containment(pipe_spec):
    assert {t.name for t in pipe_spec} == {"filter", "control"}
    assert "filter" in pipe_spec
    assert "raw" in pipe_spec
    assert "nothing" not in pipe_spec


def test_replace_lrcs(pipe_spec):
    changed = pipe_spec.replace_lrcs({"cmd": 0.42})
    assert changed.communicators["cmd"].lrc == 0.42
    assert changed.communicators["raw"].lrc == 0.9
    # original untouched
    assert pipe_spec.communicators["cmd"].lrc == 0.9


def test_with_tasks(pipe_spec):
    only_filter = pipe_spec.with_tasks(
        [pipe_spec.tasks["filter"]]
    )
    assert set(only_filter.tasks) == {"filter"}
    assert set(only_filter.communicators) == {"raw", "flt", "cmd"}


def test_three_tank_spec_shape(tank_spec):
    assert set(tank_spec.tasks) == {
        "read1", "read2", "t1", "t2", "estimate1", "estimate2",
    }
    assert tank_spec.period() == 500
    assert tank_spec.let("read1") == (0, 200)
    assert tank_spec.let("t1") == (200, 400)
    assert tank_spec.let("estimate1") == (400, 500)
    assert tank_spec.input_communicators() == {"s1", "s2"}
