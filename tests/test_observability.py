"""End-to-end fleet observability (PR 9).

The acceptance demo is ``test_traced_job_survives_worker_kill``: one
``submit`` against a live HTTP daemon running four shards with one
injected worker kill must yield a single merged Chrome trace — client
span, daemon lifecycle, all shard spans, and the retry span — under
one trace id, with exactly one span per shard (no duplicates or
orphans from the killed attempt) and a seq-monotone event stream.

The rest covers the layers underneath: trace-context propagation and
the ``REPRO_TRACE=0`` kill-switch, the registry-backed
:class:`~repro.service.cache.ServiceMetrics` facade, ``/metrics``
content negotiation, the structured JSONL service log, the SLO
tracker in ``/healthz``, and the ``repro top`` Prometheus parser and
renderer.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ReproError
from repro.experiments import (
    bind_control_functions,
    three_tank_architecture,
    three_tank_spec,
)
from repro.experiments.three_tank_system import baseline_implementation
from repro.io import (
    architecture_to_dict,
    implementation_to_dict,
    specification_to_dict,
)
from repro.service import ReliabilityService, ServiceLog, SloTracker
from repro.service.cache import ServiceMetrics
from repro.service.client import ServiceClient
from repro.service.server import PROMETHEUS_CONTENT_TYPE, make_server
from repro.service.supervision import (
    ChaosAction,
    RetryPolicy,
    SupervisedShardedExecutor,
)
from repro.service.top import (
    parse_prometheus,
    render_frame,
    scrape_metrics,
)
from repro.telemetry import MetricsRegistry
from repro.telemetry.distributed import (
    TRACE_HEADER,
    build_job_trace,
    mint_trace_id,
    tracing_enabled,
)

FUNCTIONS = bind_control_functions()


def design_documents():
    spec = three_tank_spec(lrc_u=0.99, functions=FUNCTIONS)
    return {
        "spec": specification_to_dict(spec),
        "arch": architecture_to_dict(three_tank_architecture()),
        "impl": implementation_to_dict(baseline_implementation()),
    }


def simulate_document(runs=8, iterations=12, seed=5, **extra):
    return {
        "kind": "simulate",
        "runs": runs,
        "iterations": iterations,
        "seed": seed,
        **design_documents(),
        **extra,
    }


def make_service(**kwargs):
    kwargs.setdefault("functions", FUNCTIONS)
    return ReliabilityService(**kwargs)


@pytest.fixture()
def http_service(tmp_path):
    service = make_service(
        workers=2, ledger=str(tmp_path / "runs")
    ).start()
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(host, port), service, (host, port)
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


# ----------------------------------------------------------------------
# Trace-context propagation.
# ----------------------------------------------------------------------


def test_client_header_becomes_the_job_trace_id(http_service):
    client, service, _ = http_service
    reply = client.submit(simulate_document())
    assert client.last_trace_id
    assert reply["trace_id"] == client.last_trace_id
    job = service.get(reply["id"])
    assert job.trace_id == client.last_trace_id


def test_daemon_mints_when_no_header_arrives(http_service):
    client, service, _ = http_service
    # Bypass ServiceClient.submit's minting: raw POST, no header.
    reply = client._request(
        "POST", "/jobs", simulate_document(seed=31)
    )
    assert reply["trace_id"]
    assert service.get(reply["id"]).trace_id == reply["trace_id"]


def test_repro_trace_zero_disables_client_minting(
    http_service, monkeypatch
):
    client, service, _ = http_service
    monkeypatch.setenv("REPRO_TRACE", "0")
    assert not tracing_enabled()
    reply = client.submit(simulate_document(seed=32))
    # The daemon still mints server-side, so the job is traceable,
    # but the id did not come from this client.
    job = service.get(reply["id"])
    assert job.trace_id
    assert client.last_trace_id == reply.get("trace_id")
    assert all(
        span["trace_id"] != "" for span in client.trace_events
    )


def test_tracing_enabled_reads_environment():
    assert tracing_enabled({})
    assert tracing_enabled({"REPRO_TRACE": "1"})
    assert not tracing_enabled({"REPRO_TRACE": "0"})


def test_mint_trace_id_is_unique_and_compact():
    ids = {mint_trace_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(len(t) == 16 for t in ids)


def test_service_tracing_off_still_completes_jobs(tmp_path):
    service = make_service(tracing=False)
    job = service.submit(simulate_document(seed=33))
    service.run_pending()
    assert job.state == "done"
    assert job.spans == []  # no shard spans collected
    # The trace endpoint still renders (lifecycle only).
    doc = service.job_trace(job.id)
    assert doc["traceEvents"]


# ----------------------------------------------------------------------
# The acceptance demo: one traced job across a worker kill.
# ----------------------------------------------------------------------


class KillShardOnce:
    """Chaos hook: kill shard 0's first attempt, then behave."""

    def __init__(self):
        self.killed = False

    def action(self, shard, attempt):
        if shard == 0 and attempt == 0:
            self.killed = True
            return ChaosAction("kill")
        return None


def test_traced_job_survives_worker_kill(tmp_path):
    chaos = KillShardOnce()
    service = make_service(
        workers=1,
        executor_factory=lambda shards: SupervisedShardedExecutor(
            shards,
            policy=RetryPolicy(
                retries=2, base_delay_s=0.01, max_delay_s=0.05
            ),
            chaos=chaos,
        ),
    ).start()
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    try:
        client = ServiceClient(host, port)
        reply = client.submit(
            simulate_document(runs=8, jobs=4), wait=True
        )
        assert reply["state"] == "done", reply.get("error")
        assert chaos.killed
        trace_id = client.last_trace_id
        doc = client.job_trace(reply["id"])
    finally:
        server.shutdown()
        server.server_close()
        service.stop()

    assert doc["otherData"]["trace_id"] == trace_id
    events = doc["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"]
    by_cat = {}
    for event in spans:
        by_cat.setdefault(event["cat"], []).append(event)

    # One trace id across every process lane.
    assert {
        e["args"]["trace_id"] for e in events if e.get("ph") != "M"
    } == {trace_id}

    # Client + daemon lifecycle + every shard + the retry, merged.
    assert by_cat["client"], "client submit span missing"
    stages = {e["name"] for e in by_cat["lifecycle"]}
    assert {"queued", "executing"} <= stages
    assert len(by_cat["retry"]) == 1
    assert by_cat["retry"][0]["args"]["shard"] == 0

    # Exactly one span per shard — the killed attempt left neither
    # a duplicate nor an orphan.
    shard_spans = by_cat["shard"]
    shards = sorted(e["args"]["shard"] for e in shard_spans)
    assert shards == [0, 1, 2, 3]
    # The retried shard's surviving span names attempt 1.
    retried = next(
        e for e in shard_spans if e["args"]["shard"] == 0
    )
    assert retried["args"]["attempt"] == 1
    assert all(
        e["args"]["attempt"] == 0
        for e in shard_spans if e["args"]["shard"] != 0
    )

    # Seq monotonicity of the merged daemon event stream.
    seqs = [
        e["args"]["seq"] for e in events
        if e.get("ph") == "i" and "seq" in e.get("args", {})
    ]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_tracing_does_not_change_results():
    doc = simulate_document(seed=41, runs=6, jobs=2)
    rates = []
    for tracing in (True, False):
        service = make_service(tracing=tracing)
        job = service.submit(dict(doc))
        service.run_pending()
        assert job.state == "done", job.error
        rates.append(job.result["rates"])
    assert rates[0] == rates[1]


# ----------------------------------------------------------------------
# /metrics content negotiation + /healthz enrichment (satellite a).
# ----------------------------------------------------------------------


def test_metrics_negotiation_and_healthz(http_service):
    client, service, (host, port) = http_service
    client.submit(simulate_document(seed=51), wait=True)

    # Default stays the legacy JSON shape.
    legacy = client.metrics()
    assert legacy["jobs_submitted"] == 1
    assert legacy["jobs_completed"] == 1
    assert legacy["mc_cache_misses"] == 1

    # Accept: text/plain → Prometheus exposition.
    status, content_type, body = scrape_metrics(host, port)
    assert status == 200
    assert content_type == PROMETHEUS_CONTENT_TYPE
    assert "# HELP" in body and "# TYPE" in body
    metrics = parse_prometheus(body)
    submitted = [
        value
        for labels, value in metrics["repro_service_jobs_total"]
        if labels.get("event") == "submitted"
    ]
    assert submitted == [1.0]
    cache_events = metrics["repro_service_cache_events_total"]
    misses = [
        value for labels, value in cache_events
        if labels == {"cache": "mc", "outcome": "miss"}
    ]
    assert misses == [1.0]  # legacy mc_cache_misses, same count
    assert "repro_service_request_seconds_count" in body
    assert "repro_service_uptime_seconds" in metrics

    health = client.health()
    assert health["uptime_seconds"] > 0
    from repro import __version__

    assert health["version"] == __version__
    assert health["slo"]["samples"] == 1
    assert health["slo"]["burn_alarm"] is False
    assert health["active_traces"] == []


def _raw_get(host, port, path, headers=None):
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", path, headers=headers or {})
        response = connection.getresponse()
        return (
            response.status,
            response.getheader("Content-Type", ""),
            response.read().decode("utf-8"),
        )
    finally:
        connection.close()


def test_metrics_format_query_overrides_accept(http_service):
    _, _, (host, port) = http_service
    # ?format=prometheus needs no Accept header.
    status, content_type, body = _raw_get(
        host, port, "/metrics?format=prometheus"
    )
    assert status == 200
    assert content_type == PROMETHEUS_CONTENT_TYPE
    assert parse_prometheus(body)
    # ?format=json wins over an Accept asking for text.
    status, content_type, body = _raw_get(
        host, port, "/metrics?format=json",
        headers={"Accept": "text/plain"},
    )
    assert status == 200
    assert content_type.startswith("application/json")
    assert "jobs_submitted" in json.loads(body)


# ----------------------------------------------------------------------
# ServiceMetrics: registry-backed, legacy shape preserved.
# ----------------------------------------------------------------------


def test_service_metrics_keeps_legacy_snapshot_shape():
    metrics = ServiceMetrics()
    metrics.add("jobs_submitted")
    metrics.add("mc_cache_hits", 3)
    snapshot = metrics.snapshot()
    assert snapshot["jobs_submitted"] == 1
    assert snapshot["mc_cache_hits"] == 3
    assert snapshot["shard_retries"] == 0
    assert metrics.get("mc_cache_hits") == 3
    # Unknown names still count (forward compatibility).
    metrics.add("novel_event")
    assert metrics.get("novel_event") == 1


def test_service_metrics_prometheus_exposition_parses():
    metrics = ServiceMetrics(registry=MetricsRegistry())
    metrics.add("shard_retries", 2)
    metrics.observe_request("/jobs", "POST", 202, 0.05)
    metrics.observe_stage("simulate", 0.2)
    metrics.observe_job("simulate", "done", 0.4)
    metrics.set_gauge(
        "repro_service_queue_depth", 3, help="Queue depth."
    )
    parsed = parse_prometheus(metrics.to_prometheus())
    retries = parsed["repro_service_shard_retries_total"]
    assert retries == [({}, 2.0)]
    requests = parsed["repro_service_requests_total"]
    assert requests == [
        ({"endpoint": "/jobs", "method": "POST", "status": "202"},
         1.0)
    ]
    assert parsed["repro_service_queue_depth"] == [({}, 3.0)]
    assert (
        {"stage": "simulate", "le": "+Inf"}, 1.0
    ) in parsed["repro_service_job_stage_seconds_bucket"]


def test_service_metrics_rejects_negative_add():
    with pytest.raises(ValueError):
        ServiceMetrics().add("jobs_submitted", -1)


# ----------------------------------------------------------------------
# Structured service log (JSONL) + SLO tracker.
# ----------------------------------------------------------------------


def test_service_log_writes_seq_stamped_jsonl(tmp_path):
    path = tmp_path / "logs" / "service.jsonl"
    log = ServiceLog(path)
    log.emit("queued", trace_id="t1", job_id="job-1")
    log.emit("running", trace_id="t1", job_id="job-1")
    log.close()
    lines = [
        json.loads(line)
        for line in path.read_text().splitlines()
    ]
    assert [line["event"] for line in lines] == [
        "queued", "running",
    ]
    assert [line["seq"] for line in lines] == [0, 1]
    assert all(line["trace_id"] == "t1" for line in lines)
    assert all(line["ts"] > 0 for line in lines)


def test_service_log_survives_closed_stream(tmp_path):
    path = tmp_path / "service.jsonl"
    log = ServiceLog(path)
    log.emit("queued")
    log.close()
    log.emit("after-close")  # must not raise
    assert [e["event"] for e in log.recent][-1] == "after-close"


def test_http_service_writes_structured_log(tmp_path):
    log_path = tmp_path / "service.jsonl"
    service = make_service(log=str(log_path), workers=1).start()
    job = service.submit(simulate_document(seed=61))
    assert job.wait(timeout=60)
    assert job.state == "done"
    service.stop()
    lines = [
        json.loads(line)
        for line in log_path.read_text().splitlines()
    ]
    events = [line["event"] for line in lines]
    assert events[0] == "queued"
    assert "done" in events
    assert events[-1] == "service-stopped"
    job_lines = [line for line in lines if "job_id" in line]
    assert all(
        line["trace_id"] == job.trace_id for line in job_lines
    )
    seqs = [line["seq"] for line in lines]
    assert seqs == sorted(seqs)


def test_slo_tracker_quantiles_and_burn_alarm():
    slo = SloTracker(window=100, error_burn_threshold=0.2,
                     min_samples=5)
    empty = slo.snapshot()
    assert empty["samples"] == 0
    assert empty["p99_s"] is None
    assert empty["burn_alarm"] is False

    for ms in range(1, 101):
        slo.record(ms / 1000.0, ok=True)
    snap = slo.snapshot()
    assert snap["p50_s"] == pytest.approx(0.050)
    assert snap["p99_s"] == pytest.approx(0.099)
    assert snap["error_rate"] == 0.0
    assert snap["burn_alarm"] is False

    for _ in range(30):
        slo.record(0.01, ok=False)
    snap = slo.snapshot()
    assert snap["error_rate"] == pytest.approx(0.3)
    assert snap["burn_alarm"] is True


def test_slo_tracker_rejects_nonsense():
    with pytest.raises(ReproError):
        SloTracker(window=0)
    with pytest.raises(ReproError):
        SloTracker(error_burn_threshold=1.5)


# ----------------------------------------------------------------------
# Client backoff events (satellite b).
# ----------------------------------------------------------------------


def test_429_backoff_is_logged_as_structured_events(tmp_path):
    service = make_service(queue_limit=1)  # workers not started
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    seen = []
    try:
        client = ServiceClient(
            host, port, retries=2, backoff_s=0.01,
            sleep=lambda _s: None, on_log=seen.append,
        )
        client.submit(simulate_document(seed=71))  # fills the queue
        with pytest.raises(ReproError):
            client.submit(simulate_document(seed=72))
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
    assert len(client.backoff_events) == 2
    assert seen == client.backoff_events
    first = client.backoff_events[0]
    assert first["event"] == "backoff-429"
    assert first["attempt"] == 1
    assert first["path"] == "/jobs"
    assert first["delay_s"] > 0
    assert first["trace_id"]  # the doomed submission's minted id
    # Backoffs also become client spans for the job trace.
    backoff_spans = [
        s for s in client.trace_events if s["name"] == "backoff-429"
    ]
    assert len(backoff_spans) == 2


# ----------------------------------------------------------------------
# repro top: parser and renderer.
# ----------------------------------------------------------------------


def test_parse_prometheus_round_trip():
    registry = MetricsRegistry()
    counter = registry.counter(
        "repro_demo_total", labels={"kind": "a b"},
        help="Demo.",
    )
    counter.inc(4)
    registry.histogram(
        "repro_demo_seconds", help="Demo latency.",
    ).observe(0.2)
    parsed = parse_prometheus(registry.to_prometheus())
    assert parsed["repro_demo_total"] == [({"kind": "a b"}, 4.0)]
    buckets = parsed["repro_demo_seconds_bucket"]
    assert ({"le": "+Inf"}, 1.0) in buckets


@pytest.mark.parametrize("bad", [
    "metric_without_value",
    'metric{unclosed="x" 1',
    "metric 1 }{",
    "metric notanumber",
    '{nameless="x"} 1',
])
def test_parse_prometheus_rejects_malformed(bad):
    with pytest.raises(ReproError):
        parse_prometheus(bad)


def test_render_frame_summarizes_fleet_state():
    metrics = {
        "repro_service_jobs_total": [
            ({"event": "submitted"}, 5.0),
            ({"event": "completed"}, 4.0),
            ({"event": "failed"}, 1.0),
        ],
        "repro_service_cache_events_total": [
            ({"cache": "mc", "outcome": "hit"}, 3.0),
            ({"cache": "mc", "outcome": "miss"}, 1.0),
        ],
        "repro_service_shard_retries_total": [({}, 2.0)],
    }
    health = {
        "status": "ok", "version": "1.0.0",
        "uptime_seconds": 12.5, "queue_depth": 1,
        "queue_limit": 8, "jobs_running": 2,
        "workers": 2, "workers_alive": 2,
        "slo": {
            "p50_s": 0.002, "p90_s": 0.01, "p99_s": 1.5,
            "error_rate": 0.2, "samples": 5,
            "burn_alarm": True,
        },
        "active_traces": ["abc123"],
    }
    frame = render_frame(metrics, health)
    assert "submitted:5" in frame
    assert "completed:4" in frame
    assert "shard retries 2" in frame
    assert "75.0%" in frame  # (3 hits) / (4 lookups)
    assert "2.0ms" in frame and "1.50s" in frame
    assert "ERROR BURN" in frame
    assert "abc123" in frame


def test_top_once_renders_live_daemon(http_service, capsys):
    client, _, (host, port) = http_service
    client.submit(simulate_document(seed=81), wait=True)
    from repro.service.top import run_top

    frames = []
    assert run_top(host, port, once=True, out=frames.append) == 0
    assert len(frames) == 1
    assert "repro top — ok" in frames[0]
    assert "completed:1" in frames[0]


def test_top_once_reports_unreachable_daemon_in_one_line():
    from repro.service.top import run_top

    # Bind-and-close to reserve a port nothing is listening on.
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]

    frames, errors = [], []
    status = run_top(
        "127.0.0.1", dead_port, once=True,
        out=frames.append, err=errors.append,
    )
    assert status == 1
    assert frames == []
    assert len(errors) == 1
    assert errors[0].startswith("repro top: ")
    assert "\n" not in errors[0]


def test_render_frame_shows_convergence_pane():
    metrics = {
        "repro_service_jobs_total": [({"event": "completed"}, 1.0)],
        "repro_service_convergence_half_width": [
            ({"communicator": "u"}, 0.0125),
            ({"communicator": "s"}, 0.0031),
        ],
        "repro_service_convergence_rel_half_width": [
            ({"communicator": "u"}, 0.0127),
            ({"communicator": "s"}, 0.0031),
        ],
        "repro_service_convergence_margin": [
            ({"communicator": "u"}, 0.0044),
            ({"communicator": "s"}, -0.0002),
        ],
        "repro_service_adaptive_stops_total": [({}, 2.0)],
        "repro_service_adaptive_runs_saved_total": [({}, 512.0)],
    }
    frame = render_frame(metrics, {"status": "ok"})
    assert "convergence (latest checkpoint)" in frame
    assert "adaptive stops 2" in frame
    assert "runs saved 512" in frame
    assert "u          ±0.0125  rel 0.0127  margin +0.0044" in frame
    assert "margin -0.0002" in frame
    # Without convergence samples the pane stays out of the frame.
    assert "convergence" not in render_frame(
        {"repro_service_jobs_total": []}, {"status": "ok"}
    )
