"""System-level property tests over generated designs."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.io import (
    architecture_from_dict,
    architecture_to_dict,
    implementation_from_dict,
    implementation_to_dict,
    specification_from_dict,
    specification_to_dict,
)
from repro.model import is_memory_free
from repro.refinement import refines
from repro.reliability import check_reliability, communicator_srgs, srg_block
from repro.sched import expand_jobs
from repro.validity import check_validity

from strategies import specifications, systems

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(specifications())
def test_generated_specifications_are_memory_free(spec):
    assert is_memory_free(spec)
    periods = spec.periods()
    for task in spec.tasks.values():
        assert task.read_time(periods) < task.write_time(periods)


@RELAXED
@given(specifications())
def test_period_is_lcm_multiple_and_covers_writes(spec):
    period = spec.period()
    assert period % spec.lcm_period() == 0
    periods = spec.periods()
    for task in spec.tasks.values():
        assert task.write_time(periods) <= period


@RELAXED
@given(systems())
def test_srgs_bounded_and_monotone_composition(system):
    spec, arch, impl = system
    srgs = communicator_srgs(spec, impl, arch)
    for name, value in srgs.items():
        assert 0.0 <= value <= 1.0
        writer = spec.writer_of(name)
        if writer is not None:
            # No communicator is more reliable than its writing task's
            # replication (the task factor multiplies in).
            from repro.reliability import task_reliability

            assert value <= task_reliability(
                writer.name, impl, arch
            ) + 1e-12


@RELAXED
@given(systems())
def test_rbd_agrees_with_induction(system):
    spec, arch, impl = system
    srgs = communicator_srgs(spec, impl, arch)
    for name in spec.communicators:
        block = srg_block(spec, impl, arch, name)
        assert block.reliability() == pytest.approx(
            srgs[name], abs=1e-12
        )


@RELAXED
@given(systems())
def test_reliability_report_consistent_with_srgs(system):
    spec, arch, impl = system
    report = check_reliability(spec, arch, impl)
    srgs = communicator_srgs(spec, impl, arch)
    for verdict in report.verdicts:
        assert verdict.srg == srgs[verdict.communicator]
        assert verdict.satisfied == (
            verdict.srg >= verdict.lrc - 1e-9
        )
    assert report.reliable == all(
        v.satisfied for v in report.verdicts
    )


@RELAXED
@given(systems())
def test_job_expansion_respects_windows(system):
    spec, arch, impl = system
    jobs = expand_jobs(spec, arch, impl)
    assert len(jobs) == impl.replication_count()
    periods = spec.periods()
    for job in jobs:
        task = spec.tasks[job.task]
        assert job.release == task.read_time(periods)
        assert job.deadline == task.write_time(periods)


@RELAXED
@given(systems())
def test_identity_refinement_reflexive(system):
    spec, arch, impl = system
    kappa = {name: name for name in spec.tasks}
    assert refines(system, system, kappa)


@RELAXED
@given(systems())
def test_serialisation_preserves_the_analysis(system):
    spec, arch, impl = system
    spec2 = specification_from_dict(specification_to_dict(spec))
    arch2 = architecture_from_dict(architecture_to_dict(arch))
    impl2 = implementation_from_dict(implementation_to_dict(impl))
    assert communicator_srgs(spec2, impl2, arch2) == communicator_srgs(
        spec, impl, arch
    )
    assert (
        check_validity(spec2, arch2, impl2).valid
        == check_validity(spec, arch, impl).valid
    )


@RELAXED
@given(systems())
def test_extra_replication_never_invalidates_reliability(system):
    spec, arch, impl = system
    base = check_reliability(spec, arch, impl)
    boosted_impl = impl
    for task in spec.tasks:
        boosted_impl = boosted_impl.with_assignment(
            task, set(arch.host_names())
        )
    boosted = check_reliability(spec, arch, boosted_impl)
    if base.reliable:
        assert boosted.reliable
    for name in spec.communicators:
        assert (
            boosted.srgs()[name] >= base.srgs()[name] - 1e-12
        )
