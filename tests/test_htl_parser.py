"""Tests for the HTL parser."""

import pytest

from repro.errors import HTLSyntaxError
from repro.htl import parse_program

MINIMAL = """
program P {
  communicator c : float period 10 init 0.0 ;
}
"""

FULL = """
program Full {
  communicator raw : float period 10 init 0.5 lrc 0.99 ;
  communicator cnt : int period 20 init -3 ;
  communicator flag : bool period 10 init true ;
  module M start fast {
    task t input (raw[0]) output (cnt[1])
      model parallel default (raw = 0.25) function "work" ;
    mode fast period 20 {
      invoke t ;
      switch to slow when "overload" ;
    }
    mode slow period 20 {
      invoke t ;
    }
  }
}
"""


def test_minimal_program():
    program = parse_program(MINIMAL)
    assert program.name == "P"
    assert len(program.communicators) == 1
    comm = program.communicators[0]
    assert (comm.name, comm.type_name, comm.period) == ("c", "float", 10)
    assert comm.init == 0.0
    assert comm.lrc is None  # no lrc clause declared
    assert comm.effective_lrc == 1.0  # compiler default


def test_full_program_structure():
    program = parse_program(FULL)
    assert program.name == "Full"
    assert [c.name for c in program.communicators] == ["raw", "cnt", "flag"]
    module = program.module_named("M")
    assert module.start_mode == "fast"
    assert [t.name for t in module.tasks] == ["t"]
    assert [m.name for m in module.modes] == ["fast", "slow"]


def test_literals_parsed():
    program = parse_program(FULL)
    raw, cnt, flag = program.communicators
    assert raw.init == 0.5 and raw.lrc == 0.99
    assert cnt.init == -3
    assert flag.init is True


def test_task_declaration_details():
    task = parse_program(FULL).module_named("M").task_named("t")
    assert task.inputs == (("raw", 0),)
    assert task.outputs == (("cnt", 1),)
    assert task.model == "parallel"
    assert task.defaults == (("raw", 0.25),)
    assert task.function_name == "work"


def test_task_defaults_to_series_model():
    source = MINIMAL.replace(
        "}",
        """
        module M {
          task t input (c[0]) output (c[1]) ;
          mode m period 10 { invoke t ; }
        }
        }""",
        1,
    )
    task = parse_program(source).module_named("M").task_named("t")
    assert task.model == "series"
    assert task.function_name is None


def test_mode_statements():
    mode = parse_program(FULL).module_named("M").mode_named("fast")
    assert mode.period == 20
    assert [i.task for i in mode.invokes] == ["t"]
    assert [(s.target, s.condition_name) for s in mode.switches] == [
        ("slow", "overload")
    ]


def test_multiple_ports():
    source = """
    program P {
      communicator a : float period 10 init 0.0 ;
      communicator b : float period 10 init 0.0 ;
      communicator c : float period 10 init 0.0 ;
      module M {
        task t input (a[0], b[0]) output (c[1], a[2]) ;
        mode m period 20 { invoke t ; }
      }
    }
    """
    task = parse_program(source).module_named("M").task_named("t")
    assert task.inputs == (("a", 0), ("b", 0))
    assert task.outputs == (("c", 1), ("a", 2))


@pytest.mark.parametrize(
    "source, message",
    [
        ("", "expected 'program'"),
        ("program {", "expected program name"),
        ("program P { communicator ; }", "expected communicator name"),
        ("program P { communicator c float period 10 init 0 ; }",
         "expected ':'"),
        ("program P { communicator c : double period 10 init 0 ; }",
         "expected a type"),
        ("program P { communicator c : float period 1.5 init 0 ; }",
         "expected integer"),
        ("program P { junk }", "expected 'communicator' or 'module'"),
        ("program P { } extra", "trailing input"),
        ("program P { module M { junk } }", "expected 'task' or 'mode'"),
        ("program P { module M { mode m period 5 { bad } } }",
         "expected 'invoke' or 'switch'"),
        ("program P { module M { task t input () output (c[1]) ; } }",
         "expected communicator name"),
    ],
)
def test_syntax_errors(source, message):
    with pytest.raises(HTLSyntaxError, match=message):
        parse_program(source)


def test_error_position_reported():
    source = "program P {\n  communicator c : float period x init 0 ;\n}"
    try:
        parse_program(source)
    except HTLSyntaxError as error:
        assert error.line == 2
    else:  # pragma: no cover
        pytest.fail("expected HTLSyntaxError")


def test_negative_literal_in_default():
    source = """
    program P {
      communicator a : float period 10 init 0.0 ;
      communicator b : float period 10 init 0.0 ;
      module M {
        task t input (a[0]) output (b[1])
          model independent default (a = -1.5) ;
        mode m period 10 { invoke t ; }
      }
    }
    """
    task = parse_program(source).module_named("M").task_named("t")
    assert task.defaults == (("a", -1.5),)
