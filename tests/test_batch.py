"""The batched Monte-Carlo executor vs the scalar reference.

The batch executor's whole claim is *bit-identical counts, orders of
magnitude faster*: run ``k`` of ``run_batch(n, iterations, seed=s)``
must produce exactly the per-communicator reliable-access counts of
the scalar :class:`~repro.runtime.engine.Simulator` seeded with
``SeedSequence(s).spawn(n)[k]``.  The differential property test
drives that over Hypothesis-generated systems; the convergence test
checks the estimates against the analytic SRGs of Proposition 1; the
fallback tests pin down when the vectorized path must decline.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.errors import RuntimeSimulationError
from repro.experiments import (
    bind_control_functions,
    cyclic_specification,
    scenario1_implementation,
    three_tank_architecture,
    three_tank_spec,
    unplug_monte_carlo,
)
from repro.mapping import Implementation
from repro.reliability import (
    binomial_confidence_interval,
    communicator_srgs,
)
from repro.runtime import (
    BatchSimulator,
    BernoulliFaults,
    CompositeFaults,
    CrashRepairFaults,
    FaultInjector,
    GilbertElliottChannel,
    GilbertElliottFaults,
    ScriptedFaults,
    Simulator,
)

from strategies import systems

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def scalar_counts(spec, arch, impl, faults, child, iterations):
    """Reliable-access counts of one scalar run seeded with *child*."""
    simulator = Simulator(
        spec, arch, impl,
        faults=faults,
        seed=np.random.default_rng(child),
    )
    result = simulator.run(iterations)
    return {
        name: trace.reliable_count()
        for name, trace in result.abstract().items()
    }


# ----------------------------------------------------------------------
# The seed contract, differentially.
# ----------------------------------------------------------------------


@RELAXED
@given(systems(), st.integers(min_value=0, max_value=2**32 - 1))
def test_batch_matches_scalar_on_generated_systems(system, seed):
    spec, arch, impl = system
    batch = BatchSimulator(
        spec, arch, impl, faults=BernoulliFaults(arch), seed=seed
    )
    runs, iterations = 3, 7
    result = batch.run_batch(runs, iterations)
    assert result.executor == "vectorized"

    children = np.random.SeedSequence(seed).spawn(runs)
    for k, child in enumerate(children):
        expected = scalar_counts(
            spec, arch, impl, BernoulliFaults(arch), child, iterations
        )
        for name, count in expected.items():
            assert result.reliable_counts[name][k] == count


@RELAXED
@given(systems())
def test_batch_is_deterministic_in_the_seed(system):
    spec, arch, impl = system
    batch = BatchSimulator(
        spec, arch, impl, faults=BernoulliFaults(arch)
    )
    first = batch.run_batch(2, 5, seed=123)
    second = batch.run_batch(2, 5, seed=123)
    for name in spec.communicators:
        assert np.array_equal(
            first.reliable_counts[name], second.reliable_counts[name]
        )


# ----------------------------------------------------------------------
# Convergence to the analytic SRGs (Proposition 1).
# ----------------------------------------------------------------------


def test_batch_estimates_converge_to_analytic_srgs():
    """Pooled batch estimates honour the SRGs of Proposition 1.

    The SRG is a *guarantee*: the analytic product assumes input
    reliabilities independent, and shared upstream ancestry (both 3TS
    estimates fuse the same level readings) only pushes the true
    reliability up.  So every communicator's SRG must lie at or below
    the Clopper–Pearson interval of the pooled estimate — and for
    input communicators, whose reliability is exactly the sensor
    ``srel``, the interval must straddle the SRG itself.
    """
    spec = three_tank_spec()
    arch = three_tank_architecture()
    impl = scenario1_implementation()
    srgs = communicator_srgs(spec, impl, arch)

    batch = BatchSimulator(
        spec, arch, impl, faults=BernoulliFaults(arch), seed=7
    )
    result = batch.run_batch(64, 500)  # 32000 hyperperiods
    assert result.executor == "vectorized"

    inputs = spec.input_communicators()
    for name in spec.communicators:
        successes, samples = result.pooled_counts()[name]
        lower, upper = binomial_confidence_interval(
            successes, samples, confidence=0.999
        )
        assert srgs[name] <= upper, (
            f"{name}: observed significantly below the SRG "
            f"{srgs[name]} (CP interval [{lower}, {upper}])"
        )
        if name in inputs:
            assert lower <= srgs[name], (
                f"{name}: exact input SRG {srgs[name]} outside CP "
                f"interval [{lower}, {upper}]"
            )


def test_batch_scripted_unplug_matches_scalar_and_degrades():
    """Pull-the-plug composite (scripted + Bernoulli) on the batch path."""
    result = unplug_monte_carlo(
        scenario1_implementation(), "h2", 30_000, runs=4, iterations=120
    )
    assert result.executor == "vectorized"
    # Replication keeps every LRC despite losing h2 for half the run.
    assert result.satisfies_lrcs(slack=0.01)

    spec = three_tank_spec(functions=bind_control_functions())
    arch = three_tank_architecture()
    impl = scenario1_implementation()
    faults = CompositeFaults(
        [
            ScriptedFaults(host_outages={"h2": [(30_000, None)]}),
            BernoulliFaults(arch),
        ]
    )
    children = np.random.SeedSequence(99).spawn(4)
    for k, child in enumerate(children):
        expected = scalar_counts(spec, arch, impl, faults, child, 120)
        for name, count in expected.items():
            assert result.reliable_counts[name][k] == count


# ----------------------------------------------------------------------
# The seed contract under the correlated injectors.
# ----------------------------------------------------------------------


channels = st.builds(
    GilbertElliottChannel,
    st.floats(min_value=0.01, max_value=0.9),   # good_to_bad
    st.floats(min_value=0.05, max_value=0.95),  # bad_to_good
    st.floats(min_value=0.0, max_value=0.2),    # fail_good
    st.floats(min_value=0.5, max_value=1.0),    # fail_bad
    st.booleans(),                              # start_bad
)


@RELAXED
@given(
    systems(),
    channels,
    st.integers(min_value=0, max_value=2**32 - 1),
    st.booleans(),
)
def test_batch_matches_scalar_with_gilbert_elliott(
    system, channel, seed, with_network
):
    spec, arch, impl = system

    def faults():
        return GilbertElliottFaults(
            hosts={h: channel for h in arch.host_names()},
            sensors={s: channel for s in arch.sensor_names()},
            network=channel if with_network else None,
        )

    batch = BatchSimulator(spec, arch, impl, faults=faults(), seed=seed)
    runs, iterations = 2, 6
    result = batch.run_batch(runs, iterations)
    assert result.executor == "vectorized"

    children = np.random.SeedSequence(seed).spawn(runs)
    for k, child in enumerate(children):
        expected = scalar_counts(
            spec, arch, impl, faults(), child, iterations
        )
        for name, count in expected.items():
            assert result.reliable_counts[name][k] == count


@RELAXED
@given(
    systems(),
    st.floats(min_value=10.0, max_value=5000.0),
    st.floats(min_value=5.0, max_value=500.0),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_batch_matches_scalar_with_crash_repair(system, mttf, mttr, seed):
    spec, arch, impl = system

    def faults():
        return CrashRepairFaults(
            hosts={h: (mttf, mttr) for h in arch.host_names()},
            sensors={s: (mttf, mttr) for s in arch.sensor_names()},
        )

    batch = BatchSimulator(spec, arch, impl, faults=faults(), seed=seed)
    runs, iterations = 2, 6
    result = batch.run_batch(runs, iterations)
    assert result.executor == "vectorized"

    children = np.random.SeedSequence(seed).spawn(runs)
    for k, child in enumerate(children):
        expected = scalar_counts(
            spec, arch, impl, faults(), child, iterations
        )
        for name, count in expected.items():
            assert result.reliable_counts[name][k] == count


# ----------------------------------------------------------------------
# Scripted-outage interval boundaries, differentially.
#
# In the 3TS plan the interesting instants of iteration 3 are: release
# of t1/t2 at 1700, their deadline (write time) at 1900, and the phase
# boundaries at 1500/2000.  Outage edges landing exactly on those
# instants exercise the half-open interval convention of
# ScriptedFaults._down_during — a precompute that is off by one at any
# edge diverges from the scalar reference here.
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "intervals",
    [
        [(1000, 1700)],   # ends exactly on a release -> spares it
        [(1700, 1701)],   # starts exactly on a release -> kills it
        [(1900, 1950)],   # starts exactly on a deadline -> still kills
        [(1300, 1900)],   # ends exactly on a deadline
        [(1500, 2000)],   # aligned on phase boundaries
        [(0, 200)],       # from t=0 to the first write time
        [(2000, None)],   # open-ended from a phase boundary
        [(1700, 1900)],   # exactly one invocation window
    ],
    ids=[
        "end-on-release",
        "start-on-release",
        "start-on-deadline",
        "end-on-deadline",
        "phase-aligned",
        "from-zero",
        "open-ended",
        "exact-window",
    ],
)
def test_scripted_precompute_interval_boundaries(intervals):
    spec = three_tank_spec(functions=bind_control_functions())
    arch = three_tank_architecture()
    impl = scenario1_implementation()

    def faults():
        return ScriptedFaults(
            host_outages={"h1": intervals, "h2": intervals},
            sensor_outages={"sen1": intervals, "sen2b": intervals},
        )

    batch = BatchSimulator(spec, arch, impl, faults=faults(), seed=17)
    runs, iterations = 2, 12
    result = batch.run_batch(runs, iterations)
    assert result.executor == "vectorized"

    children = np.random.SeedSequence(17).spawn(runs)
    for k, child in enumerate(children):
        expected = scalar_counts(
            spec, arch, impl, faults(), child, iterations
        )
        for name, count in expected.items():
            assert result.reliable_counts[name][k] == count, (
                f"{name}: batch diverges from scalar on {intervals}"
            )


# ----------------------------------------------------------------------
# Fallback rules.
# ----------------------------------------------------------------------


class _FlakySensor(FaultInjector):
    """A custom injector with no ``precompute`` implementation."""

    def sensor_fails(self, sensor, time, rng):
        return rng.random() >= 0.5


def test_custom_injector_without_precompute_falls_back():
    spec = three_tank_spec(functions=bind_control_functions())
    arch = three_tank_architecture()
    impl = scenario1_implementation()
    batch = BatchSimulator(
        spec, arch, impl, faults=_FlakySensor(), seed=5
    )
    result = batch.run_batch(2, 30)
    assert result.executor == "scalar-fallback"

    children = np.random.SeedSequence(5).spawn(2)
    for k, child in enumerate(children):
        expected = scalar_counts(
            spec, arch, impl, _FlakySensor(), child, 30
        )
        for name, count in expected.items():
            assert result.reliable_counts[name][k] == count


def test_cyclic_specification_falls_back_to_scalar():
    """A self-loop defeats topological propagation -> scalar path."""
    spec = cyclic_specification("series", period=10)
    arch = Architecture(
        hosts=[Host("h0", 0.9)],
        sensors=[Sensor("s0", 0.9)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    impl = Implementation({"integrate": {"h0"}}, {})
    batch = BatchSimulator(
        spec, arch, impl, faults=BernoulliFaults(arch), seed=3
    )
    assert batch.plan.batch_order is None
    result = batch.run_batch(3, 40)
    assert result.executor == "scalar-fallback"

    children = np.random.SeedSequence(3).spawn(3)
    for k, child in enumerate(children):
        expected = scalar_counts(
            spec, arch, impl, BernoulliFaults(arch), child, 40
        )
        for name, count in expected.items():
            assert result.reliable_counts[name][k] == count


def test_run_batch_validates_arguments():
    spec = three_tank_spec()
    arch = three_tank_architecture()
    batch = BatchSimulator(spec, arch, scenario1_implementation())
    with pytest.raises(RuntimeSimulationError):
        batch.run_batch(0, 10)
    with pytest.raises(RuntimeSimulationError):
        batch.run_batch(4, 0)


# ----------------------------------------------------------------------
# BatchResult surface.
# ----------------------------------------------------------------------


def test_batch_result_statistics_surface():
    spec = three_tank_spec()
    arch = three_tank_architecture()
    batch = BatchSimulator(
        spec, arch, scenario1_implementation(),
        faults=BernoulliFaults(arch), seed=11,
    )
    result = batch.run_batch(8, 100)

    averages = result.limit_averages()
    estimates = result.srg_estimates()
    pooled = result.pooled_counts()
    for name in spec.communicators:
        samples = result.samples_per_run[name]
        successes, total = pooled[name]
        assert len(result.reliable_counts[name]) == 8
        assert successes == int(result.reliable_counts[name].sum())
        assert total == 8 * samples
        assert averages[name] == pytest.approx(
            result.reliable_counts[name] / samples
        )
        assert estimates[name] == pytest.approx(successes / total)
        assert 0.0 <= estimates[name] <= 1.0

    tests = result.lrc_tests()
    assert set(tests) == set(spec.communicators)
    assert result.satisfies_lrcs(slack=0.02)
    assert "8 runs x 100 iterations" in result.summary()
