"""Tests for distributed timeline construction and verification."""

import pytest

from repro.arch import Architecture, BroadcastNetwork, ExecutionMetrics, Host, Sensor
from repro.mapping import Implementation
from repro.model import Communicator, Specification, Task
from repro.sched import build_timeline


def test_pipeline_timeline(pipe_spec, pipe_arch, pipe_impl):
    timeline = build_timeline(pipe_spec, pipe_arch, pipe_impl)
    assert timeline.feasible
    assert timeline.period == 20
    assert timeline.verify(pipe_spec) == []
    # filter runs on a in [0, 2], then its broadcast fits before 10.
    assert timeline.completion_of("filter", "a") == 2
    slot = timeline.broadcast_of("filter", "a")
    assert slot is not None
    assert slot.start >= 2 and slot.end <= 10
    assert slot.duration == 1


def test_timeline_respects_release(pipe_spec, pipe_arch, pipe_impl):
    timeline = build_timeline(pipe_spec, pipe_arch, pipe_impl)
    for host, slices in timeline.host_slices.items():
        for piece in slices:
            read = pipe_spec.read_time(piece.task)
            assert piece.start >= read


def test_three_tank_timeline(tank_spec, tank_arch, tank_scenario1):
    timeline = build_timeline(tank_spec, tank_arch, tank_scenario1)
    assert timeline.feasible
    assert timeline.verify(tank_spec) == []
    # Both controller replicas run within [200, 400].
    for host in ("h1", "h2"):
        completion = timeline.completion_of("t1", host)
        assert completion is not None
        assert 200 < completion <= 400


def test_completion_of_absent_task(tank_spec, tank_arch, tank_baseline):
    timeline = build_timeline(tank_spec, tank_arch, tank_baseline)
    assert timeline.completion_of("t1", "h3") is None
    assert timeline.broadcast_of("t1", "h3") is None


def test_overloaded_host_infeasible():
    comms = [
        Communicator("a", period=10),
        Communicator("b", period=10),
        Communicator("c", period=10),
    ]
    tasks = [
        Task("t1", [("a", 0)], [("b", 1)]),
        Task("t2", [("a", 0)], [("c", 1)]),
    ]
    spec = Specification(comms, tasks)
    arch = Architecture(
        hosts=[Host("h", 0.99)],
        sensors=[Sensor("s", 0.99)],
        metrics=ExecutionMetrics(default_wcet=6, default_wctt=1),
    )
    impl = Implementation({"t1": {"h"}, "t2": {"h"}}, {"a": {"s"}})
    timeline = build_timeline(spec, arch, impl)
    assert not timeline.feasible
    assert any(m.startswith("cpu:") for m in timeline.misses)


def test_network_contention_infeasible():
    comms = [
        Communicator("a", period=10),
        Communicator("b", period=10),
        Communicator("c", period=10),
    ]
    tasks = [
        Task("t1", [("a", 0)], [("b", 1)]),
        Task("t2", [("a", 0)], [("c", 1)]),
    ]
    spec = Specification(comms, tasks)
    arch = Architecture(
        hosts=[Host("h1", 0.99), Host("h2", 0.99)],
        sensors=[Sensor("s", 0.99)],
        metrics=ExecutionMetrics(default_wcet=2, default_wctt=6),
    )
    impl = Implementation({"t1": {"h1"}, "t2": {"h2"}}, {"a": {"s"}})
    timeline = build_timeline(spec, arch, impl)
    # CPU fits (2 per host) but two 6-unit broadcasts cannot share a
    # bandwidth-1 medium inside [2, 10].
    assert not timeline.feasible
    assert any(m.startswith("net:") for m in timeline.misses)


def test_wider_network_restores_feasibility():
    comms = [
        Communicator("a", period=10),
        Communicator("b", period=10),
        Communicator("c", period=10),
    ]
    tasks = [
        Task("t1", [("a", 0)], [("b", 1)]),
        Task("t2", [("a", 0)], [("c", 1)]),
    ]
    spec = Specification(comms, tasks)
    arch = Architecture(
        hosts=[Host("h1", 0.99), Host("h2", 0.99)],
        sensors=[Sensor("s", 0.99)],
        metrics=ExecutionMetrics(default_wcet=2, default_wctt=6),
        network=BroadcastNetwork(bandwidth=2),
    )
    impl = Implementation({"t1": {"h1"}, "t2": {"h2"}}, {"a": {"s"}})
    timeline = build_timeline(spec, arch, impl)
    assert timeline.feasible
    assert timeline.verify(spec, bandwidth=2) == []
    # With bandwidth 1 the same timeline is flagged.
    assert timeline.verify(spec, bandwidth=1) != []


def test_render_mentions_hosts_and_network(
    pipe_spec, pipe_arch, pipe_impl
):
    text = build_timeline(pipe_spec, pipe_arch, pipe_impl).render()
    assert "host a" in text
    assert "network" in text
    assert "filter" in text


def test_verify_catches_tampered_timeline(pipe_spec, pipe_arch, pipe_impl):
    from dataclasses import replace
    from repro.sched.edf import ScheduledSlice

    timeline = build_timeline(pipe_spec, pipe_arch, pipe_impl)
    # Move a control slice before its read time.
    bad_slices = dict(timeline.host_slices)
    bad_slices["a"] = tuple(
        ScheduledSlice(start=0, end=piece.end - piece.start,
                       task=piece.task, host=piece.host)
        if piece.task == "control"
        else piece
        for piece in bad_slices["a"]
    )
    tampered = replace(timeline, host_slices=bad_slices)
    problems = tampered.verify(pipe_spec)
    assert any("before read time" in p for p in problems)
