"""Tests for the fault-tree substrate and its RBD duality."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.reliability import KOutOfN, Parallel, Series, Unit
from repro.reliability.faulttree import (
    AndGate,
    BasicEvent,
    OrGate,
    VotingGate,
    from_rbd,
    minimal_cut_sets,
    rare_event_bound,
)


def events(*probabilities):
    return [
        BasicEvent(f"e{i}", p) for i, p in enumerate(probabilities)
    ]


# -- gate probabilities --------------------------------------------------------


def test_basic_event():
    assert BasicEvent("e", 0.25).probability() == 0.25
    with pytest.raises(AnalysisError):
        BasicEvent("e", 1.5)


def test_or_gate():
    gate = OrGate(events(0.1, 0.2))
    assert gate.probability() == pytest.approx(1 - 0.9 * 0.8)


def test_and_gate():
    gate = AndGate(events(0.1, 0.2))
    assert gate.probability() == pytest.approx(0.02)


def test_voting_gate_two_of_three():
    gate = VotingGate(2, events(0.1, 0.1, 0.1))
    expected = 3 * 0.1**2 * 0.9 + 0.1**3
    assert gate.probability() == pytest.approx(expected)


def test_empty_gates_rejected():
    with pytest.raises(AnalysisError):
        OrGate([])
    with pytest.raises(AnalysisError):
        AndGate([])
    with pytest.raises(AnalysisError):
        VotingGate(1, [])
    with pytest.raises(AnalysisError):
        VotingGate(4, events(0.1, 0.1))


# -- minimal cut sets ------------------------------------------------------------


def test_cut_sets_of_or():
    top = OrGate(events(0.1, 0.2))
    assert minimal_cut_sets(top) == [
        frozenset({"e0"}), frozenset({"e1"}),
    ]


def test_cut_sets_of_and():
    top = AndGate(events(0.1, 0.2))
    assert minimal_cut_sets(top) == [frozenset({"e0", "e1"})]


def test_absorption():
    # e0 OR (e0 AND e1): the pair is absorbed by the singleton.
    e0, e1 = events(0.1, 0.2)
    top = OrGate([e0, AndGate([e0, e1])])
    assert minimal_cut_sets(top) == [frozenset({"e0"})]


def test_voting_cut_sets():
    top = VotingGate(2, events(0.1, 0.1, 0.1))
    cuts = minimal_cut_sets(top)
    assert len(cuts) == 3
    assert all(len(cut) == 2 for cut in cuts)


def test_bridge_structure_cut_sets():
    # Classic two-out-of-two-paths system: (a AND b) OR (c AND d).
    a, b, c, d = events(0.1, 0.1, 0.1, 0.1)
    top = OrGate([AndGate([a, b]), AndGate([c, d])])
    assert minimal_cut_sets(top) == [
        frozenset({"e0", "e1"}), frozenset({"e2", "e3"}),
    ]


# -- rare-event bound -------------------------------------------------------------


def test_rare_event_bound_upper_bounds_exact():
    a, b, c = events(0.01, 0.02, 0.03)
    top = OrGate([AndGate([a, b]), c])
    exact = top.probability()
    bound = rare_event_bound(top)
    assert bound >= exact - 1e-15
    # With small probabilities the bound is tight.
    assert bound == pytest.approx(exact, rel=0.01)


def test_rare_event_bound_clamped():
    top = OrGate(events(0.9, 0.9, 0.9))
    assert rare_event_bound(top) == 1.0


def test_conflicting_probabilities_rejected():
    top = OrGate([BasicEvent("e", 0.1), BasicEvent("e", 0.2)])
    with pytest.raises(AnalysisError, match="two different"):
        rare_event_bound(top)


# -- RBD duality -------------------------------------------------------------------

probabilities = st.floats(min_value=0.0, max_value=1.0)


@given(st.lists(probabilities, min_size=1, max_size=5))
def test_series_dualises_to_or(values):
    block = Series([Unit(p, label=f"u{i}") for i, p in enumerate(values)])
    tree = from_rbd(block)
    assert tree.probability() == pytest.approx(
        block.failure_probability()
    )


@given(st.lists(probabilities, min_size=1, max_size=5))
def test_parallel_dualises_to_and(values):
    block = Parallel(
        [Unit(p, label=f"u{i}") for i, p in enumerate(values)]
    )
    tree = from_rbd(block)
    assert tree.probability() == pytest.approx(
        block.failure_probability()
    )


@given(
    st.lists(probabilities, min_size=2, max_size=5),
    st.integers(min_value=1, max_value=5),
)
def test_k_of_n_dualises_to_voting(values, k):
    k = min(k, len(values))
    block = KOutOfN(k, [Unit(p, label=f"u{i}")
                        for i, p in enumerate(values)])
    tree = from_rbd(block)
    assert tree.probability() == pytest.approx(
        block.failure_probability(), abs=1e-12
    )


def test_nested_rbd_duality():
    block = Series([
        Parallel([Unit(0.9, "a"), Unit(0.8, "b")]),
        Unit(0.95, "c"),
    ])
    tree = from_rbd(block)
    assert tree.probability() == pytest.approx(
        block.failure_probability()
    )
    # The system fails when c fails OR both a and b fail.
    cuts = minimal_cut_sets(tree)
    assert frozenset({"c"}) in cuts
    assert frozenset({"a", "b"}) in cuts


def test_srg_block_fault_tree_round_trip():
    """The 3TS scenario-1 RBD dualises into a fault tree whose
    minimal cut sets name exactly the component combinations that
    break the pump command."""
    from repro.experiments import (
        scenario1_implementation,
        three_tank_architecture,
        three_tank_spec,
    )
    from repro.reliability import srg_block

    spec = three_tank_spec(lrc_u=0.9975)
    arch = three_tank_architecture()
    block = srg_block(
        spec, scenario1_implementation(), arch, "u1"
    )
    tree = from_rbd(block)
    assert tree.probability() == pytest.approx(
        block.failure_probability()
    )
    cuts = minimal_cut_sets(tree)
    # Singles: the sensor or read1's host; double: both controller hosts.
    assert frozenset({"sensor:sen1"}) in cuts
    assert frozenset({"read1@h3"}) in cuts
    assert frozenset({"t1@h1", "t1@h2"}) in cuts
