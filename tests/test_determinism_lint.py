"""The determinism self-lint: the source tree stays reproducible.

``tools/check_determinism.py`` forbids global-RNG use and wall-clock
reads outside the sanctioned entry points.  These tests run it over
the real source tree (the repository's contract) and over synthetic
fixtures (the checker's own correctness).
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_determinism.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_determinism", TOOL
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_determinism", module)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def test_source_tree_is_deterministic():
    violations = checker.run(REPO_ROOT / "src" / "repro")
    assert violations == []


@pytest.mark.parametrize(
    "source, fragment",
    [
        ("import random\n", "hidden global state"),
        ("from random import choice\n", "hidden global state"),
        (
            "import numpy as np\nx = np.random.rand(3)\n",
            "global RNG",
        ),
        (
            "import numpy as np\nr = np.random.default_rng()\n",
            "without a seed",
        ),
        (
            "from numpy.random import default_rng\nr = default_rng()\n",
            "without a seed",
        ),
        ("import time\nt = time.time()\n", "reads a clock"),
        (
            "from datetime import datetime\nd = datetime.now()\n",
            "wall clock",
        ),
    ],
)
def test_checker_flags_nondeterminism(tmp_path, source, fragment):
    path = tmp_path / "module.py"
    path.write_text(source)
    violations = checker.check_file(path, "module.py")
    assert violations, source
    assert any(fragment in v for v in violations)


@pytest.mark.parametrize(
    "source",
    [
        # Seeded constructors and type annotations are sanctioned.
        "import numpy as np\nr = np.random.default_rng(7)\n",
        "import numpy as np\ns = np.random.SeedSequence(0).spawn(4)\n",
        (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> float:\n"
            "    return float(rng.random())\n"
        ),
    ],
)
def test_checker_accepts_seeded_use(tmp_path, source):
    path = tmp_path / "module.py"
    path.write_text(source)
    assert checker.check_file(path, "module.py") == []


def test_clock_allowlist_is_honoured(tmp_path):
    source = "import time\nt = time.perf_counter()\n"
    path = tmp_path / "module.py"
    path.write_text(source)
    assert checker.check_file(path, "module.py") != []
    assert checker.check_file(path, "telemetry/profiler.py") == []
