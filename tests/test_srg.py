"""Tests for SRG computation: formulas, induction, and RBD agreement."""

import pytest

from repro.arch import Architecture, BroadcastNetwork, ExecutionMetrics, Host, Sensor
from repro.errors import AnalysisError
from repro.experiments import (
    cyclic_specification,
    random_architecture,
    random_implementation,
    random_specification,
)
from repro.mapping import Implementation
from repro.model import Communicator, Specification, Task
from repro.reliability import (
    communicator_srgs,
    input_communicator_srg,
    srg_block,
    task_reliability,
)


def arch_two_hosts(brel=1.0):
    return Architecture(
        hosts=[Host("h1", 0.9), Host("h2", 0.8)],
        sensors=[Sensor("s1", 0.95), Sensor("s2", 0.85)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
        network=BroadcastNetwork(reliability=brel),
    )


# -- task reliability ----------------------------------------------------


def test_task_reliability_single_host():
    impl = Implementation({"t": {"h1"}})
    assert task_reliability("t", impl, arch_two_hosts()) == pytest.approx(0.9)


def test_task_reliability_replicated():
    impl = Implementation({"t": {"h1", "h2"}})
    expected = 1 - (1 - 0.9) * (1 - 0.8)
    assert task_reliability("t", impl, arch_two_hosts()) == pytest.approx(
        expected
    )


def test_task_reliability_with_lossy_broadcast():
    impl = Implementation({"t": {"h1", "h2"}})
    arch = arch_two_hosts(brel=0.99)
    expected = 1 - (1 - 0.9 * 0.99) * (1 - 0.8 * 0.99)
    assert task_reliability("t", impl, arch) == pytest.approx(expected)


def test_task_reliability_unmapped_task_rejected():
    from repro.errors import MappingError

    with pytest.raises(MappingError):
        task_reliability("t", Implementation({}), arch_two_hosts())


# -- input communicators --------------------------------------------------


def test_input_srg_single_sensor():
    impl = Implementation({}, {"c": {"s1"}})
    assert input_communicator_srg("c", impl, arch_two_hosts()) == (
        pytest.approx(0.95)
    )


def test_input_srg_replicated_sensors():
    impl = Implementation({}, {"c": {"s1", "s2"}})
    expected = 1 - (1 - 0.95) * (1 - 0.85)
    assert input_communicator_srg(
        "c", impl, arch_two_hosts()
    ) == pytest.approx(expected)


# -- the three failure-model formulas --------------------------------------


def two_input_spec(model):
    comms = [
        Communicator("a", period=10),
        Communicator("b", period=10),
        Communicator("out", period=10),
    ]
    task = Task(
        "t",
        inputs=[("a", 0), ("b", 0)],
        outputs=[("out", 1)],
        model=model,
        defaults={"a": 0.0, "b": 0.0},
    )
    return Specification(comms, [task])


def two_input_impl():
    return Implementation(
        {"t": {"h1"}}, {"a": {"s1"}, "b": {"s2"}}
    )


def test_series_srg_formula():
    srgs = communicator_srgs(
        two_input_spec("series"), two_input_impl(), arch_two_hosts()
    )
    assert srgs["out"] == pytest.approx(0.9 * 0.95 * 0.85)


def test_parallel_srg_formula():
    srgs = communicator_srgs(
        two_input_spec("parallel"), two_input_impl(), arch_two_hosts()
    )
    assert srgs["out"] == pytest.approx(
        0.9 * (1 - (1 - 0.95) * (1 - 0.85))
    )


def test_independent_srg_formula():
    srgs = communicator_srgs(
        two_input_spec("independent"), two_input_impl(), arch_two_hosts()
    )
    assert srgs["out"] == pytest.approx(0.9)


def test_series_srg_never_exceeds_parallel():
    series = communicator_srgs(
        two_input_spec("series"), two_input_impl(), arch_two_hosts()
    )["out"]
    parallel = communicator_srgs(
        two_input_spec("parallel"), two_input_impl(), arch_two_hosts()
    )["out"]
    independent = communicator_srgs(
        two_input_spec("independent"), two_input_impl(), arch_two_hosts()
    )["out"]
    assert series <= parallel <= independent


# -- induction corner cases -------------------------------------------------


def test_unused_communicator_has_srg_one():
    comms = [
        Communicator("a", period=10),
        Communicator("out", period=10),
        Communicator("spare", period=10),
    ]
    task = Task("t", [("a", 0)], [("out", 1)])
    spec = Specification(comms, [task])
    impl = Implementation({"t": {"h1"}}, {"a": {"s1"}})
    srgs = communicator_srgs(spec, impl, arch_two_hosts())
    assert srgs["spare"] == 1.0


def test_unsafe_cycle_raises():
    spec = cyclic_specification("series")
    impl = Implementation({"integrate": {"h1"}})
    with pytest.raises(AnalysisError, match="communicator cycle"):
        communicator_srgs(spec, impl, arch_two_hosts())


def test_safe_cycle_computed():
    spec = cyclic_specification("independent")
    impl = Implementation({"integrate": {"h1"}})
    srgs = communicator_srgs(spec, impl, arch_two_hosts())
    assert srgs["acc"] == pytest.approx(0.9)


def test_chain_composes_srgs():
    comms = [
        Communicator("a", period=10),
        Communicator("m", period=10),
        Communicator("out", period=10),
    ]
    tasks = [
        Task("t1", [("a", 0)], [("m", 1)]),
        Task("t2", [("m", 1)], [("out", 2)]),
    ]
    spec = Specification(comms, tasks)
    impl = Implementation(
        {"t1": {"h1"}, "t2": {"h2"}}, {"a": {"s1"}}
    )
    srgs = communicator_srgs(spec, impl, arch_two_hosts())
    assert srgs["m"] == pytest.approx(0.9 * 0.95)
    assert srgs["out"] == pytest.approx(0.8 * 0.9 * 0.95)


# -- RBD cross-check ---------------------------------------------------------


def test_srg_block_matches_induction_on_pipeline(
    pipe_spec, pipe_arch, pipe_impl
):
    srgs = communicator_srgs(pipe_spec, pipe_impl, pipe_arch)
    for name in pipe_spec.communicators:
        block = srg_block(pipe_spec, pipe_impl, pipe_arch, name)
        assert block.reliability() == pytest.approx(srgs[name])


def test_srg_block_rejects_unsafe_cycles():
    spec = cyclic_specification("series")
    impl = Implementation({"integrate": {"h1"}})
    with pytest.raises(AnalysisError):
        srg_block(spec, impl, arch_two_hosts(), "acc")


@pytest.mark.parametrize("seed", range(8))
def test_srg_block_matches_induction_on_random_systems(seed):
    # Note: random specifications are trees only by luck; when a
    # communicator feeds two tasks the RBD expansion and the inductive
    # formula still agree because both treat input events as
    # independent (the paper's composition rule).
    spec = random_specification(seed, layers=3, tasks_per_layer=2)
    arch = random_architecture(seed + 100)
    impl = random_implementation(spec, arch, seed + 200)
    srgs = communicator_srgs(spec, impl, arch)
    for name in spec.communicators:
        block = srg_block(spec, impl, arch, name)
        assert block.reliability() == pytest.approx(srgs[name], abs=1e-12)


@pytest.mark.parametrize("seed", range(8))
def test_random_srgs_lie_in_unit_interval(seed):
    spec = random_specification(seed)
    arch = random_architecture(seed)
    impl = random_implementation(spec, arch, seed)
    for value in communicator_srgs(spec, impl, arch).values():
        assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("seed", range(6))
def test_extra_replica_never_hurts(seed):
    spec = random_specification(seed, layers=2, tasks_per_layer=2)
    arch = random_architecture(seed, hosts=3)
    impl = random_implementation(spec, arch, seed, max_replicas=1)
    base = communicator_srgs(spec, impl, arch)
    task = sorted(spec.tasks)[0]
    grown = impl.with_assignment(task, set(arch.host_names()))
    boosted = communicator_srgs(spec, grown, arch)
    for name in spec.communicators:
        assert boosted[name] >= base[name] - 1e-12
