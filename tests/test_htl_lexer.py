"""Tests for the HTL tokenizer."""

import pytest

from repro.errors import HTLSyntaxError
from repro.htl import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


def test_empty_source_yields_eof_only():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_keywords_recognised():
    assert kinds("program module task mode") == [TokenKind.KEYWORD] * 4


def test_identifiers_vs_keywords():
    tokens = tokenize("program myprog")
    assert tokens[0].kind is TokenKind.KEYWORD
    assert tokens[1].kind is TokenKind.IDENT
    assert tokens[1].text == "myprog"


def test_underscored_identifier():
    assert texts("_x y_2") == ["_x", "y_2"]


def test_integer_and_float_numbers():
    tokens = tokenize("500 0.99 1e-3 2.5E+4")
    assert [t.text for t in tokens[:-1]] == ["500", "0.99", "1e-3", "2.5E+4"]
    assert all(t.kind is TokenKind.NUMBER for t in tokens[:-1])


def test_leading_dot_float():
    tokens = tokenize(".5")
    assert tokens[0].kind is TokenKind.NUMBER
    assert tokens[0].text == ".5"


def test_string_literal():
    tokens = tokenize('function "my_fn"')
    assert tokens[1].kind is TokenKind.STRING
    assert tokens[1].text == "my_fn"


def test_unterminated_string_rejected():
    with pytest.raises(HTLSyntaxError, match="unterminated string"):
        tokenize('"oops')


def test_string_across_newline_rejected():
    with pytest.raises(HTLSyntaxError, match="unterminated string"):
        tokenize('"line\nbreak"')


def test_punctuation():
    assert texts("{ } ( ) [ ] : ; , = -") == list("{}()[]:;,=-")


def test_line_comment_skipped():
    assert texts("a // comment here\nb") == ["a", "b"]


def test_block_comment_skipped():
    assert texts("a /* multi\nline */ b") == ["a", "b"]


def test_unterminated_block_comment_rejected():
    with pytest.raises(HTLSyntaxError, match="unterminated block"):
        tokenize("a /* never closed")


def test_unexpected_character_rejected():
    with pytest.raises(HTLSyntaxError, match="unexpected character"):
        tokenize("task $")


def test_positions_tracked():
    tokens = tokenize("ab\n  cd")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_error_carries_position():
    try:
        tokenize("ok\n   $")
    except HTLSyntaxError as error:
        assert error.line == 2
        assert error.column == 4
    else:  # pragma: no cover
        pytest.fail("expected HTLSyntaxError")


def test_token_helpers():
    token = Token(TokenKind.KEYWORD, "mode", 1, 1)
    assert token.is_keyword("mode")
    assert not token.is_keyword("task")
    punct = Token(TokenKind.PUNCT, ";", 1, 1)
    assert punct.is_punct(";")
    assert not punct.is_punct(",")
