"""Tests for incremental validity analysis via refinement."""

import pytest

from repro.experiments import random_system, refine_system
from repro.refinement import incremental_check
from repro.validity import check_validity


@pytest.fixture
def valid_pair():
    # Find a seed whose random system is valid, then refine it.
    for seed in range(30):
        spec, arch, impl = random_system(seed, layers=2,
                                         tasks_per_layer=2)
        if check_validity(spec, arch, impl).valid:
            fine, kappa = refine_system(spec, arch, impl)
            return (spec, arch, impl), fine, kappa
    pytest.fail("no valid random system found in 30 seeds")


def test_incremental_uses_local_checks(valid_pair):
    coarse, fine, kappa = valid_pair
    result = incremental_check(fine, coarse, kappa)
    assert result.valid
    assert result.via_refinement
    assert result.full_report is None
    assert "Proposition 2" in result.summary()


def test_incremental_matches_full_analysis(valid_pair):
    coarse, fine, kappa = valid_pair
    result = incremental_check(fine, coarse, kappa)
    assert result.valid == check_validity(*fine).valid


def test_incremental_falls_back_on_violation(valid_pair):
    coarse, fine, kappa = valid_pair
    fine_spec, fine_arch, fine_impl = fine
    # Blow the LRC budget of one refining task's output: constraint b4
    # fails and the full analysis must run.
    task = next(iter(fine_spec.tasks.values()))
    output = sorted(task.output_communicators())[0]
    broken_spec = fine_spec.replace_lrcs({output: 1.0})
    result = incremental_check(
        (broken_spec, fine_arch, fine_impl), coarse, kappa
    )
    assert not result.via_refinement
    assert result.full_report is not None
    assert not result.refinement.refines
    assert result.valid == result.full_report.valid


def test_incremental_falls_back_when_coarse_invalid(valid_pair):
    coarse, fine, kappa = valid_pair
    result = incremental_check(fine, coarse, kappa, coarse_valid=False)
    assert not result.via_refinement
    assert result.full_report is not None
    assert result.valid  # the fine system itself is valid
    assert "fallback" in result.summary()


def test_refine_system_produces_refinement():
    from repro.refinement import check_refinement

    spec, arch, impl = random_system(3)
    fine, kappa = refine_system(spec, arch, impl)
    assert check_refinement(fine, (spec, arch, impl), kappa).refines
