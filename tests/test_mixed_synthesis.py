"""Tests for mixed (replication x re-execution) redundancy synthesis."""

import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.errors import SynthesisError
from repro.experiments import (
    three_tank_architecture,
    three_tank_spec,
)
from repro.mapping import Implementation
from repro.model import Communicator, Specification, Task
from repro.runtime import BernoulliFaults, Simulator
from repro.synthesis import (
    MixedPlan,
    TransientReexecutionFaults,
    check_schedulability_mixed,
    communicator_srgs_mixed,
    mixed_task_reliability,
    synthesize_mixed,
    synthesize_reexecution,
    synthesize_replication,
)


def test_plan_validation():
    with pytest.raises(SynthesisError, match=">= 1"):
        MixedPlan(Implementation({"t": {"h1"}}), {"t": 0})


def test_plan_accessors():
    plan = MixedPlan(
        Implementation({"a": {"h1", "h2"}, "b": {"h1"}}), {"a": 2}
    )
    assert plan.attempts_of("a") == 2
    assert plan.attempts_of("b") == 1
    assert plan.total_executions() == 2 * 2 + 1


def test_mixed_reliability_reduces_to_pure_cases():
    arch = three_tank_architecture()
    # Pure replication: attempts 1 on two hosts.
    replicated = MixedPlan(
        Implementation({"t1": {"h1", "h2"}}), {}
    )
    expected = 1 - (1 - 0.999) ** 2
    assert mixed_task_reliability(
        replicated, "t1", arch
    ) == pytest.approx(expected)
    # Pure re-execution: two attempts on one host.
    reexecuted = MixedPlan(
        Implementation({"t1": {"h1"}}), {"t1": 2}
    )
    assert mixed_task_reliability(
        reexecuted, "t1", arch
    ) == pytest.approx(expected)


def test_mixed_dimension_compose():
    arch = three_tank_architecture()
    plan = MixedPlan(
        Implementation({"t1": {"h1", "h2"}}), {"t1": 2}
    )
    replica = 1 - (1 - 0.999) ** 2
    expected = 1 - (1 - replica) ** 2
    assert mixed_task_reliability(plan, "t1", arch) == pytest.approx(
        expected
    )


def test_mixed_srgs_on_three_tank():
    spec = three_tank_spec(lrc_u=0.9975)
    arch = three_tank_architecture()
    base = {
        "read1": {"h3"}, "read2": {"h3"},
        "t1": {"h1"}, "t2": {"h2"},
        "estimate1": {"h3"}, "estimate2": {"h3"},
    }
    plan = MixedPlan(
        Implementation(base, {"s1": {"sen1"}, "s2": {"sen2"}}),
        {"t1": 2, "t2": 2},
    )
    srgs = communicator_srgs_mixed(spec, plan, arch)
    # Same math as scenario 1 / the re-execution plan.
    assert srgs["u1"] == pytest.approx(0.998000002, abs=1e-9)


def test_synthesize_mixed_three_tank_strict():
    spec = three_tank_spec(lrc_u=0.9975)
    arch = three_tank_architecture()
    result = synthesize_mixed(spec, arch)
    for name, comm in spec.communicators.items():
        assert result.srgs[name] >= comm.lrc - 1e-9
    assert result.schedulability.schedulable
    # The mixed synthesiser binds minimal sensor subsets (sensor
    # over-provisioning is the replication synthesiser's lever), so
    # the controllers each need a second execution — 8 in total,
    # matching scenario 1's redundancy budget.
    assert result.total_executions == 8


def test_mixed_beats_pure_strategies_under_scarcity():
    """Two hosts only, one strong and one weak, and a tight window on
    one task: pure replication cannot use re-execution depth, pure
    re-execution cannot use the second host — the mixed search finds
    the cheapest combination for each task."""
    comms = [
        Communicator("a", period=100, lrc=0.9),
        # `fast`'s LRC exceeds any single host; its window [0, 45]
        # fits at most two 20-unit executions.
        Communicator("fast", period=50, lrc=0.9995),
        Communicator("slow", period=100, lrc=0.99995),
    ]
    tasks = [
        Task("quick", [("a", 0)], [("fast", 1)]),
        Task("deep", [("a", 0)], [("slow", 1)]),
    ]
    spec = Specification(comms, tasks)
    arch = Architecture(
        hosts=[Host("strong", 0.999), Host("weak", 0.99)],
        sensors=[Sensor("s", 0.99999)],
        metrics=ExecutionMetrics(default_wcet=20, default_wctt=5),
    )
    result = synthesize_mixed(spec, arch, max_attempts=4)
    assert result.schedulability.schedulable
    for name, comm in spec.communicators.items():
        assert result.srgs[name] >= comm.lrc - 1e-9
    # Both tasks need redundancy (LRCs above any single host), and
    # the minimum is two executions each — by replication, depth, or
    # a mix; the search must find a 4-execution plan.
    assert result.total_executions == 4

    # The pure strategies also solve it here; the mixed plan is never
    # costlier than either (its search space contains both).
    replication = synthesize_replication(spec, arch)
    reexecution = synthesize_reexecution(spec, arch)
    assert result.total_executions <= replication.replication_count
    assert result.total_executions <= reexecution.total_executions()


def test_schedulability_counts_attempts():
    spec = three_tank_spec()
    arch = three_tank_architecture()
    base = {
        "read1": {"h3"}, "read2": {"h3"},
        "t1": {"h1"}, "t2": {"h2"},
        "estimate1": {"h3"}, "estimate2": {"h3"},
    }
    plan = MixedPlan(
        Implementation(base, {"s1": {"sen1"}, "s2": {"sen2"}}),
        {name: 12 for name in spec.tasks},
    )
    assert not check_schedulability_mixed(spec, plan, arch).schedulable


def test_unreachable_lrc_raises():
    spec = three_tank_spec(lrc_u=1.0)
    arch = three_tank_architecture()
    with pytest.raises(SynthesisError, match="no mixed"):
        synthesize_mixed(spec, arch, max_attempts=2)


def test_simulated_mixed_plan_meets_lrcs():
    from repro.experiments import bind_control_functions

    spec = three_tank_spec(
        lrc_u=0.9975, functions=bind_control_functions()
    )
    arch = three_tank_architecture()
    base = {
        "read1": {"h3"}, "read2": {"h3"},
        "t1": {"h1", "h2"}, "t2": {"h1", "h2"},
        "estimate1": {"h3"}, "estimate2": {"h3"},
    }
    plan = MixedPlan(
        Implementation(base, {"s1": {"sen1"}, "s2": {"sen2"}}),
        {"read1": 2, "read2": 2},
    )
    faults = TransientReexecutionFaults(BernoulliFaults(arch), plan)
    result = Simulator(
        spec, arch, plan.implementation, faults=faults, seed=21
    ).run(6000)
    srgs = communicator_srgs_mixed(spec, plan, arch)
    averages = result.limit_averages()
    for name in ("l1", "u1", "u2"):
        assert averages[name] == pytest.approx(srgs[name], abs=0.01)
