"""Tests for the checkpointing substrate (related work [10])."""

import math

import pytest

from repro.errors import SynthesisError
from repro.experiments import (
    baseline_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.synthesis.checkpointing import (
    CheckpointPlan,
    CheckpointScheme,
    check_schedulability_checkpointed,
    optimal_segments,
    synthesize_checkpointing,
    task_reliability_checkpointed,
    worst_case_time,
)


def scheme(n=4, o=2, r=1, f=2):
    return CheckpointScheme(
        segments=n,
        checkpoint_overhead=o,
        recovery_overhead=r,
        tolerated_faults=f,
    )


# -- scheme validation ----------------------------------------------------------


def test_scheme_validation():
    with pytest.raises(SynthesisError):
        scheme(n=0)
    with pytest.raises(SynthesisError):
        scheme(o=-1)
    with pytest.raises(SynthesisError):
        scheme(f=-1)


# -- worst-case time -------------------------------------------------------------


def test_worst_case_time_formula():
    # C=100, n=10, o=2, r=1, f=2: 100 + 20 + 2*(10 + 2 + 1) = 146.
    s = scheme(n=10, o=2, r=1, f=2)
    assert worst_case_time(100, s) == 146


def test_no_checkpoints_equals_full_reexecution():
    # n=1: every fault re-runs the whole task.
    s = scheme(n=1, o=0, r=0, f=2)
    assert worst_case_time(100, s) == 300


def test_zero_faults_only_pays_checkpoints():
    s = scheme(n=5, o=2, r=1, f=0)
    assert worst_case_time(100, s) == 110


# -- optimal segment count ----------------------------------------------------------


def test_optimal_segments_matches_closed_form():
    # n* = sqrt(f*C/o) = sqrt(2*100/2) = 10.
    assert optimal_segments(100, 2, 2, 1) == 10


def test_optimal_segments_is_argmin():
    wcet, o, r, f = 100, 3, 1, 3
    best = optimal_segments(wcet, o, f, r)
    best_time = worst_case_time(
        wcet, scheme(n=best, o=o, r=r, f=f)
    )
    for n in range(1, 60):
        assert best_time <= worst_case_time(
            wcet, scheme(n=n, o=o, r=r, f=f)
        )


def test_optimal_segments_degenerate_cases():
    assert optimal_segments(100, 2, 0) == 1  # no faults: no checkpoints
    assert optimal_segments(100, 0, 2) == 100  # free checkpoints


# -- reliability -----------------------------------------------------------------


def test_reliability_matches_reexecution_when_unsegmented():
    # n=1, f=k-1 attempts-equivalent.
    for hrel in (0.9, 0.99):
        for k in (1, 2, 3):
            s = scheme(n=1, o=0, r=0, f=k - 1)
            assert task_reliability_checkpointed(
                hrel, s
            ) == pytest.approx(1 - (1 - hrel) ** k)


def test_reliability_increases_with_fault_budget():
    previous = 0.0
    for f in range(4):
        value = task_reliability_checkpointed(
            0.95, scheme(n=5, f=f)
        )
        assert value > previous
        previous = value
    assert previous <= 1.0


def test_reliability_segmentation_helps_coverage():
    # With the same fault budget, finer segments survive more total
    # failure probability mass (each fault wastes a smaller unit).
    coarse = task_reliability_checkpointed(0.9, scheme(n=1, f=2, o=0))
    fine = task_reliability_checkpointed(0.9, scheme(n=10, f=2, o=0))
    assert 0 < coarse <= 1
    assert 0 < fine <= 1


def test_reliability_validation():
    with pytest.raises(SynthesisError):
        task_reliability_checkpointed(0.0, scheme())


def test_negative_binomial_sums_to_one_in_the_limit():
    # With an enormous fault budget the task always completes.
    s = scheme(n=4, f=500)
    assert task_reliability_checkpointed(0.5, s) == pytest.approx(1.0)


# -- plan synthesis and schedulability ----------------------------------------------


def test_synthesize_checkpointing_three_tank():
    spec = three_tank_spec()
    arch = three_tank_architecture()
    impl = baseline_implementation()
    plan = synthesize_checkpointing(
        spec, arch, impl, tolerated_faults=2, checkpoint_overhead=1,
    )
    assert set(plan.schemes) == set(spec.tasks)
    for task, s in plan.schemes.items():
        assert s.segments == optimal_segments(20, 1, 2, 0)
    report = check_schedulability_checkpointed(spec, plan, arch)
    assert report.schedulable


def test_checkpointing_fits_where_full_reexecution_does_not():
    """The headline claim of [10]: tolerating f faults by partial
    re-execution fits LET windows that full re-execution overflows.

    The binding constraint is h3's estimator pair: window [400, 490]
    (write 500 minus WCTT 10) shared by two tasks.  Tolerating f = 2
    faults by full re-execution costs 3 x 20 = 60 each (120 > 90,
    infeasible); the checkpointed scheme costs 36 each (72 <= 90).
    """
    from repro.mapping import Implementation
    from repro.synthesis import ReexecutionPlan, check_schedulability_reexec

    spec = three_tank_spec()
    arch = three_tank_architecture()
    impl = baseline_implementation()
    wcet, f, o = 20, 2, 1

    full = worst_case_time(wcet, scheme(n=1, o=0, r=0, f=f))
    assert full == wcet * (f + 1) == 60
    best_n = optimal_segments(wcet, o, f)
    partial = worst_case_time(wcet, scheme(n=best_n, o=o, r=0, f=f))
    assert partial < full

    # Full re-execution (f+1 attempts of everything): infeasible.
    reexec = ReexecutionPlan(
        Implementation(dict(impl.assignment), impl.sensor_binding),
        {name: f + 1 for name in spec.tasks},
    )
    assert not check_schedulability_reexec(spec, reexec, arch).schedulable

    # Checkpointed plan with the same fault budget: feasible.
    plan = synthesize_checkpointing(
        spec, arch, impl, tolerated_faults=f, checkpoint_overhead=o,
    )
    report = check_schedulability_checkpointed(spec, plan, arch)
    assert report.schedulable


def test_plan_scheme_lookup():
    plan = CheckpointPlan(
        implementation=baseline_implementation(),
        schemes={"t1": scheme()},
    )
    assert plan.scheme_of("t1").segments == 4
    with pytest.raises(SynthesisError, match="no checkpoint scheme"):
        plan.scheme_of("ghost")
