"""Hypothesis strategies for generating valid design artifacts.

The strategies mirror the layered construction of
``repro.experiments.random_systems`` but let Hypothesis drive every
shape decision, so shrinking produces minimal counterexamples.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.mapping import Implementation
from repro.model import Communicator, FailureModel, Specification, Task

STEP = 40
INPUT_PERIODS = (10, 20, 40)

lrcs = st.floats(min_value=0.01, max_value=1.0,
                 allow_nan=False, allow_infinity=False)
reliabilities = st.floats(min_value=0.5, max_value=1.0,
                          allow_nan=False, allow_infinity=False)
models = st.sampled_from(list(FailureModel))


@st.composite
def specifications(
    draw,
    max_layers: int = 3,
    max_tasks_per_layer: int = 3,
    max_inputs: int = 3,
):
    """Generate a layered, memory-free, race-free specification."""
    layers = draw(st.integers(min_value=1, max_value=max_layers))
    inputs = draw(st.integers(min_value=1, max_value=max_inputs))
    communicators = []
    available = []  # (name, period)
    for index in range(inputs):
        period = draw(st.sampled_from(INPUT_PERIODS))
        name = f"in{index}"
        communicators.append(
            Communicator(name, period=period, lrc=draw(lrcs), init=0.0)
        )
        available.append((name, period))

    tasks = []
    for layer in range(1, layers + 1):
        read_time = (layer - 1) * STEP
        count = draw(
            st.integers(min_value=1, max_value=max_tasks_per_layer)
        )
        produced = []
        for index in range(count):
            chosen = draw(
                st.lists(
                    st.sampled_from(range(len(available))),
                    min_size=1,
                    max_size=min(3, len(available)),
                    unique=True,
                )
            )
            ports = []
            defaults = {}
            for pick in chosen:
                name, period = available[pick]
                ports.append((name, read_time // period))
                defaults[name] = 0.0
            out_name = f"c{layer}_{index}"
            communicators.append(
                Communicator(
                    out_name, period=STEP, lrc=draw(lrcs), init=0.0
                )
            )
            arity = len(ports)
            tasks.append(
                Task(
                    f"t{layer}_{index}",
                    inputs=ports,
                    outputs=[(out_name, layer)],
                    model=draw(models),
                    defaults=defaults,
                    function=(
                        lambda *values, _n=arity: float(sum(values[:_n]))
                    ),
                )
            )
            produced.append((out_name, STEP))
        available.extend(produced)
    return Specification(communicators, tasks)


@st.composite
def architectures(draw, max_hosts: int = 4, max_sensors: int = 3):
    """Generate an architecture with random reliabilities."""
    host_count = draw(st.integers(min_value=1, max_value=max_hosts))
    sensor_count = draw(st.integers(min_value=1, max_value=max_sensors))
    hosts = [
        Host(f"h{i}", draw(reliabilities)) for i in range(host_count)
    ]
    sensors = [
        Sensor(f"s{i}", draw(reliabilities)) for i in range(sensor_count)
    ]
    metrics = ExecutionMetrics(
        default_wcet=draw(st.integers(min_value=1, max_value=5)),
        default_wctt=draw(st.integers(min_value=1, max_value=3)),
    )
    return Architecture(hosts=hosts, sensors=sensors, metrics=metrics)


@st.composite
def partial_systems(draw, **spec_kwargs):
    """Generate a triple whose implementation is partial (or absent).

    Drives the abstract-interpretation engine's partial-design mode: a
    random subset of tasks keeps its host assignment and a random
    subset of input communicators keeps its sensor binding; dropping
    everything yields ``None`` (the fully free design).
    """
    spec, arch, impl = draw(systems(**spec_kwargs))
    kept_tasks = draw(
        st.sets(st.sampled_from(sorted(spec.tasks)))
        if spec.tasks
        else st.just(set())
    )
    inputs = sorted(spec.input_communicators())
    kept_inputs = draw(
        st.sets(st.sampled_from(inputs)) if inputs else st.just(set())
    )
    assignment = {
        task: impl.hosts_of(task) for task in sorted(kept_tasks)
    }
    binding = {
        comm: impl.sensors_of(comm) for comm in sorted(kept_inputs)
    }
    if not assignment and not binding:
        return spec, arch, None
    return spec, arch, Implementation(assignment, binding)


@st.composite
def systems(draw, **spec_kwargs):
    """Generate a full (specification, architecture, mapping) triple."""
    spec = draw(specifications(**spec_kwargs))
    arch = draw(architectures())
    hosts = arch.host_names()
    sensors = arch.sensor_names()
    assignment = {}
    for name in sorted(spec.tasks):
        subset = draw(
            st.lists(
                st.sampled_from(hosts),
                min_size=1,
                max_size=min(2, len(hosts)),
                unique=True,
            )
        )
        assignment[name] = set(subset)
    binding = {
        comm: {draw(st.sampled_from(sensors))}
        for comm in sorted(spec.input_communicators())
    }
    return spec, arch, Implementation(assignment, binding)
