"""Tests for the Proposition 1 analysis and its reports."""

import pytest

from repro.experiments import (
    alternating_implementation,
    cyclic_specification,
    general_example,
    static_implementations,
)
from repro.mapping import Implementation, TimeDependentImplementation
from repro.reliability import (
    check_reliability,
    check_reliability_timedep,
)
from repro.reliability.analysis import CommunicatorVerdict


def test_verdict_margin_and_satisfaction():
    good = CommunicatorVerdict("c", srg=0.95, lrc=0.9)
    assert good.satisfied
    assert good.margin == pytest.approx(0.05)
    bad = CommunicatorVerdict("c", srg=0.85, lrc=0.9)
    assert not bad.satisfied
    assert bad.margin == pytest.approx(-0.05)


def test_verdict_tolerates_float_boundary():
    # (0.95 + 0.85) / 2 is one ulp below 0.9 in binary floating point.
    verdict = CommunicatorVerdict("c", srg=(0.95 + 0.85) / 2, lrc=0.9)
    assert verdict.satisfied


def test_pipeline_report(pipe_spec, pipe_arch, pipe_impl):
    report = check_reliability(pipe_spec, pipe_arch, pipe_impl)
    assert report.memory_free
    assert report.unsafe_cycles == ()
    srgs = report.srgs()
    assert srgs["raw"] == pytest.approx(0.98)
    assert srgs["flt"] == pytest.approx(0.98 * 0.99)
    # control replicated on both hosts.
    lam_control = 1 - (1 - 0.99) * (1 - 0.95)
    assert srgs["cmd"] == pytest.approx(0.98 * 0.99 * lam_control)
    assert report.reliable  # all LRCs are 0.9


def test_violations_sorted_worst_first(pipe_spec, pipe_arch, pipe_impl):
    strict = pipe_spec.replace_lrcs({"cmd": 0.999, "flt": 0.995})
    report = check_reliability(strict, pipe_arch, pipe_impl)
    assert not report.reliable
    violations = report.violations()
    assert [v.communicator for v in violations] == ["cmd", "flt"]
    assert violations[0].margin <= violations[1].margin


def test_verdict_for(pipe_spec, pipe_arch, pipe_impl):
    report = check_reliability(pipe_spec, pipe_arch, pipe_impl)
    assert report.verdict_for("raw").srg == pytest.approx(0.98)
    with pytest.raises(KeyError):
        report.verdict_for("nope")


def test_summary_mentions_status(pipe_spec, pipe_arch, pipe_impl):
    report = check_reliability(pipe_spec, pipe_arch, pipe_impl)
    text = report.summary()
    assert "RELIABLE" in text
    assert "cmd" in text


def test_unsafe_cycle_never_reliable():
    spec = cyclic_specification("series", lrc=0.1)
    impl = Implementation({"integrate": {"h1"}})
    from repro.arch import Architecture, ExecutionMetrics, Host

    arch = Architecture(
        hosts=[Host("h1", 0.999)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    import repro.errors

    # The SRG induction itself refuses unsafe cycles.
    with pytest.raises(repro.errors.AnalysisError):
        check_reliability(spec, arch, impl)


def test_safe_cycle_reported_with_memory():
    spec = cyclic_specification("independent", lrc=0.9)
    impl = Implementation({"integrate": {"h1"}})
    from repro.arch import Architecture, ExecutionMetrics, Host

    arch = Architecture(
        hosts=[Host("h1", 0.95)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    report = check_reliability(spec, arch, impl)
    assert not report.memory_free
    assert report.unsafe_cycles == ()
    assert report.reliable
    assert report.srgs()["acc"] == pytest.approx(0.95)
    assert "memory" in report.summary()


# -- the general (time-dependent) example ---------------------------------


def test_static_mappings_both_fail():
    spec, arch = general_example()
    for impl in static_implementations():
        report = check_reliability(spec, arch, impl)
        assert not report.reliable
        violated = {v.communicator for v in report.violations()}
        # Exactly the communicator written on the 0.85 host fails.
        assert len(violated) == 1


def test_alternating_mapping_is_reliable():
    spec, arch = general_example()
    report = check_reliability_timedep(
        spec, arch, alternating_implementation()
    )
    assert report.reliable
    assert report.srgs()["c1"] == pytest.approx(0.9)
    assert report.srgs()["c2"] == pytest.approx(0.9)


def test_timedep_with_single_phase_matches_static(
    pipe_spec, pipe_arch, pipe_impl
):
    static = check_reliability(pipe_spec, pipe_arch, pipe_impl)
    timedep = check_reliability_timedep(
        pipe_spec,
        pipe_arch,
        TimeDependentImplementation.static(pipe_impl),
    )
    assert static.srgs() == timedep.srgs()
    assert static.reliable == timedep.reliable


def test_timedep_average_between_phases(pipe_spec, pipe_arch, pipe_impl):
    weaker = Implementation(
        {"filter": {"b"}, "control": {"b"}}, {"raw": {"s"}}
    )
    mixed = TimeDependentImplementation([pipe_impl, weaker])
    strong = check_reliability(pipe_spec, pipe_arch, pipe_impl).srgs()
    weak = check_reliability(pipe_spec, pipe_arch, weaker).srgs()
    combined = check_reliability_timedep(pipe_spec, pipe_arch, mixed).srgs()
    for name in pipe_spec.communicators:
        assert combined[name] == pytest.approx(
            (strong[name] + weak[name]) / 2
        )
