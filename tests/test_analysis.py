"""Unit tests for the abstract-interpretation verifier (repro.analysis)."""

import math

import pytest

from repro.analysis import (
    AnalysisCache,
    BoundVerdict,
    FeasibilityOracle,
    Interval,
    TOP,
    Verifier,
    analyze_specification,
    is_feasible,
)
from repro.analysis.cache import cone_key
from repro.analysis.domain import or_reliability
from repro.analysis.witness import Factor, minimal_witness
from repro.errors import AnalysisError, MappingError
from repro.experiments import (
    brake_baseline_implementation,
    brake_by_wire_architecture,
    brake_by_wire_spec,
    baseline_implementation,
    cyclic_specification,
    three_tank_architecture,
    three_tank_spec,
)
from repro.mapping import Implementation
from repro.reliability import communicator_srgs


@pytest.fixture
def tank():
    spec = three_tank_spec()
    arch = three_tank_architecture()
    return spec, arch, baseline_implementation()


@pytest.fixture
def brake():
    spec = brake_by_wire_spec()
    arch = brake_by_wire_architecture()
    return spec, arch, brake_baseline_implementation()


# -- interval domain ---------------------------------------------------------


def test_interval_validation():
    with pytest.raises(AnalysisError):
        Interval(0.8, 0.2)
    with pytest.raises(AnalysisError):
        Interval(-0.1, 0.5)
    with pytest.raises(AnalysisError):
        Interval(0.0, 1.5)
    with pytest.raises(AnalysisError):
        Interval(float("nan"), 1.0)


def test_interval_operations():
    a = Interval(0.2, 0.6)
    b = Interval(0.5, 0.9)
    assert a.hull(b) == Interval(0.2, 0.9)
    assert a.contains(0.2) and a.contains(0.6)
    assert not a.contains(0.7)
    assert Interval.point(0.5).is_point
    assert TOP.contains(0.0) and TOP.contains(1.0)
    assert a.distance(b) == pytest.approx(0.3)


def test_or_reliability():
    assert or_reliability([]) == 0.0
    assert or_reliability([0.9]) == pytest.approx(0.9)
    assert or_reliability([0.9, 0.9]) == pytest.approx(0.99)


# -- witnesses ---------------------------------------------------------------


def test_minimal_witness_is_a_certificate():
    factors = (
        Factor("replication", "t", 0.1, 0.95),
        Factor("sensors", "s", 0.2, 0.8),
        Factor("replication", "u", 0.3, 0.99),
    )
    witness = minimal_witness("c", 0.9, 0.75, factors)
    # The culprit product alone already dooms the LRC; remaining
    # factors are <= 1 so they can only lower it further.
    assert witness.product < 0.9
    assert witness.culprits[0].name == "s"  # weakest first
    assert len(witness.culprits) < len(factors)
    assert "unachievable" in witness.describe()


# -- cache -------------------------------------------------------------------


def test_cone_key_sensitivity():
    base = cone_key(["task", "t", 0.9], ())
    assert base == cone_key(["task", "t", 0.9], ())
    assert base != cone_key(["task", "t", 0.8], ())
    assert base != cone_key(["task", "t", 0.9], (base,))


def test_design_key_is_order_independent():
    cache = AnalysisCache()
    key1 = cache.design_key({"a": ["x"], "b": ["y"]})
    key2 = cache.design_key({"b": ["y"], "a": ["x"]})
    assert key1 == key2
    assert key1 != cache.design_key({"a": ["x"], "b": ["z"]})


# -- engine: concrete and free analyses --------------------------------------


def test_concrete_bounds_match_exact_srg(tank):
    spec, arch, impl = tank
    report = analyze_specification(spec, arch, impl)
    exact = communicator_srgs(spec, impl, arch)
    assert report.concrete
    for name, srg in exact.items():
        interval = report.bounds[name].interval
        assert interval.lo == srg
        assert interval.hi == srg


def test_free_bounds_bracket_every_mapping(tank):
    spec, arch, impl = tank
    free = analyze_specification(spec, arch)
    exact = communicator_srgs(spec, impl, arch)
    for name, srg in exact.items():
        assert free.bounds[name].interval.contains(srg, tolerance=1e-12)


def test_free_upper_bound_is_best_implementation(tank):
    spec, arch, _ = tank
    free = analyze_specification(spec, arch)
    everything = Implementation(
        {name: frozenset(arch.host_names()) for name in spec.tasks},
        {
            name: frozenset(arch.sensor_names())
            for name in spec.input_communicators()
        },
    )
    best = communicator_srgs(spec, everything, arch)
    for name, srg in best.items():
        assert free.bounds[name].interval.hi == srg


def test_partial_implementation_narrows_bounds(tank):
    spec, arch, impl = tank
    free = analyze_specification(spec, arch)
    task = sorted(spec.tasks)[0]
    partial = Implementation(
        {task: impl.hosts_of(task)}, {}
    )
    narrowed = analyze_specification(spec, arch, partial)
    for name in spec.communicators:
        wide = free.bounds[name].interval
        narrow = narrowed.bounds[name].interval
        assert wide.lo <= narrow.lo + 1e-12
        assert narrow.hi <= wide.hi + 1e-12


def test_partial_implementation_with_unknown_host_rejected(tank):
    spec, arch, _ = tank
    bogus = Implementation({sorted(spec.tasks)[0]: {"ghost"}}, {})
    with pytest.raises(MappingError):
        analyze_specification(spec, arch, bogus)


def test_verdicts(tank):
    spec, arch, _ = tank
    report = analyze_specification(spec, arch)
    assert report.proved and report.feasible
    hot = spec.replace_lrcs({"u1": 1.0})
    report = analyze_specification(hot, arch)
    assert not report.feasible
    bound = report.bounds["u1"]
    assert bound.verdict is BoundVerdict.INFEASIBLE
    witness = bound.witness()
    assert witness is not None
    assert witness.product < 1.0
    assert all(f.hi <= 1.0 for f in witness.culprits)


def test_unsafe_cycle_collapses_lower_bounds():
    spec = cyclic_specification("series")
    arch = three_tank_architecture()
    report = analyze_specification(spec, arch)
    assert report.unsafe_cycles
    members = set().union(*map(set, report.unsafe_cycles))
    for name in members:
        assert report.bounds[name].interval.lo == 0.0


def test_widening_reported_when_iteration_truncated():
    spec = cyclic_specification("series")
    arch = three_tank_architecture()
    report = analyze_specification(
        spec, arch, max_iterations=1, epsilon=0.0
    )
    assert report.widenings
    event = report.widenings[0]
    assert event.iterations == 1
    codes = {d.code for d in report.diagnostics()}
    assert "LRT062" in codes


# -- incremental cache -------------------------------------------------------


def test_design_level_cache_hit(tank):
    spec, arch, impl = tank
    cache = AnalysisCache()
    first = analyze_specification(spec, arch, impl, cache=cache)
    assert not first.design_cache_hit
    assert first.evaluated
    second = analyze_specification(spec, arch, impl, cache=cache)
    assert second.design_cache_hit
    assert second.evaluated == ()
    assert {n: b.interval for n, b in second.bounds.items()} == {
        n: b.interval for n, b in first.bounds.items()
    }


def test_lrc_edit_is_design_cache_hit(tank):
    # LRCs are excluded from bound signatures: they change verdicts,
    # never the certified intervals, so an LRC edit re-verifies from
    # the design-level cache without touching the graph.
    spec, arch, impl = tank
    cache = AnalysisCache()
    analyze_specification(spec, arch, impl, cache=cache)
    edited = spec.replace_lrcs({"u1": 1.0})
    report = analyze_specification(edited, arch, impl, cache=cache)
    assert report.design_cache_hit
    assert not report.feasible


def test_one_communicator_edit_reruns_only_downstream_cone(tank):
    spec, arch, impl = tank
    cache = AnalysisCache()
    analyze_specification(spec, arch, impl, cache=cache)
    # Rebind one input communicator to a different sensor: only its
    # dependency cone (s1 -> l1/r1 readers -> ...) may recompute.
    edited = Implementation(
        {name: impl.hosts_of(name) for name in spec.tasks},
        {
            name: (
                frozenset({arch.sensor_names()[-1]})
                if name == "s1"
                else impl.sensors_of(name)
            )
            for name in spec.input_communicators()
        },
    )
    report = analyze_specification(spec, arch, edited, cache=cache)
    assert not report.design_cache_hit
    assert report.evaluated
    touched = set(report.evaluated)
    assert "s1" in touched
    # The sibling tank's chain is untouched by construction.
    assert "s2" not in touched
    assert touched < set(spec.communicators)


def test_verifier_memoizes_reports(tank):
    spec, arch, impl = tank
    verifier = Verifier()
    first = verifier.verify(spec, arch, impl)
    assert verifier.verify(spec, arch, impl) is first
    fp1 = Verifier.design_fingerprint(spec, arch, impl)
    fp2 = Verifier.design_fingerprint(
        spec.replace_lrcs({"u1": 0.5}), arch, impl
    )
    assert fp1 != fp2


# -- oracle ------------------------------------------------------------------


def test_oracle_agrees_with_report(tank):
    spec, arch, impl = tank
    oracle = FeasibilityOracle(spec, arch)
    assert oracle.is_feasible()
    assert oracle.is_feasible(impl)
    assert is_feasible(spec, arch, impl)
    hot = spec.replace_lrcs({"u1": 1.0})
    assert not is_feasible(hot, arch)


def test_oracle_completion_bounds_are_sound(tank):
    spec, arch, impl = tank
    oracle = FeasibilityOracle(spec, arch)
    exact = communicator_srgs(spec, impl, arch)
    bounds = oracle.completion_upper_bounds({})
    assert bounds is not None
    for name, srg in exact.items():
        assert bounds[name] >= srg - 1e-12
    # Fixing every SRG at its exact value reproduces feasibility.
    assert oracle.completion_feasible(dict(exact)) == all(
        srg >= spec.communicators[name].lrc - 1e-9
        for name, srg in exact.items()
    )


def test_oracle_explain(tank):
    spec, arch, _ = tank
    hot = spec.replace_lrcs({"u1": 1.0})
    oracle = FeasibilityOracle(hot, arch)
    witness = oracle.explain("u1")
    assert witness is not None
    assert witness.communicator == "u1"
    assert oracle.explain("s1") is None  # feasible: no witness


# -- brake-by-wire coverage --------------------------------------------------


def test_brake_by_wire_concrete_and_free(brake):
    spec, arch, impl = brake
    exact = communicator_srgs(spec, impl, arch)
    concrete = analyze_specification(spec, arch, impl)
    free = analyze_specification(spec, arch)
    for name, srg in exact.items():
        assert concrete.bounds[name].interval.lo == srg
        assert concrete.bounds[name].interval.hi == srg
        assert free.bounds[name].interval.contains(srg, tolerance=1e-12)


# -- report plumbing ---------------------------------------------------------


def test_report_serialization(tank):
    spec, arch, impl = tank
    report = analyze_specification(spec, arch, impl)
    data = report.to_dict()
    assert data["feasible"] is True
    assert data["concrete"] is True
    assert len(data["bounds"]) == len(spec.communicators)
    assert report.to_json()
    assert report.summary().startswith("verification report")
    assert math.isfinite(report.min_lower_margin())
