"""Tests for task declarations and input failure models."""

import pytest

from repro.errors import SpecificationError
from repro.model import BOTTOM, FailureModel, PortRef, Task


def make_task(**overrides):
    settings = dict(
        name="t",
        inputs=[("a", 1), ("b", 2)],
        outputs=[("c", 3)],
        function=lambda a, b: a + b,
        model="series",
    )
    settings.update(overrides)
    return Task(**settings)


# -- failure-model parsing ---------------------------------------------


@pytest.mark.parametrize(
    "text, expected",
    [
        ("series", FailureModel.SERIES),
        ("PARALLEL", FailureModel.PARALLEL),
        (" independent ", FailureModel.INDEPENDENT),
        (1, FailureModel.SERIES),
        (2, FailureModel.PARALLEL),
        (3, FailureModel.INDEPENDENT),
        (FailureModel.SERIES, FailureModel.SERIES),
    ],
)
def test_failure_model_parse(text, expected):
    assert FailureModel.parse(text) is expected


def test_failure_model_parse_rejects_unknown():
    with pytest.raises(SpecificationError, match="unknown failure model"):
        FailureModel.parse("sometimes")


def test_failure_model_numeric_codes_match_paper():
    assert FailureModel.SERIES == 1
    assert FailureModel.PARALLEL == 2
    assert FailureModel.INDEPENDENT == 3


# -- structural validation ---------------------------------------------


def test_ports_normalised_to_portrefs():
    task = make_task()
    assert task.inputs == (PortRef("a", 1), PortRef("b", 2))
    assert task.outputs == (PortRef("c", 3),)


def test_empty_inputs_rejected():
    with pytest.raises(SpecificationError, match="restriction 1"):
        make_task(inputs=[])


def test_empty_outputs_rejected():
    with pytest.raises(SpecificationError, match="restriction 1"):
        make_task(outputs=[])


def test_duplicate_output_instance_rejected():
    with pytest.raises(SpecificationError, match="restriction 4"):
        make_task(outputs=[("c", 3), ("c", 3)])


def test_distinct_instances_of_same_output_allowed():
    task = make_task(outputs=[("c", 3), ("c", 4)])
    assert len(task.outputs) == 2


def test_negative_instance_rejected():
    with pytest.raises(SpecificationError, match=">= 0"):
        make_task(inputs=[("a", -1)])


def test_parallel_model_requires_defaults():
    with pytest.raises(SpecificationError, match="default"):
        make_task(model="parallel")


def test_independent_model_requires_defaults():
    with pytest.raises(SpecificationError, match="default"):
        make_task(model="independent")


def test_parallel_model_with_defaults_accepted():
    task = make_task(model="parallel", defaults={"a": 0.0, "b": 0.0})
    assert task.model is FailureModel.PARALLEL


# -- timing ------------------------------------------------------------


def test_read_time_is_latest_input_instance():
    task = make_task()
    periods = {"a": 2, "b": 3, "c": 4}
    assert task.read_time(periods) == max(2 * 1, 3 * 2)


def test_write_time_is_earliest_output_instance():
    task = make_task(outputs=[("c", 3), ("d", 1)])
    periods = {"a": 2, "b": 3, "c": 4, "d": 20}
    assert task.write_time(periods) == min(4 * 3, 20 * 1)


def test_let_window():
    task = make_task()
    periods = {"a": 2, "b": 3, "c": 4}
    assert task.let(periods) == (6, 12)


# -- failure-model input resolution ------------------------------------


def test_series_fails_on_any_bottom():
    task = make_task()
    assert task.resolve_inputs([1.0, BOTTOM]) is None
    assert task.resolve_inputs([BOTTOM, 2.0]) is None


def test_series_passes_reliable_inputs_through():
    task = make_task()
    assert task.resolve_inputs([1.0, 2.0]) == [1.0, 2.0]


def test_parallel_substitutes_defaults():
    task = make_task(model="parallel", defaults={"a": -1.0, "b": -2.0})
    assert task.resolve_inputs([BOTTOM, 5.0]) == [-1.0, 5.0]
    assert task.resolve_inputs([4.0, BOTTOM]) == [4.0, -2.0]


def test_parallel_fails_when_all_inputs_bottom():
    task = make_task(model="parallel", defaults={"a": -1.0, "b": -2.0})
    assert task.resolve_inputs([BOTTOM, BOTTOM]) is None


def test_independent_executes_even_on_all_bottom():
    task = make_task(model="independent", defaults={"a": -1.0, "b": -2.0})
    assert task.resolve_inputs([BOTTOM, BOTTOM]) == [-1.0, -2.0]


def test_resolve_inputs_wrong_arity_rejected():
    with pytest.raises(SpecificationError, match="input values"):
        make_task().resolve_inputs([1.0])


# -- execution ---------------------------------------------------------


def test_execute_returns_tuple_per_output():
    task = make_task()
    assert task.execute([1.0, 2.0]) == (3.0,)


def test_execute_multi_output():
    task = Task(
        "t",
        inputs=[("a", 1)],
        outputs=[("c", 1), ("d", 1)],
        function=lambda a: (a, -a),
    )
    assert task.execute([2.0]) == (2.0, -2.0)


def test_execute_returns_none_on_model_failure():
    task = make_task()
    assert task.execute([BOTTOM, 1.0]) is None


def test_execute_without_function_rejected():
    with pytest.raises(SpecificationError, match="no function"):
        make_task(function=None).execute([1.0, 2.0])


def test_execute_arity_mismatch_rejected():
    task = make_task(function=lambda a, b: (a, b))
    with pytest.raises(SpecificationError, match="output ports"):
        task.execute([1.0, 2.0])


# -- misc ---------------------------------------------------------------


def test_input_output_communicator_sets():
    task = make_task(outputs=[("c", 3), ("d", 1)])
    assert task.input_communicators() == {"a", "b"}
    assert task.output_communicators() == {"c", "d"}


def test_task_hash_by_name():
    assert hash(make_task()) == hash(make_task(function=lambda a, b: 0))


def test_task_equality_ignores_function():
    assert make_task() == make_task(function=lambda a, b: 0)
    assert make_task() != make_task(model="independent",
                                    defaults={"a": 0, "b": 0})
