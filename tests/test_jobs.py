"""Tests for job expansion."""

import pytest

from repro.errors import AnalysisError
from repro.sched import Job, expand_jobs
from repro.sched.jobs import jobs_on_host


def test_job_fields():
    job = Job(deadline=20, release=5, task="t", host="h", wcet=4, wctt=2)
    assert job.compute_deadline == 18
    assert job.window == 15
    assert job.fits_window()
    assert job.label() == "t@h"


def test_job_that_cannot_fit():
    job = Job(deadline=10, release=5, task="t", host="h", wcet=4, wctt=2)
    assert not job.fits_window()


def test_job_negative_release_rejected():
    with pytest.raises(AnalysisError):
        Job(deadline=10, release=-1, task="t", host="h", wcet=1, wctt=0)


def test_job_non_positive_wcet_rejected():
    with pytest.raises(AnalysisError):
        Job(deadline=10, release=0, task="t", host="h", wcet=0, wctt=0)


def test_job_sort_order_is_edf():
    late = Job(deadline=30, release=0, task="b", host="h", wcet=1, wctt=0)
    early = Job(deadline=10, release=5, task="a", host="h", wcet=1, wctt=0)
    assert sorted([late, early])[0] is early


def test_expand_jobs_pipeline(pipe_spec, pipe_arch, pipe_impl):
    jobs = expand_jobs(pipe_spec, pipe_arch, pipe_impl)
    # filter on a; control on a and b -> 3 jobs.
    assert len(jobs) == 3
    labels = {job.label() for job in jobs}
    assert labels == {"filter@a", "control@a", "control@b"}
    for job in jobs:
        if job.task == "filter":
            assert (job.release, job.deadline) == (0, 10)
        else:
            assert (job.release, job.deadline) == (10, 20)
        assert job.wcet == 2
        assert job.wctt == 1


def test_expand_jobs_returns_edf_order(pipe_spec, pipe_arch, pipe_impl):
    jobs = expand_jobs(pipe_spec, pipe_arch, pipe_impl)
    deadlines = [job.deadline for job in jobs]
    assert deadlines == sorted(deadlines)


def test_jobs_on_host(pipe_spec, pipe_arch, pipe_impl):
    jobs = expand_jobs(pipe_spec, pipe_arch, pipe_impl)
    assert [j.label() for j in jobs_on_host(jobs, "b")] == ["control@b"]
    assert len(jobs_on_host(jobs, "a")) == 2


def test_expand_jobs_three_tank(tank_spec, tank_arch, tank_scenario1):
    jobs = expand_jobs(tank_spec, tank_arch, tank_scenario1)
    # 4 singly-mapped tasks + 2 doubly-mapped controllers.
    assert len(jobs) == 8
    t1_jobs = [j for j in jobs if j.task == "t1"]
    assert {j.host for j in t1_jobs} == {"h1", "h2"}
    for job in t1_jobs:
        assert (job.release, job.deadline) == (200, 400)
