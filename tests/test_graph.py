"""Tests for specification graphs and memory-freedom."""

import networkx as nx
import pytest

from repro.experiments import cyclic_specification
from repro.model import Communicator, Specification, Task
from repro.model.graph import (
    SpecificationGraph,
    communicator_dependency_graph,
    find_communicator_cycles,
    is_memory_free,
    srg_evaluation_order,
    task_dependency_graph,
    unsafe_cycles,
)


def two_stage_spec():
    comms = [
        Communicator("a", period=10),
        Communicator("b", period=10),
        Communicator("c", period=10),
    ]
    tasks = [
        Task("t1", [("a", 0)], [("b", 1)]),
        Task("t2", [("b", 1)], [("c", 2)]),
    ]
    return Specification(comms, tasks)


def feedback_spec(model="series"):
    """Two tasks forming a two-communicator cycle b -> c -> b."""
    comms = [
        Communicator("b", period=10),
        Communicator("c", period=10),
    ]
    tasks = [
        Task("t1", [("b", 0)], [("c", 1)], model=model,
             defaults={"b": 0.0}),
        Task("t2", [("c", 1)], [("b", 2)], model="series"),
    ]
    return Specification(comms, tasks)


# -- specification graph G_S -------------------------------------------


def test_graph_has_instance_and_task_vertices():
    graph = SpecificationGraph(two_stage_spec())
    assert ("a", 0) in graph.graph
    assert ("a", 2) in graph.graph  # pi_S / pi_a = 20 / 10
    assert "t1" in graph.graph
    assert graph.task_vertices() == ["t1", "t2"]


def test_graph_read_and_write_edges():
    graph = SpecificationGraph(two_stage_spec()).graph
    assert graph.has_edge(("a", 0), "t1")
    assert graph.has_edge("t1", ("b", 1))
    assert graph.has_edge(("b", 1), "t2")
    assert graph.has_edge("t2", ("c", 2))


def test_persistence_edges_skip_written_instances():
    graph = SpecificationGraph(two_stage_spec()).graph
    # b is written at instance 1: no persistence edge (b,0)->(b,1).
    assert not graph.has_edge(("b", 0), ("b", 1))
    # But (b,1)->(b,2) persists (nothing writes instance 2).
    assert graph.has_edge(("b", 1), ("b", 2))
    # a is never written by a task: full persistence chain.
    assert graph.has_edge(("a", 0), ("a", 1))
    assert graph.has_edge(("a", 1), ("a", 2))


def test_communicator_vertices_sorted():
    graph = SpecificationGraph(two_stage_spec())
    assert graph.communicator_vertices("a") == [
        ("a", 0), ("a", 1), ("a", 2),
    ]


# -- memory-freedom -----------------------------------------------------


def test_acyclic_spec_is_memory_free():
    assert is_memory_free(two_stage_spec())


def test_self_cycle_detected():
    assert not is_memory_free(cyclic_specification())


def test_two_task_cycle_detected():
    assert not is_memory_free(feedback_spec())


def test_cycles_reported_by_graph():
    graph = SpecificationGraph(cyclic_specification())
    assert graph.has_communicator_cycle()
    assert graph.communicator_cycles() == ["acc"]


def test_memory_free_graph_reports_no_cycles():
    graph = SpecificationGraph(two_stage_spec())
    assert not graph.has_communicator_cycle()
    assert graph.communicator_cycles() == []


def test_find_communicator_cycles():
    cycles = find_communicator_cycles(feedback_spec())
    assert cycles == [["b", "c"]]
    assert find_communicator_cycles(two_stage_spec()) == []


# -- cycle safety -------------------------------------------------------


def test_series_cycle_is_unsafe():
    assert unsafe_cycles(cyclic_specification("series")) == [["acc"]]
    assert unsafe_cycles(feedback_spec("series")) == [["b", "c"]]


def test_parallel_cycle_is_unsafe():
    assert unsafe_cycles(cyclic_specification("parallel")) == [["acc"]]


def test_independent_breaker_makes_cycle_safe():
    assert unsafe_cycles(cyclic_specification("independent")) == []
    assert unsafe_cycles(feedback_spec("independent")) == []


# -- SRG evaluation order ----------------------------------------------


def test_srg_order_topological():
    order = srg_evaluation_order(two_stage_spec())
    assert order.index("a") < order.index("b") < order.index("c")


def test_srg_order_fails_on_unsafe_cycle():
    with pytest.raises(nx.NetworkXUnfeasible):
        srg_evaluation_order(cyclic_specification("series"))


def test_srg_order_exists_for_safe_cycle():
    order = srg_evaluation_order(cyclic_specification("independent"))
    assert "acc" in order


# -- dependency graphs --------------------------------------------------


def test_communicator_dependency_graph_edges():
    graph = communicator_dependency_graph(two_stage_spec())
    assert graph.has_edge("a", "b")
    assert graph["a"]["b"]["tasks"] == ["t1"]
    assert graph.has_edge("b", "c")
    assert not graph.has_edge("a", "c")


def test_task_dependency_graph():
    graph = task_dependency_graph(two_stage_spec())
    assert graph.has_edge("t1", "t2")
    assert not graph.has_edge("t2", "t1")


def test_task_dependency_graph_no_self_loop():
    graph = task_dependency_graph(cyclic_specification())
    assert not graph.has_edge("integrate", "integrate")


def test_three_tank_is_memory_free(tank_spec):
    assert is_memory_free(tank_spec)
    order = srg_evaluation_order(tank_spec)
    assert order.index("s1") < order.index("l1") < order.index("u1")
    assert order.index("u1") < order.index("r1")


# -- cycle witnesses ----------------------------------------------------


def test_cycle_witness_dependency_order():
    from repro.model.graph import cycle_witnesses

    witnesses = cycle_witnesses(feedback_spec())
    assert len(witnesses) == 1
    witness = witnesses[0]
    # Dependency order with the smallest name first: b flows into c
    # through t1, and t2 closes the cycle back into b.
    assert witness.communicators == ("b", "c")
    assert witness.edge_tasks == (("t1",), ("t2",))
    assert witness.closing_tasks() == ("t2",)
    assert witness.describe() == "b -[t1]-> c -[t2]-> b"
    assert not witness.safe


def test_cycle_witness_safe_flag():
    from repro.model.graph import cycle_witnesses

    witnesses = cycle_witnesses(feedback_spec(model="independent"))
    assert witnesses[0].safe


def test_cycles_reported_in_dependency_order():
    # A three-communicator ring c -> a -> b -> c: sorted() would yield
    # [a, b, c], which is NOT a dependency path here.
    comms = [
        Communicator("a", period=10),
        Communicator("b", period=10),
        Communicator("c", period=10),
    ]
    tasks = [
        Task("t_ca", [("c", 0)], [("a", 1)]),
        Task("t_ab", [("a", 1)], [("b", 2)]),
        Task("t_bc", [("b", 2)], [("c", 3)]),
    ]
    spec = Specification(comms, tasks)
    cycles = find_communicator_cycles(spec)
    assert cycles == [["a", "b", "c"]]
    graph = communicator_dependency_graph(spec)
    ring = cycles[0]
    for src, dst in zip(ring, ring[1:] + ring[:1]):
        assert graph.has_edge(src, dst)
