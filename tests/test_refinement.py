"""Tests for the refinement relation and validity transfer (Prop. 2)."""

import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.errors import RefinementError
from repro.experiments import (
    random_architecture,
    random_implementation,
    random_specification,
)
from repro.mapping import Implementation
from repro.model import Communicator, FailureModel, Specification, Task
from repro.refinement import check_refinement, refines
from repro.validity import check_validity


def coarse_system():
    """A small abstract system that is valid on its architecture."""
    comms = [
        Communicator("a", period=10, lrc=0.9),
        Communicator("b", period=10, lrc=0.9),
        Communicator("out", period=10, lrc=0.8),
    ]
    task = Task(
        "T",
        inputs=[("a", 0), ("b", 0)],
        outputs=[("out", 2)],
        model="series",
        function=lambda a, b: a + b,
    )
    spec = Specification(comms, [task])
    arch = Architecture(
        hosts=[Host("h1", 0.95), Host("h2", 0.9)],
        sensors=[Sensor("s1", 0.95), Sensor("s2", 0.95)],
        metrics=ExecutionMetrics(default_wcet=5, default_wctt=2),
    )
    impl = Implementation(
        {"T": {"h1", "h2"}}, {"a": {"s1"}, "b": {"s2"}}
    )
    return spec, arch, impl


def fine_system(
    wcet=3,
    wctt=1,
    read_instance=0,
    write_instance=2,
    out_lrc=0.8,
    model="series",
    inputs=(("a", 0),),
    hosts=frozenset({"h1", "h2"}),
    host_names=("h1", "h2"),
):
    """A refining system derived from :func:`coarse_system`.

    Defaults satisfy every refinement constraint: fewer series inputs,
    same window, cheaper metrics, equal LRC budget, same mapping.
    """
    comms = [
        Communicator("a", period=10, lrc=0.9),
        Communicator("b", period=10, lrc=0.9),
        Communicator("out", period=10, lrc=out_lrc),
    ]
    defaults = {c: 0.0 for c, _ in inputs}
    task = Task(
        "T_impl",
        inputs=[(c, read_instance if i == 0 else read_instance)
                for i, (c, _) in enumerate(inputs)],
        outputs=[("out", write_instance)],
        model=model,
        defaults=defaults if model != "series" else {},
        function=lambda *args: sum(args),
    )
    spec = Specification(comms, [task])
    arch = Architecture(
        hosts=[Host(h, 0.95 if h == "h1" else 0.9) for h in host_names],
        sensors=[Sensor("s1", 0.95), Sensor("s2", 0.95)],
        metrics=ExecutionMetrics(default_wcet=wcet, default_wctt=wctt),
    )
    impl = Implementation(
        {"T_impl": hosts}, {"a": {"s1"}, "b": {"s2"}}
    )
    return spec, arch, impl


KAPPA = {"T_impl": "T"}


def test_valid_refinement_passes():
    report = check_refinement(fine_system(), coarse_system(), KAPPA)
    assert report.refines
    assert report.summary() == "refinement check: all constraints hold"


def test_refines_helper():
    assert refines(fine_system(), coarse_system(), KAPPA)


def test_identity_refinement_is_reflexive():
    coarse = coarse_system()
    assert refines(coarse, coarse, {"T": "T"})


# -- kappa validation -----------------------------------------------------


def test_kappa_must_be_total():
    with pytest.raises(RefinementError, match="not total"):
        check_refinement(fine_system(), coarse_system(), {})


def test_kappa_rejects_unknown_fine_tasks():
    with pytest.raises(RefinementError, match="unknown refining"):
        check_refinement(
            fine_system(), coarse_system(),
            {"T_impl": "T", "ghost": "T"},
        )


def test_kappa_rejects_unknown_targets():
    with pytest.raises(RefinementError, match="unknown abstract"):
        check_refinement(fine_system(), coarse_system(), {"T_impl": "Zz"})


def test_kappa_must_be_one_to_one():
    fine_spec, fine_arch, fine_impl = fine_system()
    doubled = Specification(
        fine_spec.communicators.values(),
        [
            fine_spec.tasks["T_impl"],
            Task(
                "T_other",
                inputs=[("b", 0)],
                outputs=[("a", 2)],
                function=lambda b: b,
            ),
        ],
    )
    impl = Implementation(
        {"T_impl": {"h1", "h2"}, "T_other": {"h1", "h2"}},
        {"a": {"s1"}, "b": {"s2"}},
    )
    with pytest.raises(RefinementError, match="one-to-one"):
        check_refinement(
            (doubled, fine_arch, impl),
            coarse_system(),
            {"T_impl": "T", "T_other": "T"},
        )


# -- each constraint individually -------------------------------------------


def violated_constraints(fine):
    report = check_refinement(fine, coarse_system(), KAPPA)
    return set(report.by_constraint())


def test_constraint_a_host_sets():
    fine = fine_system(host_names=("h1", "h2", "h3"))
    assert "a" in violated_constraints(fine)


def test_constraint_b1_mapping():
    fine = fine_system(hosts=frozenset({"h1"}))
    assert "b1" in violated_constraints(fine)


def test_constraint_b2_wcet():
    fine = fine_system(wcet=6)
    assert "b2" in violated_constraints(fine)


def test_constraint_b2_wctt():
    fine = fine_system(wctt=3)
    assert "b2" in violated_constraints(fine)


def test_constraint_b3_read_later():
    fine = fine_system(read_instance=1)
    assert "b3" in violated_constraints(fine)


def test_constraint_b3_write_earlier():
    fine = fine_system(write_instance=1)
    report = check_refinement(fine, coarse_system(), KAPPA)
    assert "b3" in set(report.by_constraint())


def test_constraint_b4_lrc_budget():
    fine = fine_system(out_lrc=0.95)  # above coarse budget 0.8
    assert "b4" in violated_constraints(fine)


def test_constraint_b5_model():
    fine = fine_system(model="independent")
    assert "b5" in violated_constraints(fine)


def test_constraint_b6_series_superset():
    # Coarse reads {a, b}; a series refining task may read a subset
    # but not a superset.  Give the fine task an extra communicator.
    fine_spec, fine_arch, fine_impl = fine_system()
    comms = list(fine_spec.communicators.values()) + [
        Communicator("extra", period=10, lrc=0.9)
    ]
    task = Task(
        "T_impl",
        inputs=[("a", 0), ("b", 0), ("extra", 0)],
        outputs=[("out", 2)],
        model="series",
        function=lambda *a: 0.0,
    )
    spec = Specification(comms, [task])
    impl = fine_impl.with_sensor_binding("extra", {"s1"})
    report = check_refinement(
        (spec, fine_arch, impl), coarse_system(), KAPPA
    )
    assert "b6" in set(report.by_constraint())


def test_constraint_b6_parallel_subset():
    # A parallel refining task must keep at least the coarse inputs.
    coarse_spec, coarse_arch, coarse_impl = coarse_system()
    par_task = Task(
        "T",
        inputs=[("a", 0), ("b", 0)],
        outputs=[("out", 2)],
        model="parallel",
        defaults={"a": 0.0, "b": 0.0},
        function=lambda a, b: a + b,
    )
    coarse = (
        coarse_spec.with_tasks([par_task]),
        coarse_arch,
        coarse_impl,
    )
    fine = fine_system(model="parallel", inputs=(("a", 0),))
    report = check_refinement(fine, coarse, KAPPA)
    constraints = set(report.by_constraint())
    assert "b6" in constraints


def test_violation_string_rendering():
    fine = fine_system(wcet=6)
    report = check_refinement(fine, coarse_system(), KAPPA)
    assert not report.refines
    assert "b2" in report.summary()
    assert any("WCET" in str(v) for v in report.violations)


# -- Proposition 2: validity transfer ---------------------------------------


def test_validity_transfers_on_concrete_pair():
    coarse = coarse_system()
    fine = fine_system()
    assert check_validity(*coarse).valid
    assert refines(fine, coarse, KAPPA)
    assert check_validity(*fine).valid


@pytest.mark.parametrize("seed", range(10))
def test_validity_transfers_on_random_pairs(seed):
    """Lemma 1 + Lemma 2: shrink costs and LRCs, validity transfers."""
    spec = random_specification(seed, layers=2, tasks_per_layer=2,
                                lrc_range=(0.3, 0.6))
    arch = random_architecture(seed, hosts=3,
                               reliability_range=(0.95, 0.999))
    impl = random_implementation(spec, arch, seed, max_replicas=2)
    coarse_report = check_validity(spec, arch, impl)
    if not coarse_report.valid:
        pytest.skip("random coarse system not valid; nothing to transfer")

    # Refine: rename every task, halve the LRCs of its outputs, shrink
    # metrics, keep ports/models/mapping — all six constraints hold.
    kappa = {f"{name}_r": name for name in spec.tasks}
    renamed_tasks = []
    lrc_changes = {}
    for task in spec.tasks.values():
        renamed_tasks.append(
            Task(
                f"{task.name}_r",
                inputs=task.inputs,
                outputs=task.outputs,
                model=task.model,
                defaults=task.defaults,
                function=task.function,
            )
        )
        for name in task.output_communicators():
            lrc_changes[name] = spec.communicators[name].lrc / 2
    fine_spec = spec.with_tasks(renamed_tasks).replace_lrcs(lrc_changes)
    fine_arch = Architecture(
        hosts=arch.hosts.values(),
        sensors=arch.sensors.values(),
        metrics=ExecutionMetrics(
            default_wcet=max(1, arch.metrics.default_wcet - 1),
            default_wctt=max(1, arch.metrics.default_wctt - 1)
            if arch.metrics.default_wctt > 1
            else arch.metrics.default_wctt,
        ),
        network=arch.network,
    )
    fine_impl = Implementation(
        {
            f"{name}_r": impl.hosts_of(name)
            for name in spec.tasks
        },
        impl.sensor_binding,
    )
    fine = (fine_spec, fine_arch, fine_impl)
    report = check_refinement(fine, (spec, arch, impl), kappa)
    assert report.refines, report.summary()
    assert check_validity(*fine).valid


def test_transitivity_of_refinement():
    coarse = coarse_system()
    middle = fine_system(wcet=4, out_lrc=0.75)
    kappa_mid = {"T_impl": "T"}
    assert refines(middle, coarse, kappa_mid)

    # A further refinement of `middle`.
    spec_m, arch_m, impl_m = middle
    innermost = Specification(
        spec_m.communicators.values(),
        [
            Task(
                "T_core",
                inputs=[("a", 0)],
                outputs=[("out", 2)],
                model="series",
                function=lambda a: a,
            )
        ],
    )
    arch_f = Architecture(
        hosts=arch_m.hosts.values(),
        sensors=arch_m.sensors.values(),
        metrics=ExecutionMetrics(default_wcet=2, default_wctt=1),
    )
    impl_f = Implementation(
        {"T_core": {"h1", "h2"}}, {"a": {"s1"}, "b": {"s2"}}
    )
    fine = (innermost, arch_f, impl_f)
    assert refines(fine, middle, {"T_core": "T_impl"})
    # Transitivity: fine also refines coarse under the composition.
    assert refines(fine, coarse, {"T_core": "T"})
