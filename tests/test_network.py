"""Tests for probabilistic network reliability (factoring theorem)."""

import networkx as nx
import pytest

from repro.errors import AnalysisError
from repro.reliability.network import (
    all_terminal_reliability,
    broadcast_network_from_topology,
    two_terminal_reliability,
)


def graph_from_edges(edges):
    graph = nx.Graph()
    for u, v, r in edges:
        graph.add_edge(u, v, reliability=r)
    return graph


# -- two-terminal ----------------------------------------------------------------


def test_single_edge():
    graph = graph_from_edges([("s", "t", 0.9)])
    assert two_terminal_reliability(graph, "s", "t") == pytest.approx(0.9)


def test_series_chain():
    graph = graph_from_edges([("s", "m", 0.9), ("m", "t", 0.8)])
    assert two_terminal_reliability(graph, "s", "t") == pytest.approx(
        0.72
    )


def test_parallel_edges_via_two_paths():
    graph = graph_from_edges([
        ("s", "a", 0.9), ("a", "t", 0.9),
        ("s", "b", 0.8), ("b", "t", 0.8),
    ])
    path1, path2 = 0.81, 0.64
    expected = 1 - (1 - path1) * (1 - path2)
    assert two_terminal_reliability(graph, "s", "t") == pytest.approx(
        expected
    )


def test_bridge_network():
    """The Wheatstone bridge with equal edge reliability p.

    R = 2p^2 + 2p^3 - 5p^4 + 2p^5 (classic closed form).
    """
    p = 0.9
    graph = graph_from_edges([
        ("s", "a", p), ("s", "b", p),
        ("a", "t", p), ("b", "t", p),
        ("a", "b", p),  # the bridge
    ])
    expected = 2 * p**2 + 2 * p**3 - 5 * p**4 + 2 * p**5
    assert two_terminal_reliability(graph, "s", "t") == pytest.approx(
        expected
    )


def test_disconnected_terminals():
    graph = graph_from_edges([("s", "a", 0.9)])
    graph.add_node("t")
    assert two_terminal_reliability(graph, "s", "t") == 0.0


def test_source_equals_target():
    graph = graph_from_edges([("s", "t", 0.5)])
    assert two_terminal_reliability(graph, "s", "s") == 1.0


def test_perfect_and_dead_edges():
    graph = graph_from_edges([("s", "m", 1.0), ("m", "t", 0.0)])
    assert two_terminal_reliability(graph, "s", "t") == 0.0
    graph = graph_from_edges([("s", "m", 1.0), ("m", "t", 1.0)])
    assert two_terminal_reliability(graph, "s", "t") == 1.0


def test_missing_attribute_rejected():
    graph = nx.Graph()
    graph.add_edge("s", "t")
    with pytest.raises(AnalysisError, match="reliability"):
        two_terminal_reliability(graph, "s", "t")


def test_bad_attribute_rejected():
    graph = graph_from_edges([("s", "t", 1.5)])
    with pytest.raises(AnalysisError):
        two_terminal_reliability(graph, "s", "t")


def test_unknown_terminal_rejected():
    graph = graph_from_edges([("s", "t", 0.9)])
    with pytest.raises(AnalysisError, match="graph nodes"):
        two_terminal_reliability(graph, "s", "zz")


def test_monte_carlo_agreement():
    import numpy as np

    edges = [
        ("s", "a", 0.7), ("a", "t", 0.8), ("s", "b", 0.6),
        ("b", "t", 0.9), ("a", "b", 0.5),
    ]
    graph = graph_from_edges(edges)
    exact = two_terminal_reliability(graph, "s", "t")
    rng = np.random.default_rng(0)
    trials = 40000
    hits = 0
    for _ in range(trials):
        sample = nx.Graph()
        sample.add_nodes_from(graph.nodes)
        for u, v, r in edges:
            if rng.random() < r:
                sample.add_edge(u, v)
        hits += nx.has_path(sample, "s", "t")
    assert hits / trials == pytest.approx(exact, abs=0.01)


# -- all-terminal -----------------------------------------------------------------


def test_all_terminal_single_node():
    graph = nx.Graph()
    graph.add_node("a")
    assert all_terminal_reliability(graph) == 1.0


def test_all_terminal_single_edge():
    graph = graph_from_edges([("a", "b", 0.9)])
    assert all_terminal_reliability(graph) == pytest.approx(0.9)


def test_all_terminal_triangle():
    # Connected iff >= 2 of the 3 edges survive: 3p^2(1-p) + p^3.
    p = 0.9
    graph = graph_from_edges([
        ("a", "b", p), ("b", "c", p), ("a", "c", p),
    ])
    expected = 3 * p**2 * (1 - p) + p**3
    assert all_terminal_reliability(graph) == pytest.approx(expected)


def test_all_terminal_chain():
    graph = graph_from_edges([("a", "b", 0.9), ("b", "c", 0.8)])
    assert all_terminal_reliability(graph) == pytest.approx(0.72)


def test_all_terminal_below_two_terminal():
    # Keeping everyone connected is harder than connecting one pair.
    p = 0.8
    graph = graph_from_edges([
        ("a", "b", p), ("b", "c", p), ("a", "c", p), ("c", "d", p),
    ])
    assert all_terminal_reliability(graph) <= two_terminal_reliability(
        graph, "a", "b"
    )


def test_all_terminal_empty_rejected():
    with pytest.raises(AnalysisError):
        all_terminal_reliability(nx.Graph())


# -- broadcast network derivation ----------------------------------------------------


def test_broadcast_network_from_topology():
    p = 0.999
    graph = graph_from_edges([
        ("h1", "h2", p), ("h2", "h3", p), ("h1", "h3", p),
    ])
    network = broadcast_network_from_topology(graph, bandwidth=2)
    expected = 3 * p**2 * (1 - p) + p**3
    assert network.reliability == pytest.approx(expected)
    assert network.bandwidth == 2


def test_derived_network_feeds_srg_analysis():
    from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
    from repro.mapping import Implementation
    from repro.model import Communicator, Specification, Task
    from repro.reliability import communicator_srgs, task_reliability

    graph = graph_from_edges([
        ("h1", "h2", 0.99), ("h2", "h3", 0.99), ("h1", "h3", 0.99),
    ])
    network = broadcast_network_from_topology(graph)
    arch = Architecture(
        hosts=[Host("h1", 0.99), Host("h2", 0.99)],
        sensors=[Sensor("s", 0.99)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
        network=network,
    )
    spec = Specification(
        [
            Communicator("a", period=10, lrc=0.5),
            Communicator("b", period=10, lrc=0.5),
        ],
        [Task("t", [("a", 0)], [("b", 1)])],
    )
    impl = Implementation({"t": {"h1", "h2"}}, {"a": {"s"}})
    brel = network.reliability
    expected = 1 - (1 - 0.99 * brel) ** 2
    assert task_reliability("t", impl, arch) == pytest.approx(expected)
    srgs = communicator_srgs(spec, impl, arch)
    assert srgs["b"] == pytest.approx(0.99 * expected)
