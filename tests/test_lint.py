"""Tests for the static-analysis subsystem (``repro.lint``).

One seeded-violation HTL program per pass, asserting the diagnostic
code *and* the source line it anchors to; plus CLI coverage for the
``repro lint`` subcommand and Hypothesis property tests tying the race
detector to the race-freedom invariant of generated specifications.
"""

import json

import pytest
from hypothesis import given, settings

from repro.cli import main
from repro.errors import HTLLintError
from repro.experiments import (
    BRAKE_BY_WIRE_HTL,
    THREE_TANK_HTL,
    baseline_implementation,
    three_tank_architecture,
)
from repro.htl.ast import (
    CommunicatorDecl,
    InvokeStmt,
    ModeDecl,
    ModuleDecl,
    ProgramDecl,
    TaskDecl,
)
from repro.htl.compiler import compile_program
from repro.lint import (
    CODES,
    Severity,
    lint_program,
    lint_specification,
    refinement_diagnostics,
)
from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.mapping import Implementation
from repro.model import Specification
from repro.refinement.relation import (
    RefinementReport,
    RefinementViolation,
)
from repro.validity import check_validity

from strategies import specifications

RACY_AND_CYCLIC = """\
program racy {
  communicator a : float period 10 init 0.0 lrc 0.5 ;
  communicator b : float period 10 init 0.0 lrc 0.9 ;
  communicator c : float period 10 init 0.0 lrc 0.9 ;
  module M {
    task t1 input (a[0]) output (b[1]) ;
    task t2 input (b[0]) output (c[1]) ;
    task t3 input (c[0]) output (b[1]) ;
    mode m period 10 { invoke t1 ; invoke t2 ; invoke t3 ; }
  }
}
"""


def codes_of(report):
    return report.codes()


def diagnostic(report, code):
    matches = [d for d in report.diagnostics if d.code == code]
    assert matches, f"expected {code} in {report.codes()}"
    return matches[0]


# ----------------------------------------------------------------------
# LRT000: compile errors become diagnostics.
# ----------------------------------------------------------------------


def test_syntax_error_reported_as_lrt000():
    report = lint_program("program {", artifact="bad.htl")
    d = diagnostic(report, "LRT000")
    assert d.severity is Severity.ERROR
    assert d.line == 1
    assert report.exit_code == 1


def test_semantic_error_reported_as_lrt000():
    source = """\
program p {
  communicator c : float period 10 init 0.0 ;
  module M {
    task t input (ghost[0]) output (c[1]) ;
    mode m period 10 { invoke t ; }
  }
}
"""
    report = lint_program(source)
    assert "LRT000" in codes_of(report)
    assert "ghost" in diagnostic(report, "LRT000").message


# ----------------------------------------------------------------------
# LRT001/LRT002: write-write races.
# ----------------------------------------------------------------------


def test_race_and_cycle_detected_with_lines():
    report = lint_program(RACY_AND_CYCLIC, artifact="racy.htl")
    race = diagnostic(report, "LRT001")
    # Anchored at the later-declared conflicting writer (t3, line 8).
    assert race.line == 8
    assert "t1" in race.message and "t3" in race.message
    cycle = diagnostic(report, "LRT010")
    # Anchored at the declaration of the cycle's first communicator.
    assert cycle.line == 3
    assert "t3" in cycle.message  # the closing task is named
    assert report.exit_code == 1


def test_multi_writer_different_instances_is_lrt002():
    source = """\
program p {
  communicator a : float period 10 init 0.0 lrc 0.5 ;
  communicator b : float period 10 init 0.0 lrc 0.5 ;
  module M {
    task t1 input (a[0]) output (b[1]) ;
    task t2 input (a[0]) output (b[2]) ;
    mode m period 20 { invoke t1 ; invoke t2 ; }
  }
}
"""
    report = lint_program(source)
    d = diagnostic(report, "LRT002")
    assert d.line == 6  # the later writer, t2
    assert "LRT001" not in codes_of(report)


def test_race_only_in_reachable_selections():
    # t1 and t2 both write b, but never in the same selection.
    source = """\
program p {
  communicator a : float period 10 init 0.0 lrc 0.5 ;
  communicator b : float period 10 init 0.0 lrc 0.5 ;
  module M start one {
    task t1 input (a[0]) output (b[1]) ;
    task t2 input (a[0]) output (b[1]) ;
    mode one period 10 { invoke t1 ; switch to two when "x" ; }
    mode two period 10 { invoke t2 ; switch to one when "y" ; }
  }
}
"""
    report = lint_program(source)
    assert "LRT001" not in codes_of(report)
    assert report.exit_code == 0


def test_compile_program_rejects_races():
    with pytest.raises(HTLLintError) as excinfo:
        compile_program(RACY_AND_CYCLIC)
    assert excinfo.value.diagnostics
    assert excinfo.value.diagnostics[0].code == "LRT001"
    # The linter itself must still be able to compile it.
    compiled = compile_program(RACY_AND_CYCLIC, lint=False)
    assert compiled.program.name == "racy"


# ----------------------------------------------------------------------
# LRT010/LRT011: communicator cycles.
# ----------------------------------------------------------------------


def test_safe_cycle_is_a_warning():
    source = """\
program p {
  communicator a : float period 10 init 0.0 lrc 0.5 ;
  communicator b : float period 10 init 0.0 lrc 0.5 ;
  module M {
    task t1 input (a[0]) output (b[1]) ;
    task t2 input (b[0]) output (a[1])
      model independent default (b = 0.0) ;
    mode m period 10 { invoke t1 ; invoke t2 ; }
  }
}
"""
    report = lint_program(source)
    d = diagnostic(report, "LRT011")
    assert d.severity is Severity.WARNING
    assert d.line == 2  # communicator a, the cycle's smallest name
    assert "LRT010" not in codes_of(report)
    assert report.exit_code == 0


def test_lint_specification_reports_cycles():
    from repro.experiments.cycle_example import cyclic_specification

    report = lint_specification(cyclic_specification(model="series"))
    assert "LRT010" in codes_of(report)
    safe = lint_specification(
        cyclic_specification(model="independent")
    )
    assert "LRT010" not in codes_of(safe)
    assert "LRT011" in codes_of(safe)


# ----------------------------------------------------------------------
# LRT020: read-of-never-written communicator.
# ----------------------------------------------------------------------


def test_unbound_input_communicator_is_lrt020():
    source = """\
program p {
  communicator x : float period 100 init 0.0 lrc 0.5 ;
  communicator y : float period 100 init 0.0 lrc 0.5 ;
  module M {
    task t input (x[0]) output (y[1]) ;
    mode m period 100 { invoke t ; }
  }
}
"""
    unbound = Implementation({"t": {"h1"}})
    report = lint_program(source, implementation=unbound)
    d = diagnostic(report, "LRT020")
    assert d.line == 2
    bound = Implementation({"t": {"h1"}}, {"x": {"s1"}})
    assert "LRT020" not in codes_of(
        lint_program(source, implementation=bound)
    )


# ----------------------------------------------------------------------
# LRT021: dead communicators.
# ----------------------------------------------------------------------


def test_dead_communicator_without_lrc_is_lrt021():
    source = """\
program p {
  communicator s : float period 100 init 0.0 lrc 0.5 ;
  communicator out : float period 100 init 0.0 ;
  module M {
    task t input (s[0]) output (out[1]) ;
    mode m period 100 { invoke t ; }
  }
}
"""
    report = lint_program(source)
    d = diagnostic(report, "LRT021")
    assert d.severity is Severity.WARNING
    assert d.line == 3
    assert report.exit_code == 0
    # An explicit lrc documents the constraint: no warning.
    with_lrc = source.replace("init 0.0 ;\n  module", "init 0.0 lrc 0.9 ;\n  module")
    assert "LRT021" not in codes_of(lint_program(with_lrc))


# ----------------------------------------------------------------------
# LRT030: infeasible LRCs.
# ----------------------------------------------------------------------


def _weak_architecture():
    return Architecture(
        hosts=[Host("h1", 0.9)],
        sensors=[Sensor("s1", 0.99)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )


def test_infeasible_lrc_is_lrt030():
    source = """\
program p {
  communicator s : float period 100 init 0.0 lrc 0.5 ;
  communicator c : float period 100 init 0.0 lrc 0.999 ;
  module M {
    task t input (s[0]) output (c[1]) ;
    mode m period 100 { invoke t ; }
  }
}
"""
    report = lint_program(source, architecture=_weak_architecture())
    d = diagnostic(report, "LRT030")
    assert d.line == 3
    assert "0.999" in d.message
    # A stronger host makes the same constraint feasible.
    strong = Architecture(
        hosts=[Host("h1", 0.99999), Host("h2", 0.99999)],
        sensors=[Sensor("s1", 0.99999)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    assert "LRT030" not in codes_of(
        lint_program(source, architecture=strong)
    )


# ----------------------------------------------------------------------
# LRT040/LRT041/LRT042: access-instant bounds.
# ----------------------------------------------------------------------


def test_period_divisibility_is_lrt040():
    source = """\
program p {
  communicator c : float period 30 init 0.0 ;
  communicator d : float period 20 init 0.0 lrc 0.5 ;
  module M {
    task t input (c[0]) output (d[1]) ;
    mode m period 40 { invoke t ; }
  }
}
"""
    report = lint_program(source)
    d = diagnostic(report, "LRT040")
    assert d.line == 6  # the invoke statement
    assert "'c'" in d.message


def test_write_past_mode_period_is_lrt041():
    source = """\
program p {
  communicator c : float period 10 init 0.0 ;
  communicator d : float period 10 init 0.0 lrc 0.5 ;
  module M {
    task t input (c[0]) output (d[3]) ;
    mode m period 20 { invoke t ; }
  }
}
"""
    report = lint_program(source)
    d = diagnostic(report, "LRT041")
    assert d.line == 6
    assert "30" in d.message


def test_empty_let_window_is_lrt042():
    source = """\
program p {
  communicator c : float period 10 init 0.0 ;
  communicator d : float period 10 init 0.0 lrc 0.5 ;
  module M {
    task t input (c[1]) output (d[1]) ;
    mode m period 10 { invoke t ; }
  }
}
"""
    report = lint_program(source)
    d = diagnostic(report, "LRT042")
    assert d.line == 5  # the task declaration
    assert report.exit_code == 1


# ----------------------------------------------------------------------
# LRT045: switch preservation.
# ----------------------------------------------------------------------


def test_switch_changing_verdicts_is_lrt045():
    source = """\
program p {
  communicator s : float period 100 init 0.0 lrc 0.9 ;
  communicator c : float period 100 init 0.0 lrc 0.99 ;
  module M start fast {
    task strong input (s[0]) output (c[1]) ;
    task weak input (s[0]) output (c[1]) ;
    mode fast period 100 { invoke strong ; switch to slow when "x" ; }
    mode slow period 100 { invoke weak ; switch to fast when "y" ; }
  }
}
"""
    arch = Architecture(
        hosts=[Host("h1", 0.999), Host("h2", 0.5)],
        sensors=[Sensor("s1", 0.9999)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    impl = Implementation(
        {"strong": {"h1"}, "weak": {"h2"}}, {"s": {"s1"}}
    )
    report = lint_program(
        source, architecture=arch, implementation=impl
    )
    d = diagnostic(report, "LRT045")
    assert d.severity is Severity.WARNING
    assert d.line == 7  # the first switch statement
    assert "'c'" in d.message or "c" in d.message
    # Equal mappings on both modes: verdicts agree, no warning.
    same = Implementation(
        {"strong": {"h1"}, "weak": {"h1"}}, {"s": {"s1"}}
    )
    assert "LRT045" not in codes_of(
        lint_program(source, architecture=arch, implementation=same)
    )


# ----------------------------------------------------------------------
# LRT049-LRT055: refinement constraints.
# ----------------------------------------------------------------------


def test_refinement_violations_map_to_codes():
    constraints = ["a", "b1", "b2", "b3", "b4", "b5", "b6"]
    report = RefinementReport(
        violations=tuple(
            RefinementViolation(c, "t", f"violates {c}")
            for c in constraints
        )
    )
    lint = refinement_diagnostics(report)
    assert codes_of(lint) == [
        "LRT049", "LRT050", "LRT051", "LRT052",
        "LRT053", "LRT054", "LRT055",
    ]
    assert lint.exit_code == 1
    assert all(d.severity is Severity.ERROR for d in lint.diagnostics)


def test_clean_refinement_has_no_diagnostics():
    lint = refinement_diagnostics(RefinementReport(violations=()))
    assert len(lint) == 0
    assert lint.exit_code == 0


# ----------------------------------------------------------------------
# LRT099: selection-space truncation.
# ----------------------------------------------------------------------


def test_truncated_selection_space_is_lrt099():
    source = """\
program p {
  communicator a : float period 10 init 0.0 lrc 0.5 ;
  communicator b : float period 10 init 0.0 lrc 0.5 ;
  module M start m1 {
    task t input (a[0]) output (b[1]) ;
    mode m1 period 10 { invoke t ; switch to m2 when "x" ; }
    mode m2 period 10 { invoke t ; switch to m3 when "x" ; }
    mode m3 period 10 { invoke t ; switch to m4 when "x" ; }
    mode m4 period 10 { invoke t ; switch to m1 when "x" ; }
  }
}
"""
    report = lint_program(source, max_selections=2)
    d = diagnostic(report, "LRT099")
    assert d.severity is Severity.INFO
    assert report.exit_code == 0
    assert "LRT099" not in codes_of(lint_program(source))


# ----------------------------------------------------------------------
# Shipped designs stay clean; report plumbing.
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "source", [THREE_TANK_HTL, BRAKE_BY_WIRE_HTL],
    ids=["three_tank", "brake_by_wire"],
)
def test_shipped_programs_lint_clean(source):
    report = lint_program(source)
    assert report.exit_code == 0
    assert not report.errors


def test_check_validity_attaches_diagnostics():
    from repro.experiments import three_tank_spec

    report = check_validity(
        three_tank_spec(),
        three_tank_architecture(),
        baseline_implementation(),
    )
    assert isinstance(report.diagnostics, tuple)
    assert report.valid  # unchanged semantics


def test_sarif_shape():
    report = lint_program(RACY_AND_CYCLIC, artifact="racy.htl")
    sarif = report.to_sarif()
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"LRT001", "LRT010"} <= rule_ids
    for result in run["results"]:
        assert result["ruleId"] in CODES
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "racy.htl"
        assert location["region"]["startLine"] >= 1
    # SARIF must survive a JSON round-trip.
    assert json.loads(json.dumps(sarif)) == sarif


def test_report_json_round_trip():
    report = lint_program(RACY_AND_CYCLIC)
    data = json.loads(report.to_json())
    assert data["exit_code"] == 1
    assert data["summary"]["errors"] == len(report.errors)
    assert {d["code"] for d in data["diagnostics"]} == set(
        report.codes()
    )


# ----------------------------------------------------------------------
# CLI: repro lint.
# ----------------------------------------------------------------------


@pytest.fixture
def lint_workspace(tmp_path):
    (tmp_path / "racy.htl").write_text(RACY_AND_CYCLIC)
    (tmp_path / "three_tank.htl").write_text(THREE_TANK_HTL)
    return tmp_path


def test_cli_lint_racy_program(lint_workspace, capsys):
    status = main(
        ["lint", "--htl", str(lint_workspace / "racy.htl")]
    )
    assert status == 1
    out = capsys.readouterr().out
    assert "LRT001" in out and "LRT010" in out
    assert "racy.htl:8:" in out  # the race anchor line


def test_cli_lint_clean_program(lint_workspace, capsys):
    status = main(
        ["lint", "--htl", str(lint_workspace / "three_tank.htl")]
    )
    assert status == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_lint_sarif(lint_workspace, capsys):
    status = main([
        "lint", "--htl", str(lint_workspace / "racy.htl"),
        "--format", "sarif",
    ])
    assert status == 1
    sarif = json.loads(capsys.readouterr().out)
    results = sarif["runs"][0]["results"]
    assert {r["ruleId"] for r in results} >= {"LRT001", "LRT010"}


def test_cli_lint_json(lint_workspace, capsys):
    status = main([
        "lint", "--htl", str(lint_workspace / "racy.htl"),
        "--format", "json",
    ])
    assert status == 1
    data = json.loads(capsys.readouterr().out)
    assert data["exit_code"] == 1


def test_cli_lint_spec_json(lint_workspace, tmp_path, capsys):
    from repro.experiments import three_tank_spec
    from repro.io import specification_to_dict

    spec_file = tmp_path / "spec.json"
    spec_file.write_text(
        json.dumps(specification_to_dict(three_tank_spec()))
    )
    status = main(["lint", "--spec", str(spec_file)])
    assert status == 0


def test_cli_lint_requires_input(capsys):
    status = main(["lint"])
    assert status == 2
    assert "provide a program" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Property tests: the race detector agrees with restriction 3.
# ----------------------------------------------------------------------


def _program_from_spec(spec: Specification) -> ProgramDecl:
    """Rebuild an AST whose single mode invokes every task of *spec*."""
    communicators = tuple(
        CommunicatorDecl(
            name=comm.name,
            type_name="float",
            period=comm.period,
            init=0.0,
            lrc=comm.lrc,
        )
        for comm in spec.communicators.values()
    )
    tasks = tuple(
        TaskDecl(
            name=task.name,
            inputs=tuple(
                (p.communicator, p.instance) for p in task.inputs
            ),
            outputs=tuple(
                (p.communicator, p.instance) for p in task.outputs
            ),
            model=task.model.name.lower(),
            defaults=tuple(sorted(task.defaults.items())),
            function_name=None,
        )
        for task in spec.tasks.values()
    )
    mode = ModeDecl(
        name="all",
        period=spec.period(),
        invokes=tuple(InvokeStmt(task.name) for task in tasks),
        switches=(),
    )
    module = ModuleDecl(
        name="main", start_mode="all", tasks=tasks, modes=(mode,)
    )
    return ProgramDecl(
        name="generated", communicators=communicators, modules=(module,)
    )


@settings(max_examples=25, deadline=None)
@given(specifications())
def test_race_free_specs_never_trigger_lrt001(spec):
    report = lint_program(_program_from_spec(spec))
    assert "LRT001" not in report.codes()
    assert "LRT002" not in report.codes()


@settings(max_examples=25, deadline=None)
@given(specifications())
def test_duplicated_writer_always_triggers_lrt001(spec):
    program = _program_from_spec(spec)
    module = program.modules[0]
    victim = module.tasks[0]
    clone = TaskDecl(
        name=f"dup_{victim.name}",
        inputs=victim.inputs,
        outputs=victim.outputs,
        model=victim.model,
        defaults=victim.defaults,
        function_name=None,
    )
    mode = module.modes[0]
    patched = ProgramDecl(
        name=program.name,
        communicators=program.communicators,
        modules=(
            ModuleDecl(
                name=module.name,
                start_mode=module.start_mode,
                tasks=module.tasks + (clone,),
                modes=(
                    ModeDecl(
                        name=mode.name,
                        period=mode.period,
                        invokes=mode.invokes
                        + (InvokeStmt(clone.name),),
                        switches=(),
                    ),
                ),
            ),
        ),
    )
    report = lint_program(patched)
    assert "LRT001" in report.codes()
    assert report.exit_code == 1
