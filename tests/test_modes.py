"""Tests for mode-switching execution of HTL programs."""

import pytest

from repro.errors import HTLSemanticError, RuntimeSimulationError
from repro.experiments import (
    ACTUATORS,
    ThreeTankEnvironment,
    baseline_implementation,
    bind_control_functions,
    three_tank_architecture,
    three_tank_htl,
)
from repro.htl import compile_program
from repro.mapping import Implementation
from repro.runtime import (
    CallbackEnvironment,
    ModeSwitchingExecutive,
    ScriptedFaults,
    Simulator,
)

TOGGLE_PROGRAM = """
program Toggle {
  communicator x : float period 10 init 0.0 ;
  communicator y : float period 10 init 0.0 ;
  module M start up {
    task inc input (x[0]) output (y[1]) function "inc" ;
    task dec input (x[0]) output (y[1]) function "dec" ;
    mode up period 10 {
      invoke inc ;
      switch to down when "high" ;
    }
    mode down period 10 {
      invoke dec ;
      switch to up when "low" ;
    }
  }
}
"""


def toggle_executive(environment=None, faults=None, seed=0):
    compiled = compile_program(
        TOGGLE_PROGRAM,
        functions={"inc": lambda x: x + 1.0, "dec": lambda x: x - 1.0},
        conditions={
            "high": lambda values: values["y"] >= 3.0,
            "low": lambda values: values["y"] <= 0.0,
        },
    )
    from repro.arch import Architecture, ExecutionMetrics, Host, Sensor

    arch = Architecture(
        hosts=[Host("h1"), Host("h2")],
        sensors=[Sensor("s")],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    implementation = Implementation(
        {"inc": {"h1"}, "dec": {"h2"}}, {"x": {"s"}}
    )
    executive = ModeSwitchingExecutive(
        compiled, arch, implementation,
        environment=environment, faults=faults, seed=seed,
    )
    return executive


def test_hysteresis_oscillation():
    # y counts x(=0)+1 while in `up`; after it reaches 3 the module
    # switches to `down`, which counts it back to 0, and so on.
    env = CallbackEnvironment(sense_fn=lambda c, t: 0.0)
    # y accumulates? No: tasks read x (always 0) so inc yields 1.0
    # every period.  Use y's own value through x? Simpler: make the
    # sensor return the last y via the environment is overkill; the
    # switch fires when y >= 3 which never happens with x = 0 -> 1.
    # Drive x so the modes genuinely toggle: x ramps with time.
    env = CallbackEnvironment(sense_fn=lambda c, t: float(t // 10))
    executive = toggle_executive(environment=env)
    result = executive.run(10)
    # inc: y = x + 1 = period index + 1; once y >= 3 (period 2, value
    # 3 committed at period boundary) the module switches to `down`.
    modes = [selection["M"] for selection in result.mode_log]
    assert modes[0] == "up"
    assert "down" in modes
    assert result.switch_log[0][1] == "M"
    assert result.switch_log[0][2] == "up"
    assert result.switch_log[0][3] == "down"


def test_modes_visited_helper():
    env = CallbackEnvironment(sense_fn=lambda c, t: float(t // 10))
    result = toggle_executive(environment=env).run(10)
    visited = result.modes_visited("M")
    assert visited[0] == "up"
    assert len(visited) >= 2


def test_switch_changes_executed_task():
    # While in `down`, y = x - 1 instead of x + 1.
    env = CallbackEnvironment(sense_fn=lambda c, t: float(t // 10))
    result = toggle_executive(environment=env).run(10)
    switch_period = result.switch_log[0][0]
    # Before the switch: y[k+1] = x[k] + 1; after: y[k+1] = x[k] - 1.
    after_index = switch_period + 2
    x_value = float(after_index - 1)
    assert result.values["y"][after_index] == x_value - 1.0


def test_no_switch_means_start_mode_forever():
    executive = toggle_executive(
        environment=CallbackEnvironment(sense_fn=lambda c, t: 0.0)
    )
    result = executive.run(5)
    assert all(sel["M"] == "up" for sel in result.mode_log)
    assert result.switch_log == []
    # y = x + 1 = 1 at every commit.
    assert result.values["y"][1:] == [1.0] * 4


def test_trace_layout_matches_plain_simulator():
    # With no switches firing, the executive's concatenated trace must
    # equal a plain multi-iteration Simulator run of the start modes.
    compiled = compile_program(
        TOGGLE_PROGRAM,
        functions={"inc": lambda x: x + 1.0, "dec": lambda x: x - 1.0},
        conditions={
            "high": lambda values: False,
            "low": lambda values: False,
        },
    )
    from repro.arch import Architecture, ExecutionMetrics, Host, Sensor

    arch = Architecture(
        hosts=[Host("h1"), Host("h2")],
        sensors=[Sensor("s")],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    implementation = Implementation(
        {"inc": {"h1"}, "dec": {"h2"}}, {"x": {"s"}}
    )
    executive = ModeSwitchingExecutive(
        compiled, arch, implementation,
        environment=CallbackEnvironment(sense_fn=lambda c, t: float(t)),
    )
    chained = executive.run(6)
    spec = compiled.specification()
    plain = Simulator(
        spec, arch,
        Implementation({"inc": {"h1"}}, {"x": {"s"}}),
        environment=CallbackEnvironment(sense_fn=lambda c, t: float(t)),
    ).run(6)
    assert chained.values == plain.values


def test_unknown_condition_fails_fast():
    compiled = compile_program(
        TOGGLE_PROGRAM,
        functions={"inc": lambda x: x + 1.0, "dec": lambda x: x - 1.0},
        conditions={"high": lambda values: False},  # 'low' missing
    )
    from repro.arch import Architecture, ExecutionMetrics, Host, Sensor

    arch = Architecture(
        hosts=[Host("h1")],
        sensors=[Sensor("s")],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    implementation = Implementation(
        {"inc": {"h1"}, "dec": {"h1"}}, {"x": {"s"}}
    )
    with pytest.raises(HTLSemanticError, match="condition registry"):
        ModeSwitchingExecutive(compiled, arch, implementation)


def test_positive_iterations_required():
    executive = toggle_executive()
    with pytest.raises(RuntimeSimulationError, match="positive"):
        executive.run(0)


def test_three_tank_hold_mode_engages_on_high_level():
    functions = bind_control_functions()
    functions["t1_hold"] = lambda level: 0.0
    functions["t2_hold"] = lambda level: 0.0
    compiled = compile_program(
        three_tank_htl(),
        functions=functions,
        conditions={
            "level1_out_of_range": lambda v: v["l1"] > 0.28,
            "level1_in_range": lambda v: v["l1"] <= 0.26,
            "level2_out_of_range": lambda v: v["l2"] > 0.28,
            "level2_in_range": lambda v: v["l2"] <= 0.26,
        },
    )
    arch = three_tank_architecture()
    implementation = baseline_implementation()
    implementation = Implementation(
        dict(implementation.assignment)
        | {"t1_hold": {"h1"}, "t2_hold": {"h2"}},
        implementation.sensor_binding,
    )
    environment = ThreeTankEnvironment()
    # Start the tanks well above the hold threshold.
    environment.plant.levels = [0.35, 0.35, 0.3]
    executive = ModeSwitchingExecutive(
        compiled, arch, implementation,
        environment=environment,
        actuator_communicators=ACTUATORS,
    )
    result = executive.run(120)
    # The controllers switch to `hold` (pumps off) until the levels
    # drain back into range, then return to `regulate`.
    assert result.modes_visited("Control1")[:3] == [
        "regulate", "hold", "regulate",
    ]
    assert environment.plant.level(0) == pytest.approx(0.25, abs=0.02)

def test_request_switch_overrides_conditions():
    # x is 0 forever, so the module's own conditions never fire; an
    # external request_switch drives M into `down` at the next
    # boundary anyway (the hook a degrade recovery uses).
    executive = toggle_executive(
        environment=CallbackEnvironment(sense_fn=lambda c, t: 0.0)
    )
    executive.request_switch("M", "down")
    result = executive.run(5)
    modes = [sel["M"] for sel in result.mode_log]
    assert modes[0] == "up"
    assert modes[1] == "down"
    assert result.switch_log[0] == (0, "M", "up", "down")
    # The override lasts one boundary; conditions then rule again, and
    # with y = x - 1 = -1 committed in `down` the "low" condition
    # flips M straight back up.
    assert modes[2] == "up"
    assert result.switch_log[1] == (1, "M", "down", "up")


def test_request_switch_wins_over_firing_condition():
    # A sensor stuck at 9 makes y = 10 >= 3, so the "high" condition
    # fires at the very first boundary — but the override targets `up`
    # (a self-switch) and wins: the module stays in `up` at that
    # boundary, with no transition logged for it.
    env = CallbackEnvironment(sense_fn=lambda c, t: 9.0)
    baseline = toggle_executive(environment=env).run(2)
    assert baseline.switch_log[0][0] == 0  # the condition does fire

    executive = toggle_executive(
        environment=CallbackEnvironment(sense_fn=lambda c, t: 9.0)
    )
    executive.request_switch("M", "up")
    stayed = executive.run(1)
    assert all(sel["M"] == "up" for sel in stayed.mode_log)
    # A self-switch is not logged as a transition.
    assert stayed.switch_log == []


def test_request_switch_validates_names():
    executive = toggle_executive()
    with pytest.raises(RuntimeSimulationError, match="no module"):
        executive.request_switch("nope", "down")
    with pytest.raises(RuntimeSimulationError, match="no mode"):
        executive.request_switch("M", "sideways")
