"""Differential guard for the abstract-interpretation verifier.

Three independent oracles pin the engine down:

* the exact SRG evaluator of Proposition 1 (``communicator_srgs``) —
  concrete analyses must reproduce it bit-for-bit, and every interval
  must bracket it for any admissible completion;
* the lint pipeline — LRT030's architecture-feasibility verdict must
  coincide with the verifier's upper bounds;
* the batched Monte-Carlo simulator — empirical reliable-access rates
  on the paper's designs (three-tank system, brake-by-wire) must fall
  inside the certified bounds up to binomial noise.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import analyze_specification
from repro.lint import lint_specification
from repro.mapping import Implementation
from repro.reliability import (
    binomial_confidence_interval,
    communicator_srgs,
)
from repro.runtime import BatchSimulator, BernoulliFaults

from strategies import architectures, partial_systems, specifications, systems

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(systems())
def test_concrete_analysis_is_bit_exact(system):
    spec, arch, impl = system
    report = analyze_specification(spec, arch, impl)
    exact = communicator_srgs(spec, impl, arch)
    assert report.concrete
    for name, srg in exact.items():
        assert report.bounds[name].interval.lo == srg
        assert report.bounds[name].interval.hi == srg


@RELAXED
@given(systems())
def test_partial_bounds_bracket_any_completion(system):
    spec, arch, impl = system
    # Keep every other task's assignment: the full implementation is
    # one admissible completion of the partial design, so its exact
    # SRGs must fall inside the partial intervals.
    kept = sorted(spec.tasks)[::2]
    partial = Implementation(
        {name: impl.hosts_of(name) for name in kept}, {}
    )
    report = analyze_specification(spec, arch, partial)
    exact = communicator_srgs(spec, impl, arch)
    for name, srg in exact.items():
        assert report.bounds[name].interval.contains(
            srg, tolerance=1e-9
        ), (
            f"{name}: exact SRG {srg} outside "
            f"{report.bounds[name].interval.describe()}"
        )


@RELAXED
@given(partial_systems())
def test_engine_never_crashes_on_partial_designs(system):
    spec, arch, partial = system
    report = analyze_specification(spec, arch, partial)
    assert set(report.bounds) == set(spec.communicators)
    for bound in report:
        assert 0.0 <= bound.interval.lo <= bound.interval.hi <= 1.0


@RELAXED
@given(specifications(), architectures())
def test_lrt030_agrees_with_free_upper_bounds(spec, arch):
    free = analyze_specification(spec, arch)
    flagged = {b.communicator for b in free.infeasible()}
    report = lint_specification(spec, architecture=arch)
    lint_flagged = {
        d.message.split("'")[1]
        for d in report
        if d.code == "LRT030"
    }
    assert lint_flagged == flagged


@RELAXED
@given(systems())
def test_lint_never_crashes_on_full_designs(system):
    spec, arch, impl = system
    report = lint_specification(
        spec, architecture=arch, implementation=impl
    )
    for diagnostic in report:
        assert diagnostic.code.startswith("LRT")


def _empirical_guard(spec, arch, impl, seed):
    concrete = analyze_specification(spec, arch, impl)
    free = analyze_specification(spec, arch)
    result = BatchSimulator(
        spec, arch, impl, faults=BernoulliFaults(arch), seed=seed
    ).run_batch(30, 60)
    inputs = spec.input_communicators()
    for name in sorted(spec.communicators):
        successes, samples = result.pooled_counts()[name]
        lower, upper = binomial_confidence_interval(
            successes, samples, confidence=0.999
        )
        for report in (concrete, free):
            interval = report.bounds[name].interval
            # The certified lower bound must not exceed what was
            # actually observed (up to binomial noise)...
            assert interval.lo <= upper, (
                f"{name}: certified lower bound {interval.lo} above "
                f"the empirical CP interval [{lower}, {upper}]"
            )
            if name in inputs:
                # ... and sensor reads are i.i.d., so the upper bound
                # must cover the observed rate from above too.
                assert lower <= interval.hi, (
                    f"{name}: certified upper bound {interval.hi} "
                    f"below the empirical CP interval "
                    f"[{lower}, {upper}]"
                )


def test_three_tank_bounds_bracket_empirical_rates():
    # scenario1 is the mapping the repo's Monte-Carlo convergence test
    # is calibrated against (shared upstream ancestry only pushes the
    # observed rate *up*, keeping the one-sided guard sound).
    from repro.experiments import (
        scenario1_implementation,
        three_tank_architecture,
        three_tank_spec,
    )

    _empirical_guard(
        three_tank_spec(),
        three_tank_architecture(),
        scenario1_implementation(),
        seed=11,
    )


def test_brake_by_wire_bounds_bracket_empirical_rates():
    from repro.experiments import (
        brake_baseline_implementation,
        brake_by_wire_architecture,
        brake_by_wire_spec,
    )

    _empirical_guard(
        brake_by_wire_spec(),
        brake_by_wire_architecture(),
        brake_baseline_implementation(),
        seed=12,
    )
