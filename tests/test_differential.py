"""Differential testing: reference simulator vs compiled E-machine.

The strongest correctness argument for the compilation path: on
randomly generated systems, under every fault regime, the E-machine
executing generated E-code must produce bit-identical traces and
failure statistics to the reference simulator with the same seed.
"""

import pytest

from repro.experiments import (
    random_architecture,
    random_implementation,
    random_specification,
)
from repro.htl import generate_ecode
from repro.runtime import (
    BernoulliFaults,
    CallbackEnvironment,
    CompositeFaults,
    ScriptedFaults,
    Simulator,
    ValueFaults,
    majority_vote,
)
from repro.runtime.emachine import EMachine


def build_system(seed):
    spec = random_specification(
        seed, layers=2, tasks_per_layer=2, inputs=2,
    )
    arch = random_architecture(seed + 1000, hosts=3,
                               reliability_range=(0.85, 0.999))
    impl = random_implementation(spec, arch, seed + 2000,
                                 max_replicas=2)
    return spec, arch, impl


def fault_regimes(arch):
    victim = arch.host_names()[0]
    return {
        "none": lambda: None,
        "bernoulli": lambda: BernoulliFaults(arch),
        "scripted": lambda: ScriptedFaults(
            host_outages={victim: [(80, 400)]}
        ),
        "value": lambda: ValueFaults(
            0.3, hosts={victim}, magnitude=7.0
        ),
        "composite": lambda: CompositeFaults([
            BernoulliFaults(arch),
            ScriptedFaults(host_outages={victim: [(200, 280)]}),
        ]),
    }


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize(
    "regime", ["none", "bernoulli", "scripted", "value", "composite"]
)
def test_emachine_matches_simulator(seed, regime):
    spec, arch, impl = build_system(seed)
    factory = fault_regimes(arch)[regime]
    env = lambda: CallbackEnvironment(  # noqa: E731
        sense_fn=lambda c, t: float(t % 97)
    )
    voter = majority_vote  # tolerates value faults

    reference = Simulator(
        spec, arch, impl, environment=env(), faults=factory(),
        voter=voter, seed=seed,
    ).run(60)
    machine = EMachine(
        generate_ecode(spec, arch, impl), spec, arch, impl,
        environment=env(), faults=factory(), voter=voter, seed=seed,
    )
    compiled = machine.run(60)

    assert reference.values == compiled.values
    assert reference.replica_attempts == compiled.replica_attempts
    assert reference.replica_failures == compiled.replica_failures
