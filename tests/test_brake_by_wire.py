"""Tests for the brake-by-wire application (plant + distributed loop)."""

import pytest

from repro import check_validity, communicator_srgs
from repro.experiments import (
    brake_baseline_implementation,
    brake_by_wire_architecture,
    brake_by_wire_spec,
    brake_closed_loop,
    brake_replicated_implementation,
)
from repro.plants.brake_by_wire import (
    BrakeByWirePlant,
    BrakeParams,
    ReferenceSpeedEstimator,
    reference_speed_estimator,
    slip_controller,
    tyre_friction,
)
from repro.runtime import ScriptedFaults


# -- tyre curve -----------------------------------------------------------------


def test_tyre_friction_shape():
    params = BrakeParams()
    assert tyre_friction(0.0, params) == 0.0
    assert tyre_friction(params.slip_peak, params) == params.mu_peak
    assert tyre_friction(1.0, params) == params.mu_locked
    # Rising before the peak, falling after.
    assert tyre_friction(0.1, params) < params.mu_peak
    assert tyre_friction(0.5, params) < params.mu_peak
    assert tyre_friction(0.5, params) > params.mu_locked


def test_tyre_friction_clamps_slip():
    params = BrakeParams()
    assert tyre_friction(-0.5, params) == 0.0
    assert tyre_friction(2.0, params) == params.mu_locked


# -- plant dynamics ----------------------------------------------------------------


def test_plant_coasts_without_torque():
    plant = BrakeByWirePlant()
    plant.step(1.0)
    assert plant.speed == pytest.approx(30.0, abs=0.2)
    assert plant.slip(0) == pytest.approx(0.0, abs=0.01)


def test_full_torque_locks_the_wheels():
    plant = BrakeByWirePlant()
    plant.set_torque(0, 2200.0)
    plant.set_torque(1, 2200.0)
    for _ in range(50):
        plant.step(0.02)
    assert plant.slip(0) > 0.9
    assert plant.speed < 30.0


def test_torque_clamped():
    plant = BrakeByWirePlant()
    plant.set_torque(0, 1e9)
    assert plant.torques[0] == plant.params.max_torque
    plant.set_torque(0, -5.0)
    assert plant.torques[0] == 0.0


def test_plant_stops_and_stays_stopped():
    plant = BrakeByWirePlant(speed=1.0)
    plant.set_torque(0, 2000.0)
    plant.set_torque(1, 2000.0)
    for _ in range(200):
        plant.step(0.02)
    assert plant.stopped()
    assert plant.speed == 0.0
    assert plant.wheel_speeds == [0.0, 0.0]


def test_distance_accumulates():
    plant = BrakeByWirePlant()
    plant.step(2.0)
    assert plant.distance == pytest.approx(60.0, rel=0.02)


def test_wheels_never_exceed_free_rolling():
    plant = BrakeByWirePlant()
    for _ in range(100):
        plant.step(0.02)
        for axle in range(2):
            linear = plant.wheel_speed(axle) * plant.params.wheel_radius
            assert linear <= plant.speed + 1e-9


# -- controllers --------------------------------------------------------------------


def test_slip_controller_passes_demand_at_low_slip():
    assert slip_controller(95.0, 30.0, 2000.0) == 2000.0


def test_slip_controller_releases_above_threshold():
    # wheel at 50 rad/s * 0.3 = 15 m/s against vref 30: slip 0.5.
    value = slip_controller(50.0, 30.0, 2000.0)
    assert value == pytest.approx(0.15 * 2000.0)


def test_slip_controller_passes_through_when_stopped():
    assert slip_controller(0.0, 0.0, 1234.0) == 1234.0


def test_stateless_reference_is_fastest_wheel():
    assert reference_speed_estimator(90.0, 100.0) == pytest.approx(30.0)


def test_ramped_reference_survives_synchronised_lock():
    estimator = ReferenceSpeedEstimator(dt=0.02)
    estimator.update(100.0, 100.0)  # 30 m/s
    # Both wheels lock instantly: the stateless estimate would be 0,
    # the ramped one decays at most mu*g*dt.
    value = estimator.update(0.0, 0.0)
    assert value == pytest.approx(30.0 - 0.9 * 9.81 * 0.02)


def test_ramped_reference_reset():
    estimator = ReferenceSpeedEstimator(dt=0.02)
    estimator.update(100.0, 100.0)
    estimator.reset()
    assert estimator.update(10.0, 10.0) == pytest.approx(3.0)


# -- the distributed system -----------------------------------------------------------


def test_specification_shape():
    spec = brake_by_wire_spec()
    assert spec.period() == 20
    assert spec.let("estimate_v") == (0, 10)
    assert spec.let("abs_f") == (10, 20)
    assert spec.input_communicators() == {"ws_f", "ws_r", "pedal"}


def test_analysis_valid():
    spec = brake_by_wire_spec()
    arch = brake_by_wire_architecture()
    for impl in (
        brake_baseline_implementation(),
        brake_replicated_implementation(),
    ):
        assert check_validity(spec, arch, impl).valid


def test_replication_raises_torque_srg():
    spec = brake_by_wire_spec()
    arch = brake_by_wire_architecture()
    base = communicator_srgs(
        spec, brake_baseline_implementation(), arch
    )
    replicated = communicator_srgs(
        spec, brake_replicated_implementation(), arch
    )
    assert replicated["tq_f"] > base["tq_f"]
    assert replicated["tq_r"] > base["tq_r"]


def test_panic_stop_abs_beats_locked_wheels():
    env = brake_closed_loop(brake_replicated_implementation())
    assert env.plant.stopped()
    abs_distance = env.stopping_distance()
    # Locked-wheel reference: full demand straight to the plant.
    plant = BrakeByWirePlant()
    onset = None
    t = 0.0
    while not plant.stopped() and t < 30.0:
        if t >= 1.0:
            if onset is None:
                onset = plant.distance
            plant.set_torque(0, 2200.0)
            plant.set_torque(1, 2200.0)
        plant.step(0.02)
        t += 0.02
    locked_distance = plant.distance - onset
    assert abs_distance < 0.85 * locked_distance


def test_unplug_with_replication_changes_nothing():
    healthy = brake_closed_loop(brake_replicated_implementation())
    unplug = ScriptedFaults(host_outages={"ecu1": [(2000, None)]})
    faulted = brake_closed_loop(
        brake_replicated_implementation(), faults=unplug
    )
    assert faulted.stopping_distance() == pytest.approx(
        healthy.stopping_distance(), abs=1e-9
    )
    assert faulted.speed_log == healthy.speed_log


def test_unplug_without_replication_degrades_braking():
    unplug = ScriptedFaults(host_outages={"ecu1": [(2000, None)]})
    healthy = brake_closed_loop(brake_baseline_implementation())
    faulted = brake_closed_loop(
        brake_baseline_implementation(), faults=unplug
    )
    assert faulted.bottom_actuations > 0
    assert (
        faulted.stopping_distance()
        > healthy.stopping_distance() + 1.0
    )
