"""Tests for time-dependent mapping synthesis."""

import pytest

from repro.errors import SynthesisError
from repro.experiments import general_example, static_implementations
from repro.reliability import check_reliability
from repro.synthesis import (
    enumerate_single_host_assignments,
    synthesize_timedep,
)


def test_pool_enumeration():
    spec, arch = general_example()
    pool = enumerate_single_host_assignments(spec, arch)
    # 2 tasks x 2 hosts -> 4 assignments.
    assert len(pool) == 4
    for implementation in pool:
        implementation.validate(spec, arch)
        for task in spec.tasks:
            assert len(implementation.hosts_of(task)) == 1


def test_pool_enumeration_limit():
    spec, arch = general_example()
    with pytest.raises(SynthesisError, match="enumeration limit"):
        enumerate_single_host_assignments(spec, arch, limit=3)


def test_discovers_the_papers_alternating_mapping():
    """No static single-host mapping meets LRC 0.9; synthesis finds a
    two-phase alternation achieving limavg 0.9 on both outputs —
    exactly the paper's general-implementation example."""
    spec, arch = general_example()
    result = synthesize_timedep(spec, arch)
    assert not result.static_suffices
    assert result.phase_count == 2
    assert result.reliability.reliable
    srgs = result.reliability.srgs()
    assert srgs["c1"] == pytest.approx(0.9)
    assert srgs["c2"] == pytest.approx(0.9)
    # Each phase on its own is NOT reliable.
    for phase in result.implementation.phases:
        assert not check_reliability(spec, arch, phase).reliable


def test_static_solution_preferred_when_available():
    spec, arch = general_example()
    relaxed = spec.replace_lrcs({"c1": 0.85, "c2": 0.85})
    result = synthesize_timedep(relaxed, arch)
    assert result.static_suffices
    assert result.phase_count == 1


def test_unreachable_lrc_raises():
    spec, arch = general_example()
    greedy = spec.replace_lrcs({"c1": 0.99, "c2": 0.99})
    with pytest.raises(SynthesisError, match="no periodic mapping"):
        synthesize_timedep(greedy, arch, max_phases=3)


def test_explicit_candidate_pool():
    spec, arch = general_example()
    first, second = static_implementations()
    result = synthesize_timedep(spec, arch, candidates=[first, second])
    assert result.phase_count == 2
    for phase in result.implementation.phases:
        assert phase in (first, second)
    assert result.reliability.reliable


def test_empty_pool_rejected():
    spec, arch = general_example()
    with pytest.raises(SynthesisError, match="empty"):
        synthesize_timedep(spec, arch, candidates=[])


def test_three_phase_mixture():
    """LRCs needing an asymmetric mixture: c1 >= 0.91 rules out the
    even alternation (mean 0.90) and the h2-static (0.85); c2 >= 0.88
    rules out the h1-static (0.85).  The cheapest fix is two phases of
    t1@h1,t2@h2 plus one of the swap: c1 = 0.9167, c2 = 0.8833."""
    spec, arch = general_example()
    tuned = spec.replace_lrcs({"c1": 0.91, "c2": 0.88})
    result = synthesize_timedep(tuned, arch, max_phases=4)
    assert result.reliability.reliable
    assert result.phase_count == 3
    srgs = result.reliability.srgs()
    assert srgs["c1"] == pytest.approx((0.95 + 0.95 + 0.85) / 3)
    assert srgs["c2"] == pytest.approx((0.85 + 0.85 + 0.95) / 3)
