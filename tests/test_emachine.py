"""Tests for the E-machine and its equivalence with the simulator."""

import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.errors import RuntimeSimulationError
from repro.experiments import (
    ACTUATORS,
    ThreeTankEnvironment,
    baseline_implementation,
    bind_control_functions,
    scenario1_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.htl import generate_ecode
from repro.mapping import Implementation
from repro.model import Communicator, Specification, Task
from repro.runtime import (
    BernoulliFaults,
    CallbackEnvironment,
    ScriptedFaults,
    Simulator,
)
from repro.runtime.emachine import EMachine


def pipeline_system():
    comms = [
        Communicator("raw", period=10, lrc=0.5, init=0.0),
        Communicator("mid", period=10, lrc=0.5, init=0.0),
        Communicator("out", period=10, lrc=0.5, init=0.0),
    ]
    tasks = [
        Task("f", [("raw", 0)], [("mid", 1)], function=lambda x: 2 * x),
        Task("g", [("mid", 1)], [("out", 2)], function=lambda x: x + 1),
    ]
    spec = Specification(comms, tasks)
    arch = Architecture(
        hosts=[Host("h1", 0.95), Host("h2", 0.9)],
        sensors=[Sensor("s", 0.97)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    impl = Implementation(
        {"f": {"h1", "h2"}, "g": {"h1"}}, {"raw": {"s"}}
    )
    return spec, arch, impl


def run_both(spec, arch, impl, faults_factory=lambda: None, iterations=50,
             seed=5, env_factory=lambda: None):
    simulator = Simulator(
        spec, arch, impl, environment=env_factory(),
        faults=faults_factory(), seed=seed,
    )
    reference = simulator.run(iterations)
    ecode = generate_ecode(spec, arch, impl)
    machine = EMachine(
        ecode, spec, arch, impl, environment=env_factory(),
        faults=faults_factory(), seed=seed,
    )
    compiled = machine.run(iterations)
    return reference, compiled


def test_equivalence_fault_free():
    spec, arch, impl = pipeline_system()
    env = lambda: CallbackEnvironment(sense_fn=lambda c, t: float(t))
    reference, compiled = run_both(spec, arch, impl, env_factory=env)
    assert reference.values == compiled.values


def test_equivalence_scripted_faults():
    spec, arch, impl = pipeline_system()
    faults = lambda: ScriptedFaults(host_outages={"h1": [(100, 300)]})
    reference, compiled = run_both(spec, arch, impl, faults)
    assert reference.values == compiled.values
    assert reference.replica_failures == compiled.replica_failures


def test_equivalence_bernoulli_same_seed():
    spec, arch, impl = pipeline_system()
    faults = lambda: BernoulliFaults(arch)
    reference, compiled = run_both(spec, arch, impl, faults,
                                   iterations=300)
    assert reference.values == compiled.values
    assert reference.replica_attempts == compiled.replica_attempts
    assert reference.replica_failures == compiled.replica_failures


def test_equivalence_three_tank_closed_loop():
    arch = three_tank_architecture()
    impl = scenario1_implementation()

    def build(kind):
        functions = bind_control_functions()
        spec = three_tank_spec(functions=functions)
        env = ThreeTankEnvironment()
        if kind == "sim":
            runner = Simulator(
                spec, arch, impl, environment=env,
                actuator_communicators=ACTUATORS, seed=3,
            )
        else:
            runner = EMachine(
                generate_ecode(spec, arch, impl), spec, arch, impl,
                environment=env, actuator_communicators=ACTUATORS, seed=3,
            )
        return runner.run(60), env

    reference, env_a = build("sim")
    compiled, env_b = build("em")
    assert reference.values == compiled.values
    assert env_a.plant.levels == env_b.plant.levels


def test_emachine_requires_functions():
    spec, arch, impl = pipeline_system()
    stripped = spec.with_tasks(
        [
            Task("f", [("raw", 0)], [("mid", 1)]),
            Task("g", [("mid", 1)], [("out", 2)]),
        ]
    )
    ecode = generate_ecode(stripped, arch, impl)
    with pytest.raises(RuntimeSimulationError, match="no function"):
        EMachine(ecode, stripped, arch, impl)


def test_emachine_positive_iterations():
    spec, arch, impl = pipeline_system()
    machine = EMachine(generate_ecode(spec, arch, impl), spec, arch, impl)
    with pytest.raises(RuntimeSimulationError, match="positive"):
        machine.run(0)


def test_emachine_works_without_timeline_annotations():
    spec, arch, impl = pipeline_system()
    ecode = generate_ecode(spec, arch, impl, include_timeline=False)
    machine = EMachine(ecode, spec, arch, impl, seed=5)
    result = machine.run(20)
    reference = Simulator(spec, arch, impl, seed=5).run(20)
    assert reference.values == result.values


def test_emachine_baseline_unplug_degrades_like_simulator():
    arch = three_tank_architecture()
    impl = baseline_implementation()
    faults = lambda: ScriptedFaults(host_outages={"h2": [(5000, None)]})

    functions = bind_control_functions()
    spec = three_tank_spec(functions=functions)
    machine = EMachine(
        generate_ecode(spec, arch, impl), spec, arch, impl,
        faults=faults(), actuator_communicators=ACTUATORS, seed=3,
    )
    result = machine.run(40)
    # After t=5000 every u2 write is unreliable (t2 only on h2).
    from repro.model import BOTTOM

    u2 = result.values["u2"]
    assert all(v is BOTTOM for v in u2[60:])
