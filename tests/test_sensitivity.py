"""Tests for SRG sensitivity analysis and upgrade advice."""

import pytest

from repro.errors import AnalysisError
from repro.experiments import (
    baseline_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.reliability import communicator_srgs
from repro.reliability.sensitivity import (
    all_components,
    minimal_upgrade,
    srg_sensitivities,
    upgrade_options,
)


@pytest.fixture
def tank():
    return (
        three_tank_spec(lrc_u=0.9975),
        three_tank_architecture(),
        baseline_implementation(),
    )


def test_all_components(tank):
    _, arch, _ = tank
    components = all_components(arch)
    assert "host:h1" in components
    assert "sensor:sen1" in components
    assert len(components) == 3 + 4


def test_sensitivities_shape(tank):
    spec, arch, impl = tank
    sensitivities = srg_sensitivities(spec, arch, impl)
    assert len(sensitivities) == len(all_components(arch))
    for entry in sensitivities:
        assert set(entry.derivatives) == set(spec.communicators)


def test_derivatives_match_analytic_formula(tank):
    spec, arch, impl = tank
    sensitivities = {
        s.component: s for s in srg_sensitivities(spec, arch, impl)
    }
    # lambda_u1 = hrel(h3) * srel(sen1) * hrel(h1) (read1 @ h3,
    # t1 @ h1): each partial derivative is the product of the other
    # two factors.
    r = 0.999
    expected = r * r  # two remaining factors
    assert sensitivities["host:h1"].derivatives["u1"] == pytest.approx(
        expected, rel=1e-6
    )
    assert sensitivities["sensor:sen1"].derivatives["u1"] == (
        pytest.approx(expected, rel=1e-6)
    )
    # h2 runs only t2: u1 does not depend on it.
    assert sensitivities["host:h2"].derivatives["u1"] == pytest.approx(
        0.0, abs=1e-6
    )
    # An unused backup sensor affects nothing.
    assert all(
        value == pytest.approx(0.0, abs=1e-6)
        for value in sensitivities["sensor:sen1b"].derivatives.values()
    )


def test_sensitivities_nonnegative(tank):
    spec, arch, impl = tank
    for entry in srg_sensitivities(spec, arch, impl):
        for value in entry.derivatives.values():
            assert value >= -1e-6


def test_most_affected(tank):
    spec, arch, impl = tank
    sensitivities = {
        s.component: s for s in srg_sensitivities(spec, arch, impl)
    }
    # h3 runs the readers and estimators; everything downstream of l1
    # and l2 depends on it.
    assert sensitivities["host:h3"].most_affected() in {
        "l1", "l2", "r1", "r2", "u1", "u2",
    }


def test_bad_component_identifier(tank):
    spec, arch, impl = tank
    with pytest.raises(AnalysisError, match="host:NAME"):
        minimal_upgrade(spec, arch, impl, "h1")


def test_minimal_upgrade_of_already_reliable_system():
    spec = three_tank_spec(lrc_u=0.99)
    arch = three_tank_architecture()
    impl = baseline_implementation()
    required = minimal_upgrade(spec, arch, impl, "host:h1")
    assert required == pytest.approx(0.999)


def test_minimal_upgrade_infeasible_component(tank):
    spec, arch, impl = tank
    # u1 = hrel(h3) * srel(sen1) * hrel(h1); with the other factors at
    # 0.999 each, even a perfect h2 leaves u2's chain untouched AND
    # a perfect h1 still caps u1 at 0.998001 >= 0.9975... so h1 IS
    # feasible for u1 — but u2 stays violated, making h1 infeasible
    # as a single upgrade.
    assert minimal_upgrade(spec, arch, impl, "host:h1") is None
    assert minimal_upgrade(spec, arch, impl, "host:h2") is None
    assert minimal_upgrade(spec, arch, impl, "sensor:sen1") is None


def test_h3_upgrade_fixes_both_chains(tank):
    spec, arch, impl = tank
    required = minimal_upgrade(spec, arch, impl, "host:h3")
    # u = hrel(h3) * 0.999 * 0.999 >= 0.9975 -> hrel(h3) >= 0.99949...
    assert required is not None
    assert required == pytest.approx(
        0.9975 / (0.999 * 0.999), abs=1e-6
    )
    upgraded = __import__(
        "repro.reliability.sensitivity", fromlist=["_perturbed"]
    )._perturbed(arch, "host:h3", required)
    srgs = communicator_srgs(spec, impl, upgraded)
    assert srgs["u1"] >= 0.9975 - 1e-9
    assert srgs["u2"] >= 0.9975 - 1e-9


def test_upgrade_options_sorted(tank):
    spec, arch, impl = tank
    options = upgrade_options(spec, arch, impl)
    # Only h3 (shared by both chains) can fix the system alone.
    assert [option.component for option in options] == ["host:h3"]
    assert options[0].delta > 0
    assert options[0].required <= 1.0


def test_upgrade_options_empty_when_reliable():
    spec = three_tank_spec(lrc_u=0.99)
    arch = three_tank_architecture()
    options = upgrade_options(spec, arch, baseline_implementation())
    assert options == []
