"""Tests for non-preemptive list scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched import Job, demand_bound_feasible, edf_schedule
from repro.sched.listsched import (
    build_timeline_nonpreemptive,
    list_schedule,
)


def job(task, release, deadline, wcet, wctt=0, host="h"):
    return Job(
        deadline=deadline, release=release, task=task, host=host,
        wcet=wcet, wctt=wctt,
    )


def test_single_job():
    result = list_schedule([job("a", 0, 10, 4)])
    assert result.feasible
    assert result.completion["a@h"] == 4
    assert len(result.slices) == 1


def test_contiguous_slices():
    result = list_schedule([job("a", 0, 30, 10), job("b", 0, 40, 10)])
    assert result.feasible
    for piece in result.slices:
        # Non-preemptive: exactly one slice per job, full demand.
        assert piece.duration == 10


def test_edf_priority_order():
    result = list_schedule([job("late", 0, 40, 5), job("soon", 0, 10, 5)])
    assert result.completion["soon@h"] == 5
    assert result.completion["late@h"] == 10


def test_gap_filling():
    # `soon` occupies [5, 8]; `early` (lower priority) still fits the
    # gap [0, 5] before it.
    jobs = [job("soon", 5, 8, 3), job("early", 0, 20, 4)]
    result = list_schedule(jobs)
    assert result.feasible
    assert result.completion["early@h"] == 4


def test_blocking_makes_infeasible_where_edf_fits():
    # Non-preemptive pathology: the long job blocks the urgent one.
    jobs = [job("long", 0, 20, 10), job("urgent", 2, 8, 3)]
    assert demand_bound_feasible(jobs)  # preemptive EDF fits
    assert edf_schedule(jobs).feasible
    result = list_schedule(jobs)
    # `urgent` has the earlier deadline so it is placed first at [2,5];
    # `long` then starts at 5 and finishes at 15 < 20: feasible here.
    assert result.feasible
    # But reverse the urgency: `long` has the earlier deadline.
    jobs = [job("long", 0, 13, 10), job("urgent", 2, 8, 3)]
    assert edf_schedule(jobs).feasible  # preempt long at 2, resume at 5
    blocked = list_schedule(jobs)
    assert not blocked.feasible


def test_misses_reported_but_schedule_complete():
    result = list_schedule([job("a", 0, 3, 5)])
    assert not result.feasible
    assert result.misses == ("a@h",)
    assert result.completion["a@h"] == 5


def test_slices_never_overlap_property():
    jobs = [job(f"j{i}", i % 4, 30 + i, 3) for i in range(8)]
    result = list_schedule(jobs)
    ordered = sorted(result.slices, key=lambda s: s.start)
    for earlier, later in zip(ordered, ordered[1:]):
        assert later.start >= earlier.end


job_strategy = st.builds(
    lambda name, release, window, wcet: job(
        name, release, release + window, min(wcet, window)
    ),
    st.uuids().map(lambda u: f"j{u.hex[:6]}"),
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=20),
)


@settings(max_examples=150, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8))
def test_list_feasible_implies_edf_feasible(jobs):
    # Non-preemptive feasibility is a sufficient condition for
    # preemptive feasibility, never the other way around.
    if list_schedule(jobs).feasible:
        assert edf_schedule(jobs).feasible


@settings(max_examples=150, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8))
def test_list_schedule_respects_releases(jobs):
    result = list_schedule(jobs)
    releases = {j.label(): j.release for j in jobs}
    for piece in result.slices:
        assert piece.start >= releases[f"{piece.task}@{piece.host}"]


@settings(max_examples=150, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8))
def test_list_schedule_work_conservation(jobs):
    result = list_schedule(jobs)
    assert sum(s.duration for s in result.slices) == sum(
        j.wcet for j in jobs
    )


# -- the distributed non-preemptive timeline --------------------------------


def test_nonpreemptive_timeline_three_tank(
    tank_spec, tank_arch, tank_scenario1
):
    timeline = build_timeline_nonpreemptive(
        tank_spec, tank_arch, tank_scenario1
    )
    assert timeline.feasible
    assert timeline.verify(tank_spec) == []
    # Every replication occupies exactly one contiguous slice.
    for host, slices in timeline.host_slices.items():
        labels = [(s.task, s.host) for s in slices]
        assert len(labels) == len(set(labels))


def test_nonpreemptive_timeline_pipeline(pipe_spec, pipe_arch, pipe_impl):
    timeline = build_timeline_nonpreemptive(
        pipe_spec, pipe_arch, pipe_impl
    )
    assert timeline.feasible
    assert timeline.verify(pipe_spec) == []
