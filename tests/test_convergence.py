"""Convergence telemetry and deterministic adaptive stopping.

The tentpole contract, in three differential claims driven over
Hypothesis-generated systems:

* **truncation**: an adaptive batch stopped at ``n`` runs is
  bit-identical to a fixed-run batch of exactly ``n`` runs — the
  stopping rule only chooses *where* to cut the same deterministic
  run sequence, never *what* is simulated;
* **stop parity**: the stop point is a function of pooled counts at
  global checkpoint boundaries only, so serial, inline-sharded, and
  supervised-with-injected-kill executions stop at the same run;
* **stream sanity**: merged checkpoint event streams are run-monotone
  with non-decreasing counts — one global convergence trajectory
  regardless of how the batch was sharded.

The unit tests pin down the checkpoint schedule, the sequential
(SPRT) verdicts, the stopping rule's decision table, the slice/merge
event algebra, and the shard-stamping rebase in
:class:`~repro.telemetry.shardbuffer.ShardEventBuffer`.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.experiments import (
    bind_control_functions,
    three_tank_architecture,
    three_tank_spec,
)
from repro.experiments.three_tank_system import baseline_implementation
from repro.reliability.stats import (
    ComplianceVerdict,
    interval_half_width,
    sprt_bounds,
    sprt_log_likelihood,
    sprt_verdict,
)
from repro.runtime import (
    BatchSimulator,
    BernoulliFaults,
    SerialExecutor,
    ShardedExecutor,
)
from repro.service.supervision import ChaosAction, SupervisedShardedExecutor
from repro.telemetry import ShardEventBuffer
from repro.telemetry.convergence import (
    CheckpointEvent,
    StoppingRule,
    checkpoint_events_for_slice,
    checkpoint_schedule,
    merge_checkpoint_events,
    snapshot_from_counts,
)

from strategies import systems

RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def three_tank_batch(seed=7, executor=None, lrc_s=0.99):
    # lrc_s relaxed below the sensor reliability so the sequential
    # test can actually separate the rate from the LRC.
    spec = three_tank_spec(
        lrc_u=0.99, lrc_s=lrc_s, functions=bind_control_functions()
    )
    arch = three_tank_architecture()
    return spec, BatchSimulator(
        spec, arch, baseline_implementation(),
        faults=BernoulliFaults(arch), seed=seed, executor=executor,
    )


def assert_identical(left, right):
    assert left.runs == right.runs
    assert left.iterations == right.iterations
    assert left.samples_per_run == right.samples_per_run
    assert set(left.reliable_counts) == set(right.reliable_counts)
    for name in left.reliable_counts:
        assert np.array_equal(
            left.reliable_counts[name], right.reliable_counts[name]
        )
    assert left.monitor_events == right.monitor_events


# ----------------------------------------------------------------------
# The checkpoint schedule.
# ----------------------------------------------------------------------


def test_checkpoint_schedule_is_geometric_and_ends_at_budget():
    assert checkpoint_schedule(320, first=8) == (
        8, 16, 32, 64, 128, 256, 320,
    )
    assert checkpoint_schedule(64, first=64) == (64,)
    assert checkpoint_schedule(5, first=64) == (5,)


@given(
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=1, max_value=512),
)
def test_checkpoint_schedule_properties(max_runs, first):
    schedule = checkpoint_schedule(max_runs, first=first)
    assert schedule[-1] == max_runs
    assert list(schedule) == sorted(set(schedule))
    assert all(1 <= boundary <= max_runs for boundary in schedule)


def test_checkpoint_schedule_rejects_nonsense():
    with pytest.raises(AnalysisError):
        checkpoint_schedule(0)
    with pytest.raises(AnalysisError):
        checkpoint_schedule(10, first=0)
    with pytest.raises(AnalysisError):
        checkpoint_schedule(10, growth=1.0)


# ----------------------------------------------------------------------
# The sequential test (Wald SPRT) and interval statistics.
# ----------------------------------------------------------------------


def test_interval_half_width_matches_clopper_pearson():
    from repro.reliability.stats import binomial_confidence_interval

    lower, upper = binomial_confidence_interval(95, 100)
    assert interval_half_width(95, 100) == pytest.approx(
        (upper - lower) / 2
    )


def test_sprt_bounds_are_symmetric_and_ordered():
    accept, reject = sprt_bounds(0.99)
    assert accept > 0 > reject
    assert accept == pytest.approx(-reject)
    with pytest.raises(AnalysisError):
        sprt_bounds(1.0)


def test_sprt_llr_moves_with_the_evidence():
    # All successes push towards accept; all failures towards reject.
    up = sprt_log_likelihood(1000, 1000, 0.99)
    down = sprt_log_likelihood(900, 1000, 0.99)
    assert up > 0 > down


def test_sprt_verdict_decides_clear_cases():
    assert sprt_verdict(9990, 10_000, 0.99) is ComplianceVerdict.MEETS
    assert (
        sprt_verdict(9000, 10_000, 0.99)
        is ComplianceVerdict.VIOLATES
    )
    assert sprt_verdict(99, 100, 0.99) is ComplianceVerdict.UNDECIDED


def test_snapshot_clamps_degenerate_indifference_region():
    # An LRC of exactly 1.0 leaves no room for an indifference
    # region: the communicator stays undecided instead of raising.
    snapshot = snapshot_from_counts(
        10, {"c": (1000, 1000)}, {"c": 1.0}
    )
    diag = snapshot.diagnostics[0]
    assert diag.verdict is ComplianceVerdict.UNDECIDED
    assert diag.llr == 0.0
    assert not snapshot.decided()


def test_snapshot_handles_zero_samples():
    snapshot = snapshot_from_counts(0, {"c": (0, 0)}, {"c": 0.9})
    diag = snapshot.diagnostics[0]
    assert diag.half_width == 0.5
    assert math.isinf(diag.rel_half_width)
    assert diag.verdict is ComplianceVerdict.UNDECIDED


# ----------------------------------------------------------------------
# The stopping rule's decision table.
# ----------------------------------------------------------------------


def _decided_snapshot(run, samples=10_000):
    return snapshot_from_counts(
        run, {"c": (samples, samples)}, {"c": 0.9}
    )


def _undecided_snapshot(run):
    return snapshot_from_counts(run, {"c": (99, 100)}, {"c": 0.99})


def test_stopping_rule_stops_on_sequential_decision():
    rule = StoppingRule(min_runs=8)
    decision = rule.decide(_decided_snapshot(64), max_runs=320)
    assert decision.stop and decision.reason == "converged"
    assert "sequential" in decision.detail["satisfied"]


def test_stopping_rule_respects_min_runs():
    rule = StoppingRule(min_runs=128)
    assert not rule.decide(_decided_snapshot(64), max_runs=320).stop


def test_stopping_rule_exhausts_budget():
    rule = StoppingRule(min_runs=8)
    decision = rule.decide(_undecided_snapshot(320), max_runs=320)
    assert decision.stop and decision.reason == "budget"


def test_stopping_rule_target_width_criterion():
    rule = StoppingRule(
        target_rel_half_width=1e-6, sequential=False, min_runs=8
    )
    # Clearly decided but the interval is still wide: keep going.
    assert not rule.decide(_decided_snapshot(64, 100), max_runs=320).stop
    tight = _decided_snapshot(64, 10_000_000)
    assert rule.decide(tight, max_runs=320).stop


def test_stopping_rule_rejects_nonsense():
    with pytest.raises(AnalysisError):
        StoppingRule(target_rel_half_width=0.0)
    with pytest.raises(AnalysisError):
        StoppingRule(confidence=1.0)
    with pytest.raises(AnalysisError):
        StoppingRule(min_runs=0)
    with pytest.raises(AnalysisError):
        StoppingRule(sequential=False, target_rel_half_width=None)


# ----------------------------------------------------------------------
# The slice/merge event algebra.
# ----------------------------------------------------------------------


def test_slice_events_cover_boundaries_and_slice_end():
    _, batch = three_tank_batch()
    result = batch.executor.execute(
        batch,
        [np.random.SeedSequence(7, spawn_key=(k,)) for k in range(5)],
        6, None,
    )
    events = checkpoint_events_for_slice(result, 10, (4, 12, 20))
    # Boundaries inside (10, 15] plus the unconditional slice end.
    assert [(e.run, e.scheduled) for e in events] == [
        (12, True), (15, False),
    ]
    assert all(event.run_start == 10 for event in events)


def test_merge_rejects_non_contiguous_slices():
    left = CheckpointEvent(run=4, counts=(("c", 4, 4),), run_start=0)
    gap = CheckpointEvent(run=9, counts=(("c", 4, 4),), run_start=6)
    with pytest.raises(AnalysisError, match="contiguous"):
        merge_checkpoint_events([left, gap])


def test_merged_stream_equals_serial_stream():
    checkpoints = (3, 6, 9, 12)
    _, batch = three_tank_batch()

    def slice_events(start, stop):
        children = [
            np.random.SeedSequence(7, spawn_key=(k,))
            for k in range(start, stop)
        ]
        result = SerialExecutor().execute(batch, children, 6, None)
        return checkpoint_events_for_slice(result, start, checkpoints)

    serial = merge_checkpoint_events(slice_events(0, 12))
    sharded = merge_checkpoint_events(
        slice_events(0, 5) + slice_events(5, 12)
    )
    assert [e.to_dict() for e in sharded] == [
        e.to_dict() for e in serial
    ]
    assert [e.run for e in serial] == list(checkpoints)


def test_shard_buffer_stamps_and_rebases_checkpoint_events():
    buffer = ShardEventBuffer(shard=3, run_offset=10)
    buffer.append(
        CheckpointEvent(run=4, counts=(("c", 3, 4),), run_start=0)
    )
    event = buffer.events[0]
    assert event.shard == 3
    assert event.run == 14
    assert event.run_start == 10


# ----------------------------------------------------------------------
# Differential claim (a): adaptive == fixed-run truncation.
# ----------------------------------------------------------------------


@RELAXED
@given(
    systems(),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_adaptive_equals_fixed_batch_truncated_at_stop(system, seed):
    spec, arch, impl = system
    rule = StoppingRule(min_runs=2)

    def batch():
        return BatchSimulator(
            spec, arch, impl,
            faults=BernoulliFaults(arch), seed=seed,
        )

    adaptive = batch().run_adaptive(12, 6, rule=rule)
    fixed = batch().run_batch(adaptive.stopped_at, 6)
    assert adaptive.result.runs == adaptive.stopped_at
    assert_identical(adaptive.result, fixed)


# ----------------------------------------------------------------------
# Differential claim (b): stop parity across executors.
# ----------------------------------------------------------------------


@RELAXED
@given(
    systems(),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=5),
)
def test_stop_point_identical_serial_vs_sharded(system, seed, jobs):
    spec, arch, impl = system
    rule = StoppingRule(min_runs=2)

    def run(executor):
        return BatchSimulator(
            spec, arch, impl,
            faults=BernoulliFaults(arch), seed=seed,
            executor=executor,
        ).run_adaptive(12, 6, rule=rule)

    serial = run(SerialExecutor())
    sharded = run(ShardedExecutor(jobs, processes=False))
    assert sharded.stopped_at == serial.stopped_at
    assert sharded.decision.to_dict() == serial.decision.to_dict()
    assert_identical(serial.result, sharded.result)
    assert [s.to_dict() for s in sharded.snapshots] == [
        s.to_dict() for s in serial.snapshots
    ]


class KillFirstAttempt:
    """Chaos plan: kill every shard's first attempt, then behave."""

    def action(self, shard, attempt):
        return ChaosAction("kill") if attempt == 0 else None


def test_stop_point_survives_supervised_worker_kills():
    rule = StoppingRule(min_runs=8)
    _, serial_batch = three_tank_batch()
    serial = serial_batch.run_adaptive(320, 20, rule=rule)
    executor = SupervisedShardedExecutor(2, chaos=KillFirstAttempt())
    _, supervised_batch = three_tank_batch(executor=executor)
    supervised = supervised_batch.run_adaptive(320, 20, rule=rule)

    assert executor.retry_events, "no kill was injected"
    assert supervised.stopped_at == serial.stopped_at
    assert supervised.decision.reason == serial.decision.reason
    assert_identical(serial.result, supervised.result)


# ----------------------------------------------------------------------
# Differential claim (c): merged streams are monotone.
# ----------------------------------------------------------------------


@RELAXED
@given(
    systems(),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=5),
)
def test_merged_checkpoint_stream_is_monotone(system, seed, jobs):
    spec, arch, impl = system
    checkpoints = checkpoint_schedule(12, first=2)
    marks: list = []
    BatchSimulator(
        spec, arch, impl,
        faults=BernoulliFaults(arch), seed=seed,
        executor=ShardedExecutor(jobs, processes=False),
    ).run_batch(
        12, 6, checkpoints=checkpoints, on_checkpoint=marks.append
    )
    runs = [event.run for event in marks]
    assert runs == sorted(runs) and len(set(runs)) == len(runs)
    assert runs == list(checkpoints)
    for earlier, later in zip(marks, marks[1:]):
        previous = dict(
            (name, (successes, samples))
            for name, successes, samples in earlier.counts
        )
        for name, successes, samples in later.counts:
            assert successes >= previous[name][0]
            assert samples >= previous[name][1]
            assert 0 <= successes <= samples
