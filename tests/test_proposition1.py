"""Monte-Carlo validation of Proposition 1 (SLLN convergence).

Proposition 1 states that for memory-free, race-free specifications,
``lambda_c >= mu_c`` for all communicators implies the long-run
reliable fraction meets every LRC with probability 1.  Simulating a
system under the Bernoulli fault model for many iterations, the
observed prefix averages must converge to the analytic SRGs — and the
implementation's LRC verdicts must match the analysis.
"""

import math

import pytest

from repro.experiments import (
    random_architecture,
    random_implementation,
    random_specification,
)
from repro.reliability import check_reliability, communicator_srgs
from repro.runtime import BernoulliFaults, Simulator


def hoeffding_bound(samples: int, confidence: float = 1e-6) -> float:
    """Two-sided Hoeffding deviation bound for a mean of `samples` bits."""
    return math.sqrt(math.log(2.0 / confidence) / (2.0 * samples))


@pytest.mark.parametrize("seed", range(4))
def test_limit_averages_converge_to_srgs(seed):
    spec = random_specification(seed, layers=2, tasks_per_layer=2,
                                inputs=2)
    arch = random_architecture(seed, hosts=3,
                               reliability_range=(0.85, 0.99))
    impl = random_implementation(spec, arch, seed)
    srgs = communicator_srgs(spec, impl, arch)
    iterations = 4000
    result = Simulator(
        spec, arch, impl, faults=BernoulliFaults(arch), seed=seed
    ).run(iterations)
    averages = result.limit_averages()
    for name in spec.communicators:
        samples = len(result.values[name])
        bound = hoeffding_bound(samples)
        assert abs(averages[name] - srgs[name]) <= bound + 1e-9, (
            f"{name}: observed {averages[name]:.4f} vs SRG "
            f"{srgs[name]:.4f} (bound {bound:.4f})"
        )


@pytest.mark.parametrize("seed", range(4))
def test_analysis_verdict_predicts_simulation(seed):
    spec = random_specification(seed, layers=2, tasks_per_layer=2,
                                inputs=2, lrc_range=(0.6, 0.8))
    arch = random_architecture(seed, hosts=3,
                               reliability_range=(0.9, 0.999))
    impl = random_implementation(spec, arch, seed)
    report = check_reliability(spec, arch, impl)
    result = Simulator(
        spec, arch, impl, faults=BernoulliFaults(arch), seed=seed + 50
    ).run(3000)
    averages = result.limit_averages()
    for verdict in report.verdicts:
        samples = len(result.values[verdict.communicator])
        slack = hoeffding_bound(samples)
        observed = averages[verdict.communicator]
        if verdict.margin > slack:
            assert observed >= verdict.lrc - slack
        elif verdict.margin < -slack:
            assert observed <= verdict.lrc + slack
        # Verdicts within the statistical noise band are not decidable
        # from a finite run; skip them.


def test_running_average_stabilises():
    spec = random_specification(1, layers=1, tasks_per_layer=1, inputs=1)
    arch = random_architecture(1, hosts=2,
                               reliability_range=(0.8, 0.95))
    impl = random_implementation(spec, arch, 1)
    result = Simulator(
        spec, arch, impl, faults=BernoulliFaults(arch), seed=9
    ).run(8000)
    name = sorted(spec.communicators)[-1]
    curve = result.abstract()[name].running_average()
    srg = communicator_srgs(spec, impl, arch)[name]
    # The tail of the running average is much closer than the head.
    head_error = abs(curve[99] - srg)
    tail_error = abs(curve[-1] - srg)
    assert tail_error <= hoeffding_bound(len(curve))
    assert tail_error <= head_error + 0.01
