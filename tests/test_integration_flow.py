"""End-to-end design-flow integration tests.

The full pipeline of the paper's prototype: HTL source -> parse ->
semantic checks -> flatten -> joint schedulability/reliability
analysis -> (if needed) replication synthesis -> E-code generation ->
distributed execution on the E-machine -> trace validation against the
analysis.
"""

import pytest

from repro import check_validity
from repro.experiments import (
    ACTUATORS,
    ThreeTankEnvironment,
    bind_control_functions,
    three_tank_architecture,
    three_tank_htl,
)
from repro.htl import compile_program, generate_ecode
from repro.runtime import BernoulliFaults, Simulator
from repro.runtime.emachine import EMachine
from repro.synthesis import synthesize_replication


def control_functions():
    functions = bind_control_functions()
    functions["t1_hold"] = lambda level: 0.0
    functions["t2_hold"] = lambda level: 0.0
    return functions


def test_full_flow_strict_requirements():
    # 1. Compile the HTL program with the strict LRC of Section 4.
    source = three_tank_htl(lrc_u=0.9975)
    compiled = compile_program(source, functions=control_functions())
    spec = compiled.specification()
    arch = three_tank_architecture()

    # 2. Synthesise a valid replication mapping automatically.
    result = synthesize_replication(spec, arch)
    assert result.valid
    implementation = result.implementation
    assert check_validity(spec, arch, implementation).valid

    # 3. Generate E-code with the schedulability certificate attached.
    ecode = generate_ecode(spec, arch, implementation)
    assert ecode.timeline is not None
    assert ecode.timeline.feasible
    assert ecode.timeline.verify(spec) == []

    # 4. Execute the compiled program closed-loop on the E-machine.
    environment = ThreeTankEnvironment()
    machine = EMachine(
        ecode, spec, arch, implementation,
        environment=environment, actuator_communicators=ACTUATORS,
        seed=2,
    )
    machine.run(100)
    assert environment.plant.level(0) == pytest.approx(0.25, abs=0.01)
    assert environment.plant.level(1) == pytest.approx(0.25, abs=0.01)


def test_full_flow_observed_reliability_matches_analysis():
    source = three_tank_htl(lrc_u=0.9975)
    compiled = compile_program(source, functions=control_functions())
    spec = compiled.specification()
    arch = three_tank_architecture()
    implementation = synthesize_replication(spec, arch).implementation

    simulator = Simulator(
        spec, arch, implementation,
        faults=BernoulliFaults(arch),
        actuator_communicators=ACTUATORS,
        seed=77,
    )
    result = simulator.run(20000)
    # A generous slack absorbs finite-sample noise; the point is that
    # the synthesised mapping really delivers the strict LRC at runtime.
    assert result.satisfies_lrcs(slack=0.002)
    averages = result.limit_averages()
    assert averages["u1"] >= 0.9975 - 0.002
    assert averages["u2"] >= 0.9975 - 0.002


def test_hold_mode_flow():
    # Compile, select the hold modes, and run: the degraded controller
    # simply commands zero flow, and the analysis still passes because
    # the reliability constraints are identical across modes.
    compiled = compile_program(
        three_tank_htl(), functions=control_functions()
    )
    spec = compiled.specification(
        {"Control1": "hold", "Control2": "hold"}
    )
    arch = three_tank_architecture()
    implementation = synthesize_replication(spec, arch).implementation
    environment = ThreeTankEnvironment()
    Simulator(
        spec, arch, implementation,
        environment=environment, actuator_communicators=ACTUATORS,
    ).run(40)
    # Pumps held at zero: the tanks drain below the initial level.
    assert environment.plant.level(0) < 0.2
    assert environment.plant.level(1) < 0.2
