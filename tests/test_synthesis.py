"""Tests for replication synthesis and the two baselines."""

import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.errors import SynthesisError
from repro.experiments import (
    cyclic_specification,
    three_tank_architecture,
    three_tank_spec,
)
from repro.mapping import Implementation
from repro.model import Communicator, Specification, Task
from repro.synthesis import (
    FailurePattern,
    bicriteria_schedule,
    pareto_front,
    priority_replication,
    synthesize_replication,
)
from repro.synthesis.priority import surviving_tasks
from repro.validity import check_validity


# -- LRC-driven synthesis ---------------------------------------------------


def test_synthesis_baseline_three_tank(tank_spec, tank_arch):
    result = synthesize_replication(tank_spec, tank_arch)
    assert result.valid
    assert result.reliability.reliable
    assert result.schedulability.schedulable
    # The relaxed requirement (0.99) is met without replication.
    assert result.replication_count == len(tank_spec.tasks)


def test_synthesis_strict_three_tank(tank_spec_strict, tank_arch):
    result = synthesize_replication(tank_spec_strict, tank_arch)
    assert result.valid
    # The strict requirement (0.9975 on u1/u2) can be met two ways:
    # replicating the controllers (scenario 1, 8 task replicas) or
    # duplicating the sensors (scenario 2, 6 task replicas).  The
    # synthesiser discovers the cheaper scenario 2 automatically.
    assert result.replication_count == len(tank_spec_strict.tasks)
    assert len(result.implementation.sensors_of("s1")) >= 2
    assert len(result.implementation.sensors_of("s2")) >= 2


def test_synthesised_mapping_is_valid_end_to_end(
    tank_spec_strict, tank_arch
):
    result = synthesize_replication(tank_spec_strict, tank_arch)
    report = check_validity(
        tank_spec_strict, tank_arch, result.implementation
    )
    assert report.valid


def test_synthesis_unreachable_lrc_fails():
    # An LRC of exactly 1.0 on a task-written communicator can never be
    # met by hosts with reliability < 1.
    spec = three_tank_spec(lrc_u=1.0)
    arch = three_tank_architecture()
    with pytest.raises(SynthesisError, match="no replication mapping"):
        synthesize_replication(spec, arch)


def test_synthesis_sensor_replication():
    # An input LRC above a single sensor's reliability forces sensor
    # replication.
    spec = three_tank_spec(lrc_s=0.99999)
    arch = three_tank_architecture()
    result = synthesize_replication(spec, arch)
    assert result.valid
    assert len(result.implementation.sensors_of("s1")) >= 2


def test_synthesis_without_schedulability_check(tank_spec, tank_arch):
    result = synthesize_replication(
        tank_spec, tank_arch, require_schedulable=False
    )
    assert result.schedulability is None
    assert result.reliability.reliable


def test_synthesis_respects_max_replicas(tank_spec, tank_arch):
    result = synthesize_replication(tank_spec, tank_arch, max_replicas=1)
    for task in tank_spec.tasks:
        assert len(result.implementation.hosts_of(task)) == 1


def test_synthesis_rejects_unsafe_cycles():
    spec = cyclic_specification("series")
    arch = three_tank_architecture()
    with pytest.raises(SynthesisError, match="cycle"):
        synthesize_replication(spec, arch)


def test_synthesis_infeasible_schedule_detected():
    comms = [
        Communicator("a", period=10, lrc=0.9),
        Communicator("b", period=10, lrc=0.9),
    ]
    tasks = [Task("t", [("a", 0)], [("b", 1)])]
    spec = Specification(comms, tasks)
    arch = Architecture(
        hosts=[Host("h", 0.99)],
        sensors=[Sensor("s", 0.99)],
        metrics=ExecutionMetrics(default_wcet=20, default_wctt=1),
    )
    with pytest.raises(SynthesisError):
        synthesize_replication(spec, arch)


def test_synthesis_explored_counter(tank_spec, tank_arch):
    result = synthesize_replication(tank_spec, tank_arch)
    assert result.explored >= len(tank_spec.tasks)


# -- bi-criteria baseline ----------------------------------------------------


def test_bicriteria_theta_zero_minimises_length(tank_spec, tank_arch):
    fast = bicriteria_schedule(tank_spec, tank_arch, theta=0.0)
    safe = bicriteria_schedule(tank_spec, tank_arch, theta=1.0)
    assert fast.makespan <= safe.makespan
    assert safe.system_reliability >= fast.system_reliability


def test_bicriteria_theta_one_replicates_everything(tank_spec, tank_arch):
    safe = bicriteria_schedule(tank_spec, tank_arch, theta=1.0)
    for task in tank_spec.tasks:
        assert len(safe.implementation.hosts_of(task)) == 3


def test_bicriteria_theta_bounds(tank_spec, tank_arch):
    with pytest.raises(SynthesisError):
        bicriteria_schedule(tank_spec, tank_arch, theta=1.5)


def test_bicriteria_max_replicas(tank_spec, tank_arch):
    result = bicriteria_schedule(
        tank_spec, tank_arch, theta=1.0, max_replicas=2
    )
    for task in tank_spec.tasks:
        assert len(result.implementation.hosts_of(task)) <= 2


def test_bicriteria_rejects_cyclic_dataflow(tank_arch):
    # A two-task feedback loop makes the task data-flow graph cyclic
    # (a single task reading its own output does not: the dependency
    # crosses the period boundary and list scheduling handles it).
    comms = [
        Communicator("b", period=10, lrc=0.5),
        Communicator("c", period=10, lrc=0.5),
    ]
    tasks = [
        Task("t1", [("b", 0)], [("c", 1)], model="independent",
             defaults={"b": 0.0}),
        Task("t2", [("c", 1)], [("b", 2)], model="independent",
             defaults={"c": 0.0}),
    ]
    spec = Specification(comms, tasks)
    with pytest.raises(SynthesisError, match="acyclic"):
        bicriteria_schedule(spec, tank_arch, theta=0.5)


def test_pareto_front_is_staircase(tank_spec, tank_arch):
    front = pareto_front(
        tank_spec, tank_arch, thetas=(0.0, 0.25, 0.5, 0.75, 1.0)
    )
    assert front
    for earlier, later in zip(front, front[1:]):
        assert earlier.makespan <= later.makespan
        assert earlier.system_reliability <= later.system_reliability
    # No element dominates another.
    for a in front:
        for b in front:
            if a is not b:
                assert not a.dominates(b)


def test_dominates_relation():
    from repro.synthesis import BiCriteriaResult

    impl = Implementation({"t": {"h"}})
    fast = BiCriteriaResult(0.0, impl, makespan=10,
                            system_reliability=0.9)
    slow_safe = BiCriteriaResult(1.0, impl, makespan=20,
                                 system_reliability=0.99)
    better = BiCriteriaResult(0.5, impl, makespan=10,
                              system_reliability=0.95)
    assert better.dominates(fast)
    assert not fast.dominates(slow_safe)
    assert not slow_safe.dominates(fast)


# -- priority baseline --------------------------------------------------------


def test_priority_replication_survives_patterns(tank_spec, tank_arch):
    priorities = {name: 2 for name in tank_spec.tasks}
    priorities["estimate1"] = 0  # may die with any fault
    priorities["estimate2"] = 0
    patterns = [
        FailurePattern({"h1"}, priority=1),
        FailurePattern({"h2"}, priority=1),
        FailurePattern({"h3"}, priority=1),
    ]
    impl = priority_replication(tank_spec, tank_arch, priorities, patterns)
    for pattern in patterns:
        alive = surviving_tasks(impl, pattern)
        for name, priority in priorities.items():
            if priority > pattern.priority:
                assert name in alive


def test_priority_low_priority_task_single_replica(tank_spec, tank_arch):
    priorities = {name: 0 for name in tank_spec.tasks}
    patterns = [FailurePattern({"h1"}, priority=5)]
    impl = priority_replication(tank_spec, tank_arch, priorities, patterns)
    for name in tank_spec.tasks:
        assert len(impl.hosts_of(name)) == 1


def test_priority_missing_task_priority_rejected(tank_spec, tank_arch):
    with pytest.raises(SynthesisError, match="no priority"):
        priority_replication(tank_spec, tank_arch, {}, [])


def test_priority_unsurvivable_pattern_rejected(tank_spec, tank_arch):
    priorities = {name: 2 for name in tank_spec.tasks}
    pattern = FailurePattern({"h1", "h2", "h3"}, priority=1)
    with pytest.raises(SynthesisError, match="no host remains"):
        priority_replication(
            tank_spec, tank_arch, priorities, [pattern]
        )


def test_failure_pattern_validation():
    with pytest.raises(SynthesisError):
        FailurePattern([], priority=1)


def test_priority_two_host_pattern_needs_survivor(tank_spec, tank_arch):
    priorities = {name: 2 for name in tank_spec.tasks}
    patterns = [FailurePattern({"h1", "h2"}, priority=1)]
    impl = priority_replication(tank_spec, tank_arch, priorities, patterns)
    for name in tank_spec.tasks:
        assert "h3" in impl.hosts_of(name)
