"""Tests for the statistical LRC compliance machinery."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.reliability.stats import (
    ComplianceVerdict,
    binomial_confidence_interval,
    lrc_test,
    required_samples,
)
from repro.reliability.traces import AbstractTrace


def trace_with(successes: int, samples: int) -> AbstractTrace:
    bits = np.zeros(samples, dtype=np.int8)
    bits[:successes] = 1
    return AbstractTrace("c", bits)


# -- confidence intervals -----------------------------------------------------


def test_interval_contains_observed_fraction():
    lower, upper = binomial_confidence_interval(80, 100)
    assert lower < 0.8 < upper


def test_interval_edges():
    lower, upper = binomial_confidence_interval(0, 50)
    assert lower == 0.0
    assert upper < 0.2
    lower, upper = binomial_confidence_interval(50, 50)
    assert upper == 1.0
    assert lower > 0.8


def test_interval_narrows_with_samples():
    small = binomial_confidence_interval(80, 100)
    large = binomial_confidence_interval(8000, 10000)
    assert (large[1] - large[0]) < (small[1] - small[0])


def test_interval_validation():
    with pytest.raises(AnalysisError):
        binomial_confidence_interval(1, 0)
    with pytest.raises(AnalysisError):
        binomial_confidence_interval(1, 10, confidence=1.5)


# -- the compliance test --------------------------------------------------------


def test_clear_violation_detected():
    result = lrc_test(trace_with(700, 1000), lrc=0.9)
    assert result.verdict is ComplianceVerdict.VIOLATES
    assert result.p_value_violation < 0.01
    assert result.observed == 0.7


def test_clear_compliance_detected():
    result = lrc_test(trace_with(995, 1000), lrc=0.9)
    assert result.verdict is ComplianceVerdict.MEETS
    assert result.p_value_compliance < 0.01


def test_boundary_case_undecided():
    # Exactly at the LRC (the alternating-mapping situation): neither
    # hypothesis can be rejected.
    result = lrc_test(trace_with(900, 1000), lrc=0.9)
    assert result.verdict is ComplianceVerdict.UNDECIDED


def test_small_samples_undecided():
    # 9/10 reliable vs LRC 0.8: far too little data to decide.
    result = lrc_test(trace_with(9, 10), lrc=0.8)
    assert result.verdict is ComplianceVerdict.UNDECIDED


def test_validation():
    with pytest.raises(AnalysisError, match="empty"):
        lrc_test(AbstractTrace("c", np.array([], dtype=np.int8)), 0.9)
    with pytest.raises(AnalysisError, match="LRC"):
        lrc_test(trace_with(5, 10), lrc=0.0)


def test_confidence_interval_attached():
    result = lrc_test(trace_with(950, 1000), lrc=0.9)
    lower, upper = result.confidence_interval
    assert lower < 0.95 < upper


# -- sample sizing ----------------------------------------------------------------


def test_required_samples_scales_inversely_with_margin_squared():
    wide = required_samples(0.9, margin=0.01)
    narrow = required_samples(0.9, margin=0.001)
    assert narrow == pytest.approx(wide * 100, rel=0.01)


def test_required_samples_enough_in_practice():
    # Simulate a p = lrc + margin coin and verify the recommended
    # sample size yields a MEETS verdict.
    lrc, margin = 0.9, 0.02
    samples = required_samples(lrc, margin, confidence=0.99)
    rng = np.random.default_rng(0)
    bits = (rng.random(samples) < lrc + margin).astype(np.int8)
    result = lrc_test(AbstractTrace("c", bits), lrc, confidence=0.95)
    assert result.verdict is ComplianceVerdict.MEETS


def test_required_samples_validation():
    with pytest.raises(AnalysisError):
        required_samples(0.9, margin=0.0)
    with pytest.raises(AnalysisError):
        required_samples(0.9, margin=0.1, confidence=0.0)


# -- integration with the simulator -----------------------------------------------


def test_simulated_system_statistical_verdicts():
    from repro.experiments import (
        scenario1_implementation,
        three_tank_architecture,
        three_tank_spec,
        bind_control_functions,
    )
    from repro.runtime import BernoulliFaults, Simulator

    spec = three_tank_spec(
        lrc_u=0.9975, functions=bind_control_functions()
    )
    arch = three_tank_architecture()
    result = Simulator(
        spec, arch, scenario1_implementation(),
        faults=BernoulliFaults(arch), seed=8,
    ).run(8000)
    traces = result.abstract()
    # u1's SRG (0.998000002) sits barely above the LRC 0.9975 — with
    # 40 000 samples the test should not call a violation; whether it
    # proves compliance depends on luck, so accept either MEETS or
    # UNDECIDED.
    verdict = lrc_test(traces["u1"], 0.9975).verdict
    assert verdict is not ComplianceVerdict.VIOLATES
    # s1 vs a generous LRC: clearly meets.
    assert (
        lrc_test(traces["s1"], 0.99).verdict is ComplianceVerdict.MEETS
    )
