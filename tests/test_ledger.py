"""Tests for the persistent run ledger (ISSUE 5 tentpole):
content hashes, the append-only JSONL store, diff, and regression
checking."""

import json

import pytest

from repro.errors import ReproError
from repro.experiments import (
    ACTUATORS,
    baseline_implementation,
    bind_control_functions,
    scenario1_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.experiments.three_tank_system import ThreeTankEnvironment
from repro.runtime import BatchSimulator, BernoulliFaults, Simulator
from repro.telemetry import (
    RunLedger,
    RunRecord,
    check_regression,
    content_hash,
    derive_run_id,
    diff_records,
    record_from_result,
)
from repro.telemetry.ledger import (
    render_diff,
    render_listing,
    render_record,
)


def make_record(run_id="s1", rates=None, lrcs=None, **overrides):
    kwargs = dict(
        run_id=run_id,
        command="scalar",
        seed=1,
        runs=1,
        iterations=10,
        spec_hash="aaa",
        arch_hash="bbb",
        impl_hash="ccc",
        rates=rates if rates is not None else {"u1": 0.999, "u2": 0.995},
        lrcs=lrcs if lrcs is not None else {"u1": 0.99, "u2": 0.99},
        recorded_at=1000.0,
    )
    kwargs.update(overrides)
    return RunRecord(**kwargs)


# ----------------------------------------------------------------------
# Content hashing and record round-trips.
# ----------------------------------------------------------------------


def test_content_hash_is_canonical_and_sensitive():
    assert content_hash({"a": 1, "b": 2}) == content_hash(
        {"b": 2, "a": 1}
    )
    assert content_hash({"a": 1}) != content_hash({"a": 2})
    assert len(content_hash({"a": 1})) == 12


def test_content_hash_normalizes_int_vs_float():
    # A design's cache key must not depend on whether a client ships
    # "period": 40 or "period": 40.0 — the service memo keys on it.
    assert content_hash({"period": 40}) == content_hash(
        {"period": 40.0}
    )
    assert content_hash([1, 2.0, {"x": 3.0}]) == content_hash(
        [1.0, 2, {"x": 3}]
    )
    # Nested inside realistic design documents, with key reordering.
    left = {
        "communicators": [
            {"name": "u1", "period": 500, "lrc": 0.99, "init": 0.0}
        ],
        "metrics": {"default_wcet": 1.0},
    }
    right = {
        "metrics": {"default_wcet": 1},
        "communicators": [
            {"lrc": 0.99, "init": 0, "period": 500.0, "name": "u1"}
        ],
    }
    assert content_hash(left) == content_hash(right)
    # But genuinely different numbers still differ...
    assert content_hash({"lrc": 0.99}) != content_hash({"lrc": 0.999})
    # ...and bools keep their identity apart from 0/1.
    assert content_hash({"x": True}) != content_hash({"x": 1})
    assert content_hash({"x": False}) != content_hash({"x": 0})


def test_run_record_round_trips():
    record = make_record(metrics={"counter:x": 3})
    restored = RunRecord.from_dict(
        json.loads(json.dumps(record.to_dict()))
    )
    assert restored == record


def test_malformed_record_raises():
    with pytest.raises(ReproError, match="malformed ledger record"):
        RunRecord.from_dict({"command": "scalar"})  # no run_id
    with pytest.raises(ReproError, match="malformed ledger record"):
        RunRecord.from_dict({"run_id": "s1", "rates": {"u1": "nan?x"}})


def test_margins_and_min_margin():
    record = make_record(
        rates={"u1": 0.999, "u2": 0.985}, lrcs={"u1": 0.99, "u2": 0.99}
    )
    margins = record.margins()
    assert margins["u1"] == pytest.approx(0.009)
    assert margins["u2"] == pytest.approx(-0.005)
    name, value = record.min_margin()
    assert name == "u2" and value == pytest.approx(-0.005)
    assert make_record(rates={}, lrcs={}).min_margin() is None


# ----------------------------------------------------------------------
# The append-only store.
# ----------------------------------------------------------------------


def test_ledger_append_and_records(tmp_path):
    ledger = RunLedger(tmp_path / "runs")
    assert ledger.records() == []
    assert ledger.append(make_record("s1")) == 0
    assert ledger.append(make_record("s2")) == 1
    records = ledger.records()
    assert [r.run_id for r in records] == ["s1", "s2"]
    assert [r.entry for r in records] == [0, 1]
    # One JSON document per line, append-only.
    lines = (tmp_path / "runs" / "ledger.jsonl").read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["run_id"] == "s1"


def _append_worker(root, worker, count):
    ledger = RunLedger(root)
    for index in range(count):
        ledger.append(make_record(f"w{worker}-{index}"))


def test_ledger_concurrent_appends_do_not_interleave(tmp_path):
    # PR 7 satellite: the advisory file lock must keep concurrent
    # daemon jobs and CLI runs from interleaving JSONL lines.
    import multiprocessing

    context = multiprocessing.get_context("fork")
    workers, per_worker = 4, 12
    processes = [
        context.Process(
            target=_append_worker, args=(tmp_path / "runs", w, per_worker)
        )
        for w in range(workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
        assert process.exitcode == 0
    lines = (
        (tmp_path / "runs" / "ledger.jsonl").read_text().splitlines()
    )
    assert len(lines) == workers * per_worker
    # Every line is whole, valid JSON — no torn or interleaved writes.
    run_ids = [json.loads(line)["run_id"] for line in lines]
    assert sorted(run_ids) == sorted(
        f"w{w}-{i}" for w in range(workers) for i in range(per_worker)
    )
    # And the reader assigns dense, unique entry indices.
    records = RunLedger(tmp_path / "runs").records()
    assert [record.entry for record in records] == list(
        range(workers * per_worker)
    )


def test_ledger_resolve_addressing(tmp_path):
    ledger = RunLedger(tmp_path)
    for run_id in ("s1", "s2", "s1"):
        ledger.append(make_record(run_id))
    assert ledger.resolve("latest").entry == 2
    assert ledger.resolve("#0").run_id == "s1"
    assert ledger.resolve("1").run_id == "s2"
    assert ledger.resolve("-1").entry == 2
    # A bare run id resolves to its latest matching entry.
    assert ledger.resolve("s1").entry == 2
    with pytest.raises(ReproError, match="out of range"):
        ledger.resolve("#9")
    with pytest.raises(ReproError, match="no ledger entry matches"):
        ledger.resolve("nope")


def test_ledger_resolve_on_empty_ledger(tmp_path):
    with pytest.raises(ReproError, match="is empty"):
        RunLedger(tmp_path / "void").resolve("latest")


def test_ledger_quarantines_corrupt_lines(tmp_path):
    ledger = RunLedger(tmp_path)
    ledger.append(make_record("s1"))
    ledger.append(make_record("s2"))
    with ledger.path.open("a") as handle:
        handle.write("{not json\n")
    # strict mode still refuses to silently skip damage ...
    with pytest.raises(ReproError, match="corrupt line"):
        ledger.records(strict=True)
    # ... the default quarantines it and keeps the intact records.
    records = ledger.records()
    assert [record.run_id for record in records] == ["s1", "s2"]
    assert ledger.quarantined == 1
    assert "{not json" in ledger.corrupt_path.read_text()
    # The rewritten ledger is clean: appends keep dense indices.
    index = ledger.append(make_record("s3"))
    assert index == 2
    assert len(ledger.records(strict=True)) == 3


# ----------------------------------------------------------------------
# Diff and regression.
# ----------------------------------------------------------------------


def test_diff_records_sorted_worst_first():
    baseline = make_record(
        rates={"u1": 0.999, "u2": 0.999}, lrcs={"u1": 0.99, "u2": 0.99}
    )
    candidate = make_record(
        rates={"u1": 0.9995, "u2": 0.95}, lrcs={"u1": 0.99, "u2": 0.99}
    )
    rows = diff_records(baseline, candidate)
    assert [row.communicator for row in rows] == ["u2", "u1"]
    assert rows[0].delta == pytest.approx(-0.049)
    assert rows[1].delta == pytest.approx(0.0005)


def test_diff_handles_disjoint_communicators():
    baseline = make_record(rates={"u1": 0.999}, lrcs={"u1": 0.99})
    candidate = make_record(rates={"w9": 0.9}, lrcs={"w9": 0.8})
    rows = {r.communicator: r for r in diff_records(baseline, candidate)}
    assert rows["u1"].delta is None
    assert rows["w9"].delta is None


def test_check_regression_thresholds():
    baseline = make_record(
        rates={"u1": 0.999, "u2": 0.999}, lrcs={"u1": 0.99, "u2": 0.99}
    )
    ok = make_record(
        rates={"u1": 0.9985, "u2": 0.9995},
        lrcs={"u1": 0.99, "u2": 0.99},
    )
    assert check_regression(baseline, ok, threshold=0.001) == []
    bad = make_record(
        rates={"u1": 0.98, "u2": 0.999}, lrcs={"u1": 0.99, "u2": 0.99}
    )
    regressions = check_regression(baseline, bad, threshold=0.001)
    assert [r.communicator for r in regressions] == ["u1"]
    assert regressions[0].drop == pytest.approx(0.019)
    # A looser threshold tolerates the same drop.
    assert check_regression(baseline, bad, threshold=0.05) == []


# ----------------------------------------------------------------------
# Building records from simulation results.
# ----------------------------------------------------------------------


def scalar_result(implementation=None, seed=11, iterations=20):
    spec = three_tank_spec(
        lrc_u=0.99, functions=bind_control_functions()
    )
    return spec, Simulator(
        spec,
        three_tank_architecture(),
        implementation or baseline_implementation(),
        environment=ThreeTankEnvironment(),
        faults=BernoulliFaults(three_tank_architecture()),
        actuator_communicators=ACTUATORS,
        seed=seed,
    ).run(iterations)


def test_record_from_scalar_result():
    spec, result = scalar_result()
    record = record_from_result(
        spec,
        three_tank_architecture(),
        baseline_implementation(),
        result,
        run_id=derive_run_id(11),
        command="scalar",
        seed=11,
    )
    assert record.iterations == 20 and record.runs == 1
    assert record.rates == {
        name: pytest.approx(value)
        for name, value in result.limit_averages().items()
    }
    # Ledger margins agree with the result's own empirical margins.
    margins = result.empirical_margins()
    for name, value in record.margins().items():
        assert value == pytest.approx(margins[name])
    for digest in (record.spec_hash, record.arch_hash, record.impl_hash):
        assert len(digest) == 12


def test_record_from_batch_result_pools_rates():
    spec = three_tank_spec(lrc_u=0.99)
    batch = BatchSimulator(
        spec,
        three_tank_architecture(),
        baseline_implementation(),
        faults=BernoulliFaults(three_tank_architecture()),
        seed=5,
    )
    result = batch.run_batch(4, 10)
    record = record_from_result(
        spec,
        three_tank_architecture(),
        baseline_implementation(),
        result,
        run_id=derive_run_id(5),
        command="batch",
        seed=5,
        runs=4,
    )
    assert record.executor == result.executor
    margins = result.empirical_margins()
    for name, value in record.margins().items():
        assert value == pytest.approx(margins[name])


def test_implementation_change_changes_hash():
    spec, result = scalar_result()
    common = dict(run_id="s11", command="scalar", seed=11)
    arch = three_tank_architecture()
    a = record_from_result(
        spec, arch, baseline_implementation(), result, **common
    )
    b = record_from_result(
        spec, arch, scenario1_implementation(), result, **common
    )
    assert a.impl_hash != b.impl_hash
    assert a.spec_hash == b.spec_hash
    assert a.arch_hash == b.arch_hash


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------


def test_render_record_marks_low_margins():
    record = make_record(
        rates={"u1": 0.999, "u2": 0.985}, lrcs={"u1": 0.99, "u2": 0.99}
    )
    record.entry = 0
    text = render_record(record)
    assert "[ok ] u1" in text
    assert "[LOW] u2" in text
    assert "margin -0.005000" in text


def test_render_listing_and_diff(tmp_path):
    ledger = RunLedger(tmp_path)
    ledger.append(
        make_record("s1", rates={"u1": 0.999}, lrcs={"u1": 0.99})
    )
    ledger.append(
        make_record(
            "s2",
            rates={"u1": 0.95},
            lrcs={"u1": 0.99},
            impl_hash="ddd",
        )
    )
    records = ledger.records()
    listing = render_listing(records)
    assert "#0" in listing and "#1" in listing
    assert "min margin" in listing
    assert render_listing([]) == "ledger is empty"
    diff = render_diff(records[0], records[1])
    assert "#0 (s1) -> #1 (s2)" in diff
    assert "note: implementation changed" in diff
    assert "[-0.049000]" in diff
