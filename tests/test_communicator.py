"""Tests for communicator declarations."""

import pytest

from repro.errors import SpecificationError
from repro.model import Communicator


def test_basic_declaration():
    comm = Communicator("c", period=10, lrc=0.9, ctype=float, init=1.5)
    assert comm.name == "c"
    assert comm.period == 10
    assert comm.lrc == 0.9
    assert comm.init == 1.5


def test_default_lrc_is_one():
    assert Communicator("c", period=5).lrc == 1.0


def test_empty_name_rejected():
    with pytest.raises(SpecificationError, match="non-empty"):
        Communicator("", period=10)


@pytest.mark.parametrize("period", [0, -1, -10])
def test_non_positive_period_rejected(period):
    with pytest.raises(SpecificationError, match="period"):
        Communicator("c", period=period)


def test_non_integer_period_rejected():
    with pytest.raises(SpecificationError, match="period"):
        Communicator("c", period=2.5)


@pytest.mark.parametrize("lrc", [0.0, -0.5, 1.1, 2.0])
def test_lrc_outside_unit_interval_rejected(lrc):
    with pytest.raises(SpecificationError, match="LRC"):
        Communicator("c", period=10, lrc=lrc)


def test_lrc_of_exactly_one_allowed():
    assert Communicator("c", period=10, lrc=1.0).lrc == 1.0


def test_instance_time():
    comm = Communicator("c", period=7)
    assert comm.instance_time(0) == 0
    assert comm.instance_time(3) == 21


def test_negative_instance_rejected():
    with pytest.raises(SpecificationError, match="instance"):
        Communicator("c", period=7).instance_time(-1)


def test_with_lrc_returns_modified_copy():
    original = Communicator("c", period=10, lrc=0.9, init=2.0)
    changed = original.with_lrc(0.99)
    assert changed.lrc == 0.99
    assert changed.period == original.period
    assert changed.init == original.init
    assert original.lrc == 0.9  # unchanged


def test_communicators_are_hashable_and_frozen():
    comm = Communicator("c", period=10)
    assert hash(comm) == hash(Communicator("c", period=10))
    with pytest.raises(AttributeError):
        comm.period = 20
