"""Tests for the DOT exporters."""

import re

from repro.dot import (
    dependency_graph_dot,
    mapping_dot,
    specification_graph_dot,
)
from repro.experiments import (
    baseline_implementation,
    fig1_specification,
    three_tank_architecture,
    three_tank_spec,
)


def balanced_braces(text: str) -> bool:
    depth = 0
    for char in text:
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


def test_specification_graph_dot_fig1():
    text = specification_graph_dot(fig1_specification())
    assert text.startswith("digraph specification {")
    assert balanced_braces(text)
    # Task vertex as a box.
    assert '"t" [shape=box' in text
    # The read edge of (c2, 1).
    assert "\"('c2', 1)\" -> \"t\";" in text
    # A persistence edge is dashed.
    assert "[style=dashed]" in text
    # Instance labels carry access times.
    assert "c2[1]\\n@3" in text


def test_dependency_graph_dot_three_tank():
    spec = three_tank_spec()
    text = dependency_graph_dot(spec)
    assert balanced_braces(text)
    # Inputs shaded.
    assert re.search(r'"s1" \[label="s1.*fillcolor', text)
    # Task-labelled edge.
    assert '"l1" -> "u1" [label="t1"];' in text
    # LRCs embedded in node labels.
    assert "lrc=0.99" in text


def test_mapping_dot_three_tank():
    text = mapping_dot(
        three_tank_spec(),
        three_tank_architecture(),
        baseline_implementation(),
    )
    assert balanced_braces(text)
    # Host clusters with reliabilities.
    assert 'label="h1 (hrel=0.999)"' in text
    # Replication node inside a cluster.
    assert '"t1@h1" [shape=box, label="t1"];' in text
    # Sensor feeding its reader on its host.
    assert '"sensor sen1" -> "read1@h3" [label="s1"];' in text
    # Data flow between replications.
    assert '"read1@h3" -> "t1@h1" [label="l1"];' in text


def test_mapping_dot_replicated():
    from repro.experiments import scenario1_implementation

    text = mapping_dot(
        three_tank_spec(),
        three_tank_architecture(),
        scenario1_implementation(),
    )
    # Replicated controller appears in both host clusters.
    assert '"t1@h1"' in text
    assert '"t1@h2"' in text
    # Writer fan-out reaches both replicas.
    assert '"read1@h3" -> "t1@h2" [label="l1"];' in text
