"""Tests for HTL semantic analysis and flattening."""

import pytest

from repro.errors import HTLSemanticError
from repro.experiments import (
    THREE_TANK_HTL,
    baseline_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.htl import compile_program, parse_program
from repro.htl.compiler import switching_preserves_reliability
from repro.mapping import Implementation
from repro.model import FailureModel


def wrap(body):
    return f"program P {{ {body} }}"


GOOD = """
program P {
  communicator a : float period 10 init 0.0 lrc 0.9 ;
  communicator b : float period 10 init 0.0 lrc 0.9 ;
  module M start m {
    task t input (a[0]) output (b[1]) function "f" ;
    mode m period 10 { invoke t ; }
  }
}
"""


def test_compile_good_program():
    compiled = compile_program(GOOD, functions={"f": lambda a: a})
    spec = compiled.specification()
    assert set(spec.tasks) == {"t"}
    assert spec.communicators["a"].lrc == 0.9
    assert spec.period() == 10


def test_compile_accepts_parsed_ast():
    ast = parse_program(GOOD)
    compiled = compile_program(ast)
    assert compiled.program.name == "P"


def test_missing_function_binding_allowed_for_analysis():
    compiled = compile_program(GOOD)  # no registry
    spec = compiled.specification()
    assert spec.tasks["t"].function is None


@pytest.mark.parametrize(
    "body, message",
    [
        # duplicate communicator
        ("communicator a : float period 10 init 0.0 ;"
         "communicator a : float period 10 init 0.0 ;",
         "duplicate communicator"),
        # module sharing a communicator name
        ("communicator a : float period 10 init 0.0 ;"
         "module a { mode m period 10 { } }",
         "duplicate name"),
        # module without modes
        ("communicator a : float period 10 init 0.0 ;"
         "module M { }",
         "no modes"),
        # unknown communicator in ports
        ("communicator a : float period 10 init 0.0 ;"
         "module M { task t input (zz[0]) output (a[1]) ;"
         "  mode m period 10 { invoke t ; } }",
         "unknown communicator"),
        # default for a non-input
        ("communicator a : float period 10 init 0.0 ;"
         "communicator b : float period 10 init 0.0 ;"
         "module M { task t input (a[0]) output (b[1])"
         "  model independent default (b = 0.0) ;"
         "  mode m period 10 { invoke t ; } }",
         "not an input"),
        # invoking an undeclared task
        ("communicator a : float period 10 init 0.0 ;"
         "module M { mode m period 10 { invoke ghost ; } }",
         "not declared"),
        # double invocation
        ("communicator a : float period 10 init 0.0 ;"
         "communicator b : float period 10 init 0.0 ;"
         "module M { task t input (a[0]) output (b[1]) ;"
         "  mode m period 10 { invoke t ; invoke t ; } }",
         "invoked twice"),
        # period not a multiple of an accessed communicator period
        ("communicator a : float period 7 init 0.0 ;"
         "communicator b : float period 10 init 0.0 ;"
         "module M { task t input (a[0]) output (b[1]) ;"
         "  mode m period 10 { invoke t ; } }",
         "not a multiple"),
        # write beyond the mode period
        ("communicator a : float period 10 init 0.0 ;"
         "communicator b : float period 10 init 0.0 ;"
         "module M { task t input (a[0]) output (b[3]) ;"
         "  mode m period 20 { invoke t ; } }",
         "after the mode period"),
        # unknown switch target
        ("communicator a : float period 10 init 0.0 ;"
         "module M { mode m period 10 { switch to zz when \"c\" ; } }",
         "switch target"),
        # missing start mode
        ("communicator a : float period 10 init 0.0 ;"
         "module M start zz { mode m period 10 { } }",
         "start mode"),
        # duplicate mode
        ("communicator a : float period 10 init 0.0 ;"
         "module M { mode m period 10 { } mode m period 10 { } }",
         "duplicate mode"),
        # type mismatch in init
        ("communicator a : int period 10 init 1.5 ;",
         "expected an int"),
        # type mismatch in default
        ("communicator a : bool period 10 init true ;"
         "communicator b : float period 10 init 0.0 ;"
         "module M { task t input (a[0]) output (b[1])"
         "  model independent default (a = 3) ;"
         "  mode m period 10 { invoke t ; } }",
         "expected a bool"),
    ],
)
def test_semantic_errors(body, message):
    with pytest.raises(HTLSemanticError, match=message):
        compile_program(wrap(body))


def test_mode_selection_unknown_module():
    compiled = compile_program(GOOD)
    with pytest.raises(HTLSemanticError, match="unknown module"):
        compiled.specification({"Zz": "m"})


def test_mode_selection_unknown_mode():
    compiled = compile_program(GOOD)
    with pytest.raises(HTLSemanticError, match="no mode"):
        compiled.specification({"M": "zz"})


def test_mismatched_mode_periods_rejected():
    source = """
    program P {
      communicator a : float period 10 init 0.0 ;
      communicator b : float period 10 init 0.0 ;
      communicator c : float period 25 init 0.0 ;
      module M1 {
        task t1 input (a[0]) output (b[1]) ;
        mode m period 10 { invoke t1 ; }
      }
      module M2 {
        task t2 input (c[0]) output (c[2]) ;
        mode m period 50 { invoke t2 ; }
      }
    }
    """
    compiled = compile_program(source)
    with pytest.raises(HTLSemanticError, match="different periods"):
        compiled.specification()


def test_condition_registry():
    compiled = compile_program(
        GOOD, conditions={"cond": lambda values: True}
    )
    assert compiled.condition("cond")({}) is True
    with pytest.raises(HTLSemanticError, match="condition registry"):
        compiled.condition("missing")


# -- the 3TS program ---------------------------------------------------------


def test_three_tank_program_flattens_to_handwritten_spec():
    compiled = compile_program(THREE_TANK_HTL)
    spec = compiled.specification()
    reference = three_tank_spec()
    assert set(spec.tasks) == set(reference.tasks)
    assert set(spec.communicators) == set(reference.communicators)
    for name, comm in reference.communicators.items():
        assert spec.communicators[name].period == comm.period
        assert spec.communicators[name].lrc == pytest.approx(comm.lrc)
    for name, task in reference.tasks.items():
        assert spec.tasks[name].inputs == task.inputs
        assert spec.tasks[name].outputs == task.outputs
        assert spec.tasks[name].model is task.model


def test_three_tank_start_selection():
    compiled = compile_program(THREE_TANK_HTL)
    selection = compiled.start_selection()
    assert selection == {
        "Sensing": "main",
        "Control1": "regulate",
        "Control2": "regulate",
        "Estimation": "main",
    }


def test_three_tank_mode_selections_enumerated():
    compiled = compile_program(THREE_TANK_HTL)
    selections = list(compiled.mode_selections())
    # Control1 and Control2 each have two modes -> 4 combinations.
    assert len(selections) == 4


def test_hold_mode_specification():
    compiled = compile_program(THREE_TANK_HTL)
    spec = compiled.specification({"Control1": "hold"})
    assert "t1_hold" in spec.tasks
    assert "t1" not in spec.tasks
    assert spec.tasks["t1_hold"].model is FailureModel.SERIES


def test_switching_preserves_reliability_three_tank():
    compiled = compile_program(THREE_TANK_HTL)
    arch = three_tank_architecture()

    def implementation_for(spec):
        # Map each communicator's writer like the baseline mapping
        # maps the corresponding paper task.
        reference = baseline_implementation()
        paper_writer = {
            "l1": "read1", "l2": "read2", "u1": "t1", "u2": "t2",
            "r1": "estimate1", "r2": "estimate2",
        }
        assignment = {}
        for name, task in spec.tasks.items():
            output = sorted(task.output_communicators())[0]
            assignment[name] = reference.hosts_of(paper_writer[output])
        return Implementation(
            assignment, {"s1": {"sen1"}, "s2": {"sen2"}}
        )

    assert switching_preserves_reliability(compiled, arch,
                                           implementation_for)
