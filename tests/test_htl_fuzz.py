"""Fuzzing the HTL frontend: generated ASTs round-trip losslessly.

Hypothesis generates random (structurally plausible) programs at the
AST level; the pretty-printer renders them and the parser must
reproduce the identical AST.  This exercises tokenizer and parser
corners (negative literals, exponents, punctuation adjacency) far
beyond the hand-written sources.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.htl import parse_program
from repro.htl.ast import (
    CommunicatorDecl,
    InvokeStmt,
    ModeDecl,
    ModuleDecl,
    ProgramDecl,
    SwitchStmt,
    TaskDecl,
)
from repro.htl.pretty import render_program

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    # Keywords cannot be used as identifiers.
    lambda s: s not in {
        "program", "communicator", "module", "task", "mode", "invoke",
        "switch", "to", "when", "input", "output", "model", "default",
        "function", "period", "init", "lrc", "start", "refines",
        "true", "false", "float", "int", "bool", "series", "parallel",
        "independent",
    }
)

type_names = st.sampled_from(["float", "int", "bool"])


def literal_for(type_name):
    if type_name == "float":
        return st.floats(
            min_value=-1e6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        )
    if type_name == "int":
        return st.integers(min_value=-10**6, max_value=10**6)
    return st.booleans()


@st.composite
def communicator_decls(draw, name):
    type_name = draw(type_names)
    return CommunicatorDecl(
        name=name,
        type_name=type_name,
        period=draw(st.integers(min_value=1, max_value=10**4)),
        init=draw(literal_for(type_name)),
        lrc=draw(
            st.one_of(
                st.none(),
                st.just(1.0),
                st.floats(min_value=0.01, max_value=1.0,
                          allow_nan=False),
            )
        ),
    )


@st.composite
def task_decls(draw, name, comm_decls):
    comm_names = [c.name for c in comm_decls]
    inputs = draw(
        st.lists(
            st.sampled_from(comm_names), min_size=1, max_size=3,
        )
    )
    outputs = draw(
        st.lists(
            st.sampled_from(comm_names), min_size=1, max_size=2,
            unique=True,
        )
    )
    model = draw(
        st.sampled_from(["series", "parallel", "independent"])
    )
    types = {c.name: c.type_name for c in comm_decls}
    if model == "series":
        defaults = ()
    else:
        defaults = tuple(
            (comm, draw(literal_for(types[comm])))
            for comm in sorted(set(inputs))
        )
    return TaskDecl(
        name=name,
        inputs=tuple(
            (comm, draw(st.integers(min_value=0, max_value=9)))
            for comm in inputs
        ),
        outputs=tuple(
            (comm, draw(st.integers(min_value=0, max_value=9)))
            for comm in outputs
        ),
        model=model,
        defaults=defaults,
        function_name=draw(
            st.one_of(st.none(), st.just("fn_" + name))
        ),
    )


@st.composite
def programs(draw):
    comm_names = draw(
        st.lists(identifiers, min_size=1, max_size=4, unique=True)
    )
    comm_decls = tuple(
        draw(communicator_decls(name)) for name in comm_names
    )
    module_names = draw(
        st.lists(
            identifiers.filter(lambda s: s not in comm_names),
            min_size=0, max_size=2, unique=True,
        )
    )
    modules = []
    used_names = set(comm_names) | set(module_names)
    for module_name in module_names:
        task_names = draw(
            st.lists(
                identifiers.filter(lambda s: s not in used_names),
                min_size=1, max_size=2, unique=True,
            )
        )
        used_names |= set(task_names)
        tasks = tuple(
            draw(task_decls(name, comm_decls)) for name in task_names
        )
        mode_names = draw(
            st.lists(
                identifiers, min_size=1, max_size=2, unique=True,
            )
        )
        modes = tuple(
            ModeDecl(
                name=mode_name,
                period=draw(st.integers(min_value=1, max_value=10**4)),
                invokes=tuple(
                    InvokeStmt(task)
                    for task in draw(
                        st.lists(
                            st.sampled_from(task_names),
                            max_size=2, unique=True,
                        )
                    )
                ),
                switches=tuple(
                    SwitchStmt(
                        target=draw(st.sampled_from(mode_names)),
                        condition_name=draw(identifiers),
                    )
                    for _ in range(draw(st.integers(0, 2)))
                ),
            )
            for mode_name in mode_names
        )
        modules.append(
            ModuleDecl(
                name=module_name,
                start_mode=draw(
                    st.one_of(
                        st.none(), st.sampled_from(mode_names)
                    )
                ),
                tasks=tasks,
                modes=modes,
            )
        )
    parent = draw(st.one_of(st.none(), identifiers))
    kappa = ()
    if parent is not None:
        kappa = tuple(
            (draw(identifiers), draw(identifiers))
            for _ in range(draw(st.integers(0, 2)))
        )
    return ProgramDecl(
        name=draw(identifiers),
        communicators=comm_decls,
        modules=tuple(modules),
        parent=parent,
        kappa=kappa,
    )


def strip_lines(node):
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        replacements = {}
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            if field.name in ("line", "column"):
                replacements[field.name] = 0
            elif isinstance(value, tuple):
                replacements[field.name] = tuple(
                    strip_lines(item) for item in value
                )
            else:
                replacements[field.name] = strip_lines(value)
        return dataclasses.replace(node, **replacements)
    return node


@settings(max_examples=120, deadline=None)
@given(programs())
def test_render_parse_round_trip(program):
    rendered = render_program(program)
    parsed = parse_program(rendered)
    assert strip_lines(parsed) == strip_lines(program)


@settings(max_examples=60, deadline=None)
@given(programs())
def test_rendering_is_idempotent(program):
    once = render_program(program)
    twice = render_program(parse_program(once))
    assert once == twice
