"""Tests for JSON serialisation of design artifacts."""

import pytest

from repro.experiments import (
    baseline_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.io import (
    SerializationError,
    architecture_from_dict,
    architecture_to_dict,
    dump_json,
    implementation_from_dict,
    implementation_to_dict,
    load_json,
    specification_from_dict,
    specification_to_dict,
)
from repro.model import FailureModel
from repro.reliability import communicator_srgs


def test_specification_round_trip(tank_spec):
    document = specification_to_dict(tank_spec)
    rebuilt = specification_from_dict(document)
    assert set(rebuilt.tasks) == set(tank_spec.tasks)
    assert set(rebuilt.communicators) == set(tank_spec.communicators)
    for name in tank_spec.tasks:
        assert rebuilt.tasks[name].inputs == tank_spec.tasks[name].inputs
        assert rebuilt.tasks[name].outputs == tank_spec.tasks[name].outputs
        assert rebuilt.tasks[name].model is tank_spec.tasks[name].model
    for name in tank_spec.communicators:
        assert (
            rebuilt.communicators[name].lrc
            == tank_spec.communicators[name].lrc
        )
        assert (
            rebuilt.communicators[name].period
            == tank_spec.communicators[name].period
        )


def test_specification_function_binding():
    from repro.experiments import bind_control_functions

    functions = bind_control_functions()
    spec = three_tank_spec(functions=functions)
    document = specification_to_dict(spec)
    # Bound methods carry the method name; lambdas "<lambda>".
    rebuilt = specification_from_dict(
        document, functions={"update": lambda *a: 0.0}
    )
    # `t1`'s function serialises as 'update' (a bound method name).
    assert document["tasks"][2]["name"] == "t1"
    assert rebuilt.tasks["t1"].function is not None


def test_specification_missing_key_rejected():
    with pytest.raises(SerializationError, match="missing key"):
        specification_from_dict({"tasks": []})


def test_architecture_round_trip(tank_arch):
    document = architecture_to_dict(tank_arch)
    rebuilt = architecture_from_dict(document)
    assert set(rebuilt.hosts) == set(tank_arch.hosts)
    assert rebuilt.hrel("h1") == tank_arch.hrel("h1")
    assert set(rebuilt.sensors) == set(tank_arch.sensors)
    assert rebuilt.network.reliability == tank_arch.network.reliability
    assert rebuilt.wcet("anything", "h1") == tank_arch.wcet(
        "anything", "h1"
    )


def test_architecture_explicit_metrics_round_trip():
    from repro.arch import Architecture, ExecutionMetrics, Host

    arch = Architecture(
        hosts=[Host("h", 0.9)],
        metrics=ExecutionMetrics(
            wcet={("t", "h"): 7}, wctt={("t", "h"): 3},
            default_wcet=1, default_wctt=1,
        ),
    )
    rebuilt = architecture_from_dict(architecture_to_dict(arch))
    assert rebuilt.wcet("t", "h") == 7
    assert rebuilt.wctt("t", "h") == 3
    assert rebuilt.wcet("other", "h") == 1


def test_implementation_round_trip(tank_baseline):
    document = implementation_to_dict(tank_baseline)
    rebuilt = implementation_from_dict(document)
    assert rebuilt == tank_baseline


def test_round_trip_preserves_analysis(tank_spec, tank_arch,
                                       tank_baseline):
    spec = specification_from_dict(specification_to_dict(tank_spec))
    arch = architecture_from_dict(architecture_to_dict(tank_arch))
    impl = implementation_from_dict(
        implementation_to_dict(tank_baseline)
    )
    original = communicator_srgs(tank_spec, tank_baseline, tank_arch)
    rebuilt = communicator_srgs(spec, impl, arch)
    assert rebuilt == original


def test_file_helpers_round_trip(tmp_path, tank_baseline):
    path = tmp_path / "impl.json"
    dump_json(implementation_to_dict(tank_baseline), str(path))
    assert implementation_from_dict(load_json(str(path))) == tank_baseline


def test_model_names_serialise_lowercase(tank_spec):
    document = specification_to_dict(tank_spec)
    models = {entry["model"] for entry in document["tasks"]}
    assert models <= {"series", "parallel", "independent"}
    rebuilt = specification_from_dict(document)
    assert rebuilt.tasks["read1"].model is FailureModel.PARALLEL
