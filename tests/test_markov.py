"""Tests for the Markov analysis of specifications with memory."""

import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.errors import AnalysisError
from repro.experiments import (
    cyclic_specification,
    cyclic_specification_with_input,
)
from repro.mapping import Implementation
from repro.model import Communicator, FailureModel, Specification, Task
from repro.reliability.markov import (
    analyze_memory_cycles,
    memory_aware_reliable,
    parallel_cycle_limit_average,
)
from repro.runtime import BernoulliFaults, Simulator


def arch_one(hrel=0.9, srel=0.8):
    return Architecture(
        hosts=[Host("h1", hrel)],
        sensors=[Sensor("s1", srel)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )


# -- the closed form -----------------------------------------------------------


def test_formula_degenerates_to_memory_free_with_perfect_external():
    assert parallel_cycle_limit_average(0.9, 1.0) == pytest.approx(0.9)


def test_formula_degenerates_to_collapse_without_externals():
    assert parallel_cycle_limit_average(0.9, 0.0) == 0.0


def test_formula_perfect_task():
    assert parallel_cycle_limit_average(1.0, 0.3) == 1.0


def test_formula_between_the_extremes():
    value = parallel_cycle_limit_average(0.9, 0.5)
    # pi = 0.45 / (0.1 + 0.45) = 9/11.
    assert value == pytest.approx(9 / 11)
    assert 0.0 < value < 0.9


def test_formula_monotone_in_both_arguments():
    base = parallel_cycle_limit_average(0.9, 0.5)
    assert parallel_cycle_limit_average(0.95, 0.5) > base
    assert parallel_cycle_limit_average(0.9, 0.7) > base


def test_formula_validation():
    with pytest.raises(AnalysisError):
        parallel_cycle_limit_average(1.5, 0.5)
    with pytest.raises(AnalysisError):
        parallel_cycle_limit_average(0.5, -0.1)


# -- cycle analysis ---------------------------------------------------------------


def test_analyze_parallel_cycle_with_input():
    spec = cyclic_specification_with_input("parallel")
    arch = arch_one(hrel=0.9, srel=0.8)
    impl = Implementation({"integrate": {"h1"}}, {"ext": {"s1"}})
    verdicts = analyze_memory_cycles(spec, impl, arch)
    assert set(verdicts) == {"acc"}
    verdict = verdicts["acc"]
    assert verdict.task == "integrate"
    assert verdict.model is FailureModel.PARALLEL
    assert verdict.lambda_t == pytest.approx(0.9)
    assert verdict.external_reliability == pytest.approx(0.8)
    assert verdict.limit_average == pytest.approx(
        parallel_cycle_limit_average(0.9, 0.8)
    )


def test_analyze_series_cycle_collapses():
    spec = cyclic_specification("series")
    impl = Implementation({"integrate": {"h1"}})
    verdicts = analyze_memory_cycles(spec, impl, arch_one())
    assert verdicts["acc"].limit_average == 0.0


def test_analyze_independent_cycle_is_memory_free_value():
    spec = cyclic_specification("independent")
    impl = Implementation({"integrate": {"h1"}})
    verdicts = analyze_memory_cycles(spec, impl, arch_one(hrel=0.93))
    assert verdicts["acc"].limit_average == pytest.approx(0.93)


def test_memory_free_spec_has_no_verdicts(pipe_spec, pipe_arch, pipe_impl):
    assert analyze_memory_cycles(pipe_spec, pipe_impl, pipe_arch) == {}


def test_longer_cycles_refused():
    comms = [
        Communicator("b", period=10),
        Communicator("c", period=10),
    ]
    tasks = [
        Task("t1", [("b", 0)], [("c", 1)], model="parallel",
             defaults={"b": 0.0}),
        Task("t2", [("c", 1)], [("b", 2)], model="parallel",
             defaults={"c": 0.0}),
    ]
    spec = Specification(comms, tasks)
    impl = Implementation({"t1": {"h1"}, "t2": {"h1"}})
    with pytest.raises(AnalysisError, match="self-loops only"):
        analyze_memory_cycles(spec, impl, arch_one())


def test_nested_memory_refused():
    # The external input of the cycle task is itself task-written.
    comms = [
        Communicator("acc", period=10),
        Communicator("mid", period=10),
        Communicator("src", period=10),
    ]
    tasks = [
        Task("feeder", [("src", 0)], [("mid", 1)]),
        Task(
            "integrate",
            [("acc", 0), ("mid", 1)],
            [("acc", 2)],
            model="parallel",
            defaults={"acc": 0.0, "mid": 0.0},
        ),
    ]
    spec = Specification(comms, tasks)
    impl = Implementation(
        {"feeder": {"h1"}, "integrate": {"h1"}}, {"src": {"s1"}}
    )
    with pytest.raises(AnalysisError, match="nested memory"):
        analyze_memory_cycles(spec, impl, arch_one())


def test_memory_aware_reliable():
    arch = arch_one(hrel=0.95, srel=0.9)
    impl = Implementation({"integrate": {"h1"}}, {"ext": {"s1"}})
    # pi = (0.9*0.95)/(0.05 + 0.9*0.95) = 0.8550/0.9050 ~ 0.9448.
    passing = cyclic_specification_with_input("parallel", lrc=0.94)
    assert memory_aware_reliable(passing, impl, arch)
    failing = cyclic_specification_with_input("parallel", lrc=0.95)
    assert not memory_aware_reliable(failing, impl, arch)


# -- simulation agreement ------------------------------------------------------------


@pytest.mark.parametrize("hrel,srel", [(0.9, 0.8), (0.95, 0.5),
                                       (0.8, 0.95)])
def test_stationary_average_matches_simulation(hrel, srel):
    spec = cyclic_specification_with_input("parallel")
    arch = arch_one(hrel=hrel, srel=srel)
    impl = Implementation({"integrate": {"h1"}}, {"ext": {"s1"}})
    verdict = analyze_memory_cycles(spec, impl, arch)["acc"]
    result = Simulator(
        spec, arch, impl, faults=BernoulliFaults(arch), seed=13
    ).run(30000)
    observed = result.limit_averages()["acc"]
    assert observed == pytest.approx(verdict.limit_average, abs=0.01)


def test_series_collapse_matches_simulation():
    spec = cyclic_specification_with_input("series")
    arch = arch_one(hrel=0.98, srel=0.99)
    impl = Implementation({"integrate": {"h1"}}, {"ext": {"s1"}})
    verdict = analyze_memory_cycles(spec, impl, arch)["acc"]
    assert verdict.limit_average == 0.0
    result = Simulator(
        spec, arch, impl, faults=BernoulliFaults(arch), seed=13
    ).run(8000)
    assert result.limit_averages()["acc"] < 0.05
