"""Tests for the architecture model."""

import pytest

from repro.arch import (
    Architecture,
    BroadcastNetwork,
    ExecutionMetrics,
    Host,
    Sensor,
)
from repro.errors import ArchitectureError


# -- hosts and sensors ---------------------------------------------------


def test_host_basic():
    host = Host("h1", 0.99)
    assert host.reliability == 0.99
    assert host.failure_probability() == pytest.approx(0.01)


def test_host_default_reliability_is_one():
    assert Host("h").reliability == 1.0


@pytest.mark.parametrize(
    "rel", [-0.1, 1.5, float("nan"), "0.9", None]
)
def test_host_reliability_bounds(rel):
    with pytest.raises(ArchitectureError):
        Host("h", rel)


def test_host_zero_reliability_accepted():
    # hrel = 0 models a permanently dead host.
    assert Host("h", 0.0).failure_probability() == 1.0


def test_reliability_errors_are_value_errors():
    with pytest.raises(ValueError):
        Host("h", -0.1)


def test_host_empty_name_rejected():
    with pytest.raises(ArchitectureError):
        Host("", 0.9)


def test_sensor_basic():
    sensor = Sensor("s1", 0.97)
    assert sensor.failure_probability() == pytest.approx(0.03)


@pytest.mark.parametrize(
    "rel", [-1.0, 1.01, float("nan"), "bad", object()]
)
def test_sensor_reliability_bounds(rel):
    with pytest.raises(ArchitectureError):
        Sensor("s", rel)


def test_sensor_zero_reliability_accepted():
    assert Sensor("s", 0.0).failure_probability() == 1.0


def test_hosts_sortable():
    assert sorted([Host("b", 0.9), Host("a", 0.8)])[0].name == "a"


# -- network -------------------------------------------------------------


def test_network_defaults_to_perfect():
    network = BroadcastNetwork()
    assert network.is_perfect()
    assert network.bandwidth == 1


def test_network_imperfect():
    assert not BroadcastNetwork(reliability=0.99).is_perfect()


@pytest.mark.parametrize("rel", [-0.5, 1.2, float("nan"), "1"])
def test_network_reliability_bounds(rel):
    with pytest.raises(ArchitectureError):
        BroadcastNetwork(reliability=rel)


def test_network_zero_reliability_accepted():
    assert not BroadcastNetwork(reliability=0.0).is_perfect()


def test_network_bandwidth_positive():
    with pytest.raises(ArchitectureError):
        BroadcastNetwork(bandwidth=0)


# -- execution metrics ----------------------------------------------------


def test_metrics_explicit_lookup():
    metrics = ExecutionMetrics(wcet={("t", "h"): 5}, wctt={("t", "h"): 2})
    assert metrics.wcet_of("t", "h") == 5
    assert metrics.wctt_of("t", "h") == 2


def test_metrics_defaults():
    metrics = ExecutionMetrics(default_wcet=3, default_wctt=1)
    assert metrics.wcet_of("any", "host") == 3
    assert metrics.wctt_of("any", "host") == 1


def test_metrics_explicit_overrides_default():
    metrics = ExecutionMetrics(
        wcet={("t", "h"): 5}, default_wcet=3, default_wctt=1
    )
    assert metrics.wcet_of("t", "h") == 5
    assert metrics.wcet_of("t", "other") == 3


def test_metrics_missing_entry_rejected():
    metrics = ExecutionMetrics()
    with pytest.raises(ArchitectureError, match="no WCET"):
        metrics.wcet_of("t", "h")
    with pytest.raises(ArchitectureError, match="no WCTT"):
        metrics.wctt_of("t", "h")


@pytest.mark.parametrize("value", [0, -2])
def test_metrics_non_positive_rejected(value):
    with pytest.raises(ArchitectureError):
        ExecutionMetrics(wcet={("t", "h"): value})
    with pytest.raises(ArchitectureError):
        ExecutionMetrics(default_wcet=value)


# -- architecture ----------------------------------------------------------


def make_arch():
    return Architecture(
        hosts=[Host("h1", 0.9), Host("h2", 0.8)],
        sensors=[Sensor("s1", 0.95)],
        metrics=ExecutionMetrics(default_wcet=2, default_wctt=1),
    )


def test_architecture_queries():
    arch = make_arch()
    assert arch.hrel("h1") == 0.9
    assert arch.srel("s1") == 0.95
    assert arch.host_names() == ["h1", "h2"]
    assert arch.sensor_names() == ["s1"]
    assert arch.wcet("t", "h1") == 2
    assert arch.wctt("t", "h2") == 1


def test_architecture_unknown_host_rejected():
    arch = make_arch()
    with pytest.raises(ArchitectureError, match="unknown host"):
        arch.hrel("nope")
    with pytest.raises(ArchitectureError, match="unknown host"):
        arch.wcet("t", "nope")


def test_architecture_unknown_sensor_rejected():
    with pytest.raises(ArchitectureError, match="unknown sensor"):
        make_arch().srel("nope")


def test_architecture_duplicate_host_rejected():
    with pytest.raises(ArchitectureError, match="duplicate host"):
        Architecture(hosts=[Host("h"), Host("h")])


def test_architecture_duplicate_sensor_rejected():
    with pytest.raises(ArchitectureError, match="duplicate sensor"):
        Architecture(hosts=[Host("h")], sensors=[Sensor("s"), Sensor("s")])


def test_architecture_needs_hosts():
    with pytest.raises(ArchitectureError, match="at least one host"):
        Architecture(hosts=[])


def test_architecture_default_network_is_perfect():
    assert make_arch().network.is_perfect()
