"""Tests for failure-rate conversions."""

import math

import pytest

from repro.errors import AnalysisError
from repro.reliability.rates import (
    MS_PER_HOUR,
    invocation_rate_from_reliability,
    mission_reliability,
    per_invocation_reliability,
    rate_from_fit,
    rate_from_mttf,
)


def test_rate_from_mttf():
    assert rate_from_mttf(1000.0) == pytest.approx(1e-3)
    with pytest.raises(AnalysisError):
        rate_from_mttf(0.0)


def test_rate_from_fit():
    # 500 FIT = 500 failures per 1e9 device-hours.
    assert rate_from_fit(500) == pytest.approx(5e-7)
    assert rate_from_fit(0) == 0.0
    with pytest.raises(AnalysisError):
        rate_from_fit(-1)


def test_per_invocation_reliability_exponential():
    rate = 0.01  # per hour
    exposure = MS_PER_HOUR  # one hour in ms
    assert per_invocation_reliability(rate, exposure) == pytest.approx(
        math.exp(-0.01)
    )


def test_per_invocation_reliability_short_exposure_near_one():
    # 500 ms at 1e-3/h: essentially perfect.
    value = per_invocation_reliability(1e-3, 500)
    assert 0.999999 < value <= 1.0


def test_per_invocation_zero_exposure_is_one():
    assert per_invocation_reliability(0.5, 0.0) == 1.0


def test_per_invocation_validation():
    with pytest.raises(AnalysisError):
        per_invocation_reliability(-0.1, 10)
    with pytest.raises(AnalysisError):
        per_invocation_reliability(0.1, -10)


def test_rate_round_trip():
    rate = 0.025
    exposure = 12_345.0
    reliability = per_invocation_reliability(rate, exposure)
    assert invocation_rate_from_reliability(
        reliability, exposure
    ) == pytest.approx(rate)


def test_inversion_validation():
    with pytest.raises(AnalysisError):
        invocation_rate_from_reliability(0.0, 10)
    with pytest.raises(AnalysisError):
        invocation_rate_from_reliability(0.5, 0.0)


def test_mission_reliability():
    # 0.999 per 500 ms invocation over an 8-hour shift (57600 invocations).
    invocations = 8 * 3600 * 1000 // 500
    value = mission_reliability(0.999, invocations)
    assert value == pytest.approx(0.999**invocations)
    assert mission_reliability(1.0, 10**6) == 1.0
    assert mission_reliability(0.5, 0) == 1.0


def test_mission_reliability_validation():
    with pytest.raises(AnalysisError):
        mission_reliability(1.5, 10)
    with pytest.raises(AnalysisError):
        mission_reliability(0.9, -1)


def test_datasheet_to_architecture_flow():
    """End to end: FIT rating -> hrel -> SRG analysis."""
    from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
    from repro.mapping import Implementation
    from repro.model import Communicator, Specification, Task
    from repro.reliability import communicator_srgs

    # A 5e5-FIT controller host (0.5 failures per 1000 h), tasks with
    # a 500 ms exposure.
    hrel = per_invocation_reliability(rate_from_fit(5e5), 500)
    spec = Specification(
        [
            Communicator("a", period=10, lrc=0.5),
            Communicator("b", period=10, lrc=0.5),
        ],
        [Task("t", [("a", 0)], [("b", 1)])],
    )
    arch = Architecture(
        hosts=[Host("h", hrel)],
        sensors=[Sensor("s", 0.999)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    impl = Implementation({"t": {"h"}}, {"a": {"s"}})
    srgs = communicator_srgs(spec, impl, arch)
    assert srgs["b"] == pytest.approx(hrel * 0.999)
