"""The reliability service: cache semantics, persistence, HTTP API.

The acceptance contract: a repeated identical simulate job answers
from cache *without simulating* (asserted via the
``runs_simulated_total`` counter), a ``runs`` upgrade simulates only
the delta and replies bit-identically to a fresh full batch, and
every completed simulate job lands in the run ledger.  The HTTP tests
drive the whole loop — submit, follow events, read results — over a
real ``ThreadingHTTPServer`` on an ephemeral port.
"""

import json
import threading

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments import (
    bind_control_functions,
    three_tank_architecture,
    three_tank_spec,
)
from repro.experiments.three_tank_system import baseline_implementation
from repro.io import (
    architecture_to_dict,
    implementation_to_dict,
    specification_to_dict,
)
from repro.resilience import MonitorConfig
from repro.runtime import BatchSimulator, BernoulliFaults
from repro.service import ReliabilityService
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.jobs import ServiceError
from repro.service.server import make_server
from repro.telemetry import RunLedger

FUNCTIONS = bind_control_functions()


def design_documents():
    spec = three_tank_spec(lrc_u=0.99, functions=FUNCTIONS)
    return {
        "spec": specification_to_dict(spec),
        "arch": architecture_to_dict(three_tank_architecture()),
        "impl": implementation_to_dict(baseline_implementation()),
    }


def simulate_document(runs=10, iterations=20, seed=5, **extra):
    document = {
        "kind": "simulate",
        "runs": runs,
        "iterations": iterations,
        "seed": seed,
        **design_documents(),
        **extra,
    }
    return document


def make_service(**kwargs):
    kwargs.setdefault("functions", FUNCTIONS)
    return ReliabilityService(**kwargs)


def run_job(service, document):
    job = service.submit(document)
    service.run_pending()
    assert job.state == "done", job.error
    return job


# ----------------------------------------------------------------------
# Submission validation.
# ----------------------------------------------------------------------


def test_submit_rejects_malformed_documents():
    service = make_service()
    with pytest.raises(ServiceError):
        service.submit({"kind": "nonsense", **design_documents()})
    with pytest.raises(ServiceError):
        service.submit({"kind": "simulate", "arch": {}})
    with pytest.raises(ServiceError):
        service.submit(simulate_document(runs=0))
    with pytest.raises(ServiceError):
        service.submit(simulate_document(iterations=-1))
    with pytest.raises(ServiceError):
        service.submit(simulate_document(jobs=0))
    with pytest.raises(ServiceError):
        service.submit(simulate_document(seed="abc"))
    document = simulate_document()
    del document["impl"]
    with pytest.raises(ServiceError):
        service.submit(document)


def test_unknown_job_lookup_raises():
    with pytest.raises(ServiceError):
        make_service().get("job-999")


# ----------------------------------------------------------------------
# Cache semantics (the acceptance criteria).
# ----------------------------------------------------------------------


def test_repeated_job_answers_from_cache_without_simulating():
    service = make_service()
    first = run_job(service, simulate_document(runs=10))
    assert first.result["cache"] == "miss"
    assert service.metrics.get("runs_simulated_total") == 10

    second = run_job(service, simulate_document(runs=10))
    assert second.result["cache"] == "hit"
    assert second.result["simulated_runs"] == 0
    # The counter proves no new simulation happened.
    assert service.metrics.get("runs_simulated_total") == 10
    assert service.metrics.get("mc_cache_hits") == 1
    assert second.result["rates"] == first.result["rates"]


def test_runs_upgrade_simulates_only_the_delta():
    service = make_service()
    run_job(service, simulate_document(runs=8))
    assert service.metrics.get("runs_simulated_total") == 8
    upgraded = run_job(service, simulate_document(runs=20))
    assert upgraded.result["cache"] == "partial"
    assert upgraded.result["simulated_runs"] == 12
    assert service.metrics.get("runs_simulated_total") == 20
    assert service.metrics.get("mc_cache_partial") == 1


def test_runs_upgrade_is_bit_identical_to_fresh_full_batch():
    service = make_service()
    run_job(
        service, simulate_document(runs=6, monitor_window=5)
    )
    upgraded = run_job(
        service, simulate_document(runs=17, monitor_window=5)
    )
    spec = three_tank_spec(lrc_u=0.99, functions=FUNCTIONS)
    arch = three_tank_architecture()
    fresh = BatchSimulator(
        spec, arch, baseline_implementation(),
        faults=BernoulliFaults(arch), seed=5,
    ).run_batch(17, 20, monitor=MonitorConfig(window=5))
    averages = fresh.limit_averages()
    assert upgraded.result["rates"] == {
        name: float(averages[name].mean()) for name in sorted(averages)
    }
    # The cached merged result is the fresh result, bit for bit.
    (cached,) = service.cache._mc.values()
    for name in fresh.reliable_counts:
        assert np.array_equal(
            cached.reliable_counts[name], fresh.reliable_counts[name]
        )
    assert cached.monitor_events == fresh.monitor_events


def test_runs_downgrade_is_served_from_cache():
    service = make_service()
    run_job(service, simulate_document(runs=15))
    smaller = run_job(service, simulate_document(runs=4))
    assert smaller.result["cache"] == "hit"
    assert smaller.result["runs"] == 4
    assert service.metrics.get("runs_simulated_total") == 15
    spec = three_tank_spec(lrc_u=0.99, functions=FUNCTIONS)
    arch = three_tank_architecture()
    fresh = BatchSimulator(
        spec, arch, baseline_implementation(),
        faults=BernoulliFaults(arch), seed=5,
    ).run_batch(4, 20)
    averages = fresh.limit_averages()
    assert smaller.result["rates"] == {
        name: float(averages[name].mean()) for name in sorted(averages)
    }


def test_different_seed_or_design_misses_the_cache():
    service = make_service()
    run_job(service, simulate_document(seed=5))
    other_seed = run_job(service, simulate_document(seed=6))
    assert other_seed.result["cache"] == "miss"
    bumped = simulate_document(seed=5)
    bumped["spec"]["communicators"][0]["lrc"] = 0.42
    other_design = run_job(service, bumped)
    assert other_design.result["cache"] == "miss"
    assert service.metrics.get("mc_cache_misses") == 3


def test_cache_key_survives_json_formatting_differences():
    # A client shipping the same design with reversed dict-key order
    # (and a JSON round trip) must land on the same cache line: the
    # service hashes the *reconstructed* design via the canonicalised
    # content_hash, not the request text.
    service = make_service()
    run_job(service, simulate_document(runs=10))

    def reorder(value):
        if isinstance(value, dict):
            return {
                key: reorder(value[key]) for key in reversed(value)
            }
        if isinstance(value, list):
            return [reorder(item) for item in value]
        return value

    document = simulate_document(runs=10)
    document["spec"] = reorder(json.loads(json.dumps(document["spec"])))
    document["arch"] = reorder(document["arch"])
    document["impl"] = reorder(document["impl"])
    repeated = run_job(service, document)
    assert repeated.result["cache"] == "hit"


def test_verify_jobs_are_memoized():
    service = make_service()
    document = {"kind": "verify", **design_documents()}
    first = run_job(service, document)
    assert first.result["feasible"] is True
    assert service.metrics.get("verify_cache_misses") == 1
    second = run_job(service, document)
    assert service.metrics.get("verify_cache_hits") == 1
    assert second.result["report"] == first.result["report"]
    assert first.result["cache"] == "miss"
    assert second.result["cache"] == "hit"


def test_sharded_job_matches_serial_job_rates():
    serial = run_job(make_service(), simulate_document(runs=12))
    sharded = run_job(
        make_service(), simulate_document(runs=12, jobs=3)
    )
    assert sharded.result["rates"] == serial.result["rates"]


# ----------------------------------------------------------------------
# Adaptive stopping on the service.
# ----------------------------------------------------------------------


def adaptive_document(**extra):
    """An adaptive job on a workload the sequential test can decide.

    ``lrc_s`` is relaxed to 0.99: the default 0.999 equals the sensor
    reliability, where the indifference region straddles the true
    rate and the sequential test cannot converge.
    """
    document = simulate_document(
        runs=320, iterations=40, seed=7,
        adaptive=True, min_runs=8, **extra,
    )
    spec = three_tank_spec(
        lrc_u=0.99, lrc_s=0.99, functions=FUNCTIONS
    )
    document["spec"] = specification_to_dict(spec)
    return document


def test_adaptive_job_stops_early_with_convergence_telemetry():
    service = make_service()
    job = run_job(service, adaptive_document())
    result = job.result
    adaptive = result["adaptive"]
    assert result["runs"] == adaptive["stopped_at"] < 320
    assert adaptive["reason"] == "converged"
    assert adaptive["savings_factor"] >= 5.0
    assert result["satisfied"] is True
    # The convergence snapshot rides on the job document and every
    # checkpoint landed on the event stream before the stop notice.
    assert job.convergence is not None
    assert job.convergence["decided"] is True
    assert job.to_dict()["convergence"] == job.convergence
    checkpoints = [
        event["run"] for event in job.events
        if event["state"] == "checkpoint"
    ]
    assert checkpoints == list(
        adaptive["schedule"][:adaptive["checkpoints"]]
    )
    stops = [
        event for event in job.events if event["state"] == "stopping"
    ]
    assert [e["run"] for e in stops] == [adaptive["stopped_at"]]
    assert service.metrics.get("adaptive_stops") == 1
    assert (
        service.metrics.get("adaptive_runs_saved")
        == 320 - adaptive["stopped_at"]
    )
    exposition = service.metrics_exposition()
    assert "repro_service_convergence_rel_half_width" in exposition
    # Each checkpoint also lands as an instant in the merged trace.
    trace = service.job_trace(job.id)
    instants = [
        event["args"]["run"]
        for event in trace["traceEvents"]
        if event.get("ph") == "i" and event["name"] == "checkpoint"
    ]
    assert instants == checkpoints


def test_adaptive_result_equals_fixed_run_truncation():
    service = make_service()
    job = run_job(service, adaptive_document())
    stopped = job.result["runs"]
    # Satellite contract: a later fixed-run request at (or below) the
    # adaptive stop point is a prefix hit — no new simulation.
    document = adaptive_document()
    for key in ("adaptive", "min_runs"):
        document.pop(key)
    document["runs"] = stopped
    fixed = run_job(service, document)
    assert fixed.result["cache"] == "hit"
    assert fixed.result["simulated_runs"] == 0
    assert fixed.result["rates"] == job.result["rates"]
    smaller = dict(document, runs=stopped // 2)
    assert run_job(service, smaller).result["cache"] == "hit"


def test_adaptive_replay_on_warm_cache_is_a_pure_hit():
    service = make_service()
    cold = run_job(service, adaptive_document())
    simulated = service.metrics.get("runs_simulated_total")
    warm = run_job(service, adaptive_document())
    # Deterministic replay over the cached batch: same stop point,
    # same rates, not one new simulated run.
    assert warm.result["cache"] == "hit"
    assert warm.result["simulated_runs"] == 0
    assert warm.result["runs"] == cold.result["runs"]
    assert warm.result["rates"] == cold.result["rates"]
    assert service.metrics.get("runs_simulated_total") == simulated


def test_adaptive_sharded_job_stops_at_the_serial_point():
    serial = run_job(make_service(), adaptive_document())
    sharded = run_job(
        make_service(), adaptive_document(jobs=3)
    )
    assert sharded.result["runs"] == serial.result["runs"]
    assert sharded.result["rates"] == serial.result["rates"]


def test_adaptive_validation_rejects_nonsense():
    service = make_service()
    for bad in (
        {"adaptive": "yes"},
        {"adaptive": True, "target_rel_half_width": 0.0},
        {"adaptive": True, "target_rel_half_width": True},
        {"adaptive": True, "min_runs": 0},
        {"adaptive": True, "stop_confidence": 1.0},
        {"adaptive": True, "indifference": -0.1},
        {"adaptive": True, "sequential": "always"},
    ):
        with pytest.raises(ServiceError):
            service.submit(simulate_document(**bad))
    with pytest.raises(ServiceError):
        service.submit(
            {"kind": "verify", "adaptive": True, **design_documents()}
        )


# ----------------------------------------------------------------------
# Ledger persistence and failure reporting.
# ----------------------------------------------------------------------


def test_completed_jobs_persist_to_ledger(tmp_path):
    service = make_service(ledger=str(tmp_path / "runs"))
    job = run_job(service, simulate_document(runs=10))
    assert job.result["ledger_entry"] == 0
    records = RunLedger(tmp_path / "runs").records()
    assert len(records) == 1
    assert records[0].runs == 10
    assert records[0].rates == job.result["rates"]
    # A cache hit is still a completed job: it appends too.
    hit = run_job(service, simulate_document(runs=10))
    assert hit.result["ledger_entry"] == 1
    assert len(RunLedger(tmp_path / "runs").records()) == 2


def test_failed_job_reports_error_event():
    service = make_service()
    document = simulate_document()
    document["arch"] = {"hosts": "not-a-list"}  # fails in the worker
    job = service.submit(document)
    service.run_pending()
    assert job.state == "failed"
    assert job.error
    states = [event["state"] for event in job.events]
    assert states[0] == "queued"
    assert states[-1] == "failed"
    assert service.metrics.get("jobs_failed") == 1


def test_worker_threads_drain_the_queue():
    service = make_service(workers=2)
    with service:
        jobs = [
            service.submit(simulate_document(runs=3, seed=seed))
            for seed in range(4)
        ]
        for job in jobs:
            assert job.wait(timeout=120)
    assert all(job.state == "done" for job in jobs)
    assert service.metrics.get("jobs_completed") == 4


# ----------------------------------------------------------------------
# The HTTP daemon, end to end.
# ----------------------------------------------------------------------


@pytest.fixture()
def http_service(tmp_path):
    service = make_service(
        workers=2, ledger=str(tmp_path / "runs")
    ).start()
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(host, port), service
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def test_http_submit_and_follow(http_service):
    client, service = http_service
    health = client.health()
    assert health["status"] == "ok"
    assert health["queue_depth"] == 0
    assert health["workers_alive"] == health["workers"]
    assert "mc_entries" in health["cache"]

    reply = client.submit(simulate_document(runs=8))
    assert reply["id"] == "job-1"
    events = [event["state"] for event in client.iter_events("job-1")]
    assert events[0] == "queued"
    assert events[-1] == "done"
    job = client.job("job-1")
    assert job["state"] == "done"
    assert job["result"]["cache"] == "miss"
    assert job["result"]["runs"] == 8

    # Repeat with wait=1: synchronous reply, answered from cache.
    repeated = client.submit(simulate_document(runs=8), wait=True)
    assert repeated["state"] == "done"
    assert repeated["result"]["cache"] == "hit"
    assert client.metrics()["runs_simulated_total"] == 8

    listed = client.jobs()
    assert [job["id"] for job in listed] == ["job-1", "job-2"]


def test_http_verify_and_errors(http_service):
    client, service = http_service
    verdict = client.submit(
        {"kind": "verify", **design_documents()}, wait=True
    )
    assert verdict["result"]["feasible"] is True

    with pytest.raises(ServiceClientError, match="runs must be"):
        client.submit(simulate_document(runs=0))
    with pytest.raises(ServiceClientError, match="unknown job"):
        client.job("job-999")
    with pytest.raises(ServiceClientError, match="no such endpoint"):
        client._request("GET", "/nope")


def test_http_events_long_poll_and_since(http_service):
    client, service = http_service
    client.submit(simulate_document(runs=5), wait=True)
    reply = client.events("job-1", since=0)
    assert reply["done"] is True
    seqs = [event["seq"] for event in reply["events"]]
    assert seqs == list(range(len(seqs)))
    tail = client.events("job-1", since=len(seqs) - 1)
    assert [event["seq"] for event in tail["events"]] == [len(seqs) - 1]


def test_client_error_when_daemon_unreachable():
    client = ServiceClient("127.0.0.1", 1, timeout=2.0)
    with pytest.raises(ServiceClientError, match="cannot reach"):
        client.health()


# ----------------------------------------------------------------------
# Robustness: deadlines, cancellation, backpressure, drain (PR 8).
# ----------------------------------------------------------------------


def test_job_timeout_while_queued_is_terminal():
    import time as _time

    service = make_service()  # not started: the job stays queued
    job = service.submit(simulate_document(timeout_s=0.01))
    _time.sleep(0.05)
    service.run_pending()
    assert job.state == "timed_out"
    assert "deadline" in job.error
    assert service.metrics.get("jobs_timed_out") == 1
    assert job.events[-1]["state"] == "timed_out"


class SlowExecutor:
    """Inline executor that dawdles before simulating (tests only)."""

    name = "slow"

    def __init__(self, delay_s):
        self.delay_s = delay_s

    def execute(self, simulator, children, iterations, monitor=None):
        import time as _time

        _time.sleep(self.delay_s)
        return simulator.run_slice(children, iterations, monitor)


def test_running_job_times_out_and_late_result_is_discarded():
    service = make_service(
        workers=1,
        executor_factory=lambda shards: SlowExecutor(0.5),
    ).start()
    try:
        job = service.submit(
            simulate_document(seed=901, jobs=2, timeout_s=0.05)
        )
        assert job.wait(timeout=60)
        assert job.state == "timed_out"
    finally:
        service.stop()  # joins the worker: the late result arrived
    assert job.state == "timed_out"  # ... and was discarded
    assert job.result is None
    assert service.metrics.get("jobs_timed_out") == 1
    assert service.metrics.get("jobs_completed") == 0


def test_finish_is_idempotent_first_transition_wins():
    from repro.service.jobs import Job

    job = Job("job-x", {"kind": "simulate"})
    assert job.finish("done", result={"rates": {}})
    assert not job.finish("timed_out", error="too late")
    assert job.state == "done"
    assert job.error is None
    with pytest.raises(ServiceError, match="not a terminal state"):
        job.finish("running")


def test_invalid_timeout_rejected():
    service = make_service()
    for bad in (0, -1.5, "soon", True):
        with pytest.raises(ServiceError, match="timeout_s"):
            service.submit(simulate_document(timeout_s=bad))


def test_cancel_queued_job_never_runs():
    service = make_service()
    job = service.submit(simulate_document(seed=902))
    service.cancel(job.id)
    assert job.state == "cancelled"
    service.run_pending()  # must skip the cancelled job
    assert job.state == "cancelled"
    assert job.result is None
    assert service.metrics.get("jobs_cancelled") == 1
    assert service.metrics.get("jobs_completed") == 0


def test_queue_limit_rejects_with_retry_hint():
    from repro.service.jobs import ServiceQueueFull

    service = make_service(queue_limit=1)
    service.submit(simulate_document(seed=903))
    with pytest.raises(ServiceQueueFull) as excinfo:
        service.submit(simulate_document(seed=904))
    assert excinfo.value.retry_after_s > 0
    assert service.metrics.get("jobs_rejected") == 1
    # Draining the queue frees capacity again.
    service.run_pending()
    service.submit(simulate_document(seed=904))


def test_http_429_retry_after_and_client_backoff(tmp_path):
    from repro.service.client import ServiceBusyError

    service = make_service(queue_limit=1)  # no workers started
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        impatient = ServiceClient(host, port, retries=0)
        impatient.submit(simulate_document(seed=905))
        with pytest.raises(ServiceBusyError, match="queue is full"):
            impatient.submit(simulate_document(seed=906))

        # A retrying client succeeds once capacity frees up: its
        # sleep hook drains the queue, standing in for the passage
        # of time, and must observe the server's Retry-After >= 1s.
        delays = []

        def unblock(delay):
            delays.append(delay)
            service.run_pending()

        patient = ServiceClient(
            host, port, retries=3, backoff_s=0.01, sleep=unblock
        )
        reply = patient.submit(simulate_document(seed=907))
        assert reply["state"] == "queued"
        assert delays and delays[0] >= 1.0
    finally:
        server.shutdown()
        server.server_close()


def test_http_cancel_endpoint(http_service):
    client, service = http_service
    reply = client.submit(simulate_document(runs=40, seed=908))
    cancelled = client.cancel(reply["id"])
    assert cancelled["state"] in ("cancelled", "done")
    final = client.job(reply["id"])
    assert final["state"] in ("cancelled", "done")


def test_drain_finishes_accepted_work_and_rejects_new():
    from repro.service.jobs import ServiceDraining

    service = make_service(workers=2).start()
    jobs = [
        service.submit(simulate_document(runs=3, seed=910 + k))
        for k in range(3)
    ]
    service.begin_drain()
    with pytest.raises(ServiceDraining):
        service.submit(simulate_document(seed=999))
    assert service.drain(timeout=120)
    assert all(job.state == "done" for job in jobs)
    assert service.health()["status"] == "draining"


def test_stop_cancels_queued_jobs_and_wakes_waiters():
    import time as _time

    service = make_service(
        workers=1,
        executor_factory=lambda shards: SlowExecutor(1.0),
    ).start()
    slow = service.submit(simulate_document(seed=920, jobs=2))
    queued = service.submit(simulate_document(seed=921, jobs=2))
    woke_after = {}

    def waiter():
        start = _time.monotonic()
        queued.wait(timeout=120)
        woke_after["s"] = _time.monotonic() - start

    thread = threading.Thread(target=waiter)
    thread.start()
    _time.sleep(0.2)
    service.stop()
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert queued.state == "cancelled"
    assert woke_after["s"] < 60  # woke on cancel, not on timeout
    assert slow.state in ("done", "cancelled")


def test_healthz_reports_liveness_and_depth():
    service = make_service(queue_limit=5)
    service.submit(simulate_document(seed=930))
    health = service.health()
    assert health["queue_depth"] == 1
    assert health["queue_limit"] == 5
    assert health["workers"] == 1
    assert "mc_entries" in health["cache"]


# ----------------------------------------------------------------------
# Cache bounds, disk spill, and corruption quarantine (PR 8).
# ----------------------------------------------------------------------


def test_lru_eviction_is_counted_and_bounded(tmp_path):
    service = make_service(cache_entries=1)
    run_job(service, simulate_document(runs=4, seed=940))
    run_job(service, simulate_document(runs=4, seed=941))
    assert service.cache.stats()["mc_entries"] == 1
    assert service.metrics.get("mc_cache_evictions") == 1
    # The evicted entry is gone: re-running it simulates again.
    run_job(service, simulate_document(runs=4, seed=940))
    assert service.metrics.get("runs_simulated_total") == 12


def test_evicted_entry_thaws_from_disk_bit_identically(tmp_path):
    service = make_service(
        cache_entries=1, cache_dir=str(tmp_path / "spill")
    )
    first = run_job(service, simulate_document(runs=4, seed=950))
    run_job(service, simulate_document(runs=4, seed=951))  # evicts
    assert service.metrics.get("mc_cache_evictions") == 1
    again = run_job(service, simulate_document(runs=4, seed=950))
    assert again.result["cache"] == "hit"
    assert service.metrics.get("mc_cache_disk_hits") == 1
    assert again.result["rates"] == first.result["rates"]
    # No extra simulation happened for the disk-served answer.
    assert service.metrics.get("runs_simulated_total") == 8


def test_corrupt_spill_file_is_quarantined_and_recomputed(tmp_path):
    spill = tmp_path / "spill"
    service = make_service(cache_entries=1, cache_dir=str(spill))
    first = run_job(service, simulate_document(runs=4, seed=960))
    run_job(service, simulate_document(runs=4, seed=961))  # evicts
    # Garble every spill file: the disk copies are now lies.
    for path in spill.glob("*.json"):
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
    again = run_job(service, simulate_document(runs=4, seed=960))
    assert again.result["cache"] == "miss"
    assert again.result["rates"] == first.result["rates"]
    assert service.metrics.get("cache_corrupt_quarantined") >= 1
    assert list(spill.glob("*.corrupt"))


def test_metrics_expose_robustness_counters(http_service):
    client, service = http_service
    snapshot = client.metrics()
    for counter in (
        "jobs_timed_out", "jobs_cancelled", "jobs_rejected",
        "mc_cache_evictions", "mc_cache_disk_hits",
        "cache_corrupt_quarantined", "shard_retries",
    ):
        assert counter in snapshot
