"""The chaos harness: the seeded storm proves the fleet's guarantees.

``test_chaos_storm_invariants`` is the acceptance demo: a real HTTP
service under worker kills/hangs, file corruption, and a queue flood
must terminate every job, answer bit-identically to a fault-free run,
and never lose a committed ledger record.  The unit tests pin the
schedule's determinism and the CLI validation contract.
"""

import json

import pytest

from repro.chaos import ChaosConfig, ChaosSchedule, run_chaos
from repro.chaos.harness import ScheduledFaults, _draw
from repro.cli import main
from repro.errors import ReproError


# ----------------------------------------------------------------------
# Schedule determinism.
# ----------------------------------------------------------------------


def test_draws_are_deterministic_and_uniformish():
    assert _draw(1, "worker", 0, 0) == _draw(1, "worker", 0, 0)
    assert _draw(1, "worker", 0, 0) != _draw(2, "worker", 0, 0)
    draws = [_draw(7, "x", k) for k in range(200)]
    assert all(0.0 <= value < 1.0 for value in draws)
    assert 0.3 < sum(draws) / len(draws) < 0.7


def test_schedule_replays_identically_for_equal_seeds():
    config = ChaosConfig(seed=13)
    left = ChaosSchedule(config)
    right = ChaosSchedule(ChaosConfig(seed=13))
    for salt in range(4):
        for shard in range(3):
            for attempt in range(3):
                assert (
                    left.worker_action(salt, shard, attempt)
                    == right.worker_action(salt, shard, attempt)
                )


def test_schedule_never_faults_the_final_attempt():
    schedule = ChaosSchedule(ChaosConfig(seed=5, shard_retries=2))
    for salt in range(20):
        for shard in range(4):
            assert schedule.worker_action(salt, shard, 2) is None


def test_scheduled_faults_vary_by_salt():
    schedule = ChaosSchedule(
        ChaosConfig(seed=11, kill_rate=0.5, hang_rate=0.3)
    )
    actions = {
        str(ScheduledFaults(schedule, salt).action(0, 0))
        for salt in range(32)
    }
    assert len(actions) > 1  # distinct batches draw distinct faults


def test_config_validation():
    with pytest.raises(ReproError, match="seed"):
        ChaosConfig(seed=-1)
    with pytest.raises(ReproError, match="waves"):
        ChaosConfig(waves=0)
    with pytest.raises(ReproError, match="duplicate_jobs"):
        ChaosConfig(duplicate_jobs=-1)


# ----------------------------------------------------------------------
# The storm itself (the PR acceptance demo).
# ----------------------------------------------------------------------


def test_chaos_storm_invariants(tmp_path):
    config = ChaosConfig(
        seed=3,
        waves=1,
        unique_jobs=2,
        duplicate_jobs=1,
        runs=4,
        iterations=8,
    )
    report = run_chaos(config, out_dir=str(tmp_path))
    assert report.ok, report.summary()
    assert report.invariants["terminal-states"]["ok"]
    assert report.invariants["bit-identical-results"]["ok"]
    assert report.invariants["ledger-durability"]["ok"]
    assert report.jobs_submitted >= 5  # 3 wave jobs + doomed + victim
    assert report.states.get("done", 0) >= 2
    assert report.ledger_lines_injected == 2
    assert report.cache_files_corrupted >= 1

    # The artifacts a CI failure would be debugged from exist.
    events = [
        json.loads(line)
        for line in (tmp_path / "chaos-events.jsonl")
        .read_text().splitlines()
    ]
    kinds = {event["kind"] for event in events}
    assert {"storm-start", "submitted", "corrupt-ledger",
            "job-terminal", "storm-end"} <= kinds
    written = json.loads(
        (tmp_path / "chaos-report.json").read_text()
    )
    assert written["ok"] is True
    assert written["seed"] == 3


# ----------------------------------------------------------------------
# CLI contract.
# ----------------------------------------------------------------------


def test_chaos_cli_validates_arguments(capsys):
    assert main(["chaos", "--waves", "0"]) == 2
    assert "error: --waves must be >= 1" in capsys.readouterr().err
    assert main(["chaos", "--seed", "-3"]) == 2
    assert "error: --seed must be >= 0" in capsys.readouterr().err
    assert main(["chaos", "--shards", "0"]) == 2
    assert "--shards must be >= 1" in capsys.readouterr().err
