"""Tests for the reliability-based trace abstraction."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.model import BOTTOM
from repro.reliability import AbstractTrace, limit_average, running_average

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                     max_size=200)


def test_limit_average_basic():
    assert limit_average([1, 1, 0, 0]) == 0.5
    assert limit_average([1]) == 1.0
    assert limit_average([0, 0, 0]) == 0.0


def test_limit_average_empty_rejected():
    with pytest.raises(AnalysisError):
        limit_average([])


def test_running_average_prefixes():
    result = running_average([1, 0, 1, 1])
    assert result == pytest.approx([1.0, 0.5, 2 / 3, 0.75])


def test_running_average_empty_rejected():
    with pytest.raises(AnalysisError):
        running_average([])


def test_abstract_trace_from_plain_values():
    trace = AbstractTrace.from_values("c", [1.0, BOTTOM, 0.0, BOTTOM])
    assert list(trace.bits) == [1, 0, 1, 0]
    assert len(trace) == 4
    assert trace.limit_average() == 0.5
    assert trace.reliable_count() == 2


def test_abstract_trace_from_replica_sets():
    # A set is reliable when any member is non-bottom.
    trace = AbstractTrace.from_values(
        "c",
        [{BOTTOM, 1.0}, {BOTTOM}, [2.0], (BOTTOM, BOTTOM)],
    )
    assert list(trace.bits) == [1, 0, 1, 0]


def test_abstract_trace_satisfies():
    trace = AbstractTrace.from_values("c", [1.0, 1.0, BOTTOM, 1.0])
    assert trace.satisfies(0.75)
    assert not trace.satisfies(0.80)
    assert trace.satisfies(0.80, slack=0.10)


def test_abstract_trace_running_average():
    trace = AbstractTrace.from_values("c", [1.0, BOTTOM])
    assert trace.running_average() == pytest.approx([1.0, 0.5])


@given(bit_lists)
def test_limit_average_bounds(bits):
    value = limit_average(bits)
    assert 0.0 <= value <= 1.0
    assert value == pytest.approx(sum(bits) / len(bits))


@given(bit_lists)
def test_running_average_last_equals_limit_average(bits):
    assert running_average(bits)[-1] == pytest.approx(limit_average(bits))


@given(bit_lists, bit_lists)
def test_limit_average_of_concatenation_is_weighted_mean(first, second):
    combined = limit_average(first + second)
    expected = (
        limit_average(first) * len(first)
        + limit_average(second) * len(second)
    ) / (len(first) + len(second))
    assert combined == pytest.approx(expected)


@given(bit_lists)
def test_abstract_trace_agrees_with_numpy(bits):
    values = [1.0 if bit else BOTTOM for bit in bits]
    trace = AbstractTrace.from_values("c", values)
    assert trace.limit_average() == pytest.approx(
        float(np.mean(bits))
    )
