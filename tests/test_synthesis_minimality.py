"""Exhaustive minimality checks for the replication synthesiser.

On systems small enough to enumerate every mapping, the synthesiser's
result must be *replica-minimal*: no valid mapping with fewer task
replications exists.  This pins down the iterative-deepening search.
"""

import itertools

import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.errors import SynthesisError
from repro.experiments import random_specification
from repro.mapping import Implementation
from repro.model import Communicator, Specification, Task
from repro.synthesis import synthesize_replication
from repro.validity import check_validity


def enumerate_mappings(spec, arch, sensor_pools):
    """Yield every implementation over non-empty host subsets."""
    hosts = arch.host_names()
    host_subsets = [
        frozenset(combo)
        for size in range(1, len(hosts) + 1)
        for combo in itertools.combinations(hosts, size)
    ]
    tasks = sorted(spec.tasks)
    inputs = sorted(spec.input_communicators())
    sensor_subsets = {
        comm: [
            frozenset(combo)
            for size in range(1, len(sensor_pools[comm]) + 1)
            for combo in itertools.combinations(
                sensor_pools[comm], size
            )
        ]
        for comm in inputs
    }
    for assignment in itertools.product(host_subsets, repeat=len(tasks)):
        for binding in itertools.product(
            *(sensor_subsets[c] for c in inputs)
        ):
            yield Implementation(
                dict(zip(tasks, assignment)),
                dict(zip(inputs, binding)),
            )


def brute_force_minimum(spec, arch, sensor_pools):
    best = None
    for implementation in enumerate_mappings(spec, arch, sensor_pools):
        if check_validity(spec, arch, implementation).valid:
            cost = implementation.replication_count()
            if best is None or cost < best:
                best = cost
    return best


def tiny_system(lrc_out, host_reliabilities=(0.9, 0.95)):
    comms = [
        Communicator("a", period=10, lrc=0.5),
        Communicator("m", period=10, lrc=lrc_out * 0.9),
        Communicator("out", period=10, lrc=lrc_out),
    ]
    tasks = [
        Task("t1", [("a", 0)], [("m", 1)]),
        Task("t2", [("m", 1)], [("out", 2)]),
    ]
    spec = Specification(comms, tasks)
    arch = Architecture(
        hosts=[
            Host(f"h{i}", r)
            for i, r in enumerate(host_reliabilities)
        ],
        sensors=[Sensor("s1", 0.99), Sensor("s2", 0.99)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    return spec, arch


@pytest.mark.parametrize("lrc_out", [0.5, 0.8, 0.9, 0.93])
def test_synthesis_is_minimal_on_two_task_chain(lrc_out):
    spec, arch = tiny_system(lrc_out)
    pools = {"a": arch.sensor_names()}
    brute = brute_force_minimum(spec, arch, pools)
    if brute is None:
        with pytest.raises(SynthesisError):
            synthesize_replication(spec, arch)
        return
    result = synthesize_replication(spec, arch)
    assert result.valid
    assert result.replication_count == brute


@pytest.mark.parametrize("seed", range(4))
def test_synthesis_is_minimal_on_random_small_systems(seed):
    spec = random_specification(
        seed, layers=1, tasks_per_layer=2, inputs=2,
        lrc_range=(0.6, 0.93),
    )
    from repro.experiments import random_architecture

    arch = random_architecture(seed, hosts=3, sensors=2,
                               reliability_range=(0.85, 0.99))
    pools = {
        comm: arch.sensor_names()
        for comm in spec.input_communicators()
    }
    brute = brute_force_minimum(spec, arch, pools)
    if brute is None:
        with pytest.raises(SynthesisError):
            synthesize_replication(spec, arch)
        return
    result = synthesize_replication(spec, arch)
    assert result.valid
    assert result.replication_count == brute
