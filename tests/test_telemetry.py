"""Tests for the telemetry subsystem: tracing, metrics, profiling.

Covers the three pillars (tracer spans, metrics registry, stage
profiler), the instrumentation-sink protocol shared with the
resilience monitor, run-id stamping and JSONL round-trips of every
resilience event type, and the PR 2 seed-contract regression: all
telemetry is purely observational, so attaching it must not change a
single simulated value.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import ReproError, RuntimeSimulationError
from repro.experiments import (
    ACTUATORS,
    baseline_implementation,
    bind_control_functions,
    scenario2_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.experiments.three_tank_system import ThreeTankEnvironment
from repro.report import render_metrics_dashboard
from repro.resilience import (
    EVENT_KINDS,
    HostDead,
    HostRecovered,
    HostSuspected,
    LrcAlarm,
    LrcClear,
    LrcMonitor,
    MonitorConfig,
    RecoveryCommitted,
    RecoveryFailed,
    ResilientSimulator,
    WatchdogConfig,
    ReReplicatePolicy,
    event_from_dict,
    events_from_jsonl,
    events_to_jsonl,
    resilient_batch,
)
from repro.runtime import (
    BatchSimulator,
    BernoulliFaults,
    ScriptedFaults,
    Simulator,
)
from repro.telemetry import (
    Histogram,
    InstrumentationSink,
    MetricsRegistry,
    MetricsSink,
    NULL_PROFILER,
    NullProfiler,
    NullSink,
    StageProfiler,
    TelemetryBus,
    TraceEvent,
    Tracer,
    derive_run_id,
    load_trace_file,
    record_batch_result,
    record_margins,
    render_summary,
    summarize_trace,
)


def sample_events():
    """One instance of every resilience event type."""
    return [
        LrcAlarm(
            time=400, communicator="u1", rate=0.7,
            threshold=0.99, window=50,
        ),
        LrcClear(
            time=900, communicator="u1", rate=1.0,
            threshold=0.99, window=50,
        ),
        HostSuspected(time=1000, host="h2", missed=2),
        HostDead(time=1500, host="h2", missed=3),
        HostRecovered(time=2500, host="h2"),
        RecoveryCommitted(
            time=1500,
            policy="re-replicate",
            dead_hosts=("h2",),
            assignment={"t1": ("h1",)},
            srgs={"u1": 0.99},
        ),
        RecoveryFailed(time=1500, dead_hosts=("h2",), reason="no hosts"),
    ]


def run_kwargs(seed=3):
    """Shared construction kwargs for a deterministic 3TS run."""
    return dict(
        environment=ThreeTankEnvironment(),
        faults=BernoulliFaults(three_tank_architecture()),
        actuator_communicators=ACTUATORS,
        seed=seed,
    )


def bound_spec():
    return three_tank_spec(
        lrc_u=0.99, functions=bind_control_functions()
    )


# ----------------------------------------------------------------------
# Event round-trips and stamping.
# ----------------------------------------------------------------------


def test_every_event_kind_round_trips_through_jsonl():
    events = sample_events()
    assert {e.kind for e in events} == set(EVENT_KINDS)
    parsed = events_from_jsonl(events_to_jsonl(events))
    assert [type(e) for e in parsed] == [type(e) for e in events]
    assert [e.to_dict() for e in parsed] == [
        e.to_dict() for e in events
    ]


def test_stamped_events_round_trip_with_run_id_and_seq():
    events = [
        dataclasses.replace(e, run_id="s42/1", seq=i)
        for i, e in enumerate(sample_events())
    ]
    parsed = events_from_jsonl(events_to_jsonl(events))
    assert [(e.run_id, e.seq) for e in parsed] == [
        ("s42/1", i) for i in range(len(events))
    ]
    assert [e.to_dict() for e in parsed] == [
        e.to_dict() for e in events
    ]


def test_unstamped_to_dict_omits_run_id_and_seq():
    doc = HostDead(time=1500, host="h2", missed=3).to_dict()
    assert "run_id" not in doc and "seq" not in doc
    assert doc == {
        "kind": "host-dead", "time": 1500, "run": None,
        "host": "h2", "missed": 3,
    }


def test_event_from_dict_rejects_garbage():
    with pytest.raises(RuntimeSimulationError, match="unknown"):
        event_from_dict({"kind": "nope", "time": 1})
    with pytest.raises(RuntimeSimulationError, match="malformed"):
        event_from_dict({"kind": "host-dead", "bogus": 1})
    with pytest.raises(ReproError):
        events_from_jsonl("not json\n")
    with pytest.raises(ReproError):
        events_from_jsonl("[1, 2]\n")


def test_resilient_run_stamps_run_id_and_monotonic_seq():
    spec = bound_spec()
    sim = ResilientSimulator(
        spec,
        three_tank_architecture(),
        baseline_implementation(),
        monitor=MonitorConfig(window=50, communicators=("u1", "u2")),
        watchdog=WatchdogConfig(),
        policies=(ReReplicatePolicy(),),
        environment=ThreeTankEnvironment(),
        faults=ScriptedFaults(host_outages={"h2": [(5000, None)]}),
        actuator_communicators=ACTUATORS,
        seed=7,
    )
    result = sim.run(30)
    assert result.events, "scenario must produce events"
    assert all(e.run_id == "s7" for e in result.events)
    assert [e.seq for e in result.events] == list(
        range(len(result.events))
    )
    # Round-trip keeps the stamps.
    parsed = events_from_jsonl(events_to_jsonl(result.events))
    assert [e.to_dict() for e in parsed] == [
        e.to_dict() for e in result.events
    ]


# ----------------------------------------------------------------------
# Run-id derivation.
# ----------------------------------------------------------------------


def test_derive_run_id_from_int_none_and_seedsequence():
    assert derive_run_id(None) == "s-"
    assert derive_run_id(42) == "s42"
    assert derive_run_id(np.random.SeedSequence(42)) == "s42"
    child = np.random.SeedSequence(42).spawn(3)[2]
    assert derive_run_id(child) == "s42/2"
    # Generators unwrap to their seed sequence.
    assert derive_run_id(np.random.default_rng(child)) == "s42/2"
    assert derive_run_id(np.random.default_rng(7)) == "s7"


def test_batch_and_direct_construction_agree_on_run_id():
    children = np.random.SeedSequence(5).spawn(4)
    for k, child in enumerate(children):
        assert derive_run_id(np.random.default_rng(child)) == f"s5/{k}"


# ----------------------------------------------------------------------
# Tracer: span structure and exporters.
# ----------------------------------------------------------------------


def fixed_clock(step=0.001):
    state = {"t": 0.0}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


def test_trace_event_dict_shapes():
    span = TraceEvent(name="a", cat="c", ph="X", ts=1.0, dur=2.0)
    doc = span.to_dict()
    assert doc["dur"] == 2.0 and "s" not in doc
    instant = TraceEvent(name="b", cat="c", ph="i", ts=1.0)
    doc = instant.to_dict()
    assert doc["s"] == "t" and "dur" not in doc
    meta = TraceEvent(name="m", cat="_", ph="M", ts=0.0)
    doc = meta.to_dict()
    assert "dur" not in doc and "s" not in doc


def test_tracer_builds_balanced_spans_from_engine_hooks():
    iterations = 5
    tracer = Tracer(run_id="s3", clock=fixed_clock())
    Simulator(
        bound_spec(),
        three_tank_architecture(),
        baseline_implementation(),
        sinks=(tracer,),
        **run_kwargs(),
    ).run(iterations)
    doc = tracer.to_chrome()
    assert tracer._stack == []  # every span closed
    events = doc["traceEvents"]
    assert doc["otherData"]["run_id"] == "s3"
    spans = [e for e in events if e["ph"] == "X"]
    run_spans = [e for e in spans if e["cat"] == "run"]
    assert len(run_spans) == 1
    iteration_spans = [e for e in spans if e["cat"] == "iteration"]
    assert len(iteration_spans) == iterations
    assert [s["args"]["iteration"] for s in iteration_spans] == list(
        range(iterations)
    )
    release_spans = [e for e in spans if e["cat"] == "task"]
    assert len(release_spans) == iterations * len(
        bound_spec().tasks
    )
    for event in events:
        assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert event["dur"] >= 0.0
    # Instants carry logical time.
    votes = [
        e for e in events if e["ph"] == "i" and e["cat"] == "vote"
    ]
    assert votes and all("instant" in v["args"] for v in votes)


def test_tracer_jsonl_parses_line_by_line():
    tracer = Tracer(clock=fixed_clock())
    with tracer.span("work", cat="test", n=1):
        tracer.instant("tick", cat="test")
    lines = tracer.to_jsonl().splitlines()
    docs = [json.loads(line) for line in lines]
    assert [d["ph"] for d in docs] == ["M", "i", "X"]


def test_tracer_records_resilience_events_as_instants():
    tracer = Tracer(clock=fixed_clock())
    for event in sample_events():
        tracer.on_event(event)
    instants = [e for e in tracer.events if e.ph == "i"]
    assert [e.name for e in instants] == [
        e.kind for e in sample_events()
    ]
    assert all(e.cat == "resilience" for e in instants)


# ----------------------------------------------------------------------
# Seed contract: telemetry on == telemetry off, bit for bit.
# ----------------------------------------------------------------------


def test_scalar_results_identical_with_and_without_telemetry():
    def run(sinks):
        return Simulator(
            bound_spec(),
            three_tank_architecture(),
            baseline_implementation(),
            sinks=sinks,
            **run_kwargs(seed=11),
        ).run(10)

    plain = run(())
    traced = run((Tracer(), MetricsSink(), NullSink()))
    assert plain.values == traced.values
    assert plain.replica_attempts == traced.replica_attempts
    assert plain.replica_failures == traced.replica_failures


def test_batch_results_identical_with_and_without_profiler():
    spec = three_tank_spec(lrc_u=0.99)
    arch = three_tank_architecture()
    impl = baseline_implementation()

    def run(profiler):
        batch = BatchSimulator(
            spec, arch, impl, faults=BernoulliFaults(arch), seed=9,
            profiler=profiler,
        )
        return batch.run_batch(6, 15)

    plain = run(None)
    profiler = StageProfiler()
    profiled = run(profiler)
    for name in plain.reliable_counts:
        assert np.array_equal(
            plain.reliable_counts[name], profiled.reliable_counts[name]
        )
    stages = {s.name for s in profiler.stats()}
    assert {"plan-compile", "fault-precompute", "propagate"} <= stages


def test_resilient_results_identical_with_and_without_telemetry():
    def run(telemetry):
        return ResilientSimulator(
            bound_spec(),
            three_tank_architecture(),
            baseline_implementation(),
            monitor=MonitorConfig(
                window=50, communicators=("u1", "u2")
            ),
            watchdog=WatchdogConfig(),
            policies=(ReReplicatePolicy(),),
            environment=ThreeTankEnvironment(),
            faults=ScriptedFaults(host_outages={"h2": [(5000, None)]}),
            actuator_communicators=ACTUATORS,
            seed=7,
            telemetry=telemetry,
        ).run(30)

    bus = TelemetryBus(run_id="s7", sinks=(Tracer(), MetricsSink()))
    plain = run(None)
    observed = run(bus)
    assert plain.values == observed.values
    assert [e.to_dict() for e in plain.events] == [
        e.to_dict() for e in observed.events
    ]
    # The bus saw the same correlated stream.
    assert [e.to_dict() for e in bus] == [
        e.to_dict() for e in plain.events
    ]


def test_resilient_batch_unchanged_by_stamping_contract():
    spec = bound_spec()
    arch = three_tank_architecture()
    batch = resilient_batch(
        spec, arch, baseline_implementation(), 2, 20, seed=42,
        environment_factory=ThreeTankEnvironment,
        faults=ScriptedFaults(host_outages={"h2": [(5000, None)]}),
        actuator_communicators=ACTUATORS,
        monitor=MonitorConfig(window=50, communicators=("u1", "u2")),
        watchdog=WatchdogConfig(),
        policies=(ReReplicatePolicy(),),
    )
    for k in range(2):
        for event in batch.events_for_run(k):
            assert event.run_id == f"s42/{k}"
    # Merged stream sorts deterministically by (run_id, seq).
    ordered = sorted(
        batch.events, key=lambda e: (e.run_id, e.seq)
    )
    assert [e.to_dict() for e in ordered] == [
        e.to_dict()
        for k in range(2)
        for e in batch.events_for_run(k)
    ]


# ----------------------------------------------------------------------
# The sink protocol.
# ----------------------------------------------------------------------


class RecordingSink(InstrumentationSink):
    def __init__(self):
        self.calls = []

    def on_run_start(self, start_time, iterations, period):
        self.calls.append(("run_start", start_time, iterations))

    def on_iteration_start(self, iteration, time):
        self.calls.append(("iteration", iteration))

    def on_run_end(self, time):
        self.calls.append(("run_end", time))


def test_sinks_receive_run_framing():
    sink = RecordingSink()
    Simulator(
        bound_spec(),
        three_tank_architecture(),
        baseline_implementation(),
        sinks=(sink,),
        **run_kwargs(),
    ).run(3)
    assert sink.calls[0] == ("run_start", 0, 3)
    assert [c for c in sink.calls if c[0] == "iteration"] == [
        ("iteration", i) for i in range(3)
    ]
    assert sink.calls[-1][0] == "run_end"


def test_monitor_is_a_sink_and_on_access_delegates():
    spec = three_tank_spec(lrc_u=0.99)
    config = MonitorConfig(window=5, alarm_below={"u1": 0.9})
    via_observe = LrcMonitor(spec, config)
    via_hook = LrcMonitor(spec, config)
    assert isinstance(via_hook, InstrumentationSink)
    for i in range(5):
        via_observe.observe("u1", i, False)
        via_hook.on_access("u1", i, False)
    assert [e.to_dict() for e in via_hook.events] == [
        e.to_dict() for e in via_observe.events
    ]
    assert via_hook.events  # the all-failures window alarms


def test_hook_sinks_filter_to_overriding_subscribers():
    from repro.telemetry import HOOK_NAMES, HookSinks, sinks_for_hook

    recording = RecordingSink()
    null = NullSink()
    tracer = Tracer()
    hooks = HookSinks((recording, null, tracer))
    # NullSink overrides nothing: it appears in no dispatch table.
    for name in HOOK_NAMES:
        assert null not in getattr(hooks, name)
    assert sinks_for_hook((recording, tracer), "on_access") == (tracer,)
    assert hooks.on_run_start == (recording, tracer)
    assert hooks.on_sensor_update == (tracer,)
    empty = HookSinks()
    assert all(getattr(empty, name) == () for name in HOOK_NAMES)


def test_null_sink_accepts_every_hook():
    sink = NullSink()
    sink.on_run_start(0, 1, 100)
    sink.on_iteration_start(0, 0)
    sink.on_sensor_update("s1", 0, True)
    sink.on_access("u1", 0, True)
    sink.on_release_start("t1", 0, 0)
    sink.on_replica("t1", "h1", 0, 0, True)
    sink.on_release_end("t1", 0, 0)
    sink.on_commit("t1", "u1", 0, 100, 2, True)
    sink.on_event(sample_events()[0])
    sink.on_run_end(100)


# ----------------------------------------------------------------------
# Metrics registry and exposition.
# ----------------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", help="c")
    counter.inc()
    counter.inc(2.0)
    assert counter.value == 3.0
    with pytest.raises(ValueError, match="increase"):
        counter.inc(-1)
    registry.gauge("g", {"x": "1"}).set(0.5)
    hist = registry.histogram("h", buckets=(1.0, 10.0))
    hist.observe(0.5)
    hist.observe(5.0)
    hist.observe(50.0)
    assert hist.count == 3 and hist.sum == 55.5
    assert hist.counts == [1, 1, 1]
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("c_total")


def test_snapshot_is_stable_and_json_safe():
    registry = MetricsRegistry()
    registry.counter("b_total", {"z": "2"}).inc()
    registry.counter("b_total", {"a": "1"}).inc()
    registry.counter("a_total").inc()
    snap = registry.snapshot()
    assert list(snap) == ["a_total", "b_total"]
    assert json.loads(json.dumps(snap)) == snap
    labels = [s["labels"] for s in snap["b_total"]["series"]]
    assert labels == [{"a": "1"}, {"z": "2"}]


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter(
        "repro_accesses_total",
        {"communicator": 'u"1'},
        help="Accesses.",
    ).inc(3)
    registry.histogram("repro_latency", buckets=(1.0, 5.0)).observe(2.0)
    text = registry.to_prometheus()
    assert "# HELP repro_accesses_total Accesses." in text
    assert "# TYPE repro_accesses_total counter" in text
    assert 'communicator="u\\"1"' in text  # quote escaping
    assert 'repro_latency_bucket{le="1.0"} 0' in text
    assert 'repro_latency_bucket{le="5.0"} 1' in text
    assert 'repro_latency_bucket{le="+Inf"} 1' in text
    assert "repro_latency_sum 2.0" in text
    assert "repro_latency_count 1" in text


def test_metrics_sink_fills_catalog_from_a_run():
    sink = MetricsSink()
    Simulator(
        bound_spec(),
        three_tank_architecture(),
        baseline_implementation(),
        sinks=(sink,),
        **run_kwargs(),
    ).run(4)
    snap = sink.registry.snapshot()
    assert snap["repro_iterations_total"]["series"][0]["value"] == 4.0
    assert "repro_accesses_total" in snap
    assert "repro_sensor_updates_total" in snap
    assert "repro_votes_total" in snap
    assert "repro_replica_broadcasts_total" in snap
    rates = snap["repro_reliable_write_rate"]["series"]
    assert all(0.0 <= s["value"] <= 1.0 for s in rates)


def test_metrics_sink_classifies_resilience_events():
    sink = MetricsSink()
    sink.on_run_start(0, 10, 100)
    for event in sample_events():
        sink.on_event(event)
    snap = sink.registry.snapshot()
    kinds = {
        s["labels"]["kind"]: s["value"]
        for s in snap["repro_resilience_events_total"]["series"]
    }
    assert kinds == {kind: 1.0 for kind in EVENT_KINDS}
    assert snap["repro_hosts_suspected_total"]["series"][0]["value"] == 1.0
    assert snap["repro_hosts_dead_total"]["series"][0]["value"] == 1.0
    outcomes = {
        s["labels"]["outcome"]: s["value"]
        for s in snap["repro_recoveries_total"]["series"]
    }
    assert outcomes == {"committed": 1.0, "failed": 1.0}
    latency = snap["repro_detection_latency"]["series"][0]["value"]
    assert latency["count"] == 1 and latency["sum"] == 400.0


def test_record_batch_result_and_margins():
    spec = three_tank_spec(lrc_u=0.99)
    arch = three_tank_architecture()
    batch = BatchSimulator(
        spec, arch, baseline_implementation(),
        faults=BernoulliFaults(arch), seed=1,
    ).run_batch(3, 10)
    registry = MetricsRegistry()
    record_batch_result(registry, batch, elapsed_seconds=0.5)
    snap = registry.snapshot()
    assert snap["repro_batch_runs"]["series"][0]["value"] == 3.0
    assert snap["repro_batch_throughput"]["series"][0]["value"] == 6.0
    record_margins(registry, {"u1": (0.997, 0.99)})
    snap = registry.snapshot()
    assert snap["repro_srg_lrc_margin"]["series"][0][
        "value"
    ] == pytest.approx(0.007)


def test_metrics_dashboard_renders():
    registry = MetricsRegistry()
    assert "empty" in render_metrics_dashboard(registry.snapshot())
    registry.counter("repro_iterations_total").inc(5)
    registry.gauge(
        "repro_reliable_write_rate", {"communicator": "u1"},
        unit="ratio",
    ).set(0.75)
    registry.histogram("repro_latency").observe(3.0)
    text = render_metrics_dashboard(registry.snapshot())
    assert "repro_iterations_total" in text
    assert "communicator=u1" in text
    assert "#" in text  # the gauge bar
    assert "n=1" in text


# ----------------------------------------------------------------------
# Stage profiler.
# ----------------------------------------------------------------------


def test_profiler_accumulates_stages():
    profiler = StageProfiler(clock=fixed_clock(step=1.0))
    with profiler.stage("a"):
        pass
    with profiler.stage("a"):
        pass
    with profiler.stage("b"):
        pass
    stats = {s.name: s for s in profiler.stats()}
    assert stats["a"].calls == 2
    assert stats["a"].total_seconds == pytest.approx(2.0)
    assert stats["a"].mean_seconds == pytest.approx(1.0)
    assert profiler.total_seconds() == pytest.approx(3.0)
    text = profiler.render()
    assert "a" in text and "total" in text
    profiler.reset()
    assert profiler.stats() == []
    assert "no stages" in profiler.render()


def test_null_profiler_is_inert_and_shared():
    assert NULL_PROFILER.enabled is False
    assert isinstance(NULL_PROFILER, NullProfiler)
    timer_a = NULL_PROFILER.stage("x")
    timer_b = NULL_PROFILER.stage("y")
    assert timer_a is timer_b  # shared no-op timer, no allocation
    with timer_a:
        pass
    assert NULL_PROFILER.stats() == []


# ----------------------------------------------------------------------
# Telemetry bus.
# ----------------------------------------------------------------------


def test_bus_fans_events_to_sinks():
    received = []

    class Probe(InstrumentationSink):
        def on_event(self, event):
            received.append(event.kind)

    bus = TelemetryBus(run_id="s1", sinks=(Probe(),))
    events = sample_events()
    bus.append(events[0])
    bus.extend(events[1:3])
    bus.record_events(events[3:])
    assert len(bus) == len(events)
    assert [e.kind for e in bus] == [e.kind for e in events]
    assert received == [e.kind for e in events]
    assert len(bus.engine_sinks()) == 1


# ----------------------------------------------------------------------
# Trace files and the summarizer.
# ----------------------------------------------------------------------


def traced_run(tmp_path, fmt="chrome"):
    tracer = Tracer(run_id="s3", clock=fixed_clock())
    Simulator(
        bound_spec(),
        three_tank_architecture(),
        baseline_implementation(),
        sinks=(tracer,),
        **run_kwargs(),
    ).run(4)
    path = tmp_path / ("t.jsonl" if fmt == "jsonl" else "t.json")
    with open(path, "w") as handle:
        if fmt == "jsonl":
            tracer.write_jsonl(handle)
        else:
            tracer.write_chrome(handle)
    return path


@pytest.mark.parametrize("fmt", ["chrome", "jsonl"])
def test_load_trace_file_both_formats(tmp_path, fmt):
    events = load_trace_file(traced_run(tmp_path, fmt))
    summary = summarize_trace(events)
    assert summary.run_id == "s3"
    assert summary.spans and summary.instants
    assert summary.critical_iteration is not None
    text = render_summary(summary, top=3)
    assert "trace summary" in text
    assert "run id            s3" in text


def test_load_trace_file_error_cases(tmp_path):
    with pytest.raises(ReproError, match="cannot read"):
        load_trace_file(tmp_path / "missing.json")
    empty = tmp_path / "empty.json"
    empty.write_text("")
    with pytest.raises(ReproError, match="empty"):
        load_trace_file(empty)
    malformed = tmp_path / "bad.jsonl"
    malformed.write_text('{"ph": "i"}\nnot json\n')
    with pytest.raises(ReproError, match="line 2"):
        load_trace_file(malformed)
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"notTraceEvents": []}')
    with pytest.raises(ReproError, match="traceEvents"):
        load_trace_file(wrong)
    scalar_doc = tmp_path / "scalar.json"
    scalar_doc.write_text("42")
    with pytest.raises(ReproError, match="not a trace-event"):
        load_trace_file(scalar_doc)
    non_object = tmp_path / "items.json"
    non_object.write_text("[1, 2]")
    with pytest.raises(ReproError, match="non-object"):
        load_trace_file(non_object)


def test_summarize_trace_ranks_unreliable_writes():
    events = [
        {"ph": "X", "cat": "iteration", "name": "iteration 0",
         "ts": 0.0, "dur": 5.0, "args": {"iteration": 0}},
        {"ph": "X", "cat": "iteration", "name": "iteration 1",
         "ts": 5.0, "dur": 9.0, "args": {"iteration": 1}},
        {"ph": "i", "cat": "access", "ts": 1.0,
         "args": {"communicator": "u1", "reliable": False}},
        {"ph": "i", "cat": "access", "ts": 2.0,
         "args": {"communicator": "u1", "reliable": False}},
        {"ph": "i", "cat": "vote", "ts": 3.0,
         "args": {"communicator": "r2", "reliable": False}},
        {"ph": "i", "cat": "access", "ts": 4.0,
         "args": {"communicator": "l1", "reliable": True}},
        {"ph": "i", "cat": "resilience", "name": "lrc-alarm",
         "ts": 5.0, "args": {"kind": "lrc-alarm"}},
    ]
    summary = summarize_trace(events)
    assert summary.critical_iteration == (1, 9.0)
    assert summary.unreliable_writes == [("u1", 2), ("r2", 1)]
    assert summary.resilience_kinds == {"lrc-alarm": 1}
    text = render_summary(summary)
    assert "unreliable writes" in text
    assert "lrc-alarm" in text


# ----------------------------------------------------------------------
# Histogram percentiles and the dashboard (ISSUE 5 satellites).
# ----------------------------------------------------------------------


def test_empty_histogram_percentiles_are_zero():
    hist = Histogram(buckets=(1.0, 10.0))
    assert hist.percentile(0.5) == 0.0
    assert hist.percentiles() == {"p50": 0.0, "p90": 0.0, "p99": 0.0}


def test_single_bucket_percentiles_interpolate():
    hist = Histogram(buckets=(10.0,))
    for _ in range(5):
        hist.observe(4.0)
    # All mass in [0, 10): ranks interpolate linearly inside it.
    assert hist.percentile(0.5) == pytest.approx(5.0)
    assert hist.percentile(1.0) == pytest.approx(10.0)
    assert hist.percentiles()["p99"] == pytest.approx(9.9)


def test_overflow_percentiles_report_last_finite_bound():
    hist = Histogram(buckets=(1.0, 10.0))
    hist.observe(0.5)
    for _ in range(9):
        hist.observe(500.0)  # overflow bucket
    # The histogram cannot resolve beyond its largest bound.
    assert hist.percentile(0.99) == 10.0
    with pytest.raises(ValueError, match="quantile"):
        hist.percentile(1.5)


def test_snapshot_and_dashboard_show_percentiles():
    registry = MetricsRegistry()
    hist = registry.histogram("repro_latency", buckets=(1.0, 10.0))
    for value in (0.5, 2.0, 4.0, 8.0):
        hist.observe(value)
    snap = registry.snapshot()
    series = snap["repro_latency"]["series"][0]["value"]
    expected = hist.percentiles()
    assert series["percentiles"] == expected
    text = render_metrics_dashboard(snap)
    assert f"p50={expected['p50']:.3f}" in text
    assert f"p90={expected['p90']:.3f}" in text
    assert f"p99={expected['p99']:.3f}" in text


# ----------------------------------------------------------------------
# Prometheus label-value escaping (ISSUE 5 satellite).
# ----------------------------------------------------------------------


def _parse_prometheus_label(text, metric, label):
    """Minimal spec-compliant parse of one label value."""
    import re

    for line in text.splitlines():
        if not line.startswith(metric + "{"):
            continue
        match = re.search(label + r'="((?:[^"\\]|\\.)*)"', line)
        assert match, line
        return re.sub(
            r"\\(.)",
            lambda m: {"n": "\n"}.get(m.group(1), m.group(1)),
            match.group(1),
        )
    raise AssertionError(f"no sample of {metric} in:\n{text}")


@pytest.mark.parametrize(
    "value",
    [
        'plain"quote',
        "back\\slash",
        "multi\nline",
        'all\\three\n"together"\\n',
    ],
)
def test_prometheus_label_values_round_trip(value):
    registry = MetricsRegistry()
    registry.counter("repro_x_total", {"communicator": value}).inc()
    text = registry.to_prometheus()
    # Escaped samples stay one-per-line (newlines never leak through).
    sample_lines = [
        line
        for line in text.splitlines()
        if line.startswith("repro_x_total{")
    ]
    assert len(sample_lines) == 1
    parsed = _parse_prometheus_label(
        text, "repro_x_total", "communicator"
    )
    assert parsed == value


# ----------------------------------------------------------------------
# The per-sensor outcome hook (ISSUE 5 tentpole wiring).
# ----------------------------------------------------------------------


class _SensorProbe(InstrumentationSink):
    def __init__(self):
        self.stream = []

    def on_sensor_outcome(self, communicator, time, sensor, ok):
        self.stream.append(("outcome", communicator, time, sensor, ok))

    def on_sensor_update(self, communicator, time, delivered):
        self.stream.append(("update", communicator, time, delivered))


def test_sensor_outcomes_precede_each_aggregate_update():
    probe = _SensorProbe()
    Simulator(
        bound_spec(),
        three_tank_architecture(),
        scenario2_implementation(),  # two sensors per communicator
        sinks=(probe,),
        environment=ThreeTankEnvironment(),
        faults=ScriptedFaults(sensor_outages={"sen1": [(0, None)]}),
        actuator_communicators=ACTUATORS,
        seed=3,
    ).run(4)
    updates = [e for e in probe.stream if e[0] == "update"]
    assert updates
    index = 0
    for kind, comm, time, delivered in updates:
        outcomes = []
        while probe.stream[index][0] == "outcome":
            outcomes.append(probe.stream[index])
            index += 1
        assert probe.stream[index] == (kind, comm, time, delivered)
        index += 1
        # Per-sensor outcomes for the same instant, in sorted order.
        assert [o[1:3] for o in outcomes] == [(comm, time)] * len(outcomes)
        sensors = [o[3] for o in outcomes]
        assert sensors == sorted(sensors) and len(sensors) == 2
        # The aggregate is the OR of the per-sensor deliveries.
        assert delivered == any(o[4] for o in outcomes)
        if comm == "s1":
            oks = dict((o[3], o[4]) for o in outcomes)
            assert oks["sen1"] is False  # scripted outage
    assert index == len(probe.stream)


def test_null_sink_accepts_sensor_outcome():
    from repro.telemetry import HOOK_NAMES

    assert "on_sensor_outcome" in HOOK_NAMES
    NullSink().on_sensor_outcome("s1", 0, "sen1", True)  # no-op


# ----------------------------------------------------------------------
# Merged event streams on the bus (ISSUE 5 satellite).
# ----------------------------------------------------------------------


def resilient_unplug_run(telemetry=None, seed=7, iterations=30):
    return ResilientSimulator(
        bound_spec(),
        three_tank_architecture(),
        baseline_implementation(),
        monitor=MonitorConfig(window=20, communicators=("u1", "u2")),
        watchdog=WatchdogConfig(),
        environment=ThreeTankEnvironment(),
        faults=ScriptedFaults(host_outages={"h2": [(5000, None)]}),
        actuator_communicators=ACTUATORS,
        seed=seed,
        telemetry=telemetry,
    ).run(iterations)


def test_bus_merges_streams_with_monotonic_seq():
    tracer = Tracer(run_id="s7", clock=fixed_clock())
    bus = TelemetryBus(run_id="s7", sinks=(tracer, MetricsSink()))
    resilient_unplug_run(telemetry=bus)
    events = list(bus)
    assert events
    # Monitor and watchdog streams merged: more than one kind.
    assert len({e.kind for e in events}) > 1
    # One run: a single correlation key, strictly monotonic seq.
    assert {e.run_id for e in events} == {derive_run_id(7)}
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
    # The tracer saw the same merged stream as correlated instants.
    instants = [
        e for e in tracer.to_chrome()["traceEvents"]
        if e.get("cat") == "resilience"
    ]
    assert [i["args"]["seq"] for i in instants] == seqs


def test_merged_stream_ordering_survives_jsonl_round_trip():
    bus = TelemetryBus(run_id="s7", sinks=())
    resilient_unplug_run(telemetry=bus)
    events = list(bus)
    parsed = events_from_jsonl(events_to_jsonl(events))
    assert parsed == events
    # Emission order IS (run_id, seq) order: a stable re-sort of the
    # serialised stream reproduces the original ordering exactly.
    resorted = sorted(parsed, key=lambda e: (e.run_id, e.seq))
    assert resorted == events


def test_batch_streams_keep_per_run_seq_monotonic():
    batch = resilient_batch(
        bound_spec(),
        three_tank_architecture(),
        baseline_implementation(),
        3,
        20,
        seed=42,
        environment_factory=ThreeTankEnvironment,
        faults=ScriptedFaults(host_outages={"h2": [(5000, None)]}),
        actuator_communicators=ACTUATORS,
        monitor=MonitorConfig(window=20, communicators=("u1", "u2")),
        watchdog=WatchdogConfig(),
    )
    events = list(batch.events)
    assert events
    by_run = {}
    for event in events:
        by_run.setdefault(event.run, []).append(event)
    assert len(by_run) == 3  # every run alarms after the unplug
    for stream in by_run.values():
        seqs = [e.seq for e in stream]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        assert len({e.run_id for e in stream}) == 1
    # Stable ordering across the JSONL round-trip, per run and merged.
    parsed = events_from_jsonl(events_to_jsonl(events))
    assert parsed == events
