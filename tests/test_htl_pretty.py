"""Round-trip tests for the HTL pretty-printer."""

import dataclasses

import pytest

from repro.experiments import THREE_TANK_HTL, three_tank_htl
from repro.htl import parse_program
from repro.htl.pretty import normalise, render_program


def strip_lines(node):
    """Recursively zero the source-position fields for comparison."""
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        replacements = {}
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            if field.name in ("line", "column"):
                replacements[field.name] = 0
            elif isinstance(value, tuple):
                replacements[field.name] = tuple(
                    strip_lines(item) for item in value
                )
            else:
                replacements[field.name] = strip_lines(value)
        return dataclasses.replace(node, **replacements)
    return node


@pytest.mark.parametrize(
    "source",
    [
        THREE_TANK_HTL,
        three_tank_htl(lrc_u=0.9975),
        """
        program Tiny {
          communicator c : float period 10 init 0.0 ;
          module M {
            task t input (c[0]) output (c[1]) ;
            mode m period 10 { invoke t ; }
          }
        }
        """,
        """
        program Typed {
          communicator i : int period 5 init -7 ;
          communicator b : bool period 5 init true ;
          communicator f : float period 5 init 1.25 lrc 0.875 ;
          module M start only {
            task t input (i[0], b[0]) output (f[1])
              model independent default (i = 0, b = false)
              function "fn" ;
            mode only period 5 {
              invoke t ;
              switch to only when "noop" ;
            }
          }
        }
        """,
    ],
)
def test_parse_render_parse_round_trip(source):
    first = parse_program(source)
    rendered = render_program(first)
    second = parse_program(rendered)
    assert strip_lines(first) == strip_lines(second)


def test_rendering_is_idempotent():
    once = normalise(THREE_TANK_HTL)
    twice = normalise(once)
    assert once == twice


def test_default_lrc_omitted():
    source = """
    program P {
      communicator c : float period 10 init 0.0 ;
    }
    """
    rendered = normalise(source)
    assert "lrc" not in rendered


def test_series_model_omitted():
    source = """
    program P {
      communicator c : float period 10 init 0.0 ;
      module M {
        task t input (c[0]) output (c[1]) ;
        mode m period 10 { invoke t ; }
      }
    }
    """
    rendered = normalise(source)
    assert "model" not in rendered


def test_normalise_accepts_ast():
    ast = parse_program(THREE_TANK_HTL)
    assert normalise(ast) == render_program(ast)
