"""Tests for the three-tank plant and controllers."""

import pytest

from repro.plants import (
    PIController,
    PerturbationEstimator,
    ThreeTankParams,
    ThreeTankPlant,
    control_performance,
)


# -- plant physics ------------------------------------------------------------


def test_initial_state():
    plant = ThreeTankPlant()
    assert plant.levels == [0.2, 0.2, 0.2]
    assert plant.pump_flows == [0.0, 0.0]


def test_levels_drain_without_pumping():
    plant = ThreeTankPlant()
    for _ in range(1000):
        plant.step(0.1)
    assert all(level < 0.2 for level in plant.levels)
    assert all(level >= 0.0 for level in plant.levels)


def test_pumping_raises_level():
    plant = ThreeTankPlant()
    plant.set_pump(0, plant.params.max_pump_flow)
    start = plant.level(0)
    for _ in range(100):
        plant.step(0.1)
    assert plant.level(0) > start


def test_pump_saturation():
    plant = ThreeTankPlant()
    plant.set_pump(0, 1.0)  # far above max
    assert plant.pump_flows[0] == plant.params.max_pump_flow
    plant.set_pump(0, -1.0)
    assert plant.pump_flows[0] == 0.0


def test_levels_clamped_to_physical_range():
    plant = ThreeTankPlant(levels=[0.61, 0.61, 0.61])
    plant.set_pump(0, plant.params.max_pump_flow)
    plant.set_pump(1, plant.params.max_pump_flow)
    for _ in range(5000):
        plant.step(0.1)
    for level in plant.levels:
        assert 0.0 <= level <= plant.params.max_level


def test_coupling_equalises_tanks():
    plant = ThreeTankPlant(
        params=ThreeTankParams(leak_coefficient=1e-12),
        levels=[0.4, 0.1, 0.25],
    )
    for _ in range(20000):
        plant.step(0.1)
    h1, h2, h3 = plant.levels
    assert h1 == pytest.approx(h2, abs=0.02)
    assert h1 == pytest.approx(h3, abs=0.02)


def test_perturbation_drains_faster():
    calm = ThreeTankPlant()
    stressed = ThreeTankPlant()
    stressed.set_perturbation(0, 5e-5)
    for _ in range(200):
        calm.step(0.1)
        stressed.step(0.1)
    assert stressed.level(0) < calm.level(0)
    # Tank 2 is only affected indirectly through the middle tank, so
    # its drop is strictly smaller than tank 1's.
    drop1 = calm.level(0) - stressed.level(0)
    drop2 = calm.level(1) - stressed.level(1)
    assert 0 <= drop2 < drop1


def test_negative_perturbation_clamped():
    plant = ThreeTankPlant()
    plant.set_perturbation(0, -1.0)
    assert plant.perturbations[0] == 0.0


def test_steady_pump_flow_holds_level():
    plant = ThreeTankPlant(levels=[0.25, 0.25, 0.2])
    flow = plant.steady_pump_flow(0.25)
    assert 0.0 < flow < plant.params.max_pump_flow
    plant.set_pump(0, flow)
    plant.set_pump(1, flow)
    for _ in range(50000):
        plant.step(0.1)
    assert plant.level(0) == pytest.approx(0.25, abs=0.01)
    assert plant.level(1) == pytest.approx(0.25, abs=0.01)


# -- PI controller --------------------------------------------------------------


def test_pi_converges_in_direct_loop():
    plant = ThreeTankPlant()
    ff = plant.steady_pump_flow(0.3)
    controller = PIController(
        setpoint=0.3, kp=2e-3, ki=1e-4, dt=0.5, feedforward=ff,
        output_max=plant.params.max_pump_flow,
    )
    other = PIController(
        setpoint=0.3, kp=2e-3, ki=1e-4, dt=0.5, feedforward=ff,
        output_max=plant.params.max_pump_flow,
    )
    for _ in range(1200):
        plant.set_pump(0, controller.update(plant.level(0)))
        plant.set_pump(1, other.update(plant.level(1)))
        for _ in range(5):
            plant.step(0.1)
    assert plant.level(0) == pytest.approx(0.3, abs=0.005)
    assert plant.level(1) == pytest.approx(0.3, abs=0.005)


def test_pi_output_clamped():
    controller = PIController(setpoint=1.0, kp=10.0, ki=0.0, dt=0.5,
                              output_max=1e-4)
    assert controller.update(0.0) == 1e-4
    low = PIController(setpoint=0.0, kp=10.0, ki=0.0, dt=0.5)
    assert low.update(1.0) == 0.0


def test_pi_anti_windup_recovers_quickly():
    controller = PIController(setpoint=0.5, kp=0.0, ki=1.0, dt=1.0,
                              output_max=0.1)
    for _ in range(100):
        controller.update(0.0)  # saturated high
    # One sample above the setpoint must pull the output down
    # immediately (the integral was clamped, not wound up).
    assert controller.update(0.7) < 0.1


def test_pi_reset():
    controller = PIController(setpoint=1.0, kp=0.0, ki=1.0, dt=1.0,
                              output_max=10.0)
    controller.update(0.0)
    controller.reset()
    assert controller.update(1.0) == 0.0


# -- perturbation estimator --------------------------------------------------------


def test_estimator_first_sample_is_zero():
    estimator = PerturbationEstimator(tank_area=0.0154, dt=0.5)
    assert estimator.update(0.2, 1e-4) == 0.0


def test_estimator_detects_extra_outflow():
    area, dt = 0.0154, 0.5
    estimator = PerturbationEstimator(tank_area=area, dt=dt)
    inflow = 1e-4
    estimator.update(0.2, inflow)
    # The level rose less than the inflow alone explains: an extra
    # outflow of 4e-5 is hiding.
    rise = (inflow - 4e-5) * dt / area
    estimate = estimator.update(0.2 + rise, inflow)
    assert estimate == pytest.approx(4e-5, rel=1e-6)


def test_estimator_zero_when_balance_holds():
    area, dt = 0.0154, 0.5
    estimator = PerturbationEstimator(tank_area=area, dt=dt)
    inflow = 1e-4
    estimator.update(0.2, inflow)
    rise = inflow * dt / area
    assert estimator.update(0.2 + rise, inflow) == pytest.approx(0.0,
                                                                 abs=1e-12)


def test_estimator_reset():
    estimator = PerturbationEstimator(tank_area=0.0154, dt=0.5)
    estimator.update(0.2, 1e-4)
    estimator.reset()
    assert estimator.update(0.3, 1e-4) == 0.0


# -- performance metric --------------------------------------------------------------


def test_control_performance_zero_on_track():
    assert control_performance([0.25, 0.25], 0.25) == 0.0


def test_control_performance_rms():
    assert control_performance([0.2, 0.3], 0.25) == pytest.approx(0.05)


def test_control_performance_empty():
    assert control_performance([], 0.25) == 0.0
