"""Tests for the joint schedulability/reliability check."""

from repro import check_validity
from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.mapping import Implementation


def test_valid_implementation(tank_spec, tank_arch, tank_baseline):
    report = check_validity(tank_spec, tank_arch, tank_baseline)
    assert report.valid
    assert report.reliability.reliable
    assert report.schedulability.schedulable
    assert "VALID" in report.summary()


def test_reliability_failure_invalidates(
    tank_spec_strict, tank_arch, tank_baseline
):
    report = check_validity(tank_spec_strict, tank_arch, tank_baseline)
    assert not report.valid
    assert not report.reliability.reliable
    assert report.schedulability.schedulable
    assert "INVALID" in report.summary()


def test_schedulability_failure_invalidates(tank_spec, tank_baseline):
    # Same hosts, but WCETs so large nothing fits the LET windows.
    slow_arch = Architecture(
        hosts=[Host("h1", 0.999), Host("h2", 0.999), Host("h3", 0.999)],
        sensors=[Sensor("sen1", 0.999), Sensor("sen2", 0.999)],
        metrics=ExecutionMetrics(default_wcet=400, default_wctt=200),
    )
    report = check_validity(tank_spec, slow_arch, tank_baseline)
    assert not report.valid
    assert report.reliability.reliable
    assert not report.schedulability.schedulable


def test_scenarios_restore_validity(
    tank_spec_strict, tank_arch, tank_scenario1, tank_scenario2
):
    assert check_validity(
        tank_spec_strict, tank_arch, tank_scenario1
    ).valid
    assert check_validity(
        tank_spec_strict, tank_arch, tank_scenario2
    ).valid
