"""Tests for EDF scheduling: demand bound and explicit simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.sched import Job, ScheduledSlice, demand_bound_feasible, edf_schedule


def job(task, release, deadline, wcet, wctt=0, host="h"):
    return Job(
        deadline=deadline, release=release, task=task, host=host,
        wcet=wcet, wctt=wctt,
    )


# -- demand bound ---------------------------------------------------------


def test_empty_job_set_feasible():
    assert demand_bound_feasible([])


def test_single_fitting_job():
    assert demand_bound_feasible([job("a", 0, 10, 5)])


def test_single_overfull_job():
    assert not demand_bound_feasible([job("a", 0, 4, 5)])


def test_two_jobs_conflicting_window():
    jobs = [job("a", 0, 10, 6), job("b", 0, 10, 6)]
    assert not demand_bound_feasible(jobs)


def test_two_jobs_disjoint_windows():
    jobs = [job("a", 0, 10, 6), job("b", 10, 20, 6)]
    assert demand_bound_feasible(jobs)


def test_wctt_tightens_compute_deadline():
    # window 10, wcet 6 fits; wcet 6 + wctt 5 leaves deadline 5 < 6.
    assert demand_bound_feasible([job("a", 0, 10, 6, wctt=0)])
    assert not demand_bound_feasible([job("a", 0, 10, 6, wctt=5)])


def test_custom_demand_and_deadline():
    jobs = [job("a", 0, 10, 3, wctt=4)]
    # Against the raw deadline, demand = wctt fits easily.
    assert demand_bound_feasible(
        jobs, demand=lambda j: j.wctt, deadline=lambda j: j.deadline
    )


# -- EDF simulation -------------------------------------------------------


def test_edf_schedules_in_deadline_order():
    jobs = [job("late", 0, 20, 5), job("soon", 0, 10, 5)]
    result = edf_schedule(jobs)
    assert result.feasible
    first = min(result.slices, key=lambda s: s.start)
    assert first.task == "soon"
    assert result.completion["soon@h"] == 5
    assert result.completion["late@h"] == 10


def test_edf_preempts_for_urgent_arrival():
    jobs = [job("long", 0, 30, 10), job("urgent", 2, 6, 3)]
    result = edf_schedule(jobs)
    assert result.feasible
    urgent_slices = [s for s in result.slices if s.task == "urgent"]
    assert urgent_slices[0].start == 2
    # `long` resumes after the preemption and still completes.
    assert result.completion["long@h"] == 13


def test_edf_reports_misses():
    jobs = [job("a", 0, 5, 4), job("b", 0, 5, 4)]
    result = edf_schedule(jobs)
    assert not result.feasible
    assert len(result.misses) == 1


def test_edf_idles_until_release():
    jobs = [job("a", 7, 20, 3)]
    result = edf_schedule(jobs)
    assert result.slices[0].start == 7
    assert result.completion["a@h"] == 10


def test_edf_capacity_two_runs_in_parallel():
    jobs = [job("a", 0, 5, 4), job("b", 0, 5, 4)]
    result = edf_schedule(jobs, capacity=2)
    assert result.feasible
    assert result.completion == {"a@h": 4, "b@h": 4}


def test_edf_capacity_must_be_positive():
    with pytest.raises(AnalysisError):
        edf_schedule([], capacity=0)


def test_edf_slices_coalesced():
    jobs = [job("a", 0, 30, 10)]
    result = edf_schedule(jobs)
    assert result.slices == (
        ScheduledSlice(start=0, end=10, task="a", host="h"),
    )


def test_scheduled_slice_validation():
    with pytest.raises(AnalysisError):
        ScheduledSlice(start=5, end=5, task="t", host="h")


def test_edf_empty_jobs():
    result = edf_schedule([])
    assert result.feasible
    assert result.slices == ()


# -- agreement property: EDF optimality ------------------------------------

job_strategy = st.builds(
    lambda name, release, window, wcet: job(
        name, release, release + window, min(wcet, window)
    ),
    st.uuids().map(lambda u: f"j{u.hex[:6]}"),
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=20),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8))
def test_demand_bound_iff_edf_feasible(jobs):
    # EDF is optimal on one processor, so the exact demand criterion
    # and the explicit simulation must agree on every job set.
    assert demand_bound_feasible(jobs) == edf_schedule(jobs).feasible


@settings(max_examples=100, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8))
def test_edf_slices_never_overlap_and_respect_releases(jobs):
    result = edf_schedule(jobs)
    ordered = sorted(result.slices, key=lambda s: s.start)
    for earlier, later in zip(ordered, ordered[1:]):
        assert later.start >= earlier.end
    releases = {j.label(): j.release for j in jobs}
    for piece in result.slices:
        assert piece.start >= releases[f"{piece.task}@{piece.host}"]


@settings(max_examples=100, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8))
def test_edf_work_conservation(jobs):
    # Total scheduled time equals total demand (every job completes,
    # feasibly or not).
    result = edf_schedule(jobs)
    scheduled = sum(s.duration for s in result.slices)
    assert scheduled == sum(j.wcet for j in jobs)
