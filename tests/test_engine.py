"""Tests for the distributed runtime simulator."""

import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.errors import RuntimeSimulationError
from repro.experiments import cyclic_specification
from repro.mapping import Implementation, TimeDependentImplementation
from repro.model import BOTTOM, Communicator, Specification, Task
from repro.reliability import communicator_srgs
from repro.runtime import (
    BernoulliFaults,
    CallbackEnvironment,
    ConstantEnvironment,
    ScriptedFaults,
    Simulator,
    majority_vote,
)


def perfect_arch():
    return Architecture(
        hosts=[Host("h1"), Host("h2")],
        sensors=[Sensor("s")],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )


def pipeline(function1=lambda x: 2 * x, function2=lambda x: x + 1):
    comms = [
        Communicator("raw", period=10, lrc=0.5, init=0.0),
        Communicator("mid", period=10, lrc=0.5, init=0.0),
        Communicator("out", period=10, lrc=0.5, init=0.0),
    ]
    tasks = [
        Task("f", [("raw", 0)], [("mid", 1)], function=function1),
        Task("g", [("mid", 1)], [("out", 2)], function=function2),
    ]
    return Specification(comms, tasks)


def impl_all_h1():
    return Implementation(
        {"f": {"h1"}, "g": {"h1"}}, {"raw": {"s"}}
    )


# -- construction ------------------------------------------------------------


def test_functions_required():
    spec = pipeline(function1=None)
    with pytest.raises(RuntimeSimulationError, match="no function"):
        Simulator(spec, perfect_arch(), impl_all_h1())


def test_positive_iterations_required():
    sim = Simulator(pipeline(), perfect_arch(), impl_all_h1())
    with pytest.raises(RuntimeSimulationError, match="positive"):
        sim.run(0)


# -- fault-free dataflow -------------------------------------------------------


def test_dataflow_values_propagate():
    # The specification period is 20 (g writes instance 2 of `out`),
    # and every communicator has period 10, so each of the 3
    # iterations records two accesses per communicator.
    env = CallbackEnvironment(sense_fn=lambda c, t: 5.0)
    sim = Simulator(pipeline(), perfect_arch(), impl_all_h1(),
                    environment=env)
    result = sim.run(3)
    assert result.values["raw"] == [5.0] * 6
    # f commits 2*5=10 into mid at t=10; the value persists.
    assert result.values["mid"] == [0.0] + [10.0] * 5
    # g commits 10+1=11 into out at t=20.
    assert result.values["out"] == [0.0, 0.0] + [11.0] * 4


def test_trace_lengths_match_periods():
    comms = [
        Communicator("fast", period=5, lrc=0.5, init=0.0),
        Communicator("slow", period=10, lrc=0.5, init=0.0),
    ]
    tasks = [Task("t", [("fast", 0)], [("slow", 1)],
                  function=lambda x: x)]
    spec = Specification(comms, tasks)
    impl = Implementation({"t": {"h1"}}, {"fast": {"s"}})
    result = Simulator(spec, perfect_arch(), impl).run(4)
    assert len(result.values["fast"]) == 4 * 2
    assert len(result.values["slow"]) == 4


def test_let_semantics_ports_snapshot_at_instance_time():
    # Task reads (c, 0) at time 0 but releases at its read time 10
    # (due to a second input).  A write to c at time 10 by another
    # task must NOT leak into the snapshot.
    comms = [
        Communicator("c", period=10, lrc=0.5, init=1.0),
        Communicator("d", period=10, lrc=0.5, init=0.0),
        Communicator("out", period=20, lrc=0.5, init=0.0),
    ]
    tasks = [
        Task("writer", [("d", 0)], [("c", 1)],
             function=lambda d: 99.0),
        Task("reader", [("c", 0), ("d", 1)], [("out", 1)],
             function=lambda c, d: c),
    ]
    spec = Specification(comms, tasks)
    impl = Implementation(
        {"writer": {"h1"}, "reader": {"h1"}}, {"d": {"s"}}
    )
    result = Simulator(spec, perfect_arch(), impl).run(2)
    # reader returns the value of (c, 0): the initial 1.0, not the
    # 99.0 written at time 10.
    assert result.values["out"][1] == 1.0


def test_update_before_read_at_shared_instant():
    # Semantics constraint 3: when a communicator is updated at an
    # instant, replications are updated first, then read.  `reader`
    # snapshots (mid, 1) at t=10 — the very instant `writer` commits
    # into it — and must see the NEW value.
    comms = [
        Communicator("raw", period=10, lrc=0.5, init=0.0),
        Communicator("mid", period=10, lrc=0.5, init=-1.0),
        Communicator("out", period=10, lrc=0.5, init=0.0),
    ]
    tasks = [
        Task("writer", [("raw", 0)], [("mid", 1)],
             function=lambda x: 42.0),
        Task("reader", [("mid", 1)], [("out", 2)],
             function=lambda m: m),
    ]
    spec = Specification(comms, tasks)
    impl = Implementation(
        {"writer": {"h1"}, "reader": {"h1"}}, {"raw": {"s"}}
    )
    result = Simulator(spec, perfect_arch(), impl).run(2)
    # reader's first commit (t=20) carries writer's fresh 42, not the
    # init value -1.
    assert result.values["out"][2] == 42.0


def test_environment_actuation():
    env = ConstantEnvironment(values={"raw": 2.0})
    sim = Simulator(pipeline(), perfect_arch(), impl_all_h1(),
                    environment=env)
    sim.run(2)
    # `out` is the only actuator communicator; written at time 20.
    assert env.actuations == [(20, "out", 5.0)]


def test_environment_advance_called_per_tick():
    ticks = []
    env = CallbackEnvironment(advance_fn=lambda t, dt: ticks.append((t, dt)))
    Simulator(pipeline(), perfect_arch(), impl_all_h1(),
              environment=env).run(1)
    # Base tick gcd = 10 over one period of 20: two advance calls.
    assert ticks == [(0, 10), (10, 10)]


# -- failure models at runtime --------------------------------------------------


def test_series_task_emits_bottom_on_bad_input():
    spec = pipeline()
    impl = impl_all_h1()
    faults = ScriptedFaults(sensor_outages={"s": [(0, None)]})
    result = Simulator(spec, perfect_arch(), impl, faults=faults).run(3)
    assert all(v is BOTTOM for v in result.values["raw"])
    # mid: the init value survives at index 0, then every record is
    # bottom (series model propagates the unreliable sensor).
    assert result.values["mid"][0] == 0.0
    assert all(v is BOTTOM for v in result.values["mid"][1:])


def test_parallel_task_uses_default_on_bad_input():
    comms = [
        Communicator("a", period=10, lrc=0.5, init=0.0),
        Communicator("b", period=10, lrc=0.5, init=0.0),
        Communicator("out", period=10, lrc=0.5, init=0.0),
    ]
    task = Task(
        "t",
        [("a", 0), ("b", 0)],
        [("out", 1)],
        model="parallel",
        defaults={"a": -5.0, "b": -7.0},
        function=lambda a, b: a + b,
    )
    spec = Specification(comms, [task])
    arch = Architecture(
        hosts=[Host("h1")],
        sensors=[Sensor("sa"), Sensor("sb")],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    impl = Implementation({"t": {"h1"}}, {"a": {"sa"}, "b": {"sb"}})
    env = CallbackEnvironment(sense_fn=lambda c, t: 1.0)
    faults = ScriptedFaults(sensor_outages={"sa": [(0, None)]})
    result = Simulator(spec, arch, impl, environment=env,
                       faults=faults).run(2)
    # a is always BOTTOM -> default -5 substituted; b delivers 1.0.
    assert result.values["out"][1] == -4.0


def test_independent_task_survives_all_bad_inputs():
    spec = cyclic_specification("independent")
    arch = perfect_arch()
    impl = Implementation({"integrate": {"h1"}})
    result = Simulator(spec, arch, impl).run(5)
    # acc integrates from init 0: values 0,1,2,3,4.
    assert result.values["acc"] == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_series_cycle_poisons_forever():
    spec = cyclic_specification("series")
    arch = Architecture(
        hosts=[Host("h1", 0.999)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    impl = Implementation({"integrate": {"h1"}})
    faults = ScriptedFaults(host_outages={"h1": [(40, 60)]})
    result = Simulator(spec, arch, impl, faults=faults).run(20)
    bits = [v is not BOTTOM for v in result.values["acc"]]
    # Invocation 3 (window [30, 40]) touches the outage start at 40;
    # its bottom commit at t=40 (trace index 4) poisons the cycle.
    assert all(bits[:4])
    assert not any(bits[4:])


def test_independent_cycle_recovers_after_outage():
    spec = cyclic_specification("independent")
    arch = Architecture(
        hosts=[Host("h1", 0.999)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    impl = Implementation({"integrate": {"h1"}})
    faults = ScriptedFaults(host_outages={"h1": [(40, 60)]})
    result = Simulator(spec, arch, impl, faults=faults).run(20)
    bits = [v is not BOTTOM for v in result.values["acc"]]
    assert not all(bits)
    assert all(bits[8:])  # recovers once the host is back


# -- replication and voting ------------------------------------------------------


def test_replication_masks_scripted_outage():
    spec = pipeline()
    impl = Implementation(
        {"f": {"h1", "h2"}, "g": {"h1", "h2"}}, {"raw": {"s"}}
    )
    faults = ScriptedFaults(host_outages={"h1": [(0, None)]})
    result = Simulator(spec, perfect_arch(), impl, faults=faults).run(5)
    assert result.satisfies_lrcs()
    assert BOTTOM not in result.values["out"]


def test_unreplicated_task_dies_with_host():
    spec = pipeline()
    faults = ScriptedFaults(host_outages={"h1": [(0, None)]})
    result = Simulator(spec, perfect_arch(), impl_all_h1(),
                       faults=faults).run(5)
    assert all(v is BOTTOM for v in result.values["mid"][1:])


def test_majority_voting_supported():
    spec = pipeline()
    impl = Implementation(
        {"f": {"h1", "h2"}, "g": {"h1"}}, {"raw": {"s"}}
    )
    result = Simulator(spec, perfect_arch(), impl,
                       voter=majority_vote).run(3)
    assert BOTTOM not in result.values["out"]


# -- statistics --------------------------------------------------------------------


def test_replica_counters():
    spec = pipeline()
    impl = Implementation(
        {"f": {"h1", "h2"}, "g": {"h1"}}, {"raw": {"s"}}
    )
    faults = ScriptedFaults(host_outages={"h2": [(0, None)]})
    result = Simulator(spec, perfect_arch(), impl, faults=faults).run(10)
    assert result.replica_attempts[("f", "h1")] == 10
    assert result.replica_attempts[("f", "h2")] == 10
    assert result.replica_failures.get(("f", "h1"), 0) == 0
    assert result.replica_failures[("f", "h2")] == 10
    assert result.replica_failure_rate("f", "h2") == 1.0
    assert result.replica_failure_rate("f", "h1") == 0.0
    assert result.replica_failure_rate("ghost", "h1") == 0.0


def test_summary_text():
    result = Simulator(pipeline(), perfect_arch(), impl_all_h1()).run(2)
    text = result.summary()
    assert "simulation over 2 iterations" in text
    assert "out" in text


# -- convergence to SRGs (Proposition 1, small instance) -----------------------


def test_bernoulli_limit_averages_converge_to_srgs():
    spec = pipeline()
    arch = Architecture(
        hosts=[Host("h1", 0.9), Host("h2", 0.95)],
        sensors=[Sensor("s", 0.97)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    impl = Implementation(
        {"f": {"h1", "h2"}, "g": {"h1"}}, {"raw": {"s"}}
    )
    result = Simulator(spec, arch, impl, faults=BernoulliFaults(arch),
                       seed=123).run(30000)
    srgs = communicator_srgs(spec, impl, arch)
    averages = result.limit_averages()
    for name in spec.communicators:
        assert averages[name] == pytest.approx(srgs[name], abs=0.01)


# -- time-dependent execution ----------------------------------------------------


def test_timedep_alternates_hosts():
    spec = pipeline()
    phase_a = Implementation({"f": {"h1"}, "g": {"h1"}}, {"raw": {"s"}})
    phase_b = Implementation({"f": {"h2"}, "g": {"h2"}}, {"raw": {"s"}})
    timedep = TimeDependentImplementation([phase_a, phase_b])
    faults = ScriptedFaults(host_outages={"h2": [(0, None)]})
    result = Simulator(spec, perfect_arch(), timedep,
                       faults=faults).run(10)
    bits = [v is not BOTTOM for v in result.values["mid"]]
    # Period 20, mid period 10: iteration k commits at trace index
    # 2k + 1 and the value persists at index 2k + 2.  Even iterations
    # run on h1 (alive), odd on h2 (dead).
    for k in range(10):
        expected = (k % 2 == 0)
        assert bits[2 * k + 1] is expected
        if 2 * k + 2 < len(bits):
            assert bits[2 * k + 2] is expected
