"""Tests for the random system generators."""

import pytest

from repro.experiments import (
    random_architecture,
    random_implementation,
    random_specification,
    random_system,
)
from repro.model import FailureModel, is_memory_free
from repro.validity import check_validity


@pytest.mark.parametrize("seed", range(10))
def test_random_specifications_are_well_formed(seed):
    spec = random_specification(seed)
    # Construction already validates restrictions; check the shape.
    assert len(spec.tasks) == 9
    assert is_memory_free(spec)
    for task in spec.tasks.values():
        assert task.read_time(spec.periods()) < task.write_time(
            spec.periods()
        )


def test_random_specification_is_deterministic_per_seed():
    a = random_specification(7)
    b = random_specification(7)
    assert set(a.tasks) == set(b.tasks)
    for name in a.tasks:
        assert a.tasks[name].inputs == b.tasks[name].inputs
        assert a.tasks[name].model == b.tasks[name].model
    assert {c.lrc for c in a.communicators.values()} == {
        c.lrc for c in b.communicators.values()
    }


def test_different_seeds_differ():
    a = random_specification(1)
    b = random_specification(2)
    assert any(
        a.tasks[n].inputs != b.tasks[n].inputs
        or a.communicators[c].lrc != b.communicators[c].lrc
        for n in a.tasks
        for c in a.communicators
    )


def test_shape_parameters_respected():
    spec = random_specification(0, layers=4, tasks_per_layer=2, inputs=5)
    assert len(spec.tasks) == 8
    assert len(spec.input_communicators()) <= 5
    assert len(spec.communicators) == 5 + 8


def test_model_restriction():
    spec = random_specification(
        0, models=(FailureModel.INDEPENDENT,)
    )
    assert all(
        t.model is FailureModel.INDEPENDENT for t in spec.tasks.values()
    )


def test_lrc_range_respected():
    spec = random_specification(3, lrc_range=(0.7, 0.8))
    for comm in spec.communicators.values():
        assert 0.7 <= comm.lrc <= 0.8


@pytest.mark.parametrize("seed", range(5))
def test_random_architecture_shape(seed):
    arch = random_architecture(seed, hosts=5, sensors=2)
    assert len(arch.hosts) == 5
    assert len(arch.sensors) == 2
    for host in arch.hosts.values():
        assert 0.9 <= host.reliability <= 0.999


@pytest.mark.parametrize("seed", range(5))
def test_random_implementation_validates(seed):
    spec = random_specification(seed)
    arch = random_architecture(seed)
    impl = random_implementation(spec, arch, seed)
    impl.validate(spec, arch)
    for task in spec.tasks:
        assert 1 <= len(impl.hosts_of(task)) <= 2


def test_random_system_triple():
    spec, arch, impl = random_system(4)
    impl.validate(spec, arch)
    # The joint analysis must run without errors on any generated
    # system (valid or not).
    report = check_validity(spec, arch, impl)
    assert isinstance(report.valid, bool)


def test_random_functions_executable():
    spec = random_specification(0)
    for task in spec.tasks.values():
        result = task.execute([1.0] * len(task.inputs))
        assert result == (float(len(task.inputs)),)
