"""Tests for the resilience layer: monitor, watchdog, recovery."""

import json

import numpy as np
import pytest

from repro.errors import RuntimeSimulationError
from repro.experiments import (
    ACTUATORS,
    baseline_implementation,
    bind_control_functions,
    detect_and_recover,
    scenario1_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.experiments.three_tank_system import (
    CONTROL_PERIOD_MS,
    ThreeTankEnvironment,
)
from repro.mapping import Implementation
from repro.resilience import (
    DegradePolicy,
    HostDead,
    HostFailureDetector,
    HostRecovered,
    HostStatus,
    HostSuspected,
    LrcAlarm,
    LrcClear,
    LrcMonitor,
    MonitorConfig,
    RecoveryCommitted,
    RecoveryContext,
    RecoveryFailed,
    ReReplicatePolicy,
    ResilientSimulator,
    WatchdogConfig,
    batch_monitor_events,
    events_to_jsonl,
    first_applicable,
    resilient_batch,
)
from repro.resilience.monitor import monitor_events_from_failures
from repro.runtime import (
    BatchSimulator,
    BernoulliFaults,
    ScriptedFaults,
    Simulator,
)


# ----------------------------------------------------------------------
# Monitor configuration.
# ----------------------------------------------------------------------


def simple_spec():
    return three_tank_spec()


def test_monitor_config_validation():
    with pytest.raises(RuntimeSimulationError, match="window"):
        MonitorConfig(window=0)
    with pytest.raises(RuntimeSimulationError, match="hysteresis"):
        MonitorConfig(hysteresis=-0.1)


def test_monitor_thresholds_default_to_lrc():
    spec = simple_spec()
    thresholds = MonitorConfig(window=10).thresholds(spec)
    for name, (alarm, clear) in thresholds.items():
        assert alarm == spec.communicators[name].lrc
        assert clear == alarm  # zero hysteresis


def test_monitor_thresholds_hysteresis_and_overrides():
    spec = simple_spec()
    config = MonitorConfig(
        window=10, hysteresis=0.05, alarm_below={"u1": 0.8}
    )
    alarm, clear = config.thresholds(spec)["u1"]
    assert alarm == 0.8
    assert clear == pytest.approx(0.85)


def test_monitor_rejects_clear_below_alarm():
    config = MonitorConfig(
        alarm_below={"u1": 0.9}, clear_above={"u1": 0.8}
    )
    with pytest.raises(RuntimeSimulationError, match="clear threshold"):
        config.thresholds(simple_spec())


def test_monitor_rejects_unknown_communicator():
    config = MonitorConfig(communicators=("nope",))
    with pytest.raises(RuntimeSimulationError, match="unknown"):
        config.thresholds(simple_spec())


# ----------------------------------------------------------------------
# Scalar monitor semantics.
# ----------------------------------------------------------------------


def feed(monitor, name, bits, start=0):
    for i, bit in enumerate(bits):
        monitor.observe(name, start + i, bool(bit))


def test_monitor_silent_until_full_window():
    monitor = LrcMonitor(
        simple_spec(),
        MonitorConfig(window=5, alarm_below={"u1": 0.9}),
    )
    feed(monitor, "u1", [0, 0, 0, 0])  # four failures, window 5
    assert monitor.events == []
    assert monitor.rate("u1") is None
    monitor.observe("u1", 4, False)
    assert [type(e) for e in monitor.events] == [LrcAlarm]
    assert monitor.rate("u1") == 0.0


def test_monitor_alarm_latches_and_clears_with_hysteresis():
    monitor = LrcMonitor(
        simple_spec(),
        MonitorConfig(
            window=4,
            alarm_below={"u1": 0.75},
            clear_above={"u1": 1.0},
        ),
    )
    # Window fills reliable, then one failure drops the rate to 0.75:
    # not < 0.75, no alarm.  A second failure (0.5) alarms; the alarm
    # stays latched while the rate is 0.75 and clears only at 1.0.
    feed(monitor, "u1", [1, 1, 1, 1, 0])
    assert monitor.events == []
    monitor.observe("u1", 5, False)
    assert monitor.alarmed("u1")
    assert monitor.active_alarms() == ["u1"]
    feed(monitor, "u1", [1, 1, 1], start=6)  # rates 0.5, 0.75, 0.75
    assert monitor.alarmed("u1")
    monitor.observe("u1", 9, True)  # rate 1.0 -> clear
    assert not monitor.alarmed("u1")
    kinds = [e.kind for e in monitor.events]
    assert kinds == ["lrc-alarm", "lrc-clear"]
    clear = monitor.events[-1]
    assert clear.time == 9
    assert clear.rate == 1.0


def test_monitor_ignores_unwatched_communicators():
    monitor = LrcMonitor(
        simple_spec(),
        MonitorConfig(window=2, communicators=("u1",)),
    )
    assert monitor.watches("u1")
    assert not monitor.watches("l1")
    feed(monitor, "l1", [0, 0, 0, 0])
    assert monitor.events == []


def test_events_serialise_to_jsonl():
    event = LrcAlarm(
        time=1200, communicator="u1", rate=0.9, threshold=0.99, window=50
    )
    lines = events_to_jsonl([event, HostDead(time=1500, host="h2", missed=3)])
    docs = [json.loads(line) for line in lines.splitlines()]
    assert docs[0]["kind"] == "lrc-alarm"
    assert docs[0]["communicator"] == "u1"
    assert docs[0]["run"] is None
    assert docs[1] == {
        "kind": "host-dead", "time": 1500, "run": None,
        "host": "h2", "missed": 3,
    }


# ----------------------------------------------------------------------
# Sparse batch monitor == dense batch monitor == scalar monitor.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize(
    "alarm,clear",
    [(0.7, 0.9), (0.9, 0.9), (0.999, 1.0), (0.5, 1.5)],
    ids=["margin", "no-hyst", "hair-trigger", "unclearable"],
)
def test_sparse_monitor_matches_dense_and_scalar(seed, alarm, clear):
    rng = np.random.default_rng(seed)
    runs, samples, window = 5, 120, 9
    status = rng.random((runs, samples)) > 0.15
    times = np.arange(samples, dtype=np.int64) * 10

    dense = batch_monitor_events(
        "c", status, times, alarm, clear, window
    )
    fail_runs, fail_steps = np.nonzero(~status)
    sparse = monitor_events_from_failures(
        "c", fail_runs, fail_steps, runs, samples, times,
        alarm, clear, window,
    )
    assert [e.to_dict() for e in sparse] == sorted(
        (e.to_dict() for e in dense),
        key=lambda d: (d["run"], d["time"], d["kind"] == "lrc-clear"),
    )

    # And both match the stateful scalar monitor, run by run.
    spec = three_tank_spec()
    for run in range(runs):
        scalar = LrcMonitor(
            spec,
            MonitorConfig(
                window=window,
                alarm_below={"u1": alarm},
                clear_above={"u1": min(clear, 1.0)}
                if clear <= 1.0
                else {"u1": clear},
                communicators=("u1",),
            ),
        )
        for step in range(samples):
            scalar.observe("u1", int(times[step]), bool(status[run, step]))
        expected = [
            {**e.to_dict(), "communicator": "c", "run": run}
            for e in scalar.events
        ]
        got = [e.to_dict() for e in sparse if e.run == run]
        assert got == expected


def test_sparse_monitor_rejects_trivial_alarm():
    with pytest.raises(RuntimeSimulationError, match="alarm"):
        monitor_events_from_failures(
            "c",
            np.array([0]), np.array([0]),
            1, 10, np.arange(10), 1.5, 2.0, 4,
        )


def test_sparse_monitor_no_failures_no_events():
    events = monitor_events_from_failures(
        "c",
        np.array([], dtype=np.int64), np.array([], dtype=np.int64),
        3, 50, np.arange(50), 0.9, 0.95, 10,
    )
    assert events == []


# ----------------------------------------------------------------------
# The host-failure watchdog.
# ----------------------------------------------------------------------


def test_watchdog_config_validation():
    with pytest.raises(RuntimeSimulationError, match="suspect_after"):
        WatchdogConfig(suspect_after=0)
    assert WatchdogConfig().detection_periods == 3


def test_detector_state_machine():
    detector = HostFailureDetector(
        ["h1", "h2"], WatchdogConfig(suspect_after=2, confirm_after=1)
    )
    detector.observe("h1", 500, heard=True)
    detector.observe("h1", 1000, heard=False)
    assert detector.status("h1") is HostStatus.ALIVE
    detector.observe("h1", 1500, heard=False)
    assert detector.status("h1") is HostStatus.SUSPECTED
    assert detector.suspected_hosts() == {"h1"}
    detector.observe("h1", 2000, heard=False)
    assert detector.status("h1") is HostStatus.DEAD
    assert detector.dead_hosts() == {"h1"}
    kinds = [e.kind for e in detector.events]
    assert kinds == ["host-suspected", "host-dead"]
    assert detector.events[-1].missed == 3
    assert detector.events[-1].time == 2000
    # h2 never observed: still alive.
    assert detector.status("h2") is HostStatus.ALIVE


def test_detector_readmission_hysteresis():
    detector = HostFailureDetector(
        ["h1"],
        WatchdogConfig(suspect_after=1, confirm_after=1, readmit_after=2),
    )
    detector.observe("h1", 1, heard=False)
    detector.observe("h1", 2, heard=False)
    assert detector.status("h1") is HostStatus.DEAD
    detector.observe("h1", 3, heard=True)
    assert detector.status("h1") is HostStatus.DEAD  # one heard < 2
    detector.observe("h1", 4, heard=True)
    assert detector.status("h1") is HostStatus.ALIVE
    recovered = [e for e in detector.events if isinstance(e, HostRecovered)]
    assert len(recovered) == 1 and recovered[0].heard == 2


def test_detector_single_miss_does_not_suspect():
    detector = HostFailureDetector(["h1"], WatchdogConfig())
    for time, heard in enumerate([False, True, False, True], start=1):
        detector.observe("h1", time, heard)
    assert detector.events == []
    assert detector.status("h1") is HostStatus.ALIVE


def test_detector_unknown_host_rejected():
    detector = HostFailureDetector(["h1"])
    with pytest.raises(RuntimeSimulationError, match="does not watch"):
        detector.observe("nope", 0, True)
    with pytest.raises(RuntimeSimulationError, match="does not watch"):
        detector.status("nope")
    with pytest.raises(RuntimeSimulationError, match="at least one"):
        HostFailureDetector([])


# ----------------------------------------------------------------------
# Recovery policies.
# ----------------------------------------------------------------------


def make_context(dead, implementation=None, lrc_u=0.99):
    spec = three_tank_spec(lrc_u=lrc_u)
    return RecoveryContext(
        spec=spec,
        arch=three_tank_architecture(),
        implementation=implementation or scenario1_implementation(),
        dead_hosts=frozenset(dead),
        time=5000,
    )


def test_context_pruned_implementation():
    context = make_context({"h2"})
    pruned = context.pruned_implementation()
    assert pruned is not None
    for hosts in pruned.assignment.values():
        assert "h2" not in hosts
    # Killing every host of a task makes pruning impossible.
    every = make_context({"h1", "h2", "h3"})
    assert every.pruned_implementation() is None
    assert every.surviving_architecture() is None


def test_re_replicate_prunes_when_still_reliable():
    # scenario1 replicates t1 on {h1, h2}; with h2 dead the pruned
    # mapping keeps t1 on h1 alone — for the default LRCs that is
    # still reliable, so the minimal repair wins.
    context = make_context({"h2"})
    outcome = ReReplicatePolicy().recover(context)
    assert outcome is not None
    assert outcome.policy == "re-replicate"
    assert not outcome.degraded
    assert outcome.report.reliable
    srgs = outcome.report.srgs()
    for name, comm in context.spec.communicators.items():
        assert srgs[name] >= comm.lrc
    for hosts in outcome.implementation.assignment.values():
        assert "h2" not in hosts


def test_re_replicate_synthesises_when_pruning_impossible():
    # The baseline maps t2 exclusively onto h2, so with h2 dead the
    # minimal repair (pruning) is impossible and the policy must fall
    # back to a full synthesis over the survivors.
    context = make_context(
        {"h2"},
        implementation=baseline_implementation(),
        lrc_u=0.9975,
    )
    assert context.pruned_implementation() is None
    outcome = ReReplicatePolicy().recover(context)
    assert outcome is not None
    assert outcome.report.reliable
    srgs = outcome.report.srgs()
    for name, comm in context.spec.communicators.items():
        assert srgs[name] >= comm.lrc
    for hosts in outcome.implementation.assignment.values():
        assert "h2" not in hosts


def test_re_replicate_gives_up_without_survivors():
    assert ReReplicatePolicy().recover(
        make_context({"h1", "h2", "h3"})
    ) is None


def safe_mode_implementation():
    """A declared safe configuration avoiding h2 entirely."""
    baseline = baseline_implementation()
    return Implementation(
        {task: frozenset({"h3"}) for task in baseline.assignment},
        baseline.sensor_binding,
    )


def test_degrade_policy_verifies_reduced_lrcs():
    policy = DegradePolicy(
        implementation=safe_mode_implementation(),
        lrcs={"u1": 0.9, "u2": 0.9},
    )
    outcome = policy.recover(make_context({"h2"}, lrc_u=0.9975))
    assert outcome is not None
    assert outcome.degraded
    srgs = outcome.report.srgs()
    assert srgs["u1"] >= 0.9 and srgs["u2"] >= 0.9
    # An impossible promise is refused.
    refused = DegradePolicy(
        implementation=safe_mode_implementation(),
        lrcs={"u1": 0.999999999},
    )
    assert refused.recover(make_context({"h2"}, lrc_u=0.9975)) is None


def test_degrade_policy_needs_a_surviving_safe_mapping():
    # The declared safe mapping itself relies on the dead host: no
    # degrade is possible.
    policy = DegradePolicy(
        implementation=baseline_implementation(), lrcs={"u1": 0.9}
    )
    assert policy.recover(make_context({"h2"}, lrc_u=0.9975)) is None


def test_first_applicable_respects_order():
    context = make_context({"h2"}, lrc_u=0.9975)
    degrade = DegradePolicy(
        implementation=safe_mode_implementation(), lrcs={"u1": 0.9}
    )
    outcome = first_applicable([degrade, ReReplicatePolicy()], context)
    assert outcome is not None and outcome.policy == "degrade"
    outcome = first_applicable([ReReplicatePolicy(), degrade], context)
    assert outcome is not None and outcome.policy == "re-replicate"
    assert first_applicable([], context) is None


# ----------------------------------------------------------------------
# The resilient executive.
# ----------------------------------------------------------------------


def resilient_3ts(seed=7, policies=(), iterations=30, **kwargs):
    spec = three_tank_spec(
        lrc_u=0.99, functions=bind_control_functions()
    )
    defaults = dict(
        environment=ThreeTankEnvironment(),
        faults=ScriptedFaults(host_outages={"h2": [(5000, None)]}),
        actuator_communicators=ACTUATORS,
        seed=seed,
        monitor=MonitorConfig(window=50, communicators=("u1", "u2")),
        watchdog=WatchdogConfig(),
        policies=policies,
    )
    defaults.update(kwargs)
    return ResilientSimulator(
        spec,
        three_tank_architecture(),
        baseline_implementation(),
        **defaults,
    )


def test_executive_is_deterministic():
    results = [
        resilient_3ts(
            seed=13,
            policies=(ReReplicatePolicy(),),
            faults=BernoulliFaults(three_tank_architecture()),
        ).run(20)
        for _ in range(2)
    ]
    a, b = results
    assert [e.to_dict() for e in a.events] == [
        e.to_dict() for e in b.events
    ]
    assert a.values == b.values
    assert a.limit_averages() == b.limit_averages()


def test_executive_requires_static_implementation():
    from repro.mapping import TimeDependentImplementation

    timedep = TimeDependentImplementation([baseline_implementation()])
    with pytest.raises(RuntimeSimulationError, match="static"):
        ResilientSimulator(
            three_tank_spec(functions=bind_control_functions()),
            three_tank_architecture(),
            timedep,
        )


def test_executive_rejects_non_positive_iterations():
    with pytest.raises(RuntimeSimulationError, match="positive"):
        resilient_3ts().run(0)


def test_recovery_failed_event_when_no_policy_helps():
    # A degrade promising more than any surviving mapping can deliver
    # leaves the executive without options: RecoveryFailed is logged
    # and the mapping stays put.
    impossible = DegradePolicy(
        implementation=baseline_implementation(),
        lrcs={"u2": 0.999999999},
    )
    result = resilient_3ts(policies=(impossible,)).run(30)
    assert result.recoveries == ()
    failed = result.events_of(RecoveryFailed)
    assert failed and failed[0].dead_hosts == ("h2",)
    assert len(result.implementation_log) == 1


# ----------------------------------------------------------------------
# The detect-and-recover acceptance experiment (3TS, unplug h2).
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def outcome():
    return detect_and_recover(iterations=40, unplug_at=5000, seed=99)


def test_detection_within_three_control_periods(outcome):
    assert outcome.detection_time is not None
    assert outcome.detection_latency_periods is not None
    assert outcome.detection_latency_periods <= 3


def test_recovery_commits_only_with_verified_srgs(outcome):
    commits = outcome.recovered.events_of(RecoveryCommitted)
    assert len(commits) == 1
    commit = commits[0]
    assert commit.policy == "re-replicate"
    assert commit.dead_hosts == ("h2",)
    spec = outcome.recovered.spec
    for name, comm in spec.communicators.items():
        assert commit.srgs[name] >= comm.lrc
    for hosts in commit.assignment.values():
        assert "h2" not in hosts
    # The commit happens at the first iteration boundary after the
    # HostDead verdict, never before it.
    dead = outcome.recovered.events_of(HostDead)[0]
    assert commit.time >= dead.time


def test_post_recovery_windowed_rates_recover(outcome):
    for name in ("u1", "u2"):
        mu = outcome.recovered.spec.communicators[name].lrc
        rate = outcome.recovered.windowed_rate(name)
        assert rate is not None and rate >= mu
    # Every violation window of the recovered arm closed, and the
    # violation has finite length.
    for name, windows in outcome.violation_windows.items():
        for start, end in windows:
            assert end is not None
        assert outcome.violation_length(name) is not None


def test_baseline_without_recovery_stays_in_violation(outcome):
    # Same seed, same faults, no policies: u2 alarms and never clears.
    windows = outcome.baseline_windows["u2"]
    assert windows
    assert windows[-1][1] is None
    assert outcome.baseline.recoveries == ()
    assert not outcome.baseline.satisfies_lrcs()
    # The recovered arm does better than the baseline on u2.
    baseline_avg = outcome.baseline.limit_averages()["u2"]
    recovered_avg = outcome.recovered.limit_averages()["u2"]
    assert recovered_avg > baseline_avg


def test_outcome_summary_renders(outcome):
    text = outcome.summary()
    assert "detect-and-recover" in text
    assert "h2" in text
    assert "recovery" in outcome.recovered.summary()


# ----------------------------------------------------------------------
# resilient_batch: the seed contract under recovery.
# ----------------------------------------------------------------------


def test_resilient_batch_matches_child_seeded_runs():
    spec = three_tank_spec(
        lrc_u=0.99, functions=bind_control_functions()
    )
    arch = three_tank_architecture()
    impl = baseline_implementation()
    runs, iterations, seed = 3, 25, 42
    kwargs = dict(
        faults=ScriptedFaults(host_outages={"h2": [(5000, None)]}),
        actuator_communicators=ACTUATORS,
        monitor=MonitorConfig(window=50, communicators=("u1", "u2")),
        watchdog=WatchdogConfig(),
        policies=(ReReplicatePolicy(),),
    )
    batch = resilient_batch(
        spec, arch, impl, runs, iterations, seed,
        environment_factory=ThreeTankEnvironment,
        **kwargs,
    )
    assert batch.executor == "scalar-resilient"
    children = np.random.SeedSequence(seed).spawn(runs)
    for k, child in enumerate(children):
        direct = ResilientSimulator(
            spec, arch, impl,
            environment=ThreeTankEnvironment(),
            seed=np.random.default_rng(child),
            **kwargs,
        ).run(iterations)
        assert batch.recovery_counts[k] == len(direct.recoveries)
        expected = [
            {**e.to_dict(), "run": k} for e in direct.events
        ]
        assert [
            e.to_dict() for e in batch.events_for_run(k)
        ] == expected
        for name, trace in direct.abstract().items():
            assert batch.reliable_counts[name][k] == (
                trace.reliable_count()
            )
    averages = batch.limit_averages()
    assert all(np.all(avg <= 1.0) for avg in averages.values())


# ----------------------------------------------------------------------
# Batch monitoring: vectorized events == scalar events.
# ----------------------------------------------------------------------


def test_batch_monitor_events_match_scalar_monitor():
    spec = three_tank_spec(lrc_u=0.99)
    arch = three_tank_architecture()
    impl = scenario1_implementation()
    runs, iterations, seed = 4, 40, 5
    config = MonitorConfig(
        window=25,
        alarm_below={n: 0.85 for n in spec.communicators},
        clear_above={n: 0.95 for n in spec.communicators},
    )
    batch = BatchSimulator(
        spec, arch, impl, faults=BernoulliFaults(arch), seed=seed
    )
    result = batch.run_batch(runs, iterations, monitor=config)
    assert result.executor == "vectorized"

    bound = three_tank_spec(
        lrc_u=0.99, functions=bind_control_functions()
    )
    children = np.random.SeedSequence(seed).spawn(runs)
    for k, child in enumerate(children):
        monitor = LrcMonitor(bound, config)
        Simulator(
            bound, arch, impl,
            environment=ThreeTankEnvironment(),
            faults=BernoulliFaults(arch),
            actuator_communicators=ACTUATORS,
            seed=np.random.default_rng(child),
            monitor=monitor,
        ).run(iterations)
        expected = [
            {**e.to_dict(), "run": k} for e in monitor.events
        ]
        got = [e.to_dict() for e in result.monitor_events_for_run(k)]
        assert got == expected
