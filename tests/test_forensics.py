"""Tests for failure forensics: the flight recorder, causal chains,
blame scores, and counterfactual queries (ISSUE 5 tentpole)."""

import json

import pytest

from repro.experiments import (
    ACTUATORS,
    baseline_implementation,
    bind_control_functions,
    three_tank_architecture,
    three_tank_spec,
)
from repro.experiments.three_tank_system import ThreeTankEnvironment
from repro.resilience import MonitorConfig, ResilientSimulator
from repro.runtime import (
    BernoulliFaults,
    CompositeFaults,
    ScriptedFaults,
    Simulator,
)
from repro.telemetry import (
    CausalChain,
    PostmortemReport,
    ProvenanceRecorder,
    blame_scores,
    counterfactual,
)
from repro.telemetry.postmortem import (
    chain_reliable_given,
    render_postmortem,
    resolve_sources,
)

ITERATIONS = 60
SEED = 7


def fresh_spec():
    # Controller/estimator closures carry state: every simulation
    # needs a fresh binding (see bind_control_functions docstring).
    return three_tank_spec(lrc_u=0.99, functions=bind_control_functions())


def unplug_faults():
    """Bernoulli background noise plus h2 unplugged at t=5000."""
    return CompositeFaults(
        [
            BernoulliFaults(three_tank_architecture()),
            ScriptedFaults(host_outages={"h2": [(5000, None)]}),
        ]
    )


def forensic_run(
    faults=None, recorder=None, seed=SEED, iterations=ITERATIONS
):
    spec = fresh_spec()
    if recorder is None:
        recorder = ProvenanceRecorder(spec)
    result = Simulator(
        spec,
        three_tank_architecture(),
        baseline_implementation(),
        environment=ThreeTankEnvironment(),
        faults=faults if faults is not None else unplug_faults(),
        actuator_communicators=ACTUATORS,
        seed=seed,
        sinks=(recorder,),
    ).run(iterations)
    return recorder, result


# ----------------------------------------------------------------------
# Chain freezing.
# ----------------------------------------------------------------------


def test_unplugged_host_freezes_chains_blaming_it():
    recorder, result = forensic_run()
    u2_chains = [c for c in recorder.chains if c.communicator == "u2"]
    assert u2_chains, "unplugging t2's only host must break u2 writes"
    for chain in u2_chains:
        assert chain.trigger == "unreliable-write"
        assert chain.task == "t2"
        assert chain.replicas_ok == 0
        assert {link.key for link in chain.sources} == {"host:h2"}
        # The blast radius includes the downstream estimate.
        assert "r2" in chain.downstream
    # Every unreliable commit froze exactly one task chain.
    assert recorder.unreliable_commits == len(
        [c for c in recorder.chains if c.task is not None]
    )
    assert recorder.iterations == ITERATIONS


def test_downstream_writes_link_to_upstream_chain():
    recorder, _ = forensic_run()
    r2_chains = [c for c in recorder.chains if c.communicator == "r2"]
    assert r2_chains, "estimate2 starves when u2 is unreliable"
    for chain in r2_chains:
        # estimate2's replicas survive; the input model suppressed it.
        assert chain.replicas_ok > 0
        assert chain.contributions == 0
        upstream = [
            link for link in chain.sources if link.kind == "communicator"
        ]
        assert upstream and upstream[0].name == "u2"
        assert upstream[0].chain is not None
        # Transitive resolution lands on the unplugged host.
        terminals = resolve_sources(chain, recorder.chains)
        assert {link.key for link in terminals} == {"host:h2"}


def test_sensor_outage_freezes_sensor_chains():
    recorder, _ = forensic_run(
        faults=ScriptedFaults(sensor_outages={"sen1": [(0, None)]})
    )
    s1_chains = [c for c in recorder.chains if c.communicator == "s1"]
    assert len(s1_chains) == ITERATIONS
    for chain in s1_chains:
        assert chain.task is None
        assert {link.key for link in chain.sources} == {"sensor:sen1"}
    assert recorder.failed_sensor_updates == ITERATIONS
    # The healthy sensor stream froze nothing.
    assert not [c for c in recorder.chains if c.communicator == "s2"]


def test_reliable_run_freezes_nothing():
    recorder, _ = forensic_run(faults=ScriptedFaults())
    assert recorder.chains == []
    assert recorder.unreliable_commits == 0
    assert recorder.failed_sensor_updates == 0
    assert recorder.total_commits > 0


# ----------------------------------------------------------------------
# The flight recorder ring buffer.
# ----------------------------------------------------------------------


def test_flight_recorder_keeps_last_capacity_frames():
    spec = fresh_spec()
    recorder = ProvenanceRecorder(spec, capacity=4)
    forensic_run(recorder=recorder)
    frames = recorder.frames()
    assert len(frames) == 4
    assert [f.iteration for f in frames] == list(
        range(ITERATIONS - 4, ITERATIONS)
    )
    # Frames carry the full per-iteration record.
    for frame in frames:
        assert frame.sensor_reads
        assert frame.replicas
        assert frame.commits
    # Evicting frames never evicts chains.
    assert any(c.iteration < ITERATIONS - 4 for c in recorder.chains)


def test_recorder_rejects_degenerate_capacity():
    with pytest.raises(ValueError, match="capacity"):
        ProvenanceRecorder(fresh_spec(), capacity=1)


def test_max_chains_cap_counts_dropped():
    spec = fresh_spec()
    recorder = ProvenanceRecorder(spec, max_chains=5)
    forensic_run(recorder=recorder)
    assert len(recorder.chains) == 5
    assert recorder.dropped_chains > 0
    doc = recorder.to_dict()
    assert doc["counters"]["chains"] == 5
    assert doc["counters"]["dropped_chains"] == recorder.dropped_chains


# ----------------------------------------------------------------------
# Blame scores and counterfactuals.
# ----------------------------------------------------------------------


def test_blame_ranks_unplugged_host_first():
    recorder, _ = forensic_run()
    blame = blame_scores(recorder.chains)
    assert blame
    top = blame[0]
    assert top.source == "host:h2"
    assert top.chains == len(
        [c for c in recorder.chains if c.trigger == "unreliable-write"]
    )
    assert top.share == pytest.approx(float(top.chains))


def test_counterfactual_masking_unplugged_host_flips_all_writes():
    recorder, _ = forensic_run()
    writes = [
        c for c in recorder.chains if c.trigger == "unreliable-write"
    ]
    report = counterfactual(recorder.chains, {"host:h2"})
    assert report.flips == len(writes)
    assert report.unchanged == 0
    # Masking an unrelated source flips nothing.
    unrelated = counterfactual(recorder.chains, {"sensor:sen1"})
    assert unrelated.flips == 0
    assert unrelated.unchanged == len(writes)


def test_counterfactual_resolves_through_upstream_chains():
    recorder, _ = forensic_run()
    r2_chains = [c for c in recorder.chains if c.communicator == "r2"]
    assert r2_chains
    # r2 itself never names host:h2; only the upstream u2 chain does.
    for chain in r2_chains:
        assert all(link.kind == "communicator" for link in chain.sources)
        assert chain_reliable_given(
            chain, frozenset({"host:h2"}), recorder.chains
        )
        assert not chain_reliable_given(
            chain, frozenset({"host:h1"}), recorder.chains
        )


def test_sensor_chain_counterfactual():
    recorder, _ = forensic_run(
        faults=ScriptedFaults(sensor_outages={"sen1": [(0, None)]})
    )
    writes = [
        c for c in recorder.chains if c.trigger == "unreliable-write"
    ]
    # The dead sensor is the sole root cause: masking it flips every
    # write chain, including downstream diamonds (l1 and u1 both feed
    # estimate1) resolved through memoised upstream references.
    report = counterfactual(recorder.chains, {"sensor:sen1"})
    assert report.flips == len(writes) > ITERATIONS
    assert report.unchanged == 0
    s1_flips = [c for c in report.flipped if c.communicator == "s1"]
    assert len(s1_flips) == ITERATIONS


# ----------------------------------------------------------------------
# Serialisation and report assembly.
# ----------------------------------------------------------------------


def test_forensics_document_round_trips():
    recorder, _ = forensic_run()
    doc = json.loads(json.dumps(recorder.to_dict()))
    assert doc["version"] == 1
    restored = [CausalChain.from_dict(d) for d in doc["chains"]]
    assert restored == recorder.chains
    assert len(doc["flight_recorder"]) == len(recorder.frames())
    report = PostmortemReport.from_document(doc)
    top = report.top_source()
    assert top is not None and top.source == "host:h2"
    assert dict(report.per_communicator)["u2"] > 0


def test_render_postmortem_names_culprit_and_counterfactual():
    recorder, _ = forensic_run()
    report = PostmortemReport.from_document(recorder.to_dict())
    cf = counterfactual(report.chains, {"host:h2"})
    text = render_postmortem(report, [cf])
    assert "host:h2" in text
    assert "counterfactual: with host:h2 up" in text
    assert f"{cf.flips} of {cf.flips + cf.unchanged}" in text


def test_render_postmortem_without_failures():
    recorder, _ = forensic_run(faults=ScriptedFaults())
    report = PostmortemReport.from_document(recorder.to_dict())
    text = render_postmortem(report)
    assert "no unreliable writes recorded" in text


# ----------------------------------------------------------------------
# Observer purity (the PR 2 seed contract) and executive wiring.
# ----------------------------------------------------------------------


def test_recorder_is_a_pure_observer():
    _, bare = forensic_run()
    spec = fresh_spec()
    recorder = ProvenanceRecorder(spec, capacity=8)
    _, observed = forensic_run(recorder=recorder)
    assert observed.values == bare.values
    assert observed.replica_failures == bare.replica_failures


def resilient_run(sinks=()):
    return ResilientSimulator(
        fresh_spec(),
        three_tank_architecture(),
        baseline_implementation(),
        environment=ThreeTankEnvironment(),
        faults=unplug_faults(),
        actuator_communicators=ACTUATORS,
        seed=SEED,
        monitor=MonitorConfig(window=20, communicators=("u1", "u2")),
        sinks=sinks,
    ).run(ITERATIONS)


def test_recorder_attaches_to_resilient_executive():
    recorder = ProvenanceRecorder(fresh_spec())
    result = resilient_run(sinks=(recorder,))
    bare = resilient_run()
    # Still a pure observer through the executive's sink plumbing.
    assert result.values == bare.values
    # Write chains froze, and the monitor alarm became a chain whose
    # sources aggregate the recent write chains of the alarmed stream.
    alarms = [c for c in recorder.chains if c.trigger == "lrc-alarm"]
    assert any(e.kind == "lrc-alarm" for e in result.events)
    assert alarms
    for chain in alarms:
        assert chain.communicator in {"u1", "u2"}
        assert {link.key for link in chain.sources} == {"host:h2"}
    # Alarm chains never contribute blame (they aggregate writes).
    blame = blame_scores(recorder.chains)
    write_count = len(
        [c for c in recorder.chains if c.trigger == "unreliable-write"]
    )
    assert sum(entry.share for entry in blame) == pytest.approx(
        float(write_count)
    )
