"""Tests for the textual reporting module."""

import numpy as np
import pytest

from repro.experiments import (
    baseline_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.model import BOTTOM
from repro.reliability import check_reliability
from repro.reliability.traces import AbstractTrace
from repro.report import (
    design_report,
    render_dependency_graph,
    render_margins,
    render_trace,
)


@pytest.fixture
def tank():
    return (
        three_tank_spec(),
        three_tank_architecture(),
        baseline_implementation(),
    )


def test_render_margins_marks_verdicts(tank):
    spec, arch, impl = tank
    report = check_reliability(spec, arch, impl)
    text = render_margins(report)
    assert "[ok ]" in text
    assert "u1" in text
    assert "LOW" not in text


def test_render_margins_flags_violations():
    spec = three_tank_spec(lrc_u=0.9975)
    report = check_reliability(
        spec, three_tank_architecture(), baseline_implementation()
    )
    text = render_margins(report)
    assert "LOW" in text
    assert "-" in text  # a deficit bar


def test_render_trace_sparkline():
    trace = AbstractTrace(
        "c", np.array([1, 1, 0, 1] * 10, dtype=np.int8)
    )
    text = render_trace(trace, width=10)
    assert text.startswith("c: ")
    assert "limavg 0.75" in text
    assert "40 accesses" in text
    assert "▁" in text


def test_render_trace_all_reliable():
    trace = AbstractTrace.from_values("c", [1.0] * 20)
    text = render_trace(trace, width=5)
    assert "▁" not in text.splitlines()[0]
    assert "limavg 1.0" in text


def test_render_trace_empty():
    trace = AbstractTrace("c", np.array([], dtype=np.int8))
    assert "(empty trace)" in render_trace(trace)


def test_render_dependency_graph(tank):
    spec, _, _ = tank
    text = render_dependency_graph(spec)
    assert "s1 (written by sensor) -> l1" in text
    assert "l1 (written by read1)" in text
    assert "u1 (written by t1) -> r1" in text


def test_design_report_valid(tank):
    spec, arch, impl = tank
    text = design_report(spec, arch, impl)
    assert "design report" in text
    assert "VALID" in text
    assert "margins:" in text
    assert "distributed timeline" in text
    assert "upgrade" not in text  # nothing to repair


def test_design_report_with_upgrade_advice():
    spec = three_tank_spec(lrc_u=0.9975)
    text = design_report(
        spec, three_tank_architecture(), baseline_implementation()
    )
    assert "INVALID" in text
    assert "single-component upgrades" in text
    assert "host:h3" in text


def test_design_report_no_single_upgrade_possible():
    spec = three_tank_spec(lrc_u=0.9989)
    # u = hrel(h3) * srel * hrel <= 0.999 * 1 * 1; but two factors stay
    # at 0.999 so no single upgrade reaches 0.9989 (0.999^2 = 0.998).
    text = design_report(
        spec, three_tank_architecture(), baseline_implementation()
    )
    assert "no single-component upgrade" in text
