"""Supervised shard execution: retries are invisible, failures bounded.

The tentpole claim: :class:`SupervisedShardedExecutor` can lose a
worker to a crash, a hang, or an injected error and still return a
result **bit-identical** to the unsupervised (and serial) execution,
because a shard's work is a pure function of its
``SeedSequence.spawn`` slice.  The differential suite drives that
over Hypothesis-generated systems with hash-scheduled faults; the
unit tests pin the retry policy arithmetic, hang detection, the
give-up path, and the telemetry surface.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeSimulationError
from repro.experiments import (
    bind_control_functions,
    three_tank_architecture,
    three_tank_spec,
)
from repro.experiments.three_tank_system import baseline_implementation
from repro.resilience import MonitorConfig
from repro.runtime import (
    BatchSimulator,
    BernoulliFaults,
    SerialExecutor,
    ShardedExecutor,
)
from repro.service.supervision import (
    ChaosAction,
    RetryPolicy,
    ShardRetryEvent,
    SupervisedShardedExecutor,
    _unit_noise,
)
from repro.telemetry import TelemetryBus

from strategies import systems

RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

FAST_POLICY = RetryPolicy(
    retries=2, base_delay_s=0.005, max_delay_s=0.02
)


def three_tank_simulator(seed=7, executor=None):
    spec = three_tank_spec(
        lrc_u=0.99, functions=bind_control_functions()
    )
    arch = three_tank_architecture()
    return BatchSimulator(
        spec, arch, baseline_implementation(),
        faults=BernoulliFaults(arch), seed=seed, executor=executor,
    )


def assert_identical(left, right):
    """Bitwise equality, ignoring the executor label."""
    assert left.runs == right.runs
    assert left.iterations == right.iterations
    assert left.samples_per_run == right.samples_per_run
    assert set(left.reliable_counts) == set(right.reliable_counts)
    for name in left.reliable_counts:
        assert np.array_equal(
            left.reliable_counts[name], right.reliable_counts[name]
        )
    assert left.monitor_events == right.monitor_events


class HashFaults:
    """Deterministic chaos plan: fault classes drawn per (shard,
    attempt) from a seed, never on the final allowed attempt."""

    KINDS = ("kill", "hang", "error", None)

    def __init__(self, seed, retries=2):
        self.seed = seed
        self.retries = retries

    def action(self, shard, attempt):
        if attempt >= self.retries:
            return None
        draw = _unit_noise(self.seed * 1000 + shard, attempt)
        kind = self.KINDS[int(draw * len(self.KINDS))]
        if kind == "hang":
            # Keep process-path hangs short via the explicit delay.
            return ChaosAction("hang", delay_s=30.0)
        return None if kind is None else ChaosAction(kind)


# ----------------------------------------------------------------------
# The retry policy.
# ----------------------------------------------------------------------


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(
        retries=5, base_delay_s=0.1, max_delay_s=0.4, jitter=0.0
    )
    delays = [policy.delay(0, attempt) for attempt in range(1, 6)]
    assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]


def test_retry_policy_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay_s=0.1, jitter=0.5)
    first = policy.delay(3, 1)
    assert first == policy.delay(3, 1)
    assert 0.1 <= first <= 0.15
    assert policy.delay(3, 1) != policy.delay(4, 1)


def test_retry_policy_rejects_nonsense():
    with pytest.raises(RuntimeSimulationError):
        RetryPolicy(retries=-1)
    with pytest.raises(RuntimeSimulationError):
        RetryPolicy(base_delay_s=-0.1)
    with pytest.raises(RuntimeSimulationError):
        SupervisedShardedExecutor(0)
    with pytest.raises(RuntimeSimulationError):
        SupervisedShardedExecutor(2, deadline_s=0.0)


# ----------------------------------------------------------------------
# Differential: supervision under fire equals serial execution.
# ----------------------------------------------------------------------


@RELAXED
@given(
    systems(),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=2, max_value=4),
)
def test_supervised_inline_is_bit_identical_under_faults(
    system, seed, runs, jobs
):
    spec, arch, impl = system
    monitor = MonitorConfig(window=4)

    def run(executor):
        return BatchSimulator(
            spec, arch, impl,
            faults=BernoulliFaults(arch), seed=seed,
            executor=executor,
        ).run_batch(runs, 6, monitor=monitor)

    serial = run(SerialExecutor())
    supervised = run(
        SupervisedShardedExecutor(
            jobs, policy=FAST_POLICY, processes=False,
            chaos=HashFaults(seed),
        )
    )
    assert_identical(serial, supervised)


@pytest.mark.parametrize("seed", [3, 11])
def test_supervised_processes_survive_kill_hang_error(seed):
    serial = three_tank_simulator(seed=seed).run_batch(
        10, 12, monitor=MonitorConfig(window=5)
    )
    executor = SupervisedShardedExecutor(
        3, policy=FAST_POLICY, deadline_s=1.0,
        chaos=HashFaults(seed),
    )
    supervised = three_tank_simulator(
        seed=seed, executor=executor
    ).run_batch(10, 12, monitor=MonitorConfig(window=5))
    assert_identical(serial, supervised)
    # The plan injects at least one fault for these seeds, so the
    # rescue must be visible on the retry stream.
    assert executor.retry_events
    reasons = {event.reason for event in executor.retry_events}
    assert reasons <= {"crash", "hang", "error"}


def test_supervised_matches_unsupervised_fault_free():
    plain = three_tank_simulator(
        executor=ShardedExecutor(2)
    ).run_batch(8, 10)
    supervised = three_tank_simulator(
        executor=SupervisedShardedExecutor(2)
    ).run_batch(8, 10)
    assert_identical(plain, supervised)


# ----------------------------------------------------------------------
# Hang detection and the give-up path.
# ----------------------------------------------------------------------


class AlwaysFault:
    def __init__(self, kind):
        self.kind = kind

    def action(self, shard, attempt):
        return ChaosAction(self.kind)


def test_hang_is_detected_and_retried_to_exhaustion():
    executor = SupervisedShardedExecutor(
        2,
        policy=RetryPolicy(retries=1, base_delay_s=0.005),
        deadline_s=0.3,
        chaos=AlwaysFault("hang"),
    )
    with pytest.raises(RuntimeSimulationError, match="failed after"):
        three_tank_simulator(executor=executor).run_batch(4, 6)
    hangs = [e for e in executor.retry_events if e.reason == "hang"]
    assert hangs and all(
        "deadline" in event.detail for event in hangs
    )


def test_crash_exhaustion_names_the_shard_and_runs():
    executor = SupervisedShardedExecutor(
        2,
        policy=RetryPolicy(retries=0),
        chaos=AlwaysFault("kill"),
    )
    with pytest.raises(
        RuntimeSimulationError, match=r"shard \d+ \(runs"
    ):
        three_tank_simulator(executor=executor).run_batch(4, 6)


def test_inline_path_retries_errors():
    executor = SupervisedShardedExecutor(
        2, policy=FAST_POLICY, processes=False,
        chaos=HashFaults(5),
    )
    serial = three_tank_simulator().run_batch(6, 8)
    supervised = three_tank_simulator(
        executor=executor
    ).run_batch(6, 8)
    assert_identical(serial, supervised)


# ----------------------------------------------------------------------
# The telemetry surface.
# ----------------------------------------------------------------------


def test_retry_events_reach_the_telemetry_bus():
    bus = TelemetryBus()
    executor = SupervisedShardedExecutor(
        2, policy=FAST_POLICY, deadline_s=1.0,
        telemetry=bus, chaos=HashFaults(3),
    )
    three_tank_simulator(seed=3, executor=executor).run_batch(8, 10)
    retries = [e for e in bus if getattr(e, "kind", "") == "shard-retry"]
    assert retries == executor.retry_events
    event = retries[0]
    doc = event.to_dict()
    assert doc["kind"] == "shard-retry"
    assert doc["run_stop"] > doc["run_start"]
    assert doc["reason"] in ("crash", "hang", "error")


def test_retry_event_round_trips_to_dict():
    event = ShardRetryEvent(
        shard=1, attempt=0, reason="crash", detail="pipe EOF",
        delay_s=0.05, run_start=4, run_stop=8,
    )
    doc = event.to_dict()
    assert doc == {
        "kind": "shard-retry", "shard": 1, "attempt": 0,
        "reason": "crash", "detail": "pipe EOF", "delay_s": 0.05,
        "run_start": 4, "run_stop": 8,
    }
