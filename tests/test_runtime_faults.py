"""Tests for fault injectors."""

import numpy as np
import pytest

from repro.arch import Architecture, BroadcastNetwork, ExecutionMetrics, Host, Sensor
from repro.errors import RuntimeSimulationError
from repro.runtime import (
    BernoulliFaults,
    CompositeFaults,
    NoFaults,
    ScriptedFaults,
)


def rng():
    return np.random.default_rng(0)


def test_no_faults_never_fails():
    injector = NoFaults()
    generator = rng()
    assert not injector.replica_fails("t", "h", 0, 0, 10, generator)
    assert not injector.sensor_fails("s", 0, generator)
    assert not injector.broadcast_fails("t", "h", 0, generator)


def test_bernoulli_rates_match_reliabilities():
    arch = Architecture(
        hosts=[Host("h", 0.8)],
        sensors=[Sensor("s", 0.7)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
        network=BroadcastNetwork(reliability=0.9),
    )
    injector = BernoulliFaults(arch)
    generator = rng()
    samples = 20000
    host_failures = sum(
        injector.replica_fails("t", "h", i, 0, 10, generator)
        for i in range(samples)
    )
    sensor_failures = sum(
        injector.sensor_fails("s", i, generator) for i in range(samples)
    )
    broadcast_failures = sum(
        injector.broadcast_fails("t", "h", i, generator)
        for i in range(samples)
    )
    assert host_failures / samples == pytest.approx(0.2, abs=0.01)
    assert sensor_failures / samples == pytest.approx(0.3, abs=0.01)
    assert broadcast_failures / samples == pytest.approx(0.1, abs=0.01)


def test_bernoulli_perfect_network_consumes_no_randomness():
    arch = Architecture(
        hosts=[Host("h", 0.8)],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    injector = BernoulliFaults(arch)
    a, b = rng(), rng()
    assert not injector.broadcast_fails("t", "h", 0, a)
    # The generator state is untouched: next draws agree.
    assert a.random() == b.random()


def test_scripted_permanent_outage():
    injector = ScriptedFaults(host_outages={"h": [(100, None)]})
    generator = rng()
    assert not injector.replica_fails("t", "h", 0, 0, 50, generator)
    assert injector.replica_fails("t", "h", 1, 100, 150, generator)
    assert injector.replica_fails("t", "h", 2, 500, 550, generator)
    # A window that merely touches the outage start fails too.
    assert injector.replica_fails("t", "h", 0, 50, 100, generator)


def test_scripted_interval_outage():
    injector = ScriptedFaults(host_outages={"h": [(100, 200)]})
    generator = rng()
    assert not injector.replica_fails("t", "h", 0, 0, 99, generator)
    assert injector.replica_fails("t", "h", 0, 150, 180, generator)
    assert not injector.replica_fails("t", "h", 0, 200, 250, generator)
    # Overlap from the left.
    assert injector.replica_fails("t", "h", 0, 50, 120, generator)


def test_scripted_other_hosts_unaffected():
    injector = ScriptedFaults(host_outages={"h": [(0, None)]})
    assert not injector.replica_fails("t", "other", 0, 0, 10, rng())


def test_scripted_sensor_outage():
    injector = ScriptedFaults(sensor_outages={"s": [(100, 200)]})
    generator = rng()
    assert not injector.sensor_fails("s", 99, generator)
    assert injector.sensor_fails("s", 100, generator)
    assert injector.sensor_fails("s", 150, generator)
    assert not injector.sensor_fails("s", 200, generator)


def test_scripted_empty_interval_rejected():
    with pytest.raises(RuntimeSimulationError, match="empty"):
        ScriptedFaults(host_outages={"h": [(10, 10)]})


def test_composite_or_semantics():
    scripted = ScriptedFaults(host_outages={"h1": [(0, None)]})
    other = ScriptedFaults(host_outages={"h2": [(0, None)]})
    combined = CompositeFaults([scripted, other])
    generator = rng()
    assert combined.replica_fails("t", "h1", 0, 0, 10, generator)
    assert combined.replica_fails("t", "h2", 0, 0, 10, generator)
    assert not combined.replica_fails("t", "h3", 0, 0, 10, generator)


def test_composite_sensor_and_broadcast():
    scripted = ScriptedFaults(sensor_outages={"s": [(0, None)]})
    combined = CompositeFaults([NoFaults(), scripted])
    generator = rng()
    assert combined.sensor_fails("s", 5, generator)
    assert not combined.sensor_fails("other", 5, generator)
    assert not combined.broadcast_fails("t", "h", 0, generator)
