"""Chained-run equivalence: the invariant behind mode switching.

Running N iterations in one call must equal running N single-iteration
calls with the clock, store, and RNG carried over (and boundary
commits flushed).  The mode-switching executive relies on exactly
this.
"""

import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.errors import RuntimeSimulationError
from repro.experiments import (
    ACTUATORS,
    bind_control_functions,
    scenario1_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.mapping import Implementation
from repro.model import Communicator, Specification, Task
from repro.runtime import (
    BernoulliFaults,
    CallbackEnvironment,
    ScriptedFaults,
    Simulator,
)


def chained(spec, arch, impl, iterations, faults_factory, env_factory,
            seed=9):
    simulator = Simulator(
        spec, arch, impl, environment=env_factory(),
        faults=faults_factory(), seed=seed,
    )
    values = {name: [] for name in spec.communicators}
    store = None
    for index in range(iterations):
        result = simulator.run(
            1,
            start_time=index * simulator.period,
            initial_store=store,
            flush_final_commits=True,
        )
        store = result.final_store
        for name, trace in result.values.items():
            values[name].extend(trace)
    return values


def single(spec, arch, impl, iterations, faults_factory, env_factory,
           seed=9):
    simulator = Simulator(
        spec, arch, impl, environment=env_factory(),
        faults=faults_factory(), seed=seed,
    )
    return simulator.run(iterations).values


CASES = {
    "nofaults": lambda arch: (lambda: None),
    "scripted": lambda arch: (
        lambda: ScriptedFaults(host_outages={"h2": [(3000, 9000)]})
    ),
    "bernoulli": lambda arch: (lambda: BernoulliFaults(arch)),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_three_tank_chained_equals_single(case):
    arch = three_tank_architecture()
    impl = scenario1_implementation()
    faults_factory = CASES[case](arch)

    def build(runner):
        functions = bind_control_functions()
        spec = three_tank_spec(functions=functions)
        return runner(
            spec, arch, impl, 24, faults_factory,
            lambda: None,
        )

    # Note: both runs need their own fresh controller closures, hence
    # the build indirection; the environment stays the default.
    assert build(chained) == build(single)


def test_boundary_writer_survives_chaining():
    # A task writing exactly at the period boundary: its commit is
    # flushed at each chained horizon and must not be lost or doubled.
    comms = [
        Communicator("x", period=10, lrc=0.5, init=0.0),
        Communicator("y", period=10, lrc=0.5, init=-1.0),
    ]
    tasks = [
        Task("t", [("x", 0)], [("y", 1)], function=lambda x: x + 1.0),
    ]
    spec = Specification(comms, tasks)
    arch = Architecture(
        hosts=[Host("h1")],
        sensors=[Sensor("s")],
        metrics=ExecutionMetrics(default_wcet=1, default_wctt=1),
    )
    impl = Implementation({"t": {"h1"}}, {"x": {"s"}})
    env = lambda: CallbackEnvironment(  # noqa: E731
        sense_fn=lambda c, t: float(t)
    )
    left = chained(spec, arch, impl, 6, lambda: None, env)
    right = single(spec, arch, impl, 6, lambda: None, env)
    assert left == right
    # y[k] records the boundary commit of iteration k-1: x(10(k-1))+1.
    assert right["y"] == [-1.0, 1.0, 11.0, 21.0, 31.0, 41.0]


def test_start_time_must_align():
    spec = three_tank_spec(functions=bind_control_functions())
    simulator = Simulator(
        spec, three_tank_architecture(), scenario1_implementation()
    )
    with pytest.raises(RuntimeSimulationError, match="multiple"):
        simulator.run(1, start_time=123)


def test_initial_store_must_be_complete():
    spec = three_tank_spec(functions=bind_control_functions())
    simulator = Simulator(
        spec, three_tank_architecture(), scenario1_implementation()
    )
    with pytest.raises(RuntimeSimulationError, match="lacks"):
        simulator.run(1, initial_store={"s1": 0.0})


def test_scripted_fault_times_are_absolute_across_chained_runs():
    # The outage at [3000, 9000) must hit iterations 6..17 regardless
    # of chaining (period 500).
    functions = bind_control_functions()
    spec = three_tank_spec(functions=functions)
    arch = three_tank_architecture()
    impl = scenario1_implementation()
    faults = lambda: ScriptedFaults(  # noqa: E731
        host_outages={"h1": [(3000, 9000)], "h2": [(3000, 9000)]}
    )
    values = chained(spec, arch, impl, 24, faults, lambda: None)
    from repro.model import BOTTOM

    u1 = values["u1"]
    # u1 commits at 500k + 400 -> trace index 5k + 4; iterations whose
    # window [500k+200, 500k+400] intersects [3000, 9000) go dark.
    dark = {k for k in range(24) if 500 * k + 400 >= 3000
            and 500 * k + 200 < 9000}
    for k in range(24):
        is_bottom = u1[5 * k + 4] is BOTTOM
        assert is_bottom == (k in dark), k
