"""Tests for HTL program-level refinement."""

import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.errors import RefinementError
from repro.htl import compile_program
from repro.htl.refinement import (
    check_program_refinement,
    incremental_program_check,
    infer_kappa,
)
from repro.mapping import Implementation

ABSTRACT = """
program Abstract {
  communicator sensor_in : float period 10 init 0.0 lrc 0.9 ;
  communicator actuate   : float period 10 init 0.0 lrc 0.8 ;
  module M {
    task control input (sensor_in[0]) output (actuate[2]) ;
    mode main period 20 { invoke control ; }
  }
}
"""

CONCRETE = """
program Concrete {
  communicator sensor_in : float period 10 init 0.0 lrc 0.9 ;
  communicator actuate   : float period 10 init 0.0 lrc 0.75 ;
  module M {
    task control_pid input (sensor_in[0]) output (actuate[2]) ;
    mode main period 20 { invoke control_pid ; }
  }
}
"""


def arch(wcet):
    return Architecture(
        hosts=[Host("h1", 0.95), Host("h2", 0.9)],
        sensors=[Sensor("s1", 0.95)],
        metrics=ExecutionMetrics(default_wcet=wcet, default_wctt=1),
    )


def systems():
    coarse_program = compile_program(ABSTRACT)
    fine_program = compile_program(CONCRETE)
    coarse_impl = Implementation(
        {"control": {"h1", "h2"}}, {"sensor_in": {"s1"}}
    )
    fine_impl = Implementation(
        {"control_pid": {"h1", "h2"}}, {"sensor_in": {"s1"}}
    )
    coarse = (coarse_program, arch(5), coarse_impl)
    fine = (fine_program, arch(3), fine_impl)
    return fine, coarse


def test_infer_kappa_by_prefix():
    fine, coarse = systems()
    kappa = infer_kappa(fine[0], coarse[0])
    assert kappa == {"control_pid": "control"}


def test_infer_kappa_exact_name_wins():
    program = compile_program(ABSTRACT)
    kappa = infer_kappa(program, program)
    assert kappa == {"control": "control"}


def test_infer_kappa_no_match():
    fine_src = CONCRETE.replace("control_pid", "regulator")
    fine = compile_program(fine_src)
    coarse = compile_program(ABSTRACT)
    with pytest.raises(RefinementError, match="cannot infer"):
        infer_kappa(fine, coarse)


def test_infer_kappa_ambiguous():
    coarse_src = ABSTRACT.replace(
        "mode main period 20 { invoke control ; }",
        "mode main period 20 { invoke control ; invoke control_p ; }",
    ).replace(
        "task control input (sensor_in[0]) output (actuate[2]) ;",
        "task control input (sensor_in[0]) output (actuate[2]) ;\n"
        "    task control_p input (sensor_in[0]) output (spare[2]) ;",
    ).replace(
        "communicator actuate",
        "communicator spare : float period 10 init 0.0 lrc 0.8 ;\n"
        "  communicator actuate",
    )
    coarse = compile_program(coarse_src)
    fine = compile_program(CONCRETE)
    with pytest.raises(RefinementError, match="several"):
        infer_kappa(fine, coarse)


def test_program_refinement_holds():
    fine, coarse = systems()
    report = check_program_refinement(fine, coarse)
    assert report.refines, report.summary()


def test_program_refinement_detects_lrc_blowout():
    fine, coarse = systems()
    hot_source = CONCRETE.replace("lrc 0.75", "lrc 0.95")
    hot = (compile_program(hot_source), fine[1], fine[2])
    report = check_program_refinement(hot, coarse)
    assert not report.refines
    assert "b4" in report.by_constraint()


def test_program_refinement_detects_cost_blowout():
    fine, coarse = systems()
    expensive = (fine[0], arch(9), fine[2])
    report = check_program_refinement(expensive, coarse)
    assert not report.refines
    assert "b2" in report.by_constraint()


DECLARED = CONCRETE.replace(
    "program Concrete {",
    "program Concrete refines Abstract (control_pid = control) {",
)

DECLARED_NO_MAPPING = CONCRETE.replace(
    "program Concrete {",
    "program Concrete refines Abstract {",
)


def test_refines_clause_parses():
    from repro.htl import parse_program

    program = parse_program(DECLARED)
    assert program.parent == "Abstract"
    assert program.kappa == (("control_pid", "control"),)


def test_refines_clause_without_mapping_parses():
    from repro.htl import parse_program

    program = parse_program(DECLARED_NO_MAPPING)
    assert program.parent == "Abstract"
    assert program.kappa == ()


def test_refines_clause_round_trips_through_pretty_printer():
    from repro.htl import parse_program
    from repro.htl.pretty import render_program

    program = parse_program(DECLARED)
    again = parse_program(render_program(program))
    assert again.parent == "Abstract"
    assert again.kappa == (("control_pid", "control"),)


def test_declared_kappa_used_by_program_refinement():
    fine, coarse = systems()
    declared_fine = (compile_program(DECLARED), fine[1], fine[2])
    report = check_program_refinement(declared_fine, coarse)
    assert report.refines


def test_declared_parent_mismatch_rejected():
    fine, coarse = systems()
    wrong = DECLARED.replace("refines Abstract", "refines SomethingElse")
    declared_fine = (compile_program(wrong), fine[1], fine[2])
    with pytest.raises(RefinementError, match="declares it refines"):
        check_program_refinement(declared_fine, coarse)


def test_declared_parent_without_mapping_falls_back_to_inference():
    fine, coarse = systems()
    declared_fine = (
        compile_program(DECLARED_NO_MAPPING), fine[1], fine[2],
    )
    report = check_program_refinement(declared_fine, coarse)
    assert report.refines


def test_incremental_program_check():
    fine, coarse = systems()
    result = incremental_program_check(fine, coarse)
    assert result.valid
    assert result.via_refinement


def test_incremental_program_check_fallback():
    fine, coarse = systems()
    hot_source = CONCRETE.replace("lrc 0.75", "lrc 0.95")
    hot = (compile_program(hot_source), fine[1], fine[2])
    result = incremental_program_check(hot, coarse)
    assert not result.via_refinement
    assert result.full_report is not None
    # lrc 0.95 on actuate: SRG = 0.95 * (1 - 0.05*0.1) = ~0.945 < 0.95
    assert result.valid == result.full_report.valid
