"""The paper's concrete numbers, reproduced exactly.

Every figure and in-text result of the evaluation (Section 4) is
asserted here with the values printed in the paper; the benchmark
harness re-derives the same rows with timing attached.
"""

import pytest

from repro import (
    check_reliability,
    check_reliability_timedep,
    check_validity,
    communicator_srgs,
    is_memory_free,
    unsafe_cycles,
)
from repro.experiments import (
    alternating_implementation,
    baseline_implementation,
    cyclic_specification,
    fig1_specification,
    general_example,
    scenario1_implementation,
    scenario2_implementation,
    static_implementations,
    three_tank_architecture,
    three_tank_spec,
)


# -- Fig. 1 (E1) --------------------------------------------------------------


def test_fig1_communicator_periods():
    spec = fig1_specification()
    assert [spec.communicators[c].period for c in ("c1", "c2", "c3", "c4")] \
        == [2, 3, 4, 2]


def test_fig1_let_spans_3_to_8():
    spec = fig1_specification()
    assert spec.read_time("t") == 3
    assert spec.write_time("t") == 8
    read, write = spec.let("t")
    assert write - read == 5  # "The LET of task t is five time units"


def test_fig1_period():
    assert fig1_specification().period() == 12  # lcm(2, 3, 4, 2)


# -- Section 4 baseline SRGs (E2) ----------------------------------------------


@pytest.fixture
def tank():
    return three_tank_spec(), three_tank_architecture()


def test_baseline_srgs_match_paper(tank):
    spec, arch = tank
    srgs = communicator_srgs(spec, baseline_implementation(), arch)
    # "lambda_s1 and lambda_s2 are the same as the sensor reliability"
    assert srgs["s1"] == pytest.approx(0.999, abs=1e-12)
    assert srgs["s2"] == pytest.approx(0.999, abs=1e-12)
    # "lambda_l1 = lambda_read1 * lambda_s1 = 0.998001"
    assert srgs["l1"] == pytest.approx(0.998001, abs=1e-9)
    assert srgs["l2"] == pytest.approx(0.998001, abs=1e-9)
    # "lambda_u1 = lambda_l1 * lambda_t1" = 0.997002999
    assert srgs["u1"] == pytest.approx(0.997002999, abs=1e-9)
    assert srgs["u2"] == pytest.approx(0.997002999, abs=1e-9)


def test_baseline_meets_relaxed_lrc(tank):
    spec, arch = tank
    # "If the LRCs mu_u1 and mu_u2 are 0.99, then the above
    # implementation is reliable."
    report = check_reliability(spec, arch, baseline_implementation())
    assert report.reliable


def test_baseline_violates_strict_lrc():
    spec = three_tank_spec(lrc_u=0.9975)
    arch = three_tank_architecture()
    # "By contrast, if the desired LRCs ... are set to 0.9975, then the
    # above implementation is not reliable."
    report = check_reliability(spec, arch, baseline_implementation())
    assert not report.reliable
    assert {v.communicator for v in report.violations()} == {"u1", "u2"}


# -- Scenario 1 (E3) -------------------------------------------------------------


def test_scenario1_task_replication():
    spec = three_tank_spec(lrc_u=0.9975)
    arch = three_tank_architecture()
    srgs = communicator_srgs(spec, scenario1_implementation(), arch)
    # "The reliability of the task t1 ... is modified to
    # 1 - (1 - 0.999)^2 = 0.999999."
    lambda_t1 = 1 - (1 - 0.999) ** 2
    assert lambda_t1 == pytest.approx(0.999999)
    # SRG(u1) = lambda_l1 * lambda_t1 = 0.998000001998...
    assert srgs["u1"] == pytest.approx(0.998001 * lambda_t1, abs=1e-12)
    assert srgs["u1"] >= 0.9975
    report = check_reliability(spec, arch, scenario1_implementation())
    assert report.reliable


# -- Scenario 2 (E4) -------------------------------------------------------------


def test_scenario2_sensor_replication():
    spec = three_tank_spec(lrc_u=0.9975)
    arch = three_tank_architecture()
    srgs = communicator_srgs(spec, scenario2_implementation(), arch)
    # "lambda_l1 = lambda_read1 * (1 - (1 - 0.999)^2) = 0.998999001"
    assert srgs["l1"] == pytest.approx(0.998999001, abs=1e-9)
    assert srgs["l2"] == pytest.approx(0.998999001, abs=1e-9)
    # "This changes the SRGs of u1 and u2 to 0.998."
    assert srgs["u1"] == pytest.approx(0.998, abs=1e-5)
    assert srgs["u1"] >= 0.9975
    report = check_reliability(spec, arch, scenario2_implementation())
    assert report.reliable


def test_both_scenarios_schedulable_and_valid():
    spec = three_tank_spec(lrc_u=0.9975)
    arch = three_tank_architecture()
    for impl in (scenario1_implementation(), scenario2_implementation()):
        assert check_validity(spec, arch, impl).valid


# -- the general (time-dependent) implementation of Section 3 (E8) ---------------


def test_general_example_numbers():
    spec, arch = general_example()
    first, second = static_implementations()
    srgs_first = communicator_srgs(spec, first, arch)
    assert srgs_first["c1"] == pytest.approx(0.95)
    assert srgs_first["c2"] == pytest.approx(0.85)
    srgs_second = communicator_srgs(spec, second, arch)
    assert srgs_second["c1"] == pytest.approx(0.85)
    assert srgs_second["c2"] == pytest.approx(0.95)
    # Both static mappings violate the 0.9 LRC on one communicator...
    assert not check_reliability(spec, arch, first).reliable
    assert not check_reliability(spec, arch, second).reliable
    # ... but alternating achieves (0.95 + 0.85) / 2 = 0.9 on both.
    report = check_reliability_timedep(
        spec, arch, alternating_implementation()
    )
    assert report.reliable
    assert report.srgs()["c1"] == pytest.approx(0.9)
    assert report.srgs()["c2"] == pytest.approx(0.9)


# -- the specification-with-memory pathology (E7) --------------------------------


def test_cycle_example_structure():
    series = cyclic_specification("series")
    assert not is_memory_free(series)
    assert unsafe_cycles(series) == [["acc"]]
    independent = cyclic_specification("independent")
    assert not is_memory_free(independent)
    assert unsafe_cycles(independent) == []
