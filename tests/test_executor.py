"""The pluggable batch executors: sharded must equal serial, bitwise.

The tentpole claim of the executor refactor is that
:class:`~repro.runtime.executor.ShardedExecutor` is *unobservable*:
for every (seed, runs, jobs) the sharded batch result — counts,
per-run arrays, monitor events, ledger record — is bit-identical to
the serial one, because spawn keys partition deterministically and
every per-run derivation is independent along axis 0.  The
differential suite drives that over Hypothesis-generated systems;
the unit tests pin down the shard arithmetic, the merge edge cases,
and the spawn-key identity the service's delta simulation rests on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeSimulationError
from repro.experiments import (
    bind_control_functions,
    three_tank_architecture,
    three_tank_spec,
)
from repro.experiments.three_tank_system import baseline_implementation
from repro.resilience import MonitorConfig
from repro.runtime import (
    BatchExecutor,
    BatchSimulator,
    BernoulliFaults,
    SerialExecutor,
    ShardedExecutor,
    merge_batch_results,
    shard_slices,
    slice_batch_result,
)
from repro.telemetry import (
    ShardEventBuffer,
    TelemetryBus,
    record_from_result,
    replay_sharded,
)

from strategies import systems

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def three_tank_simulator(seed=7, executor=None):
    spec = three_tank_spec(
        lrc_u=0.99, functions=bind_control_functions()
    )
    arch = three_tank_architecture()
    return spec, arch, BatchSimulator(
        spec, arch, baseline_implementation(),
        faults=BernoulliFaults(arch), seed=seed, executor=executor,
    )


def assert_identical(left, right):
    """Bitwise equality of two batch results."""
    assert left.runs == right.runs
    assert left.iterations == right.iterations
    assert left.executor == right.executor
    assert left.samples_per_run == right.samples_per_run
    assert set(left.reliable_counts) == set(right.reliable_counts)
    for name in left.reliable_counts:
        assert np.array_equal(
            left.reliable_counts[name], right.reliable_counts[name]
        )
    assert left.monitor_events == right.monitor_events


# ----------------------------------------------------------------------
# The shard partition.
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=64),
)
def test_shard_slices_partition_range(runs, jobs):
    slices = shard_slices(runs, jobs)
    # Contiguous, ordered, non-empty, covering exactly range(runs).
    assert len(slices) == min(jobs, runs)
    position = 0
    for start, stop in slices:
        assert start == position
        assert stop > start
        position = stop
    assert position == runs
    # Balanced: sizes differ by at most one, larger shards first.
    sizes = [stop - start for start, stop in slices]
    assert sizes == sorted(sizes, reverse=True)
    if sizes:
        assert max(sizes) - min(sizes) <= 1


def test_shard_slices_rejects_bad_inputs():
    with pytest.raises(RuntimeSimulationError):
        shard_slices(10, 0)
    with pytest.raises(RuntimeSimulationError):
        shard_slices(-1, 2)
    assert shard_slices(0, 4) == []


def test_executors_satisfy_protocol():
    assert isinstance(SerialExecutor(), BatchExecutor)
    assert isinstance(ShardedExecutor(2), BatchExecutor)
    with pytest.raises(RuntimeSimulationError):
        ShardedExecutor(0)


# ----------------------------------------------------------------------
# The spawn-key identity the shard (and service-delta) seeding uses.
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=40),
)
def test_spawn_children_equal_spawn_key_construction(seed, runs):
    spawned = np.random.SeedSequence(seed).spawn(runs)
    for k in (0, runs // 2, runs - 1):
        direct = np.random.SeedSequence(seed, spawn_key=(k,))
        assert (
            spawned[k].generate_state(4).tolist()
            == direct.generate_state(4).tolist()
        )


# ----------------------------------------------------------------------
# Sharded vs serial, differentially.
# ----------------------------------------------------------------------


@RELAXED
@given(
    systems(),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=13),
    st.integers(min_value=1, max_value=6),
)
def test_sharded_is_bit_identical_on_generated_systems(
    system, seed, runs, jobs
):
    spec, arch, impl = system
    monitor = MonitorConfig(window=4)

    def run(executor):
        return BatchSimulator(
            spec, arch, impl,
            faults=BernoulliFaults(arch), seed=seed,
            executor=executor,
        ).run_batch(runs, 6, monitor=monitor)

    serial = run(SerialExecutor())
    # Inline shards exercise the slice/merge arithmetic on every
    # example; the fork path is covered by the process tests below.
    sharded = run(ShardedExecutor(jobs, processes=False))
    assert_identical(serial, sharded)


@pytest.mark.parametrize("jobs", [2, 3, 5, 23, 64])
def test_sharded_processes_match_serial_three_tank(jobs):
    _, _, serial_sim = three_tank_simulator()
    serial = serial_sim.run_batch(
        23, 30, monitor=MonitorConfig(window=5)
    )
    _, _, sharded_sim = three_tank_simulator(
        executor=ShardedExecutor(jobs)
    )
    sharded = sharded_sim.run_batch(
        23, 30, monitor=MonitorConfig(window=5)
    )
    assert_identical(serial, sharded)


def test_sharded_ledger_record_matches_serial():
    _, _, serial_sim = three_tank_simulator()
    spec = serial_sim.spec
    serial = serial_sim.run_batch(12, 25)
    _, _, sharded_sim = three_tank_simulator(
        executor=ShardedExecutor(3)
    )
    sharded = sharded_sim.run_batch(12, 25)

    def record(result):
        return record_from_result(
            spec, three_tank_architecture(), baseline_implementation(),
            result, run_id="s7", command="batch", seed=7, runs=12,
            recorded_at=0.0,
        )

    assert record(serial) == record(sharded)


def test_default_executor_is_serial():
    _, _, simulator = three_tank_simulator()
    assert isinstance(simulator.executor, SerialExecutor)


class _ExplodingFaults(BernoulliFaults):
    """Raises inside ``precompute`` — i.e. inside the shard worker."""

    def precompute(self, plan, runs, iterations, rngs):
        raise RuntimeSimulationError("boom in worker")


def test_worker_failure_propagates():
    spec = three_tank_spec(
        lrc_u=0.99, functions=bind_control_functions()
    )
    arch = three_tank_architecture()
    simulator = BatchSimulator(
        spec, arch, baseline_implementation(),
        faults=_ExplodingFaults(arch), seed=7,
        executor=ShardedExecutor(2),
    )
    with pytest.raises(
        RuntimeSimulationError, match="sharded batch worker failed"
    ):
        simulator.run_batch(4, 10)


# ----------------------------------------------------------------------
# merge_batch_results edge cases.
# ----------------------------------------------------------------------


def run_slices(simulator, runs, iterations, bounds, monitor=None):
    children = np.random.SeedSequence(simulator.seed).spawn(runs)
    return [
        simulator.run_slice(
            children[start:stop], iterations, monitor,
            run_offset=start,
        )
        for start, stop in bounds
    ]


def test_merge_rejects_empty_input():
    with pytest.raises(RuntimeSimulationError):
        merge_batch_results([])


def test_merge_with_empty_shard():
    _, _, simulator = three_tank_simulator()
    serial = simulator.run_batch(6, 10)
    shards = run_slices(
        simulator, 6, 10, [(0, 3), (3, 3), (3, 6)]
    )
    assert shards[1].runs == 0
    assert_identical(serial, merge_batch_results(shards))


def test_merge_all_empty_shards_gives_zero_run_result():
    _, _, simulator = three_tank_simulator()
    shards = run_slices(simulator, 6, 10, [(0, 0), (0, 0)])
    merged = merge_batch_results(shards)
    assert merged.runs == 0
    for counts in merged.reliable_counts.values():
        assert counts.shape == (0,)


def test_merge_single_run_shards():
    _, _, simulator = three_tank_simulator()
    serial = simulator.run_batch(5, 10, monitor=MonitorConfig(window=4))
    shards = run_slices(
        simulator, 5, 10, [(k, k + 1) for k in range(5)],
        monitor=MonitorConfig(window=4),
    )
    assert_identical(serial, merge_batch_results(shards))


def test_merge_indivisible_runs():
    # 7 runs over 3 shards: 3 + 2 + 2.
    _, _, simulator = three_tank_simulator()
    serial = simulator.run_batch(7, 10)
    shards = run_slices(simulator, 7, 10, shard_slices(7, 3))
    assert shard_slices(7, 3) == [(0, 3), (3, 5), (5, 7)]
    assert_identical(serial, merge_batch_results(shards))


def test_merge_event_run_indices_are_monotone():
    _, _, simulator = three_tank_simulator()
    shards = run_slices(
        simulator, 14, 30, shard_slices(14, 4),
        monitor=MonitorConfig(window=3),
    )
    merged = merge_batch_results(shards)
    runs = [event.run for event in merged.monitor_events]
    assert runs == sorted(runs)
    assert all(run is not None for run in runs)


def test_merge_rejects_mismatched_iterations():
    _, _, simulator = three_tank_simulator()
    a = run_slices(simulator, 4, 10, [(0, 2)])[0]
    b = run_slices(simulator, 4, 20, [(2, 4)])[0]
    with pytest.raises(RuntimeSimulationError):
        merge_batch_results([a, b])


# ----------------------------------------------------------------------
# slice_batch_result (the cache's runs-downgrade path).
# ----------------------------------------------------------------------


def test_slice_batch_result_is_prefix_identical():
    _, _, simulator = three_tank_simulator()
    large = simulator.run_batch(9, 15, monitor=MonitorConfig(window=4))
    _, _, fresh = three_tank_simulator()
    small = fresh.run_batch(4, 15, monitor=MonitorConfig(window=4))
    assert_identical(small, slice_batch_result(large, 4))
    assert slice_batch_result(large, 9) is large
    with pytest.raises(RuntimeSimulationError):
        slice_batch_result(large, 10)


# ----------------------------------------------------------------------
# The telemetry replay path.
# ----------------------------------------------------------------------


def test_shard_buffers_replay_in_run_order():
    _, _, simulator = three_tank_simulator()
    monitor = MonitorConfig(window=3)
    serial = simulator.run_batch(10, 30, monitor=monitor)
    shards = run_slices(
        simulator, 10, 30, shard_slices(10, 3), monitor=monitor
    )
    buffers = []
    for index, shard in enumerate(shards):
        buffer = ShardEventBuffer(shard=index)
        buffer.extend(shard.monitor_events)
        buffers.append(buffer)
    bus = TelemetryBus(run_id="s7")
    replayed = replay_sharded(buffers, bus)
    assert replayed == len(serial.monitor_events)
    assert tuple(bus.events) == serial.monitor_events


def test_shard_buffer_rebases_local_run_indices():
    _, _, simulator = three_tank_simulator()
    monitor = MonitorConfig(window=3)
    serial = simulator.run_batch(10, 30, monitor=monitor)
    # Simulate a worker reporting *local* indices: run the slice with
    # run_offset 0 and let the buffer rebase instead.
    children = np.random.SeedSequence(simulator.seed).spawn(10)
    local = simulator.run_slice(children[4:10], 30, monitor)
    buffer = ShardEventBuffer(shard=1, run_offset=4)
    buffer.extend(local.monitor_events)
    expected = tuple(
        event for event in serial.monitor_events if event.run >= 4
    )
    assert tuple(buffer.events) == expected


def test_sharded_executor_feeds_telemetry_bus():
    bus = TelemetryBus(run_id="s7")
    _, _, simulator = three_tank_simulator(
        executor=ShardedExecutor(3, telemetry=bus)
    )
    result = simulator.run_batch(
        10, 30, monitor=MonitorConfig(window=3)
    )
    assert tuple(bus.events) == result.monitor_events
