"""Tests for static and time-dependent implementations."""

import pytest

from repro.errors import MappingError
from repro.mapping import Implementation, TimeDependentImplementation


def make_impl():
    return Implementation(
        {"t1": {"h1", "h2"}, "t2": {"h2"}},
        {"raw": {"s"}},
    )


def test_hosts_of():
    impl = make_impl()
    assert impl.hosts_of("t1") == frozenset({"h1", "h2"})
    assert impl.hosts_of("t2") == frozenset({"h2"})


def test_hosts_of_unmapped_task_rejected():
    with pytest.raises(MappingError, match="not mapped"):
        make_impl().hosts_of("ghost")


def test_sensors_of():
    assert make_impl().sensors_of("raw") == frozenset({"s"})


def test_sensors_of_unbound_rejected():
    with pytest.raises(MappingError, match="no sensor binding"):
        make_impl().sensors_of("other")


def test_empty_host_set_rejected():
    with pytest.raises(MappingError, match="empty host set"):
        Implementation({"t": set()})


def test_empty_sensor_set_rejected():
    with pytest.raises(MappingError, match="empty sensor set"):
        Implementation({"t": {"h"}}, {"raw": set()})


def test_replications_sorted():
    assert list(make_impl().replications()) == [
        ("t1", "h1"), ("t1", "h2"), ("t2", "h2"),
    ]


def test_replication_count():
    assert make_impl().replication_count() == 3


def test_tasks_on():
    impl = make_impl()
    assert impl.tasks_on("h2") == ["t1", "t2"]
    assert impl.tasks_on("h1") == ["t1"]
    assert impl.tasks_on("h9") == []


def test_with_assignment_returns_copy():
    impl = make_impl()
    changed = impl.with_assignment("t2", {"h1"})
    assert changed.hosts_of("t2") == frozenset({"h1"})
    assert impl.hosts_of("t2") == frozenset({"h2"})


def test_with_sensor_binding_returns_copy():
    impl = make_impl()
    changed = impl.with_sensor_binding("raw", {"s", "s2"})
    assert changed.sensors_of("raw") == frozenset({"s", "s2"})
    assert impl.sensors_of("raw") == frozenset({"s"})


def test_validate_against_spec_and_arch(pipe_spec, pipe_arch, pipe_impl):
    pipe_impl.validate(pipe_spec, pipe_arch)  # should not raise


def test_validate_unknown_host(pipe_spec, pipe_arch):
    impl = Implementation(
        {"filter": {"zz"}, "control": {"a"}}, {"raw": {"s"}}
    )
    with pytest.raises(MappingError, match="unknown hosts"):
        impl.validate(pipe_spec, pipe_arch)


def test_validate_unknown_sensor(pipe_spec, pipe_arch):
    impl = Implementation(
        {"filter": {"a"}, "control": {"a"}}, {"raw": {"zz"}}
    )
    with pytest.raises(MappingError, match="unknown sensors"):
        impl.validate(pipe_spec, pipe_arch)


def test_validate_unmapped_task(pipe_spec, pipe_arch):
    impl = Implementation({"filter": {"a"}}, {"raw": {"s"}})
    with pytest.raises(MappingError, match="not mapped"):
        impl.validate(pipe_spec, pipe_arch)


def test_validate_extraneous_task(pipe_spec, pipe_arch):
    impl = Implementation(
        {"filter": {"a"}, "control": {"a"}, "ghost": {"a"}},
        {"raw": {"s"}},
    )
    with pytest.raises(MappingError, match="not in the specification"):
        impl.validate(pipe_spec, pipe_arch)


# -- time-dependent -------------------------------------------------------


def test_timedep_needs_phases():
    with pytest.raises(MappingError, match="at least one phase"):
        TimeDependentImplementation([])


def test_timedep_phase_cycling():
    a = Implementation({"t": {"h1"}})
    b = Implementation({"t": {"h2"}})
    timedep = TimeDependentImplementation([a, b])
    assert timedep.phase_count() == 2
    assert timedep.phase_for_iteration(0) is a
    assert timedep.phase_for_iteration(1) is b
    assert timedep.phase_for_iteration(2) is a
    assert timedep.phase_for_iteration(17) is b


def test_timedep_negative_iteration_rejected():
    timedep = TimeDependentImplementation([Implementation({"t": {"h"}})])
    with pytest.raises(MappingError, match=">= 0"):
        timedep.phase_for_iteration(-1)


def test_timedep_static_detection():
    a = Implementation({"t": {"h1"}})
    assert TimeDependentImplementation([a, a]).is_static()
    b = Implementation({"t": {"h2"}})
    assert not TimeDependentImplementation([a, b]).is_static()


def test_timedep_static_wrapper():
    a = Implementation({"t": {"h1"}})
    wrapped = TimeDependentImplementation.static(a)
    assert wrapped.phase_count() == 1
    assert wrapped.is_static()


def test_timedep_validate(pipe_spec, pipe_arch, pipe_impl):
    TimeDependentImplementation([pipe_impl]).validate(pipe_spec, pipe_arch)
    bad = Implementation({"filter": {"zz"}, "control": {"a"}},
                         {"raw": {"s"}})
    with pytest.raises(MappingError):
        TimeDependentImplementation([pipe_impl, bad]).validate(
            pipe_spec, pipe_arch
        )
