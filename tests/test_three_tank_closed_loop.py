"""Closed-loop 3TS experiments: the paper's fault-injection study (E5)."""

import pytest

from repro.experiments import (
    SETPOINT,
    baseline_implementation,
    closed_loop_simulator,
    scenario1_implementation,
)
from repro.plants import control_performance
from repro.runtime import ScriptedFaults

ITERATIONS = 240  # 120 s of plant time at the 500 ms control period
UNPLUG_AT = 40_000  # ms


def run(implementation, faults=None):
    simulator, environment = closed_loop_simulator(
        implementation, faults=faults
    )
    simulator.run(ITERATIONS)
    # The level log records one sample per base tick; measure over the
    # second half of the run (past the start-up transient and past the
    # unplug instant).
    log1 = environment.level_log["l1"]
    log2 = environment.level_log["l2"]
    tail1 = log1[len(log1) // 2:]
    tail2 = log2[len(log2) // 2:]
    return environment, tail1, tail2


def test_fault_free_loop_tracks_setpoint():
    env, tail1, tail2 = run(scenario1_implementation())
    assert control_performance(tail1, SETPOINT) < 0.002
    assert control_performance(tail2, SETPOINT) < 0.002
    assert env.plant.level(0) == pytest.approx(SETPOINT, abs=0.005)
    assert env.plant.level(1) == pytest.approx(SETPOINT, abs=0.005)


def test_unplugging_one_host_has_no_effect_with_replication():
    """The paper's experiment: "unplugging one of the two hosts from
    the Ethernet network has indeed no effect on the control
    performance"."""
    _, base1, base2 = run(scenario1_implementation())
    for victim in ("h1", "h2"):
        faults = ScriptedFaults(host_outages={victim: [(UNPLUG_AT, None)]})
        _, tail1, tail2 = run(scenario1_implementation(), faults)
        assert control_performance(tail1, SETPOINT) == pytest.approx(
            control_performance(base1, SETPOINT), abs=1e-9
        )
        assert control_performance(tail2, SETPOINT) == pytest.approx(
            control_performance(base2, SETPOINT), abs=1e-9
        )


def test_unplugging_without_replication_degrades_control():
    faults = ScriptedFaults(host_outages={"h2": [(UNPLUG_AT, None)]})
    env, tail1, tail2 = run(baseline_implementation(), faults)
    _, base1, base2 = run(baseline_implementation())
    # Tank 1's controller lives on h1 and is only coupled through the
    # middle tank, so its performance barely moves...
    assert control_performance(tail1, SETPOINT) == pytest.approx(
        control_performance(base1, SETPOINT), rel=0.25
    )
    # ... but tank 2's controller died with h2: the pump freezes at
    # its last command, so regulation stops and tracking measurably
    # worsens (the dramatic runaway shows up once a perturbation hits;
    # see test_perturbation_rejection_with_live_controller).
    degraded = control_performance(tail2, SETPOINT)
    healthy = control_performance(base2, SETPOINT)
    assert degraded > 1.5 * healthy
    assert env.bottom_actuations > 0


def test_unplugging_the_spare_host_is_harmless_for_baseline():
    # h3 runs readers and estimators; killing h1 only hits tank 1.
    faults = ScriptedFaults(host_outages={"h1": [(UNPLUG_AT, None)]})
    _, tail1, tail2 = run(baseline_implementation(), faults)
    _, base1, base2 = run(baseline_implementation())
    # Tank 2 is only affected through the tank coupling; its tracking
    # stays within a fraction of the healthy run.
    assert control_performance(tail2, SETPOINT) == pytest.approx(
        control_performance(base2, SETPOINT), rel=0.25
    )
    assert control_performance(tail1, SETPOINT) > control_performance(
        base1, SETPOINT
    )


def test_perturbation_rejection_with_live_controller():
    """A disturbance mid-run is rejected when the controller survives."""

    class Perturbed:
        def __init__(self, faults=None, implementation=None):
            self.simulator, self.environment = closed_loop_simulator(
                implementation or scenario1_implementation(), faults=faults
            )

        def run(self):
            plant = self.environment.plant
            original_advance = self.environment.advance

            def advance(time, dt):
                if time == 60_000:
                    plant.set_perturbation(1, 4e-5)
                original_advance(time, dt)

            self.environment.advance = advance
            self.simulator.run(ITERATIONS)
            return self.environment.level_log["l2"]

    # Replicated controller, host unplugged: still rejects the
    # perturbation and returns to the setpoint.
    faults = ScriptedFaults(host_outages={"h2": [(UNPLUG_AT, None)]})
    levels = Perturbed(faults)
    log = levels.run()
    assert log[-1] == pytest.approx(SETPOINT, abs=0.01)

    # Unreplicated controller dead at the time of the perturbation:
    # the level runs away.
    dead = Perturbed(faults, implementation=baseline_implementation())
    log_dead = dead.run()
    assert abs(log_dead[-1] - SETPOINT) > 0.02
