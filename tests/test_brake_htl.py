"""Tests for the brake-by-wire HTL program."""

import pytest

from repro.experiments import (
    BRAKE_ACTUATORS,
    BRAKE_BY_WIRE_HTL,
    BrakeByWireEnvironment,
    bind_brake_functions,
    brake_by_wire_architecture,
    brake_by_wire_spec,
    brake_replicated_implementation,
)
from repro.htl import compile_program, generate_ecode
from repro.htl.compiler import switching_preserves_reliability
from repro.mapping import Implementation
from repro.runtime import ModeSwitchingExecutive
from repro.runtime.emachine import EMachine


def brake_functions():
    functions = bind_brake_functions()
    functions["passthrough_f"] = lambda ws, vref, pedal: pedal
    functions["passthrough_r"] = lambda ws, vref, pedal: pedal
    return functions


def test_program_flattens_to_handwritten_spec():
    compiled = compile_program(BRAKE_BY_WIRE_HTL)
    spec = compiled.specification()
    reference = brake_by_wire_spec()
    assert set(spec.tasks) == set(reference.tasks)
    assert set(spec.communicators) == set(reference.communicators)
    for name, task in reference.tasks.items():
        assert spec.tasks[name].inputs == task.inputs
        assert spec.tasks[name].outputs == task.outputs
        assert spec.tasks[name].model is task.model
    for name, comm in reference.communicators.items():
        assert spec.communicators[name].period == comm.period
        assert spec.communicators[name].lrc == pytest.approx(comm.lrc)


def test_mode_selections():
    compiled = compile_program(BRAKE_BY_WIRE_HTL)
    # Front and rear each have abs/direct: 4 combinations.
    assert len(list(compiled.mode_selections())) == 4
    direct = compiled.specification(
        {"FrontAxle": "direct", "RearAxle": "direct"}
    )
    assert "passthrough_f" in direct.tasks
    assert "abs_f" not in direct.tasks


def test_switching_preserves_reliability_with_matched_mapping():
    compiled = compile_program(BRAKE_BY_WIRE_HTL)
    arch = brake_by_wire_architecture()

    def implementation_for(spec):
        writers = {"tq_f": {"ecu1", "ecu2"}, "tq_r": {"ecu1", "ecu2"},
                   "vref": {"ecu3"}}
        assignment = {}
        for name, task in spec.tasks.items():
            output = sorted(task.output_communicators())[0]
            assignment[name] = writers[output]
        return Implementation(
            assignment,
            {
                "ws_f": {"wsf_s"},
                "ws_r": {"wsr_s"},
                "pedal": {"pedal_s"},
            },
        )

    assert switching_preserves_reliability(
        compiled, arch, implementation_for
    )


def test_compiled_emachine_panic_stop():
    compiled = compile_program(
        BRAKE_BY_WIRE_HTL, functions=brake_functions()
    )
    spec = compiled.specification()
    arch = brake_by_wire_architecture()
    impl = brake_replicated_implementation()
    ecode = generate_ecode(spec, arch, impl)
    assert ecode.timeline is not None and ecode.timeline.feasible
    environment = BrakeByWireEnvironment()
    machine = EMachine(
        ecode, spec, arch, impl,
        environment=environment,
        actuator_communicators=BRAKE_ACTUATORS,
    )
    machine.run(400)
    assert environment.plant.stopped()
    assert environment.stopping_distance() < 80.0


def test_abs_defeat_switch_lengthens_the_stop():
    """Switching both axles to `direct` mid-run disables the slip law;
    the mode-switching executive must show the longer stop."""
    conditions = {
        "abs_defeated": lambda values: values["pedal"] > 0.0,
        "abs_enabled": lambda values: False,
    }
    compiled = compile_program(
        BRAKE_BY_WIRE_HTL,
        functions=brake_functions(),
        conditions=conditions,
    )
    arch = brake_by_wire_architecture()
    base = brake_replicated_implementation()
    implementation = Implementation(
        dict(base.assignment)
        | {
            "passthrough_f": base.hosts_of("abs_f"),
            "passthrough_r": base.hosts_of("abs_r"),
        },
        base.sensor_binding,
    )
    environment = BrakeByWireEnvironment()
    executive = ModeSwitchingExecutive(
        compiled, arch, implementation,
        environment=environment,
        actuator_communicators=BRAKE_ACTUATORS,
    )
    result = executive.run(400)
    assert "direct" in result.modes_visited("FrontAxle")
    assert environment.plant.stopped()

    # ABS stays engaged when the defeat condition never fires.
    engaged_env = BrakeByWireEnvironment()
    engaged = ModeSwitchingExecutive(
        compile_program(
            BRAKE_BY_WIRE_HTL,
            functions=brake_functions(),
            conditions={
                "abs_defeated": lambda values: False,
                "abs_enabled": lambda values: False,
            },
        ),
        arch, implementation,
        environment=engaged_env,
        actuator_communicators=BRAKE_ACTUATORS,
    )
    engaged.run(400)
    assert engaged_env.plant.stopped()
    assert (
        environment.stopping_distance()
        > engaged_env.stopping_distance() + 5.0
    )
