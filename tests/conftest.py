"""Shared fixtures: the paper's systems and small synthetic ones."""

from __future__ import annotations

import pytest

from repro.arch import Architecture, ExecutionMetrics, Host, Sensor
from repro.experiments import (
    baseline_implementation,
    scenario1_implementation,
    scenario2_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.mapping import Implementation
from repro.model import Communicator, Specification, Task


@pytest.fixture
def tank_spec() -> Specification:
    """The 3TS specification with the baseline LRCs (0.99)."""
    return three_tank_spec()

@pytest.fixture
def tank_spec_strict() -> Specification:
    """The 3TS specification with the strict pump-command LRC 0.9975."""
    return three_tank_spec(lrc_u=0.9975)


@pytest.fixture
def tank_arch() -> Architecture:
    """The 3TS architecture: three 0.999 hosts, four 0.999 sensors."""
    return three_tank_architecture()


@pytest.fixture
def tank_baseline() -> Implementation:
    return baseline_implementation()


@pytest.fixture
def tank_scenario1() -> Implementation:
    return scenario1_implementation()


@pytest.fixture
def tank_scenario2() -> Implementation:
    return scenario2_implementation()


@pytest.fixture
def pipe_spec() -> Specification:
    """A three-stage pipeline: sensor -> filter -> control -> actuate."""
    communicators = [
        Communicator("raw", period=10, lrc=0.9, init=0.0),
        Communicator("flt", period=10, lrc=0.9, init=0.0),
        Communicator("cmd", period=10, lrc=0.9, init=0.0),
    ]
    tasks = [
        Task(
            "filter",
            inputs=[("raw", 0)],
            outputs=[("flt", 1)],
            function=lambda x: 2.0 * x,
        ),
        Task(
            "control",
            inputs=[("flt", 1)],
            outputs=[("cmd", 2)],
            function=lambda x: x + 1.0,
        ),
    ]
    return Specification(communicators, tasks)


@pytest.fixture
def pipe_arch() -> Architecture:
    return Architecture(
        hosts=[Host("a", 0.99), Host("b", 0.95)],
        sensors=[Sensor("s", 0.98)],
        metrics=ExecutionMetrics(default_wcet=2, default_wctt=1),
    )


@pytest.fixture
def pipe_impl() -> Implementation:
    return Implementation(
        {"filter": {"a"}, "control": {"a", "b"}},
        {"raw": {"s"}},
    )
