"""Tests for time-redundant (re-execution) synthesis and semantics."""

import pytest

from repro.errors import SynthesisError
from repro.experiments import (
    baseline_implementation,
    three_tank_architecture,
    three_tank_spec,
)
from repro.mapping import Implementation
from repro.runtime import BernoulliFaults, ScriptedFaults, Simulator
from repro.synthesis import (
    ReexecutionPlan,
    TransientReexecutionFaults,
    check_schedulability_reexec,
    communicator_srgs_reexec,
    synthesize_reexecution,
    task_reliability_reexec,
)


@pytest.fixture
def strict_tank():
    return three_tank_spec(lrc_u=0.9975), three_tank_architecture()


def test_plan_validation_single_host():
    with pytest.raises(SynthesisError, match="one host"):
        ReexecutionPlan(
            Implementation({"t": {"h1", "h2"}}), {"t": 2}
        )


def test_plan_validation_positive_attempts():
    with pytest.raises(SynthesisError, match=">= 1"):
        ReexecutionPlan(Implementation({"t": {"h1"}}), {"t": 0})


def test_plan_accessors():
    plan = ReexecutionPlan(
        Implementation({"a": {"h1"}, "b": {"h2"}}), {"a": 3}
    )
    assert plan.attempts_of("a") == 3
    assert plan.attempts_of("b") == 1  # default
    assert plan.host_of("a") == "h1"
    assert plan.total_executions() == 4


def test_task_reliability_formula(strict_tank):
    _, arch = strict_tank
    plan = ReexecutionPlan(
        Implementation({"t1": {"h1"}}), {"t1": 2}
    )
    expected = 1 - (1 - 0.999) ** 2
    assert task_reliability_reexec(plan, "t1", arch) == pytest.approx(
        expected
    )


def test_reexec_srgs_match_replication_math(strict_tank):
    spec, arch = strict_tank
    # Two attempts of t1 on h1 have the same reliability as one
    # attempt on each of two 0.999 hosts (scenario 1's per-task math).
    base = baseline_implementation()
    plan = ReexecutionPlan(
        Implementation(dict(base.assignment), base.sensor_binding),
        {"t1": 2, "t2": 2},
    )
    srgs = communicator_srgs_reexec(spec, plan, arch)
    assert srgs["u1"] == pytest.approx(0.998000002, abs=1e-9)
    assert srgs["u2"] == pytest.approx(0.998000002, abs=1e-9)


def test_synthesize_reexecution_meets_strict_lrc(strict_tank):
    spec, arch = strict_tank
    plan = synthesize_reexecution(spec, arch)
    srgs = communicator_srgs_reexec(spec, plan, arch)
    for name, comm in spec.communicators.items():
        assert srgs[name] >= comm.lrc - 1e-9
    assert check_schedulability_reexec(spec, plan, arch).schedulable
    # Time redundancy engaged: some task re-executes OR the sensor
    # pool was widened (the synthesiser may prefer either lever).
    assert (
        plan.total_executions() > len(spec.tasks)
        or len(plan.implementation.sensors_of("s1")) >= 2
    )


def test_synthesize_reexecution_unreachable_lrc(strict_tank):
    _, arch = strict_tank
    spec = three_tank_spec(lrc_u=1.0)
    with pytest.raises(SynthesisError, match="no host reaches"):
        synthesize_reexecution(spec, arch)


def test_schedulability_inflates_demand(strict_tank):
    spec, arch = strict_tank
    base = baseline_implementation()
    fat_plan = ReexecutionPlan(
        Implementation(dict(base.assignment), base.sensor_binding),
        {name: 12 for name in spec.tasks},
    )
    report = check_schedulability_reexec(spec, fat_plan, arch)
    # 12 x 20 = 240 > every LET window (200 max): infeasible.
    assert not report.schedulable


# -- runtime semantics of time redundancy -------------------------------------


def test_transient_faults_are_masked(strict_tank):
    spec, arch = strict_tank
    from repro.experiments import bind_control_functions

    spec = three_tank_spec(
        lrc_u=0.9975, functions=bind_control_functions()
    )
    base = baseline_implementation()
    plan = ReexecutionPlan(
        Implementation(dict(base.assignment), base.sensor_binding),
        {"t1": 3, "t2": 3, "read1": 3, "read2": 3},
    )
    faults = TransientReexecutionFaults(BernoulliFaults(arch), plan)
    result = Simulator(
        spec, arch, plan.implementation, faults=faults, seed=4
    ).run(4000)
    averages = result.limit_averages()
    srgs = communicator_srgs_reexec(spec, plan, arch)
    assert averages["u1"] == pytest.approx(srgs["u1"], abs=0.01)
    assert averages["u1"] >= 0.9975 - 0.01


def test_permanent_faults_are_not_masked(strict_tank):
    """The key limit of time redundancy: a dead host defeats every
    attempt, unlike spatial replication (the paper's experiment)."""
    _, arch = strict_tank
    from repro.experiments import bind_control_functions
    from repro.model import BOTTOM

    spec = three_tank_spec(functions=bind_control_functions())
    base = baseline_implementation()
    plan = ReexecutionPlan(
        Implementation(dict(base.assignment), base.sensor_binding),
        {"t2": 5},
    )
    unplug = ScriptedFaults(host_outages={"h2": [(0, None)]})
    faults = TransientReexecutionFaults(unplug, plan)
    result = Simulator(
        spec, arch, plan.implementation, faults=faults, seed=4
    ).run(20)
    # t2 runs only on the dead h2: u2 is bottom despite 5 attempts.
    assert all(v is BOTTOM for v in result.values["u2"][4:])
