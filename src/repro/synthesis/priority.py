"""Priority/failure-pattern replication baseline (the paper's [13]).

A reproduction of the fault-tolerant deployment scheme of Pinello,
Carloni & Sangiovanni-Vincentelli (DATE 2004): reliability
requirements are expressed by assigning *priorities* to faults and
tasks instead of LRCs.  Each *failure pattern* (a set of hosts that
may fail together) carries a priority; the synthesis must replicate
tasks so that whenever a pattern occurs, every task with priority
strictly higher than the pattern's still executes — i.e. the task owns
a replica on at least one host outside the pattern.

This reduces to a hitting-set problem per task (hit the complement of
every pattern the task must survive); the implementation uses the
greedy set-cover heuristic, which is what makes the scheme cheap and
is faithful to the original's synthesis flavour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.arch.architecture import Architecture
from repro.errors import SynthesisError
from repro.mapping.implementation import Implementation
from repro.model.specification import Specification


@dataclass(frozen=True)
class FailurePattern:
    """A set of hosts that may fail simultaneously, with a priority."""

    hosts: frozenset[str]
    priority: int

    def __init__(self, hosts: Iterable[str], priority: int):
        object.__setattr__(self, "hosts", frozenset(hosts))
        object.__setattr__(self, "priority", priority)
        if not self.hosts:
            raise SynthesisError("a failure pattern needs at least one host")


def priority_replication(
    spec: Specification,
    arch: Architecture,
    task_priorities: Mapping[str, int],
    patterns: Sequence[FailurePattern],
    sensor_candidates: Mapping[str, Sequence[str]] | None = None,
) -> Implementation:
    """Synthesise a replication mapping for the priority scheme.

    Every task ``t`` must survive every pattern ``F`` with
    ``priority(t) > priority(F)``: its replica set must intersect the
    complement of ``F``.  Host sets are chosen per task by greedy set
    cover over the surviving-host constraints.

    Raises :class:`SynthesisError` when a pattern that must be
    survived covers all hosts, or a task has no declared priority.
    """
    hosts = set(arch.host_names())
    assignment: dict[str, frozenset[str]] = {}
    for name in sorted(spec.tasks):
        if name not in task_priorities:
            raise SynthesisError(f"task {name!r} has no priority")
        priority = task_priorities[name]
        constraints: list[frozenset[str]] = []
        for pattern in patterns:
            if priority > pattern.priority:
                survivors = frozenset(hosts - pattern.hosts)
                if not survivors:
                    raise SynthesisError(
                        f"task {name!r} (priority {priority}) cannot "
                        f"survive pattern {sorted(pattern.hosts)} "
                        f"(priority {pattern.priority}): no host remains"
                    )
                constraints.append(survivors)
        if not constraints:
            # No pattern threatens this task: one replica on the most
            # reliable host suffices.
            best = max(hosts, key=lambda h: (arch.hrel(h), h))
            assignment[name] = frozenset({best})
            continue
        chosen: set[str] = set()
        remaining = [c for c in constraints]
        while remaining:
            # Greedy: the host hitting the most unmet constraints,
            # ties broken by reliability then name for determinism.
            best = max(
                hosts,
                key=lambda h: (
                    sum(1 for c in remaining if h in c),
                    arch.hrel(h),
                    h,
                ),
            )
            hit = sum(1 for c in remaining if best in c)
            if hit == 0:
                raise SynthesisError(
                    f"task {name!r}: greedy hitting set stalled"
                )
            chosen.add(best)
            remaining = [c for c in remaining if best not in c]
        assignment[name] = frozenset(chosen)

    binding = dict(sensor_candidates or {})
    if not binding:
        all_sensors = arch.sensor_names()
        binding = {
            comm: all_sensors for comm in spec.input_communicators()
        }
    return Implementation(assignment, binding)


def surviving_tasks(
    implementation: Implementation,
    pattern: FailurePattern,
) -> set[str]:
    """Return the tasks that still execute when *pattern* occurs."""
    return {
        task
        for task, replica_hosts in implementation.assignment.items()
        if replica_hosts - pattern.hosts
    }
