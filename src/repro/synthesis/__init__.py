"""Replication synthesis and related-work baselines.

The paper requires the implementation (replication mapping) to ensure
all timing and reliability requirements; this package automates the
search for such mappings:

* :mod:`repro.synthesis.replication` — LRC-driven synthesis: the
  cheapest replication mapping (fewest task replicas) whose SRGs meet
  every LRC and whose timeline is feasible;
* :mod:`repro.synthesis.bicriteria` — a reproduction of the bi-criteria
  heuristic of Assayad, Girault & Kalla (DSN 2004, the paper's [1]):
  list scheduling that trades schedule length against reliability;
* :mod:`repro.synthesis.priority` — a reproduction of the
  failure-pattern/priority replication scheme of Pinello, Carloni &
  Sangiovanni-Vincentelli (DATE 2004, the paper's [13]).
"""

from repro.synthesis.replication import (
    SynthesisResult,
    synthesize_replication,
)
from repro.synthesis.bicriteria import (
    BiCriteriaResult,
    bicriteria_schedule,
    pareto_front,
)
from repro.synthesis.priority import (
    FailurePattern,
    priority_replication,
)
from repro.synthesis.timedep_synthesis import (
    TimeDependentSynthesisResult,
    enumerate_single_host_assignments,
    synthesize_timedep,
)
from repro.synthesis.mixed import (
    MixedPlan,
    MixedSynthesisResult,
    check_schedulability_mixed,
    communicator_srgs_mixed,
    mixed_task_reliability,
    synthesize_mixed,
)
from repro.synthesis.reexecution import (
    ReexecutionPlan,
    TransientReexecutionFaults,
    check_schedulability_reexec,
    communicator_srgs_reexec,
    synthesize_reexecution,
    task_reliability_reexec,
)

__all__ = [
    "BiCriteriaResult",
    "FailurePattern",
    "MixedPlan",
    "MixedSynthesisResult",
    "ReexecutionPlan",
    "TransientReexecutionFaults",
    "check_schedulability_mixed",
    "communicator_srgs_mixed",
    "mixed_task_reliability",
    "synthesize_mixed",
    "check_schedulability_reexec",
    "communicator_srgs_reexec",
    "TimeDependentSynthesisResult",
    "enumerate_single_host_assignments",
    "synthesize_reexecution",
    "synthesize_timedep",
    "task_reliability_reexec",
    "SynthesisResult",
    "bicriteria_schedule",
    "pareto_front",
    "priority_replication",
    "synthesize_replication",
]
