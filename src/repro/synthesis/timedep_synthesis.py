"""Synthesis of time-dependent (periodic) implementations.

The paper's "general implementation" example shows that the
limit-average definition of reliability admits mappings no static
analysis can certify: alternating two individually-invalid static
mappings achieves the LRCs on average.  This module automates the
discovery of such mappings.

Because the limit average of a periodic mapping sequence is the
arithmetic mean of the per-phase SRG vectors (each phase recurs with
the same frequency), the rotation order is irrelevant — only the
*multiset* of phases matters.  Synthesis therefore reduces to: given a
pool of candidate static mappings, find the smallest multiset whose
mean SRG vector dominates the LRC vector.  The pool defaults to every
one-host-per-task assignment (the shape of the paper's example), which
keeps the search exact for small systems; larger systems can pass a
hand-picked pool.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arch.architecture import Architecture
from repro.errors import SynthesisError
from repro.mapping.implementation import Implementation
from repro.mapping.timedep import TimeDependentImplementation
from repro.model.specification import Specification
from repro.reliability.analysis import (
    LRC_TOLERANCE,
    ReliabilityReport,
    check_reliability_timedep,
)
from repro.reliability.srg import communicator_srgs
from repro.sched.analysis import check_schedulability


@dataclass(frozen=True)
class TimeDependentSynthesisResult:
    """A synthesised periodic mapping with its analysis certificate."""

    implementation: TimeDependentImplementation
    reliability: ReliabilityReport
    static_suffices: bool

    @property
    def phase_count(self) -> int:
        return self.implementation.phase_count()


def enumerate_single_host_assignments(
    spec: Specification,
    arch: Architecture,
    sensor_binding: dict[str, set[str]] | None = None,
    limit: int = 512,
) -> list[Implementation]:
    """Enumerate every mapping of each task to exactly one host.

    The candidate pool of the paper's example.  Raises
    :class:`SynthesisError` when the pool would exceed *limit* (use a
    hand-picked pool instead for larger systems).
    """
    tasks = sorted(spec.tasks)
    hosts = arch.host_names()
    count = len(hosts) ** len(tasks)
    if count > limit:
        raise SynthesisError(
            f"{count} single-host assignments exceed the enumeration "
            f"limit ({limit}); pass an explicit candidate pool"
        )
    if sensor_binding is None:
        sensors = arch.sensor_names()
        sensor_binding = {
            comm: set(sensors)
            for comm in spec.input_communicators()
        }
    pool = []
    for combo in itertools.product(hosts, repeat=len(tasks)):
        assignment = {task: {host} for task, host in zip(tasks, combo)}
        pool.append(Implementation(assignment, sensor_binding))
    return pool


def synthesize_timedep(
    spec: Specification,
    arch: Architecture,
    candidates: Sequence[Implementation] | None = None,
    max_phases: int = 4,
    require_schedulable: bool = True,
) -> TimeDependentSynthesisResult:
    """Find the shortest periodic mapping sequence meeting every LRC.

    Tries phase counts ``1 .. max_phases``; for each, searches the
    multisets of candidate mappings whose mean SRG vector dominates
    the LRCs.  Phase count 1 is exactly the static problem, so when a
    static candidate suffices the result degenerates gracefully
    (``static_suffices``).

    Raises :class:`SynthesisError` when no multiset within
    *max_phases* works.
    """
    if candidates is None:
        candidates = enumerate_single_host_assignments(spec, arch)
    if not candidates:
        raise SynthesisError("the candidate pool is empty")

    names = sorted(spec.communicators)
    lrcs = np.array([spec.communicators[n].lrc for n in names])

    usable: list[tuple[Implementation, np.ndarray]] = []
    for candidate in candidates:
        if require_schedulable and not check_schedulability(
            spec, arch, candidate
        ).schedulable:
            continue
        srgs = communicator_srgs(spec, candidate, arch)
        usable.append(
            (candidate, np.array([srgs[n] for n in names]))
        )
    if not usable:
        raise SynthesisError(
            "no candidate mapping is schedulable on this architecture"
        )

    # Prune candidates that are dominated by another candidate: a
    # dominated vector can always be replaced without lowering the
    # mean.
    kept: list[tuple[Implementation, np.ndarray]] = []
    for index, (candidate, vector) in enumerate(usable):
        dominated = any(
            np.all(other >= vector) and np.any(other > vector)
            for j, (_, other) in enumerate(usable)
            if j != index
        )
        if not dominated:
            kept.append((candidate, vector))

    for phases in range(1, max_phases + 1):
        for combo in itertools.combinations_with_replacement(
            range(len(kept)), phases
        ):
            mean = np.mean([kept[i][1] for i in combo], axis=0)
            if np.all(mean >= lrcs - LRC_TOLERANCE):
                implementation = TimeDependentImplementation(
                    [kept[i][0] for i in combo]
                )
                report = check_reliability_timedep(
                    spec, arch, implementation
                )
                if report.reliable:
                    return TimeDependentSynthesisResult(
                        implementation=implementation,
                        reliability=report,
                        static_suffices=(phases == 1),
                    )
    raise SynthesisError(
        f"no periodic mapping of up to {max_phases} phases meets every "
        f"LRC with the given candidate pool"
    )
