"""LRC-driven replication synthesis.

Given a specification, an architecture, and the logical reliability
constraints, find a replication mapping (hosts per task, sensors per
input communicator) that makes the implementation *valid*: every
communicator SRG meets its LRC and the distributed timeline is
feasible.  The search minimises the total number of task replications.

The synthesis walks the communicator dependency order.  Every decision
point (an input communicator or a task) enumerates its locally
sufficient candidate subsets — the sensor subsets whose OR-reliability
meets the communicator's LRC, or the host subsets whose replication
reliability ``lambda_t`` lifts the output SRGs over the strongest
output LRC given the already-chosen upstream SRGs.  A depth-first
search with iterative deepening on the total replica count returns the
first (hence replica-minimal) valid assignment; a node budget keeps
the worst case bounded.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import networkx as nx

from repro.arch.architecture import Architecture
from repro.errors import SynthesisError
from repro.mapping.implementation import Implementation
from repro.model.graph import srg_evaluation_order
from repro.model.specification import Specification
from repro.model.task import FailureModel, Task
from repro.reliability.analysis import ReliabilityReport, check_reliability
from repro.reliability.srg import _written_communicator_srg
from repro.sched.analysis import SchedulabilityReport, check_schedulability


@dataclass(frozen=True)
class SynthesisResult:
    """A synthesised implementation together with its certificates."""

    implementation: Implementation
    reliability: ReliabilityReport
    schedulability: SchedulabilityReport | None
    explored: int

    @property
    def replication_count(self) -> int:
        """Total number of task replications in the mapping."""
        return self.implementation.replication_count()

    @property
    def valid(self) -> bool:
        """``True`` iff reliable and (when checked) schedulable."""
        if not self.reliability.reliable:
            return False
        if self.schedulability is None:
            return True
        return self.schedulability.schedulable


@dataclass
class _Decision:
    """One decision point of the search: a task or an input communicator."""

    kind: str  # "task" or "input"
    name: str  # task name or communicator name
    outputs: tuple[str, ...]  # communicators whose SRG this decision fixes


def _or_reliability(probabilities: Iterable[float]) -> float:
    failure = 1.0
    for p in probabilities:
        failure *= 1.0 - p
    return 1.0 - failure


def _subsets_by_cost(
    names: Sequence[str], max_size: int
) -> Iterable[tuple[str, ...]]:
    for size in range(1, max_size + 1):
        yield from itertools.combinations(names, size)


def _decision_sequence(spec: Specification) -> list[_Decision]:
    """Return decision points in SRG evaluation order.

    A task appears at the position of its first output communicator;
    later outputs of the same task are folded into that decision.
    """
    order = srg_evaluation_order(spec)
    decisions: list[_Decision] = []
    placed: set[str] = set()
    inputs = spec.input_communicators()
    for name in order:
        writer = spec.writer_of(name)
        if writer is None:
            if name in inputs:
                decisions.append(_Decision("input", name, (name,)))
            continue
        if writer.name in placed:
            continue
        placed.add(writer.name)
        decisions.append(
            _Decision(
                "task",
                writer.name,
                tuple(sorted(writer.output_communicators())),
            )
        )
    return decisions


def _task_requirement(spec: Specification, task: Task) -> float:
    return max(
        spec.communicators[name].lrc
        for name in task.output_communicators()
    )


def _input_gain(task: Task, srgs: Mapping[str, float]) -> float:
    """Return the input factor of the task's SRG formula."""
    icset = sorted(task.input_communicators())
    if task.model is FailureModel.SERIES:
        return math.prod(srgs[c] for c in icset)
    if task.model is FailureModel.PARALLEL:
        return 1.0 - math.prod(1.0 - srgs[c] for c in icset)
    return 1.0


def synthesize_replication(
    spec: Specification,
    arch: Architecture,
    sensor_candidates: Mapping[str, Sequence[str]] | None = None,
    max_replicas: int | None = None,
    require_schedulable: bool = True,
    node_limit: int = 200_000,
    oracle_prune: bool = True,
) -> SynthesisResult:
    """Synthesise a replica-minimal valid replication mapping.

    Parameters
    ----------
    sensor_candidates:
        Candidate sensors per input communicator; defaults to every
        declared sensor for every input communicator.
    max_replicas:
        Upper bound on replications per task (and sensors per input
        communicator); defaults to the number of hosts.
    require_schedulable:
        When ``True`` (default) a candidate mapping must also pass the
        schedulability analysis; otherwise only reliability is
        enforced.
    node_limit:
        Bound on explored search nodes before giving up.
    oracle_prune:
        When ``True`` (default) the abstract-interpretation verifier
        (:mod:`repro.analysis`) gates the search: a design whose
        certified upper bounds already violate an LRC fails fast with
        the verifier's witness, and partial assignments whose best
        possible completion misses a downstream LRC are pruned without
        expansion.  Both checks use sound upper bounds (every host and
        sensor available), so pruning never hides a valid mapping.

    Raises
    ------
    SynthesisError
        When no valid mapping exists within the bounds.
    """
    hosts = arch.host_names()
    if not hosts:
        raise SynthesisError("architecture has no hosts")
    max_task_replicas = max_replicas or len(hosts)
    input_comms = sorted(spec.input_communicators())
    if sensor_candidates is None:
        sensor_candidates = {
            name: arch.sensor_names() for name in input_comms
        }
    for name in input_comms:
        if not sensor_candidates.get(name):
            raise SynthesisError(
                f"input communicator {name!r} has no candidate sensors"
            )
    try:
        decisions = _decision_sequence(spec)
    except nx.NetworkXUnfeasible:
        raise SynthesisError(
            "specification has a communicator cycle with no "
            "independent-model breaker; no implementation is reliable"
        ) from None

    oracle = None
    if oracle_prune:
        # Imported lazily: the analysis package is a consumer of the
        # model/reliability layers and only the synthesiser's pruning
        # needs it.
        from repro.analysis.oracle import FeasibilityOracle

        oracle = FeasibilityOracle(spec, arch)
        report = oracle.report()
        if not report.feasible:
            witnesses = "; ".join(
                witness.describe().splitlines()[0]
                for witness in report.witnesses()
            )
            raise SynthesisError(
                "no replication mapping within the bounds satisfies "
                "every LRC: the verifier certifies the design "
                f"infeasible ({witnesses})"
            )

    brel = arch.network.reliability
    explored = 0

    def candidates_for(
        decision: _Decision, srgs: dict[str, float]
    ) -> list[tuple[tuple[str, ...], float]]:
        """Return (subset, achieved srg) candidates, cheapest first."""
        result: list[tuple[tuple[str, ...], float]] = []
        if decision.kind == "input":
            lrc = spec.communicators[decision.name].lrc
            pool = sorted(
                sensor_candidates[decision.name],
                key=lambda s: -arch.srel(s),
            )
            limit = min(len(pool), max_replicas or len(pool))
            for subset in _subsets_by_cost(pool, limit):
                achieved = _or_reliability(arch.srel(s) for s in subset)
                if achieved >= lrc:
                    result.append((subset, achieved))
        else:
            task = spec.tasks[decision.name]
            requirement = _task_requirement(spec, task)
            gain = _input_gain(task, srgs)
            pool = sorted(hosts, key=lambda h: -arch.hrel(h))
            for subset in _subsets_by_cost(pool, max_task_replicas):
                lambda_t = _or_reliability(
                    arch.hrel(h) * brel for h in subset
                )
                achieved = _written_communicator_srg(task, lambda_t, srgs)
                if achieved >= requirement:
                    result.append((subset, achieved))
        return result

    def search(
        index: int,
        srgs: dict[str, float],
        assignment: dict[str, tuple[str, ...]],
        binding: dict[str, tuple[str, ...]],
        budget: int,
    ) -> Implementation | None:
        nonlocal explored
        explored += 1
        if explored > node_limit:
            raise SynthesisError(
                f"synthesis exceeded the node limit ({node_limit})"
            )
        if (
            oracle is not None
            and index < len(decisions)
            and not oracle.completion_feasible(srgs)
        ):
            # Even granting every remaining decision all hosts and
            # sensors, some downstream LRC is unreachable from this
            # partial assignment: the whole subtree is dead.
            return None
        if index == len(decisions):
            implementation = Implementation(
                {t: frozenset(h) for t, h in assignment.items()},
                {c: frozenset(s) for c, s in binding.items()},
            )
            if require_schedulable:
                report = check_schedulability(spec, arch, implementation)
                if not report.schedulable:
                    return None
            return implementation
        decision = decisions[index]
        for subset, achieved in candidates_for(decision, srgs):
            cost = len(subset) if decision.kind == "task" else 0
            if cost > budget:
                continue
            for output in decision.outputs:
                srgs[output] = achieved
            if decision.kind == "task":
                assignment[decision.name] = subset
            else:
                binding[decision.name] = subset
            found = search(
                index + 1, srgs, assignment, binding, budget - cost
            )
            if found is not None:
                return found
            for output in decision.outputs:
                del srgs[output]
            if decision.kind == "task":
                del assignment[decision.name]
            else:
                del binding[decision.name]
        return None

    # Communicators that are neither written nor sensor inputs keep
    # their (reliable) initial value; seed their SRGs at 1.0.
    decided = {output for d in decisions for output in d.outputs}
    base_srgs = {
        name: 1.0 for name in spec.communicators if name not in decided
    }

    minimum = len(spec.tasks)
    maximum = len(spec.tasks) * max_task_replicas
    for budget in range(minimum, maximum + 1):
        implementation = search(0, dict(base_srgs), {}, {}, budget)
        if implementation is not None:
            reliability = check_reliability(spec, arch, implementation)
            schedulability = (
                check_schedulability(spec, arch, implementation)
                if require_schedulable
                else None
            )
            return SynthesisResult(
                implementation=implementation,
                reliability=reliability,
                schedulability=schedulability,
                explored=explored,
            )
    raise SynthesisError(
        "no replication mapping within the bounds satisfies every LRC"
        + (" and the timeline" if require_schedulable else "")
    )
