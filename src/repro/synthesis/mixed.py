"""Mixed redundancy: replication and re-execution combined.

The paper uses space redundancy (replication); the related work [9]
uses time redundancy (re-execution).  Real designs mix them — e.g.
one replica on a strong host re-executing twice can beat two replicas
when hosts are scarce, and two single-attempt replicas can beat deep
re-execution when LET windows are tight.  This synthesiser searches
the product space: per task a host subset *and* an attempt count,
minimising total executions per period
(``len(hosts) * attempts`` summed over tasks).

Under the independent-transient fault model each replica independently
succeeds with ``1 - (1 - hrel * brel) ** attempts``, so the task
reliability is

    lambda_t = 1 - prod_h (1 - (1 - (1 - hrel(h) * brel) ** k))

Permanent (fail-silent, pull-the-plug) faults are only masked by the
*spatial* dimension — the analysis here is the transient one, like
:mod:`repro.synthesis.reexecution`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

import networkx as nx

from repro.arch.architecture import Architecture, ExecutionMetrics
from repro.errors import SynthesisError
from repro.mapping.implementation import Implementation
from repro.model.graph import srg_evaluation_order
from repro.model.specification import Specification
from repro.model.task import FailureModel
from repro.reliability.srg import (
    _written_communicator_srg,
    input_communicator_srg,
)
from repro.sched.analysis import SchedulabilityReport, check_schedulability


@dataclass(frozen=True)
class MixedPlan:
    """A replication mapping with per-task re-execution counts."""

    implementation: Implementation
    attempts: Mapping[str, int]

    def __post_init__(self) -> None:
        for task, count in self.attempts.items():
            if count < 1:
                raise SynthesisError(
                    f"task {task!r}: attempts must be >= 1, got {count}"
                )

    def attempts_of(self, task: str) -> int:
        """Return the attempt count of *task* (1 when unlisted)."""
        return self.attempts.get(task, 1)

    def total_executions(self) -> int:
        """Executions per period: replicas x attempts, summed."""
        return sum(
            len(self.implementation.hosts_of(task))
            * self.attempts_of(task)
            for task in self.implementation.assignment
        )


def mixed_task_reliability(
    plan: MixedPlan, task: str, arch: Architecture
) -> float:
    """``lambda_t`` of a replicated, re-executing task (transient model)."""
    brel = arch.network.reliability
    attempts = plan.attempts_of(task)
    failure = 1.0
    for host in plan.implementation.hosts_of(task):
        replica_success = 1.0 - (
            1.0 - arch.hrel(host) * brel
        ) ** attempts
        failure *= 1.0 - replica_success
    return 1.0 - failure


def communicator_srgs_mixed(
    spec: Specification,
    plan: MixedPlan,
    arch: Architecture,
) -> dict[str, float]:
    """SRGs under the mixed redundancy plan (transient model)."""
    plan.implementation.validate(spec, arch)
    try:
        order = srg_evaluation_order(spec)
    except nx.NetworkXUnfeasible:
        raise SynthesisError(
            "specification has an unbroken communicator cycle"
        ) from None
    inputs = spec.input_communicators()
    srgs: dict[str, float] = {}
    for name in order:
        writer = spec.writer_of(name)
        if writer is None:
            srgs[name] = (
                input_communicator_srg(name, plan.implementation, arch)
                if name in inputs
                else 1.0
            )
            continue
        lambda_t = mixed_task_reliability(plan, writer.name, arch)
        if writer.model is FailureModel.INDEPENDENT:
            srgs[name] = lambda_t
        else:
            srgs[name] = _written_communicator_srg(writer, lambda_t, srgs)
    return srgs


def check_schedulability_mixed(
    spec: Specification,
    plan: MixedPlan,
    arch: Architecture,
) -> SchedulabilityReport:
    """Schedulability with per-replica WCETs inflated by attempts."""
    wcet = {}
    wctt = {}
    for task in spec.tasks:
        for host in arch.host_names():
            wcet[(task, host)] = (
                arch.wcet(task, host) * plan.attempts_of(task)
            )
            wctt[(task, host)] = arch.wctt(task, host)
    inflated = Architecture(
        hosts=arch.hosts.values(),
        sensors=arch.sensors.values(),
        metrics=ExecutionMetrics(wcet=wcet, wctt=wctt),
        network=arch.network,
    )
    return check_schedulability(spec, inflated, plan.implementation)


@dataclass(frozen=True)
class MixedSynthesisResult:
    """Outcome of mixed-redundancy synthesis."""

    plan: MixedPlan
    srgs: dict[str, float]
    schedulability: SchedulabilityReport | None
    explored: int

    @property
    def total_executions(self) -> int:
        return self.plan.total_executions()


def synthesize_mixed(
    spec: Specification,
    arch: Architecture,
    sensor_candidates: Mapping[str, Sequence[str]] | None = None,
    max_replicas: int | None = None,
    max_attempts: int = 4,
    require_schedulable: bool = True,
    node_limit: int = 200_000,
) -> MixedSynthesisResult:
    """Find the execution-minimal mixed plan meeting every LRC.

    Iterative deepening on the total execution count; per decision the
    candidates are every (host subset, attempts) pair whose resulting
    SRG meets the strongest output LRC under the already-chosen
    upstream SRGs, cheapest (subset size x attempts) first.
    """
    hosts = arch.host_names()
    max_task_replicas = max_replicas or len(hosts)
    input_comms = sorted(spec.input_communicators())
    if sensor_candidates is None:
        sensor_candidates = {
            name: arch.sensor_names() for name in input_comms
        }
    try:
        order = srg_evaluation_order(spec)
    except nx.NetworkXUnfeasible:
        raise SynthesisError(
            "specification has an unbroken communicator cycle"
        ) from None
    brel = arch.network.reliability
    explored = 0

    # Precompute the per-task decision order (first-output position).
    decisions: list[str] = []
    placed: set[str] = set()
    for name in order:
        writer = spec.writer_of(name)
        if writer is not None and writer.name not in placed:
            placed.add(writer.name)
            decisions.append(writer.name)

    def sensor_choice() -> dict[str, frozenset[str]] | None:
        binding: dict[str, frozenset[str]] = {}
        for name in input_comms:
            lrc = spec.communicators[name].lrc
            pool = sorted(
                sensor_candidates.get(name, ()),
                key=lambda s: -arch.srel(s),
            )
            chosen: list[str] = []
            failure = 1.0
            for sensor in pool:
                chosen.append(sensor)
                failure *= 1.0 - arch.srel(sensor)
                if 1.0 - failure >= lrc:
                    break
            if not chosen or 1.0 - failure < lrc:
                return None
            binding[name] = frozenset(chosen)
        return binding

    binding = sensor_choice()
    if binding is None:
        raise SynthesisError(
            "no sensor subset reaches some input communicator's LRC"
        )
    base_srgs: dict[str, float] = {}
    for name, sensors in binding.items():
        failure = 1.0
        for sensor in sensors:
            failure *= 1.0 - arch.srel(sensor)
        base_srgs[name] = 1.0 - failure
    for name in spec.communicators:
        if spec.writer_of(name) is None and name not in base_srgs:
            base_srgs[name] = 1.0

    pool = sorted(hosts, key=lambda h: -arch.hrel(h))
    subset_catalogue = [
        combo
        for size in range(1, max_task_replicas + 1)
        for combo in itertools.combinations(pool, size)
    ]

    def candidates_for(task_name, srgs):
        task = spec.tasks[task_name]
        requirement = max(
            spec.communicators[out].lrc
            for out in task.output_communicators()
        )
        options = []
        for subset in subset_catalogue:
            for attempts in range(1, max_attempts + 1):
                failure = 1.0
                for host in subset:
                    replica = 1.0 - (
                        1.0 - arch.hrel(host) * brel
                    ) ** attempts
                    failure *= 1.0 - replica
                lambda_t = 1.0 - failure
                if task.model is FailureModel.INDEPENDENT:
                    achieved = lambda_t
                else:
                    achieved = _written_communicator_srg(
                        task, lambda_t, srgs
                    )
                if achieved >= requirement:
                    options.append(
                        (len(subset) * attempts, subset, attempts,
                         achieved)
                    )
                    break  # more attempts on this subset only cost more
        options.sort(key=lambda o: (o[0], len(o[1])))
        return options

    def search(index, srgs, assignment, attempts, budget):
        nonlocal explored
        explored += 1
        if explored > node_limit:
            raise SynthesisError(
                f"synthesis exceeded the node limit ({node_limit})"
            )
        if index == len(decisions):
            plan = MixedPlan(
                Implementation(dict(assignment), binding),
                dict(attempts),
            )
            if require_schedulable:
                report = check_schedulability_mixed(spec, plan, arch)
                if not report.schedulable:
                    return None
            return plan
        task_name = decisions[index]
        task = spec.tasks[task_name]
        for cost, subset, count, achieved in candidates_for(
            task_name, srgs
        ):
            if cost > budget:
                continue
            assignment[task_name] = frozenset(subset)
            attempts[task_name] = count
            for out in task.output_communicators():
                srgs[out] = achieved
            found = search(
                index + 1, srgs, assignment, attempts, budget - cost
            )
            if found is not None:
                return found
            del assignment[task_name]
            del attempts[task_name]
            for out in task.output_communicators():
                del srgs[out]
        return None

    minimum = len(decisions)
    maximum = len(decisions) * max_task_replicas * max_attempts
    for budget in range(minimum, maximum + 1):
        plan = search(0, dict(base_srgs), {}, {}, budget)
        if plan is not None:
            srgs = communicator_srgs_mixed(spec, plan, arch)
            schedulability = (
                check_schedulability_mixed(spec, plan, arch)
                if require_schedulable
                else None
            )
            return MixedSynthesisResult(
                plan=plan,
                srgs=srgs,
                schedulability=schedulability,
                explored=explored,
            )
    raise SynthesisError(
        "no mixed redundancy plan within the bounds meets every LRC"
    )
