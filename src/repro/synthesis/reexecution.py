"""Time redundancy: re-execution instead of spatial replication.

The related work the paper positions against (Izosimov, Pop, Eles,
Peng — the paper's [9]–[11]) tolerates *transient* faults by
re-executing a task on the same host instead of replicating it across
hosts.  This module adds that alternative to the framework so the two
redundancy styles can be compared:

* with ``k`` attempts and per-attempt success ``hrel(h) * brel``, the
  task reliability under *independent transient* faults becomes
  ``1 - (1 - hrel(h) * brel) ** k``;
* the schedulability cost lands on one host: the job's demand grows to
  ``k * wcet`` inside the same LET window;
* against *permanent* faults (the paper's pull-the-plug experiment)
  re-execution buys nothing — every attempt runs on the dead host —
  which is exactly why the paper's fault model (fail-silent hosts)
  calls for spatial replication.  Benchmark
  ``test_bench_reexecution`` demonstrates both halves of this
  trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import networkx as nx

from repro.arch.architecture import Architecture
from repro.errors import SynthesisError
from repro.mapping.implementation import Implementation
from repro.model.graph import srg_evaluation_order
from repro.model.specification import Specification
from repro.model.task import FailureModel
from repro.reliability.srg import (
    _written_communicator_srg,
    input_communicator_srg,
)
from repro.runtime.faults import FaultInjector
from repro.sched.analysis import SchedulabilityReport, check_schedulability


@dataclass(frozen=True)
class ReexecutionPlan:
    """A single-host mapping with per-task re-execution counts.

    ``implementation`` maps every task to exactly one host;
    ``attempts[task]`` (default 1) is the number of executions per
    invocation.
    """

    implementation: Implementation
    attempts: Mapping[str, int]

    def __post_init__(self) -> None:
        for task, hosts in self.implementation.assignment.items():
            if len(hosts) != 1:
                raise SynthesisError(
                    f"re-execution plans map each task to one host; "
                    f"{task!r} is on {sorted(hosts)}"
                )
        for task, count in self.attempts.items():
            if count < 1:
                raise SynthesisError(
                    f"task {task!r}: attempts must be >= 1, got {count}"
                )

    def attempts_of(self, task: str) -> int:
        """Return the attempt count of *task* (1 when unlisted)."""
        return self.attempts.get(task, 1)

    def host_of(self, task: str) -> str:
        """Return the single host executing *task*."""
        (host,) = self.implementation.hosts_of(task)
        return host

    def total_executions(self) -> int:
        """Return the total executions per period (the time cost)."""
        return sum(
            self.attempts_of(task)
            for task in self.implementation.assignment
        )


def task_reliability_reexec(
    plan: ReexecutionPlan, task: str, arch: Architecture
) -> float:
    """Return ``1 - (1 - hrel * brel) ** attempts`` for *task*.

    Valid under the independent-transient fault model; a permanently
    failed host defeats every attempt.
    """
    host = plan.host_of(task)
    per_attempt = arch.hrel(host) * arch.network.reliability
    return 1.0 - (1.0 - per_attempt) ** plan.attempts_of(task)


def communicator_srgs_reexec(
    spec: Specification,
    plan: ReexecutionPlan,
    arch: Architecture,
) -> dict[str, float]:
    """SRGs under re-execution (transient-fault model)."""
    plan.implementation.validate(spec, arch)
    try:
        order = srg_evaluation_order(spec)
    except nx.NetworkXUnfeasible:
        raise SynthesisError(
            "specification has an unbroken communicator cycle"
        ) from None
    inputs = spec.input_communicators()
    srgs: dict[str, float] = {}
    for name in order:
        writer = spec.writer_of(name)
        if writer is None:
            srgs[name] = (
                input_communicator_srg(name, plan.implementation, arch)
                if name in inputs
                else 1.0
            )
            continue
        lambda_t = task_reliability_reexec(plan, writer.name, arch)
        if writer.model is FailureModel.INDEPENDENT:
            srgs[name] = lambda_t
        else:
            srgs[name] = _written_communicator_srg(writer, lambda_t, srgs)
    return srgs


def check_schedulability_reexec(
    spec: Specification,
    plan: ReexecutionPlan,
    arch: Architecture,
) -> SchedulabilityReport:
    """Schedulability with each task's WCET inflated by its attempts.

    Only the computation repeats; the (single) output broadcast keeps
    its WCTT.
    """
    inflated = Architecture(
        hosts=arch.hosts.values(),
        sensors=arch.sensors.values(),
        metrics=_inflate_metrics(spec, plan, arch),
        network=arch.network,
    )
    return check_schedulability(spec, inflated, plan.implementation)


def _inflate_metrics(spec, plan, arch):
    from repro.arch.architecture import ExecutionMetrics

    wcet = {}
    wctt = {}
    for task in spec.tasks:
        for host in arch.host_names():
            wcet[(task, host)] = (
                arch.wcet(task, host) * plan.attempts_of(task)
            )
            wctt[(task, host)] = arch.wctt(task, host)
    return ExecutionMetrics(wcet=wcet, wctt=wctt)


class TransientReexecutionFaults(FaultInjector):
    """Adapter making the simulator honour re-execution semantics.

    A replica invocation fails only when *every* attempt fails under
    the wrapped injector.  Deterministic injectors (scripted outages)
    fail every attempt identically, so permanent faults are *not*
    masked — matching the physics of time redundancy.
    """

    def __init__(self, base: FaultInjector, plan: ReexecutionPlan):
        self.base = base
        self.plan = plan

    def replica_fails(self, task, host, iteration, release, deadline, rng):
        attempts = self.plan.attempts_of(task)
        return all(
            self.base.replica_fails(
                task, host, iteration, release, deadline, rng
            )
            for _ in range(attempts)
        )

    def sensor_fails(self, sensor, time, rng):
        return self.base.sensor_fails(sensor, time, rng)

    def broadcast_fails(self, task, host, iteration, rng):
        return self.base.broadcast_fails(task, host, iteration, rng)


def synthesize_reexecution(
    spec: Specification,
    arch: Architecture,
    sensor_candidates: Mapping[str, list[str]] | None = None,
    max_attempts: int = 8,
    require_schedulable: bool = True,
) -> ReexecutionPlan:
    """Synthesise a minimal-time-redundancy plan meeting every LRC.

    Walks the communicator order like the replication synthesiser, but
    each task stays on its single most reliable feasible host and gains
    *attempts* instead of replicas.  Minimises total executions
    greedily (the per-task attempt count is the smallest meeting the
    local requirement, which is optimal per task because attempts only
    affect that task's own SRG chain).

    Raises :class:`SynthesisError` when some LRC is unreachable within
    *max_attempts* or the inflated demand does not fit the timeline.
    """
    load: dict[str, int] = {h: 0 for h in arch.host_names()}

    def host_order() -> list[str]:
        # Balance the inflated demand: least-loaded first, reliability
        # as the tie-breaker.
        return sorted(
            arch.host_names(),
            key=lambda h: (load[h], -arch.hrel(h), h),
        )
    if sensor_candidates is None:
        sensor_candidates = {
            name: arch.sensor_names()
            for name in spec.input_communicators()
        }
    binding: dict[str, set[str]] = {}
    srgs: dict[str, float] = {}
    try:
        order = srg_evaluation_order(spec)
    except nx.NetworkXUnfeasible:
        raise SynthesisError(
            "specification has an unbroken communicator cycle"
        ) from None

    # Resolve sensor bindings first (same rule as replication).
    for name in sorted(spec.input_communicators()):
        lrc = spec.communicators[name].lrc
        pool = sorted(
            sensor_candidates.get(name, ()),
            key=lambda s: -arch.srel(s),
        )
        chosen: list[str] = []
        failure = 1.0
        for sensor in pool:
            chosen.append(sensor)
            failure *= 1.0 - arch.srel(sensor)
            if 1.0 - failure >= lrc:
                break
        if not chosen or 1.0 - failure < lrc:
            raise SynthesisError(
                f"input communicator {name!r}: no sensor subset reaches "
                f"LRC {lrc}"
            )
        binding[name] = set(chosen)
        srgs[name] = 1.0 - failure

    assignment: dict[str, set[str]] = {}
    attempts: dict[str, int] = {}
    for name in order:
        writer = spec.writer_of(name)
        if writer is None:
            srgs.setdefault(name, 1.0)
            continue
        if writer.name in attempts:
            continue
        requirement = max(
            spec.communicators[out].lrc
            for out in writer.output_communicators()
        )
        placed = False
        for host in host_order():
            per_attempt = arch.hrel(host) * arch.network.reliability
            for count in range(1, max_attempts + 1):
                lambda_t = 1.0 - (1.0 - per_attempt) ** count
                if writer.model is FailureModel.INDEPENDENT:
                    achieved = lambda_t
                else:
                    achieved = _written_communicator_srg(
                        writer, lambda_t, srgs
                    )
                if achieved >= requirement:
                    assignment[writer.name] = {host}
                    attempts[writer.name] = count
                    load[host] += count * arch.wcet(writer.name, host)
                    for out in writer.output_communicators():
                        srgs[out] = achieved
                    placed = True
                    break
            if placed:
                break
        if not placed:
            raise SynthesisError(
                f"task {writer.name!r}: no host reaches LRC "
                f"{requirement} within {max_attempts} attempts"
            )
    plan = ReexecutionPlan(
        Implementation(assignment, binding), attempts
    )
    if require_schedulable:
        schedulability = check_schedulability_reexec(spec, plan, arch)
        if not schedulability.schedulable:
            raise SynthesisError(
                "re-execution plan meets the LRCs but does not fit the "
                "timeline: " + "; ".join(schedulability.reasons)
            )
    return plan
