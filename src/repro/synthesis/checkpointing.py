"""Checkpointing: partial re-execution of faulted tasks (paper's [10]).

Izosimov, Pop, Eles & Peng refine plain re-execution by inserting
checkpoints: a transient fault only re-executes the *current segment*
instead of the whole task.  With WCET ``C`` split into ``n`` equal
segments, checkpoint overhead ``o`` per checkpoint and recovery
overhead ``r`` per fault, the worst-case time tolerating ``f`` faults
is

    E(n) = C + n * o + f * (ceil(C / n) + o + r)

minimised near ``n* = sqrt(f * C / o)`` — their classic result.  The
probabilistic side (which their fault-count model leaves implicit) is
made explicit here: modelling segment executions as i.i.d. Bernoulli
trials with per-segment survival ``hrel ** (1/n)`` (so an unsegmented
task recovers the plain per-invocation ``hrel``), the probability that
at most ``f`` re-executions are needed is the negative-binomial tail

    P(success) = sum_{i=0..f} C(n - 1 + i, i) * s^n * (1 - s)^i,
    s = hrel ** (1/n).

Both halves of the trade-off are exercised by
``test_bench_checkpointing``: checkpointing fits LET windows where
full re-execution does not, at slightly lower per-fault coverage cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.arch.architecture import Architecture, ExecutionMetrics
from repro.errors import SynthesisError
from repro.mapping.implementation import Implementation
from repro.model.specification import Specification
from repro.sched.analysis import SchedulabilityReport, check_schedulability


@dataclass(frozen=True)
class CheckpointScheme:
    """A checkpointing configuration for one task."""

    segments: int
    checkpoint_overhead: int
    recovery_overhead: int
    tolerated_faults: int

    def __post_init__(self) -> None:
        if self.segments < 1:
            raise SynthesisError(
                f"segments must be >= 1, got {self.segments}"
            )
        if self.checkpoint_overhead < 0 or self.recovery_overhead < 0:
            raise SynthesisError("overheads must be non-negative")
        if self.tolerated_faults < 0:
            raise SynthesisError(
                f"tolerated_faults must be >= 0, got "
                f"{self.tolerated_faults}"
            )


def worst_case_time(wcet: int, scheme: CheckpointScheme) -> int:
    """Return ``E(n)``: the WCET inflated by checkpoints and recovery."""
    segment_length = math.ceil(wcet / scheme.segments)
    return (
        wcet
        + scheme.segments * scheme.checkpoint_overhead
        + scheme.tolerated_faults
        * (
            segment_length
            + scheme.checkpoint_overhead
            + scheme.recovery_overhead
        )
    )


def optimal_segments(
    wcet: int,
    checkpoint_overhead: int,
    tolerated_faults: int,
    recovery_overhead: int = 0,
) -> int:
    """Return the segment count minimising :func:`worst_case_time`.

    The continuous optimum is ``sqrt(f * C / o)``; the integer optimum
    is one of its floor/ceil neighbours (checked exactly, including
    the degenerate cases ``f = 0`` or ``o = 0``).
    """
    if tolerated_faults == 0:
        return 1
    if checkpoint_overhead == 0:
        # More segments are free and shrink the re-executed unit;
        # one segment per time unit is the useful maximum.
        return max(wcet, 1)
    continuous = math.sqrt(
        tolerated_faults * wcet / checkpoint_overhead
    )
    candidates = {
        max(1, math.floor(continuous)),
        max(1, math.ceil(continuous)),
        1,
    }
    scheme = lambda n: CheckpointScheme(  # noqa: E731
        segments=n,
        checkpoint_overhead=checkpoint_overhead,
        recovery_overhead=recovery_overhead,
        tolerated_faults=tolerated_faults,
    )
    return min(
        candidates, key=lambda n: (worst_case_time(wcet, scheme(n)), n)
    )


def task_reliability_checkpointed(
    hrel: float, scheme: CheckpointScheme
) -> float:
    """Return P(task completes within its re-execution budget).

    Negative-binomial tail over i.i.d. segment trials with survival
    ``hrel ** (1/n)``; with ``n = 1`` and ``f = k - 1`` this equals the
    plain re-execution reliability ``1 - (1 - hrel) ** k``.
    """
    if not 0.0 < hrel <= 1.0:
        raise SynthesisError(f"hrel must lie in (0, 1], got {hrel}")
    n = scheme.segments
    survival = hrel ** (1.0 / n)
    failure = 1.0 - survival
    total = 0.0
    for faults in range(scheme.tolerated_faults + 1):
        total += (
            math.comb(n - 1 + faults, faults)
            * survival**n
            * failure**faults
        )
    return total


@dataclass(frozen=True)
class CheckpointPlan:
    """Per-task checkpoint schemes over a single-host mapping."""

    implementation: Implementation
    schemes: Mapping[str, CheckpointScheme]

    def scheme_of(self, task: str) -> CheckpointScheme:
        try:
            return self.schemes[task]
        except KeyError:
            raise SynthesisError(
                f"task {task!r} has no checkpoint scheme"
            ) from None


def check_schedulability_checkpointed(
    spec: Specification,
    plan: CheckpointPlan,
    arch: Architecture,
) -> SchedulabilityReport:
    """Schedulability with WCETs inflated per checkpoint scheme."""
    wcet = {}
    wctt = {}
    for task in spec.tasks:
        scheme = plan.scheme_of(task)
        for host in arch.host_names():
            wcet[(task, host)] = worst_case_time(
                arch.wcet(task, host), scheme
            )
            wctt[(task, host)] = arch.wctt(task, host)
    inflated = Architecture(
        hosts=arch.hosts.values(),
        sensors=arch.sensors.values(),
        metrics=ExecutionMetrics(wcet=wcet, wctt=wctt),
        network=arch.network,
    )
    return check_schedulability(spec, inflated, plan.implementation)


def synthesize_checkpointing(
    spec: Specification,
    arch: Architecture,
    implementation: Implementation,
    tolerated_faults: int,
    checkpoint_overhead: int,
    recovery_overhead: int = 0,
) -> CheckpointPlan:
    """Attach time-optimal checkpoint schemes to an existing mapping.

    Every task gets the segment count minimising its inflated WCET for
    the given fault budget; the resulting plan is returned together
    with nothing else — run
    :func:`check_schedulability_checkpointed` for the timing
    certificate and :func:`task_reliability_checkpointed` for the
    per-task coverage.
    """
    schemes = {}
    for task in spec.tasks:
        (host,) = (
            implementation.hosts_of(task)
            if len(implementation.hosts_of(task)) == 1
            else (sorted(implementation.hosts_of(task))[0],)
        )
        wcet = arch.wcet(task, host)
        segments = optimal_segments(
            wcet, checkpoint_overhead, tolerated_faults,
            recovery_overhead,
        )
        schemes[task] = CheckpointScheme(
            segments=segments,
            checkpoint_overhead=checkpoint_overhead,
            recovery_overhead=recovery_overhead,
            tolerated_faults=tolerated_faults,
        )
    return CheckpointPlan(implementation=implementation, schemes=schemes)
