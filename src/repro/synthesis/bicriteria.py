"""Bi-criteria scheduling baseline (the paper's reference [1]).

A simplified reproduction of the heuristic of Assayad, Girault & Kalla
(*A bi-criteria scheduling heuristic for distributed embedded systems
under reliability and real-time constraints*, DSN 2004): static list
scheduling of the task data-flow graph onto the hosts, with active
replication, steering each placement decision by a compromise between
schedule length and reliability.

The knob ``theta in [0, 1]`` weighs the two criteria: ``theta = 0``
optimises schedule length only, ``theta = 1`` reliability only.
Sweeping ``theta`` traces a length/reliability Pareto front
(:func:`pareto_front`), which benchmark E11 compares against the
LRC-driven synthesis of :mod:`repro.synthesis.replication`.

Differences from the original (documented, deliberate): the original
schedules a general DAG with point-to-point communications; here the
data-flow graph is derived from communicator reads/writes, outputs are
broadcast (matching this paper's architecture), and the compromise
function is the normalised weighted sum below rather than the
original's throughput-based aggregation.  The shape of the trade-off —
more replicas raise reliability and stretch the schedule — is
preserved, which is what the comparison needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.arch.architecture import Architecture
from repro.errors import SynthesisError
from repro.mapping.implementation import Implementation
from repro.model.graph import task_dependency_graph
from repro.model.specification import Specification


@dataclass(frozen=True)
class BiCriteriaResult:
    """Outcome of one bi-criteria scheduling run."""

    theta: float
    implementation: Implementation
    makespan: int
    system_reliability: float

    @property
    def replication_count(self) -> int:
        return self.implementation.replication_count()

    def dominates(self, other: "BiCriteriaResult") -> bool:
        """Pareto dominance: no worse on both criteria, better on one."""
        better_or_equal = (
            self.makespan <= other.makespan
            and self.system_reliability >= other.system_reliability
        )
        strictly_better = (
            self.makespan < other.makespan
            or self.system_reliability > other.system_reliability
        )
        return better_or_equal and strictly_better


def _topological_priority(spec: Specification) -> list[str]:
    """Order tasks topologically, longest downstream chain first."""
    graph = task_dependency_graph(spec)
    depth: dict[str, int] = {}
    for name in reversed(list(nx.topological_sort(graph))):
        children = list(graph.successors(name))
        depth[name] = 1 + max((depth[c] for c in children), default=0)
    return sorted(graph.nodes, key=lambda n: (-depth[n], n))


def bicriteria_schedule(
    spec: Specification,
    arch: Architecture,
    theta: float,
    max_replicas: int | None = None,
    sensor_candidates: dict[str, Sequence[str]] | None = None,
) -> BiCriteriaResult:
    """Run the list-scheduling heuristic with compromise weight *theta*.

    Tasks are placed in topological priority order.  For each task,
    every candidate host subset up to *max_replicas* is scored by the
    normalised compromise ``(1 - theta) * finish + theta * (1 -
    lambda_t)`` (each term scaled by the worst candidate); the best
    candidate wins.  A task's earliest start on every host is the
    latest broadcast-completion of its data-flow predecessors.
    """
    if not 0.0 <= theta <= 1.0:
        raise SynthesisError(f"theta must lie in [0, 1], got {theta}")
    if nx.number_of_nodes(task_dependency_graph(spec)) == 0:
        raise SynthesisError("specification has no tasks to schedule")
    if not nx.is_directed_acyclic_graph(task_dependency_graph(spec)):
        raise SynthesisError(
            "bi-criteria scheduling needs an acyclic task data-flow graph"
        )
    hosts = arch.host_names()
    limit = min(max_replicas or len(hosts), len(hosts))
    brel = arch.network.reliability

    host_free: dict[str, int] = {h: 0 for h in hosts}
    # Per task: the instant its outputs are available on every host
    # (computation + broadcast of the slowest replica chosen).
    data_ready: dict[str, int] = {}
    assignment: dict[str, tuple[str, ...]] = {}
    graph = task_dependency_graph(spec)

    import itertools

    for name in _topological_priority(spec):
        task = spec.tasks[name]
        predecessors = list(graph.predecessors(name))
        earliest = max((data_ready[p] for p in predecessors), default=0)
        candidates: list[tuple[float, tuple[str, ...], int, float]] = []
        raw: list[tuple[tuple[str, ...], int, float]] = []
        for size in range(1, limit + 1):
            for subset in itertools.combinations(hosts, size):
                finish = 0
                for host in subset:
                    start = max(earliest, host_free[host])
                    done = (
                        start
                        + arch.wcet(name, host)
                        + arch.wctt(name, host)
                    )
                    finish = max(finish, done)
                lam = 1.0 - math.prod(
                    1.0 - arch.hrel(h) * brel for h in subset
                )
                raw.append((subset, finish, lam))
        worst_finish = max(f for _, f, _ in raw)
        worst_unrel = max(1.0 - lam for _, _, lam in raw) or 1.0
        for subset, finish, lam in raw:
            score = (1.0 - theta) * (finish / worst_finish) + theta * (
                (1.0 - lam) / worst_unrel
            )
            candidates.append((score, subset, finish, lam))
        candidates.sort(key=lambda item: (item[0], len(item[1]), item[1]))
        _, subset, finish, lam = candidates[0]
        assignment[name] = subset
        for host in subset:
            start = max(earliest, host_free[host])
            host_free[host] = start + arch.wcet(name, host)
        data_ready[name] = finish

    binding = dict(sensor_candidates or {})
    if not binding:
        all_sensors = arch.sensor_names()
        binding = {
            comm: all_sensors for comm in spec.input_communicators()
        }
    implementation = Implementation(assignment, binding)
    makespan = max(data_ready.values(), default=0)
    system_reliability = math.prod(
        1.0
        - math.prod(1.0 - arch.hrel(h) * brel for h in assignment[name])
        for name in assignment
    )
    return BiCriteriaResult(
        theta=theta,
        implementation=implementation,
        makespan=makespan,
        system_reliability=system_reliability,
    )


def pareto_front(
    spec: Specification,
    arch: Architecture,
    thetas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    max_replicas: int | None = None,
) -> list[BiCriteriaResult]:
    """Sweep *theta* and return the non-dominated results.

    Results are sorted by makespan; each entry is strictly better in
    reliability than the previous one (classic Pareto staircase).
    """
    results = [
        bicriteria_schedule(spec, arch, theta, max_replicas=max_replicas)
        for theta in thetas
    ]
    front = [
        r
        for r in results
        if not any(other.dominates(r) for other in results)
    ]
    unique: dict[tuple[int, float], BiCriteriaResult] = {}
    for result in front:
        unique[(result.makespan, result.system_reliability)] = result
    return sorted(
        unique.values(), key=lambda r: (r.makespan, -r.system_reliability)
    )
