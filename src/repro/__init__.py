"""repro — logical reliability of interacting real-time tasks.

A reproduction of *Logical Reliability of Interacting Real-Time Tasks*
(Chatterjee, Ghosal, Henzinger, Iercan, Kirsch, Pinello,
Sangiovanni-Vincentelli — DATE 2008): a separation-of-concerns
framework where periodic tasks interact through *communicators* whose
logical reliability constraints (LRCs) are requirements, and where the
singular reliability guarantees (SRGs) derived from a replication
mapping onto fail-silent hosts must meet them — jointly with LET
schedulability.

Public API layers
-----------------
* :mod:`repro.model` — communicators, tasks, failure models,
  specifications, specification graphs.
* :mod:`repro.arch` — hosts, sensors, broadcast network, WCET/WCTT.
* :mod:`repro.mapping` — static and time-dependent replication
  mappings.
* :mod:`repro.reliability` — RBDs, SRG computation, trace abstraction,
  the Proposition 1 analysis.
* :mod:`repro.sched` — LET job expansion, EDF, distributed timelines.
* :mod:`repro.validity` — the joint schedulability/reliability check.
* :mod:`repro.refinement` — design by refinement (Proposition 2).
* :mod:`repro.synthesis` — replication synthesis and baselines.
* :mod:`repro.htl` — the HTL-subset frontend and compiler.
* :mod:`repro.runtime` — the distributed runtime simulator.
* :mod:`repro.resilience` — online monitoring, failure detection,
  and SRG-verified recovery.
* :mod:`repro.telemetry` — execution tracing, metrics, and
  profiling over one instrumentation-sink protocol.
* :mod:`repro.plants` — the three-tank system plant and controllers.
* :mod:`repro.experiments` — prebuilt systems from the paper.
"""

from repro.model import (
    BOTTOM,
    Communicator,
    FailureModel,
    PortRef,
    Specification,
    Task,
    is_memory_free,
    is_reliable_value,
    unsafe_cycles,
)
from repro.arch import (
    Architecture,
    BroadcastNetwork,
    ExecutionMetrics,
    Host,
    Sensor,
)
from repro.mapping import Implementation, TimeDependentImplementation
from repro.reliability import (
    ReliabilityReport,
    check_reliability,
    check_reliability_timedep,
    communicator_srgs,
    task_reliability,
)
from repro.sched import (
    SchedulabilityReport,
    build_timeline,
    check_schedulability,
)
from repro.refinement import check_refinement, incremental_check, refines
from repro.validity import ValidityReport, check_validity
from repro.synthesis import synthesize_replication
from repro.report import design_report

__version__ = "1.0.0"

__all__ = [
    "Architecture",
    "BOTTOM",
    "BroadcastNetwork",
    "Communicator",
    "ExecutionMetrics",
    "FailureModel",
    "Host",
    "Implementation",
    "PortRef",
    "ReliabilityReport",
    "SchedulabilityReport",
    "Sensor",
    "Specification",
    "Task",
    "TimeDependentImplementation",
    "ValidityReport",
    "build_timeline",
    "check_refinement",
    "check_reliability",
    "check_reliability_timedep",
    "check_schedulability",
    "check_validity",
    "communicator_srgs",
    "design_report",
    "incremental_check",
    "is_memory_free",
    "synthesize_replication",
    "is_reliable_value",
    "refines",
    "task_reliability",
    "unsafe_cycles",
    "__version__",
]
