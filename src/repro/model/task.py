"""Task declarations and input failure models.

A task (Section 2) reads specific *instances* of a set of communicators,
computes a function, and writes specific instances of other
communicators.  The latest read and earliest write implicitly specify
the task's logical execution time (LET).

The *input failure model* says what the task does when one or more of
its inputs carry the unreliable value ``BOTTOM``:

``SERIES`` (model 1)
    If any input is unreliable, the task fails to execute (its outputs
    are unreliable).  Reliability composes like a series system.

``PARALLEL`` (model 2)
    An unreliable input is replaced by the task's default value for
    that communicator; the task fails only if *all* inputs are
    unreliable.  Reliability composes like a parallel system.

``INDEPENDENT`` (model 3)
    Every unreliable input is replaced by its default; the task
    executes even if all inputs are unreliable.  The output reliability
    is independent of the input reliabilities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import SpecificationError


class FailureModel(enum.IntEnum):
    """Input failure model of a task (models 1, 2, 3 of the paper)."""

    SERIES = 1
    PARALLEL = 2
    INDEPENDENT = 3

    @classmethod
    def parse(cls, text: "str | int | FailureModel") -> "FailureModel":
        """Parse a failure model from its name or numeric code."""
        if isinstance(text, FailureModel):
            return text
        if isinstance(text, int):
            return cls(text)
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise SpecificationError(
                f"unknown failure model {text!r}; expected one of "
                f"'series', 'parallel', 'independent' or 1/2/3"
            ) from None


@dataclass(frozen=True, order=True)
class PortRef:
    """A reference ``(c, i)`` to 0-based instance *i* of communicator *c*."""

    communicator: str
    instance: int

    def __post_init__(self) -> None:
        if self.instance < 0:
            raise SpecificationError(
                f"port ({self.communicator!r}, {self.instance}): "
                f"instance numbers must be >= 0"
            )


def _as_port(ref: "PortRef | tuple[str, int]") -> PortRef:
    if isinstance(ref, PortRef):
        return ref
    name, instance = ref
    return PortRef(str(name), int(instance))


@dataclass(frozen=True)
class Task:
    """An atomic periodic task interacting through communicators.

    Parameters
    ----------
    name:
        Unique task name.
    inputs:
        Ordered list of input ports ``(c, i)``; the task reads instance
        ``i`` of communicator ``c``.  May be given as tuples.
    outputs:
        Ordered list of output ports the task writes.
    function:
        The task function ``fn_t``; called with one positional argument
        per input (post failure-model substitution) and must return a
        tuple with one element per output (a single non-tuple return
        value is accepted for single-output tasks).  ``None`` means the
        task is declared for analysis only and cannot be executed.
    model:
        Input failure model (series / parallel / independent).
    defaults:
        Default values per input *communicator name*, used by the
        parallel and independent models when an input is unreliable.
    """

    name: str
    inputs: tuple[PortRef, ...]
    outputs: tuple[PortRef, ...]
    function: Callable[..., Any] | None = None
    model: FailureModel = FailureModel.SERIES
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def __init__(
        self,
        name: str,
        inputs: Sequence["PortRef | tuple[str, int]"],
        outputs: Sequence["PortRef | tuple[str, int]"],
        function: Callable[..., Any] | None = None,
        model: "FailureModel | str | int" = FailureModel.SERIES,
        defaults: Mapping[str, Any] | None = None,
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "inputs", tuple(_as_port(p) for p in inputs))
        object.__setattr__(self, "outputs", tuple(_as_port(p) for p in outputs))
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "model", FailureModel.parse(model))
        object.__setattr__(self, "defaults", dict(defaults or {}))
        self._validate()

    def _validate(self) -> None:
        if not self.name:
            raise SpecificationError("task name must be non-empty")
        if not self.inputs:
            raise SpecificationError(
                f"task {self.name!r}: all tasks must read from at least one "
                f"communicator (restriction 1)"
            )
        if not self.outputs:
            raise SpecificationError(
                f"task {self.name!r}: all tasks must write to at least one "
                f"communicator (restriction 1)"
            )
        seen: set[PortRef] = set()
        for port in self.outputs:
            if port in seen:
                raise SpecificationError(
                    f"task {self.name!r}: writes communicator instance "
                    f"({port.communicator}, {port.instance}) multiple times "
                    f"(restriction 4)"
                )
            seen.add(port)
        if self.model in (FailureModel.PARALLEL, FailureModel.INDEPENDENT):
            missing = self.input_communicators() - set(self.defaults)
            if missing:
                raise SpecificationError(
                    f"task {self.name!r}: failure model "
                    f"{self.model.name.lower()} requires a default value for "
                    f"every input communicator; missing {sorted(missing)}"
                )

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    def input_communicators(self) -> set[str]:
        """Return ``icset_t``: the names of communicators read by the task."""
        return {port.communicator for port in self.inputs}

    def output_communicators(self) -> set[str]:
        """Return the names of communicators written by the task."""
        return {port.communicator for port in self.outputs}

    def read_time(self, periods: Mapping[str, int]) -> int:
        """Return ``read_t = max_j pi_c * i`` over input ports ``(c, i)``.

        *periods* maps communicator names to their periods.
        """
        return max(periods[p.communicator] * p.instance for p in self.inputs)

    def write_time(self, periods: Mapping[str, int]) -> int:
        """Return ``write_t = min_k pi_c * i`` over output ports ``(c, i)``."""
        return min(periods[p.communicator] * p.instance for p in self.outputs)

    def let(self, periods: Mapping[str, int]) -> tuple[int, int]:
        """Return the logical execution time window ``[read_t, write_t]``."""
        return self.read_time(periods), self.write_time(periods)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def resolve_inputs(self, raw: Sequence[Any]) -> list[Any] | None:
        """Apply the input failure model to raw input values.

        *raw* holds one value per input port, possibly ``BOTTOM``.
        Returns the substituted argument list, or ``None`` if the task
        fails to execute under its failure model.
        """
        from repro.model.values import BOTTOM

        if len(raw) != len(self.inputs):
            raise SpecificationError(
                f"task {self.name!r}: expected {len(self.inputs)} input "
                f"values, got {len(raw)}"
            )
        unreliable = [value is BOTTOM for value in raw]
        if self.model is FailureModel.SERIES:
            if any(unreliable):
                return None
            return list(raw)
        if self.model is FailureModel.PARALLEL and all(unreliable):
            return None
        # PARALLEL with at least one reliable input, or INDEPENDENT:
        # substitute defaults for the unreliable positions.
        resolved = []
        for port, value, bad in zip(self.inputs, raw, unreliable):
            resolved.append(self.defaults[port.communicator] if bad else value)
        return resolved

    def execute(self, raw_inputs: Sequence[Any]) -> tuple[Any, ...] | None:
        """Run ``fn_t`` on raw input values under the failure model.

        Returns a tuple with one value per output port, or ``None`` if
        the task fails to execute (series/parallel failure).
        """
        if self.function is None:
            raise SpecificationError(
                f"task {self.name!r} has no function and cannot be executed"
            )
        arguments = self.resolve_inputs(raw_inputs)
        if arguments is None:
            return None
        result = self.function(*arguments)
        if not isinstance(result, tuple):
            result = (result,)
        if len(result) != len(self.outputs):
            raise SpecificationError(
                f"task {self.name!r}: function returned {len(result)} "
                f"values for {len(self.outputs)} output ports"
            )
        return result

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return (
            self.name == other.name
            and self.inputs == other.inputs
            and self.outputs == other.outputs
            and self.model == other.model
        )
