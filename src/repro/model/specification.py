"""The flattened specification ``S = (tset, cset)`` and its invariants.

A specification consists of a set of communicators and a set of tasks
subject to the paper's four structural restrictions:

1. every task reads from and writes to at least one communicator;
2. every task's read time is strictly earlier than its write time;
3. no two tasks write to the same communicator (single-writer,
   race-freedom);
4. no task writes the same communicator instance multiple times.

Restrictions 1 and 4 are enforced by :class:`~repro.model.task.Task`;
this module enforces 2 and 3 plus referential integrity, and derives
the specification period ``pi_S``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import SpecificationError
from repro.model.communicator import Communicator
from repro.model.task import Task


def _lcm_all(values: Iterable[int]) -> int:
    result = 1
    for value in values:
        result = math.lcm(result, value)
    return result


@dataclass(frozen=True)
class Specification:
    """An immutable, validated specification ``S = (tset, cset)``.

    Construct with any iterables of :class:`Communicator` and
    :class:`Task`; the constructor validates the structural
    restrictions and freezes the result.
    """

    communicators: Mapping[str, Communicator]
    tasks: Mapping[str, Task]

    def __init__(
        self, communicators: Iterable[Communicator], tasks: Iterable[Task]
    ) -> None:
        cset: dict[str, Communicator] = {}
        for comm in communicators:
            if comm.name in cset:
                raise SpecificationError(
                    f"duplicate communicator name {comm.name!r}"
                )
            cset[comm.name] = comm
        tset: dict[str, Task] = {}
        for task in tasks:
            if task.name in tset:
                raise SpecificationError(f"duplicate task name {task.name!r}")
            if task.name in cset:
                raise SpecificationError(
                    f"name {task.name!r} used for both a task and a "
                    f"communicator"
                )
            tset[task.name] = task
        object.__setattr__(self, "communicators", cset)
        object.__setattr__(self, "tasks", tset)
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        if not self.communicators:
            raise SpecificationError(
                "a specification needs at least one communicator"
            )
        periods = self.periods()
        writers: dict[str, str] = {}
        for task in self.tasks.values():
            for port in list(task.inputs) + list(task.outputs):
                if port.communicator not in self.communicators:
                    raise SpecificationError(
                        f"task {task.name!r} references undeclared "
                        f"communicator {port.communicator!r}"
                    )
            read = task.read_time(periods)
            write = task.write_time(periods)
            if read >= write:
                raise SpecificationError(
                    f"task {task.name!r}: read time {read} must be strictly "
                    f"earlier than write time {write} (restriction 2)"
                )
            for name in task.output_communicators():
                if name in writers:
                    raise SpecificationError(
                        f"communicator {name!r} is written by both "
                        f"{writers[name]!r} and {task.name!r} (restriction 3)"
                    )
                writers[name] = task.name

    # ------------------------------------------------------------------
    # Derived timing quantities
    # ------------------------------------------------------------------

    def periods(self) -> dict[str, int]:
        """Return the map from communicator name to period ``pi_c``."""
        return {name: c.period for name, c in self.communicators.items()}

    def base_tick(self) -> int:
        """Return the gcd of all communicator periods.

        This is the granularity of time instants: every communicator
        access falls on a multiple of the base tick.
        """
        return math.gcd(*(c.period for c in self.communicators.values()))

    def lcm_period(self) -> int:
        """Return ``lcm(cset)``, the lcm of all communicator periods."""
        return _lcm_all(c.period for c in self.communicators.values())

    def period(self) -> int:
        """Return the specification period ``pi_S``.

        ``pi_S`` is the smallest multiple of ``lcm(cset)`` that is at
        least the latest task write time, i.e.
        ``pi_S = lcm(cset) * ceil(max_t write_t / lcm(cset))``.
        All tasks repeat with this periodicity.
        """
        lcm = self.lcm_period()
        if not self.tasks:
            return lcm
        periods = self.periods()
        latest = max(t.write_time(periods) for t in self.tasks.values())
        return lcm * max(1, math.ceil(latest / lcm))

    def read_time(self, task_name: str) -> int:
        """Return the read time of the named task."""
        return self.tasks[task_name].read_time(self.periods())

    def write_time(self, task_name: str) -> int:
        """Return the write time of the named task."""
        return self.tasks[task_name].write_time(self.periods())

    def let(self, task_name: str) -> tuple[int, int]:
        """Return the LET window ``[read, write]`` of the named task."""
        return self.tasks[task_name].let(self.periods())

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    def writer_of(self, communicator: str) -> Task | None:
        """Return the unique task writing *communicator*, or ``None``.

        A communicator without a writing task is an *input
        communicator*: it is updated by a physical sensor.
        """
        if communicator not in self.communicators:
            raise SpecificationError(
                f"unknown communicator {communicator!r}"
            )
        for task in self.tasks.values():
            if communicator in task.output_communicators():
                return task
        return None

    def input_communicators(self) -> set[str]:
        """Return the names of sensor-updated (input) communicators."""
        written = set()
        for task in self.tasks.values():
            written |= task.output_communicators()
        read = set()
        for task in self.tasks.values():
            read |= task.input_communicators()
        return {name for name in read if name not in written}

    def output_communicators(self) -> set[str]:
        """Return the names of communicators read by no task.

        These are read only by physical actuators.
        """
        read = set()
        for task in self.tasks.values():
            read |= task.input_communicators()
        written = set()
        for task in self.tasks.values():
            written |= task.output_communicators()
        return {name for name in written if name not in read}

    def readers_of(self, communicator: str) -> list[Task]:
        """Return the tasks that read *communicator*, in name order."""
        return sorted(
            (
                t
                for t in self.tasks.values()
                if communicator in t.input_communicators()
            ),
            key=lambda t: t.name,
        )

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks.values())

    def __contains__(self, name: str) -> bool:
        return name in self.tasks or name in self.communicators

    def replace_lrcs(self, lrcs: Mapping[str, float]) -> "Specification":
        """Return a copy with the LRCs of the named communicators changed."""
        new_comms = [
            c.with_lrc(lrcs[c.name]) if c.name in lrcs else c
            for c in self.communicators.values()
        ]
        return Specification(new_comms, self.tasks.values())

    def with_tasks(self, tasks: Iterable[Task]) -> "Specification":
        """Return a copy of this specification with a different task set."""
        return Specification(self.communicators.values(), tasks)
