"""Communicator declarations.

A communicator (Section 2) is a typed program variable accessed with a
fixed periodicity.  The declaration ``(c, type_c, init_c, pi_c, mu_c)``
carries the name, data type, initial value, accessibility period, and
the logical reliability constraint (LRC) ``mu_c`` in ``(0, 1]``: the
fraction of periodic updates that must carry reliable values in the
long run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SpecificationError


@dataclass(frozen=True)
class Communicator:
    """A periodic, typed, reliability-constrained program variable.

    Parameters
    ----------
    name:
        Unique communicator name.
    period:
        Accessibility period ``pi_c`` (a positive integer, in the
        specification's base time unit).  Instance ``i`` of the
        communicator is accessed at time ``i * period``; instances are
        0-based, matching the formal definition ``(c, i)`` with
        ``i in N_0``.
    lrc:
        Logical reliability constraint ``mu_c in (0, 1]``.  An LRC of
        0.9 requires that in the long run at least 90% of the periodic
        writes to this communicator carry reliable values.
    ctype:
        Data type of reliable values (informational; used by the HTL
        frontend for port-type checking).
    init:
        Initial value, written at time 0 before any task output.
    """

    name: str
    period: int
    lrc: float = 1.0
    ctype: type = float
    init: Any = field(default=0.0)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("communicator name must be non-empty")
        if not isinstance(self.period, int) or self.period <= 0:
            raise SpecificationError(
                f"communicator {self.name!r}: period must be a positive "
                f"integer, got {self.period!r}"
            )
        if not 0.0 < self.lrc <= 1.0:
            raise SpecificationError(
                f"communicator {self.name!r}: LRC must lie in (0, 1], "
                f"got {self.lrc!r}"
            )

    def instance_time(self, instance: int) -> int:
        """Return the access time of 0-based instance *instance*."""
        if instance < 0:
            raise SpecificationError(
                f"communicator {self.name!r}: instance must be >= 0, "
                f"got {instance}"
            )
        return instance * self.period

    def with_lrc(self, lrc: float) -> "Communicator":
        """Return a copy of this communicator with a different LRC."""
        return Communicator(
            name=self.name,
            period=self.period,
            lrc=lrc,
            ctype=self.ctype,
            init=self.init,
        )
