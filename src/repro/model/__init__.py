"""Specification model: communicators, tasks, and their composition.

This package implements Section 2 ("Background") of the paper: typed
periodic communicators with logical reliability constraints (LRCs),
atomic tasks with input failure models, the flattened specification
``S = (tset, cset)`` with its structural restrictions, and the
specification graph used to decide memory-freedom.
"""

from repro.model.values import BOTTOM, Bottom, is_reliable_value
from repro.model.communicator import Communicator
from repro.model.task import FailureModel, PortRef, Task
from repro.model.specification import Specification
from repro.model.graph import (
    SpecificationGraph,
    communicator_dependency_graph,
    find_communicator_cycles,
    is_memory_free,
    unsafe_cycles,
)

__all__ = [
    "BOTTOM",
    "Bottom",
    "Communicator",
    "FailureModel",
    "PortRef",
    "Specification",
    "SpecificationGraph",
    "Task",
    "communicator_dependency_graph",
    "find_communicator_cycles",
    "is_memory_free",
    "is_reliable_value",
    "unsafe_cycles",
]
