"""Communicator values and the unreliable-value symbol.

The paper extends every communicator's data type with a special symbol
(written ``bottom``) that represents an *unreliable* value: the value a
communicator carries when the task (or sensor) that should have updated
it failed to execute.  Any non-bottom value is considered reliable.
"""

from __future__ import annotations

from typing import Any


class Bottom:
    """The unreliable-value symbol, a singleton.

    ``BOTTOM`` compares equal only to itself, hashes consistently, and
    is falsy so that reliability checks read naturally.
    """

    _instance: "Bottom | None" = None

    def __new__(cls) -> "Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "BOTTOM"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        # Preserve the singleton across pickling (used when traces are
        # recorded by worker processes).
        return (Bottom, ())


BOTTOM = Bottom()


def is_reliable_value(value: Any) -> bool:
    """Return ``True`` iff *value* is a reliable (non-bottom) value.

    Note that ordinary falsy values such as ``0`` or ``0.0`` are
    perfectly reliable; only the ``BOTTOM`` singleton is unreliable.
    """
    return value is not BOTTOM
