"""Specification graphs and memory-freedom (Section 3 of the paper).

Two graph views of a specification are provided:

* the exact *specification graph* ``G_S``: one vertex per communicator
  instance ``(c, i)`` with ``i in {0, ..., pi_S / pi_c}`` and one vertex
  per task; edges from read instances to tasks, from tasks to written
  instances, and *persistence* edges between successive instances of a
  communicator that are not overwritten in between;

* the *communicator dependency graph*: one vertex per communicator, an
  edge ``c -> c'`` labelled by every task that reads ``c`` and writes
  ``c'``.  Data-flow paths in ``G_S`` project onto paths here, so a
  communicator cycle in ``G_S`` corresponds to a cycle in this graph.

A *communicator cycle* is a path in ``G_S`` from some instance of a
communicator to another instance of the same communicator that passes
through at least one task.  A specification is *memory-free* if it has
no communicator cycle; Proposition 1 (SRG >= LRC implies reliability)
is proved for memory-free specifications.  For specifications with
memory, a cycle is *safe* only if it contains at least one task with
the independent input failure model, which breaks the propagation of
unreliable values around the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.model.specification import Specification
from repro.model.task import FailureModel, Task


@dataclass
class SpecificationGraph:
    """The exact specification graph ``G_S = (V_S, E_S)``.

    Vertices are either strings (task names) or ``(name, instance)``
    tuples (communicator instances).  The underlying
    :class:`networkx.DiGraph` is exposed as :attr:`graph`.
    """

    spec: Specification
    graph: nx.DiGraph = field(init=False)

    def __post_init__(self) -> None:
        self.graph = _build_specification_graph(self.spec)

    def communicator_vertices(self, name: str) -> list[tuple[str, int]]:
        """Return all instance vertices of communicator *name*."""
        return sorted(
            v
            for v in self.graph.nodes
            if isinstance(v, tuple) and v[0] == name
        )

    def task_vertices(self) -> list[str]:
        """Return all task vertices."""
        return sorted(v for v in self.graph.nodes if isinstance(v, str))

    def has_communicator_cycle(self) -> bool:
        """Return ``True`` iff some communicator cycle exists in ``G_S``."""
        return bool(self.communicator_cycles())

    def communicator_cycles(self) -> list[str]:
        """Return the communicators that lie on a communicator cycle.

        A communicator ``c`` is returned when some path from an
        instance ``(c, i)`` reaches another instance ``(c, i')`` while
        passing through at least one task vertex.
        """
        cyclic: list[str] = []
        for name in self.spec.communicators:
            starts = self.communicator_vertices(name)
            if self._reaches_self_through_task(name, starts):
                cyclic.append(name)
        return cyclic

    def _reaches_self_through_task(
        self, name: str, starts: Iterable[tuple[str, int]]
    ) -> bool:
        # Search for a path start -> ... -> (name, j) whose interior
        # contains a task vertex.  We track, per visited vertex, whether
        # a task has been traversed on the way there; a vertex may need
        # to be revisited once with the flag set.
        for start in starts:
            seen: set[tuple[object, bool]] = set()
            stack: list[tuple[object, bool]] = [(start, False)]
            while stack:
                vertex, via_task = stack.pop()
                if (vertex, via_task) in seen:
                    continue
                seen.add((vertex, via_task))
                for succ in self.graph.successors(vertex):
                    succ_via = via_task or isinstance(succ, str)
                    if (
                        isinstance(succ, tuple)
                        and succ[0] == name
                        and via_task
                    ):
                        return True
                    stack.append((succ, succ_via))
        return False


def _build_specification_graph(spec: Specification) -> nx.DiGraph:
    graph = nx.DiGraph()
    period = spec.period()
    periods = spec.periods()
    instance_counts = {
        name: period // comm.period
        for name, comm in spec.communicators.items()
    }
    for name, count in instance_counts.items():
        for i in range(count + 1):
            graph.add_node((name, i))
    written: dict[str, set[int]] = {name: set() for name in spec.communicators}
    for task in spec.tasks.values():
        graph.add_node(task.name)
        for port in task.inputs:
            graph.add_edge((port.communicator, port.instance), task.name)
        for port in task.outputs:
            graph.add_edge(task.name, (port.communicator, port.instance))
            written[port.communicator].add(port.instance)
    # Persistence edges: (c, i) -> (c, i') for i < i' when no task
    # writes any instance i'' with i < i'' <= i'.  It suffices to link
    # consecutive instances whose successor is not written.
    for name, count in instance_counts.items():
        for i in range(count):
            if (i + 1) not in written[name]:
                graph.add_edge((name, i), (name, i + 1))
    del periods  # periods only needed for validation done by Specification
    return graph


def communicator_dependency_graph(spec: Specification) -> nx.DiGraph:
    """Return the communicator dependency graph of *spec*.

    Vertices are communicator names.  An edge ``c -> c'`` carries
    attribute ``tasks``: the list of tasks reading ``c`` and writing
    ``c'``, and ``models``: their failure models.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(spec.communicators)
    for task in spec.tasks.values():
        for src in sorted(task.input_communicators()):
            for dst in sorted(task.output_communicators()):
                if graph.has_edge(src, dst):
                    graph[src][dst]["tasks"].append(task.name)
                    graph[src][dst]["models"].append(task.model)
                else:
                    graph.add_edge(
                        src, dst, tasks=[task.name], models=[task.model]
                    )
    return graph


def is_memory_free(spec: Specification) -> bool:
    """Return ``True`` iff *spec* has no communicator cycle.

    Memory-freedom is the hypothesis of Proposition 1: with it, the
    long-run reliable fraction of every communicator equals its SRG
    with probability 1.
    """
    return not SpecificationGraph(spec).has_communicator_cycle()


def _dependency_order(cycle: list[str]) -> list[str]:
    """Rotate *cycle* so its smallest element comes first.

    ``nx.simple_cycles`` yields each elementary cycle in traversal
    (dependency) order but with an arbitrary starting vertex; the
    stable rotation keeps the data-flow order intact — successive
    entries are real dependency-graph edges — while making the
    reported cycle deterministic.
    """
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


@dataclass(frozen=True)
class CycleWitness:
    """One communicator cycle with the tasks that realise each edge.

    ``communicators[i]`` flows into ``communicators[i + 1]`` (indices
    wrapping around) through the tasks in ``edge_tasks[i]``; the tasks
    on the final, wrapping edge are the ones that *close* the cycle.
    ``safe`` is ``True`` when some edge carries a task with the
    independent input failure model, which stops unreliable values
    from propagating around the cycle forever.
    """

    communicators: tuple[str, ...]
    edge_tasks: tuple[tuple[str, ...], ...]
    safe: bool

    def closing_tasks(self) -> tuple[str, ...]:
        """Return the tasks on the edge that closes the cycle."""
        return self.edge_tasks[-1]

    def describe(self) -> str:
        """Render the witness path, e.g. ``b -[t1]-> c -[t2]-> b``."""
        parts: list[str] = []
        for name, tasks in zip(self.communicators, self.edge_tasks):
            parts.append(f"{name} -[{','.join(tasks)}]->")
        parts.append(self.communicators[0])
        return " ".join(parts)


def dependency_cycle_witnesses(graph: nx.DiGraph) -> list[CycleWitness]:
    """Return a :class:`CycleWitness` per elementary cycle of *graph*.

    *graph* must carry ``tasks``/``models`` edge attributes as built by
    :func:`communicator_dependency_graph`.  Cycles are reported in
    dependency order (stable min-first rotation) and sorted for
    determinism.
    """
    witnesses: list[CycleWitness] = []
    for cycle in nx.simple_cycles(graph):
        ordered = _dependency_order(list(cycle))
        edges = list(zip(ordered, ordered[1:] + ordered[:1]))
        edge_tasks = tuple(
            tuple(sorted(graph[u][v]["tasks"])) for u, v in edges
        )
        safe = any(
            FailureModel.INDEPENDENT in graph[u][v]["models"]
            for u, v in edges
        )
        witnesses.append(
            CycleWitness(
                communicators=tuple(ordered),
                edge_tasks=edge_tasks,
                safe=safe,
            )
        )
    witnesses.sort(key=lambda w: w.communicators)
    return witnesses


def cycle_witnesses(spec: Specification) -> list[CycleWitness]:
    """Return the communicator-cycle witnesses of *spec*."""
    return dependency_cycle_witnesses(communicator_dependency_graph(spec))


def find_communicator_cycles(spec: Specification) -> list[list[str]]:
    """Return the elementary communicator cycles of *spec*.

    Each cycle is reported as the list of communicator names around
    the cycle in dependency order (successive entries are actual
    dependency-graph edges), rotated so the smallest name comes first
    for determinism.
    """
    return [list(w.communicators) for w in cycle_witnesses(spec)]


def unsafe_cycles(spec: Specification) -> list[list[str]]:
    """Return the communicator cycles with no independent-model breaker.

    For each communicator cycle there must be at least one task on the
    cycle with the independent input failure model; otherwise a single
    unreliable write poisons the cycle forever and the long-run
    reliable fraction collapses to 0 (Section 3, "Specification with
    memory").  The returned cycles are the violating ones, each in
    dependency order; an empty list means every cycle is safe.
    """
    return [
        list(w.communicators)
        for w in cycle_witnesses(spec)
        if not w.safe
    ]


def srg_evaluation_order(spec: Specification) -> list[str]:
    """Return a communicator order suitable for inductive SRG evaluation.

    Independent-model tasks do not propagate input reliability, so
    their input edges are dropped; the remaining dependency graph must
    be acyclic (guaranteed when :func:`unsafe_cycles` is empty).
    Raises :class:`networkx.NetworkXUnfeasible` otherwise.
    """
    graph = communicator_dependency_graph(spec)
    pruned = nx.DiGraph()
    pruned.add_nodes_from(graph.nodes)
    for u, v, data in graph.edges(data=True):
        models = data["models"]
        if any(m is not FailureModel.INDEPENDENT for m in models):
            pruned.add_edge(u, v)
    return list(nx.topological_sort(pruned))


def task_dependency_graph(spec: Specification) -> nx.DiGraph:
    """Return the task-level data-flow graph.

    Vertices are task names; an edge ``t -> t'`` means some output
    communicator of ``t`` is an input communicator of ``t'``.  Used by
    synthesis heuristics and the scheduler's precedence-aware list
    scheduling mode.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(spec.tasks)
    writer: dict[str, Task] = {}
    for task in spec.tasks.values():
        for name in task.output_communicators():
            writer[name] = task
    for task in spec.tasks.values():
        for name in task.input_communicators():
            if name in writer and writer[name].name != task.name:
                graph.add_edge(writer[name].name, task.name)
    return graph
