"""Exact limit averages for specifications with memory.

Section 3 of the paper handles communicator cycles with a blunt rule:
a cycle must contain an *independent*-model task, otherwise the
long-run average collapses to 0.  That rule is sound but conservative
for the **parallel** input failure model: a self-integrating task that
also reads a fresh external input recovers from a poisoned cycle
whenever the external input is reliable, so its long-run average is
neither the SRG nor 0 — it is the stationary probability of a two-state
Markov chain.

For a task ``t`` with the parallel model that reads its own output
communicator ``c`` plus external inputs with combined reliability
``e = 1 - prod (1 - lambda_ext)``:

* from a *reliable* state, the task always executes (its cycle input
  is reliable), so the next state is reliable with probability
  ``lambda_t``;
* from an *unreliable* state, the task executes only if some external
  input is reliable, so the next state is reliable with probability
  ``e * lambda_t``.

The stationary reliable-state probability is::

    pi = (e * lambda_t) / (1 - lambda_t + e * lambda_t)

which degrades gracefully: ``e = 1`` gives ``lambda_t`` (the
memory-free value) and ``e = 0`` gives 0 (the paper's collapse).  The
test suite validates the formula against long simulations.

Scope: self-loop cycles (one task reading and writing the same
communicator).  Longer cycles compose more states; the analysis
refuses them rather than approximating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.architecture import Architecture
from repro.errors import AnalysisError
from repro.mapping.implementation import Implementation
from repro.model.graph import find_communicator_cycles
from repro.model.specification import Specification
from repro.model.task import FailureModel
from repro.reliability.srg import (
    input_communicator_srg,
    task_reliability,
)


def parallel_cycle_limit_average(
    lambda_t: float, external_reliability: float
) -> float:
    """Stationary reliable fraction of a parallel-model self-cycle."""
    if not 0.0 <= lambda_t <= 1.0:
        raise AnalysisError(
            f"lambda_t must lie in [0, 1], got {lambda_t}"
        )
    if not 0.0 <= external_reliability <= 1.0:
        raise AnalysisError(
            f"external reliability must lie in [0, 1], got "
            f"{external_reliability}"
        )
    if lambda_t == 1.0:
        return 1.0
    numerator = external_reliability * lambda_t
    return numerator / (1.0 - lambda_t + numerator)


@dataclass(frozen=True)
class CycleVerdict:
    """Exact long-run behaviour of one self-cycle communicator."""

    communicator: str
    task: str
    model: FailureModel
    lambda_t: float
    external_reliability: float
    limit_average: float


def analyze_memory_cycles(
    spec: Specification,
    implementation: Implementation,
    arch: Architecture,
) -> dict[str, CycleVerdict]:
    """Return the exact limit average of every self-cycle communicator.

    Supports cycles of length 1 (a task reading and writing the same
    communicator); raises :class:`AnalysisError` on longer cycles.
    External inputs of the cycle task must themselves be memory-free
    (sensor inputs or initial-value communicators) — nested memory is
    out of scope.
    """
    implementation.validate(spec, arch)
    verdicts: dict[str, CycleVerdict] = {}
    inputs = spec.input_communicators()
    for cycle in find_communicator_cycles(spec):
        if len(cycle) != 1:
            raise AnalysisError(
                f"cycle {cycle} has length {len(cycle)}; the Markov "
                f"analysis supports self-loops only"
            )
        (name,) = cycle
        writer = spec.writer_of(name)
        if writer is None:  # pragma: no cover - cycles imply a writer
            continue
        lambda_t = task_reliability(writer.name, implementation, arch)
        external = [
            c
            for c in sorted(writer.input_communicators())
            if c != name
        ]
        failure = 1.0
        for comm in external:
            if comm in inputs:
                srg = input_communicator_srg(
                    comm, implementation, arch
                )
            elif spec.writer_of(comm) is None:
                srg = 1.0  # persistent initial value
            else:
                raise AnalysisError(
                    f"cycle {name!r}: external input {comm!r} is "
                    f"task-written; nested memory is not supported"
                )
            failure *= 1.0 - srg
        external_reliability = 1.0 - failure if external else 0.0

        if writer.model is FailureModel.INDEPENDENT:
            average = lambda_t
        elif writer.model is FailureModel.PARALLEL:
            average = parallel_cycle_limit_average(
                lambda_t, external_reliability
            )
        else:  # SERIES: one bottom poisons the cycle forever.
            average = 1.0 if lambda_t == 1.0 else 0.0
        verdicts[name] = CycleVerdict(
            communicator=name,
            task=writer.name,
            model=writer.model,
            lambda_t=lambda_t,
            external_reliability=external_reliability,
            limit_average=average,
        )
    return verdicts


def memory_aware_reliable(
    spec: Specification,
    implementation: Implementation,
    arch: Architecture,
) -> bool:
    """LRC check for self-cycle communicators using the exact averages.

    Complements :func:`repro.reliability.check_reliability` (which
    only admits independent-model breakers): here a parallel-model
    self-cycle passes when its *stationary* average meets the LRC.
    Only the cycle communicators are checked — combine with the
    memory-free analysis of the rest of the specification.
    """
    verdicts = analyze_memory_cycles(spec, implementation, arch)
    return all(
        verdict.limit_average
        >= spec.communicators[name].lrc - 1e-9
        for name, verdict in verdicts.items()
    )
