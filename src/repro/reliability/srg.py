"""Singular reliability guarantees (SRGs).

Given an implementation ``I``, the reliability of a task ``t`` is

    lambda_t = 1 - prod_{h in I(t)} (1 - hrel(h) * brel)

(the probability that at least one replication executes and its output
broadcast is delivered; ``brel`` is the atomic-broadcast reliability,
1.0 under the paper's assumption).  The SRG ``lambda_c`` of a
communicator ``c`` is then defined inductively:

* input communicator updated by sensors ``B``:
  ``lambda_c = 1 - prod_{s in B} (1 - srel(s))``
  (the paper's single-sensor case is ``lambda_c = srel(s)``);
* written by task ``t`` with input communicator set ``icset_t``:

  - series (model 1):      ``lambda_c = lambda_t * prod lambda_c'``
  - parallel (model 2):    ``lambda_c = lambda_t * (1 - prod (1 - lambda_c'))``
  - independent (model 3): ``lambda_c = lambda_t``

The induction is well-founded for memory-free specifications and, more
generally, whenever every communicator cycle contains an
independent-model task (whose SRG does not depend on its inputs).
"""

from __future__ import annotations

import math
from typing import Mapping

import networkx as nx

from repro.arch.architecture import Architecture
from repro.errors import AnalysisError
from repro.mapping.implementation import Implementation
from repro.model.graph import srg_evaluation_order
from repro.model.specification import Specification
from repro.model.task import FailureModel, Task
from repro.reliability.rbd import Block, Parallel, Series, Unit


def task_reliability(
    task: str, implementation: Implementation, arch: Architecture
) -> float:
    """Return ``lambda_t`` for *task* under *implementation*.

    With replications on hosts ``I(t)``, the task executes reliably in
    an iteration when at least one replication's host survives the
    invocation *and* its output broadcast is delivered.  Broadcast
    failures are atomic and independent per replication.
    """
    brel = arch.network.reliability
    failure = 1.0
    for host in implementation.hosts_of(task):
        failure *= 1.0 - arch.hrel(host) * brel
    return 1.0 - failure


def input_communicator_srg(
    communicator: str, implementation: Implementation, arch: Architecture
) -> float:
    """Return the SRG of a sensor-updated input communicator.

    Reliable when at least one bound sensor delivers; sensors write
    their local replications directly (no broadcast involved), matching
    the paper's assumption that the environment writes identical values
    to all replications of a sensor.
    """
    failure = 1.0
    for sensor in implementation.sensors_of(communicator):
        failure *= 1.0 - arch.srel(sensor)
    return 1.0 - failure


def _written_communicator_srg(
    task: Task, lambda_t: float, input_srgs: Mapping[str, float]
) -> float:
    """Combine ``lambda_t`` with input SRGs per the task's failure model."""
    icset = sorted(task.input_communicators())
    if task.model is FailureModel.SERIES:
        return lambda_t * math.prod(input_srgs[c] for c in icset)
    if task.model is FailureModel.PARALLEL:
        all_fail = math.prod(1.0 - input_srgs[c] for c in icset)
        return lambda_t * (1.0 - all_fail)
    return lambda_t  # INDEPENDENT


def communicator_srgs(
    spec: Specification,
    implementation: Implementation,
    arch: Architecture,
) -> dict[str, float]:
    """Return ``lambda_c`` for every communicator of *spec*.

    Evaluated inductively along the communicator dependency order with
    independent-model edges removed.  Raises :class:`AnalysisError` if
    no such order exists (a communicator cycle without an
    independent-model breaker); use
    :func:`repro.model.graph.unsafe_cycles` to diagnose.
    """
    implementation.validate(spec, arch)
    try:
        order = srg_evaluation_order(spec)
    except nx.NetworkXUnfeasible:
        raise AnalysisError(
            "SRGs are undefined: the specification has a communicator "
            "cycle with no independent-model task to break it"
        ) from None
    inputs = spec.input_communicators()
    srgs: dict[str, float] = {}
    for name in order:
        writer = spec.writer_of(name)
        if writer is None:
            if name in inputs:
                srgs[name] = input_communicator_srg(
                    name, implementation, arch
                )
            else:
                # Never written and never read by a task: the initial
                # value persists and is reliable at every access point.
                srgs[name] = 1.0
        else:
            # Every input of a non-independent writer precedes `name`
            # in `order` (only edges whose tasks are all independent
            # are pruned, and the writer of `name` sits on each of its
            # own input edges), so the induction never dangles.
            lambda_t = task_reliability(writer.name, implementation, arch)
            if writer.model is FailureModel.INDEPENDENT:
                srgs[name] = lambda_t
            else:
                srgs[name] = _written_communicator_srg(
                    writer, lambda_t, srgs
                )
    return srgs


def srg_block(
    spec: Specification,
    implementation: Implementation,
    arch: Architecture,
    communicator: str,
) -> Block:
    """Return the RBD whose reliability is the SRG of *communicator*.

    The diagram makes the AND/OR structure of the SRG formulas
    explicit: task replications form a parallel block over host units,
    in series with the input network (a series junction for model 1, a
    parallel junction for model 2, nothing for model 3).  Only defined
    for memory-free dependency structures — the block expansion treats
    each input sub-diagram as an independent component, exactly as the
    inductive formula does.

    ``srg_block(...).reliability()`` equals
    ``communicator_srgs(...)[communicator]`` up to floating-point
    rounding; the test suite asserts this agreement on random
    specifications.
    """
    implementation.validate(spec, arch)
    try:
        srg_evaluation_order(spec)
    except nx.NetworkXUnfeasible:
        raise AnalysisError(
            "cannot build an RBD for a specification with unbroken "
            "communicator cycles"
        ) from None
    return _block_for(spec, implementation, arch, communicator, depth=0)


def _block_for(
    spec: Specification,
    implementation: Implementation,
    arch: Architecture,
    communicator: str,
    depth: int,
) -> Block:
    if depth > len(spec.communicators) + 1:
        raise AnalysisError(
            f"RBD expansion for {communicator!r} exceeded the dependency "
            f"depth bound; the specification is not memory-free"
        )
    writer = spec.writer_of(communicator)
    if writer is None:
        if communicator in spec.input_communicators():
            sensors = sorted(implementation.sensors_of(communicator))
            return Parallel(
                [Unit(arch.srel(s), label=f"sensor:{s}") for s in sensors]
            )
        return Unit(1.0, label=f"init:{communicator}")
    brel = arch.network.reliability
    replication_block = Parallel(
        [
            Unit(arch.hrel(h) * brel, label=f"{writer.name}@{h}")
            for h in sorted(implementation.hosts_of(writer.name))
        ]
    )
    if writer.model is FailureModel.INDEPENDENT:
        return replication_block
    input_blocks = [
        _block_for(spec, implementation, arch, name, depth + 1)
        for name in sorted(writer.input_communicators())
    ]
    if writer.model is FailureModel.SERIES:
        return Series([replication_block, *input_blocks])
    return Series([replication_block, Parallel(input_blocks)])
