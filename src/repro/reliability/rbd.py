"""Reliability block diagrams (RBDs).

The paper's SRG computation follows the reliability-block-diagram
approach (Kececioglu): a system is modelled as a network with AND/OR
junctions, where an OR junction works when *any* input works (parallel
composition) and an AND junction requires *all* inputs (series
composition).  Replications of a task form a parallel block; the task
block is in series with the blocks of its input communicators
(series model) or in series with a parallel block over its inputs
(parallel model).

Blocks assume statistically independent components, matching the
paper's composition rules.  ``KOutOfN`` generalises parallel blocks to
voting structures that need at least ``k`` working inputs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError


class Block:
    """Base class for RBD blocks.  Subclasses implement ``reliability``."""

    def reliability(self) -> float:
        """Return the probability that the block works."""
        raise NotImplementedError

    def failure_probability(self) -> float:
        """Return the probability that the block fails."""
        return 1.0 - self.reliability()

    # Composition sugar ------------------------------------------------

    def in_series_with(self, other: "Block") -> "Series":
        """Return the series (AND) composition of this block and *other*."""
        return Series([self, other])

    def in_parallel_with(self, other: "Block") -> "Parallel":
        """Return the parallel (OR) composition of this block and *other*."""
        return Parallel([self, other])


@dataclass(frozen=True)
class Unit(Block):
    """A single component with a fixed working probability.

    The *label* is informational (host, sensor, or link name) and shows
    up in diagnostic rendering.
    """

    probability: float
    label: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise AnalysisError(
                f"unit {self.label!r}: probability must lie in [0, 1], "
                f"got {self.probability!r}"
            )

    def reliability(self) -> float:
        return self.probability

    def __repr__(self) -> str:
        label = f"{self.label}=" if self.label else ""
        return f"Unit({label}{self.probability})"


class Series(Block):
    """AND junction: works only when every sub-block works."""

    def __init__(self, blocks: Sequence[Block]):
        if not blocks:
            raise AnalysisError("a series block needs at least one sub-block")
        self.blocks = tuple(blocks)

    def reliability(self) -> float:
        return math.prod(block.reliability() for block in self.blocks)

    def __repr__(self) -> str:
        return f"Series({list(self.blocks)!r})"


class Parallel(Block):
    """OR junction: works when at least one sub-block works."""

    def __init__(self, blocks: Sequence[Block]):
        if not blocks:
            raise AnalysisError(
                "a parallel block needs at least one sub-block"
            )
        self.blocks = tuple(blocks)

    def reliability(self) -> float:
        return 1.0 - math.prod(
            block.failure_probability() for block in self.blocks
        )

    def __repr__(self) -> str:
        return f"Parallel({list(self.blocks)!r})"


class KOutOfN(Block):
    """A voting block that works when at least *k* of its inputs work.

    ``KOutOfN(1, blocks)`` equals :class:`Parallel`;
    ``KOutOfN(len(blocks), blocks)`` equals :class:`Series`.  The exact
    probability is computed by enumerating working subsets, which is
    fine for the replication degrees that occur in practice (a handful
    of hosts); heterogeneous component reliabilities are supported.
    """

    def __init__(self, k: int, blocks: Sequence[Block]):
        if not blocks:
            raise AnalysisError(
                "a k-out-of-n block needs at least one sub-block"
            )
        if not 1 <= k <= len(blocks):
            raise AnalysisError(
                f"k must lie in [1, {len(blocks)}], got {k}"
            )
        self.k = k
        self.blocks = tuple(blocks)

    def reliability(self) -> float:
        probabilities = [block.reliability() for block in self.blocks]
        n = len(probabilities)
        total = 0.0
        for working in itertools.product((True, False), repeat=n):
            if sum(working) < self.k:
                continue
            weight = 1.0
            for works, p in zip(working, probabilities):
                weight *= p if works else (1.0 - p)
            total += weight
        return total

    def __repr__(self) -> str:
        return f"KOutOfN({self.k}, {list(self.blocks)!r})"


def replicated_unit(
    probabilities: Sequence[float], label: str = ""
) -> Parallel:
    """Return the parallel block of independently replicated units.

    Convenience for the common pattern of a task replicated on hosts
    with the given reliabilities.
    """
    return Parallel(
        [
            Unit(p, label=f"{label}[{i}]" if label else "")
            for i, p in enumerate(probabilities)
        ]
    )
