"""Network reliability of probabilistic graphs (the paper's [4], [14]).

The paper lists network-of-nodes techniques (Dotson & Gobien; Rai &
Kumar's recursive method) among the ways SRGs can be computed.  This
module implements the classic *factoring theorem* on graphs whose
edges fail independently:

    R(G) = r_e * R(G contract e) + (1 - r_e) * R(G - e)

for any edge ``e`` with reliability ``r_e``, with connectivity base
cases.  Exponential in the worst case, exact, and fast for the
topologies that occur as embedded networks (a handful of hosts).

Two measures:

* :func:`two_terminal_reliability` — probability that *source* and
  *target* stay connected;
* :func:`all_terminal_reliability` — probability that the whole graph
  stays connected, which is the natural estimate for the atomic
  broadcast reliability ``brel`` of a bus/mesh interconnect (the
  atomicity itself is a protocol property; see
  :func:`broadcast_network_from_topology`).
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.arch.network import BroadcastNetwork
from repro.errors import AnalysisError


def _as_multigraph(graph: nx.Graph) -> nx.MultiGraph:
    multigraph = nx.MultiGraph()
    multigraph.add_nodes_from(graph.nodes)
    for u, v, data in graph.edges(data=True):
        if "reliability" not in data:
            raise AnalysisError(
                f"edge ({u!r}, {v!r}) has no 'reliability' attribute"
            )
        r = data["reliability"]
        if not 0.0 <= r <= 1.0:
            raise AnalysisError(
                f"edge ({u!r}, {v!r}): reliability must lie in [0, 1], "
                f"got {r}"
            )
        multigraph.add_edge(u, v, reliability=r)
    return multigraph


def _contract(
    graph: nx.MultiGraph, u: Hashable, v: Hashable
) -> nx.MultiGraph:
    """Merge *v* into *u*, keeping parallel edges, dropping self-loops."""
    merged = nx.MultiGraph()
    merged.add_nodes_from(n for n in graph.nodes if n != v)
    for a, b, data in graph.edges(data=True):
        a = u if a == v else a
        b = u if b == v else b
        if a == b:
            continue
        merged.add_edge(a, b, reliability=data["reliability"])
    return merged


def _pick_edge(
    graph: nx.MultiGraph, anchor: Hashable | None
) -> tuple[Hashable, Hashable, Hashable, float]:
    """Pick a factoring edge, preferring one incident to *anchor*.

    Returns ``(u, v, key, reliability)`` — the key matters because
    contraction creates parallel edges and the delete branch must
    remove exactly the factored edge.
    """
    if anchor is not None:
        for u, v, key, data in graph.edges(anchor, keys=True, data=True):
            return u, v, key, data["reliability"]
    u, v, key, data = next(iter(graph.edges(keys=True, data=True)))
    return u, v, key, data["reliability"]


def two_terminal_reliability(
    graph: nx.Graph, source: Hashable, target: Hashable
) -> float:
    """Probability that *source* and *target* remain connected.

    Edges carry a ``reliability`` attribute; nodes are perfect (model
    node failures by splitting them into edge pairs if needed).
    """
    if source not in graph or target not in graph:
        raise AnalysisError("source and target must be graph nodes")
    return _two_terminal(_as_multigraph(graph), source, target)


def _two_terminal(
    graph: nx.MultiGraph, source: Hashable, target: Hashable
) -> float:
    if source == target:
        return 1.0
    if not nx.has_path(graph, source, target):
        return 0.0
    u, v, key, r = _pick_edge(graph, source)
    # Contract branch (the edge works): merge v into u and remap the
    # terminals that pointed at v.
    contracted_value = 0.0
    if r > 0.0:
        contracted = _contract(graph, u, v)
        new_source = u if source == v else source
        new_target = u if target == v else target
        contracted_value = _two_terminal(
            contracted, new_source, new_target
        )
    # Delete branch (the edge fails): remove exactly the factored edge.
    deleted_value = 0.0
    if r < 1.0:
        deleted = graph.copy()
        deleted.remove_edge(u, v, key=key)
        deleted_value = _two_terminal(deleted, source, target)
    return r * contracted_value + (1.0 - r) * deleted_value


def all_terminal_reliability(graph: nx.Graph) -> float:
    """Probability that the whole graph remains connected."""
    if graph.number_of_nodes() == 0:
        raise AnalysisError("all-terminal reliability of an empty graph")
    return _all_terminal(_as_multigraph(graph))


def _all_terminal(graph: nx.MultiGraph) -> float:
    if graph.number_of_nodes() == 1:
        return 1.0
    if not nx.is_connected(graph):
        return 0.0
    u, v, key, r = _pick_edge(graph, None)
    contracted_value = 0.0
    if r > 0.0:
        contracted_value = _all_terminal(_contract(graph, u, v))
    deleted_value = 0.0
    if r < 1.0:
        deleted = graph.copy()
        deleted.remove_edge(u, v, key=key)
        deleted_value = _all_terminal(deleted)
    return r * contracted_value + (1.0 - r) * deleted_value


def broadcast_network_from_topology(
    graph: nx.Graph, bandwidth: int = 1
) -> BroadcastNetwork:
    """Derive a :class:`BroadcastNetwork` from a physical interconnect.

    The returned network's reliability is the *all-terminal*
    reliability of the topology: a broadcast reaches every host iff
    the surviving links keep the hosts connected.  The paper's
    atomicity assumption (all-or-nothing delivery) is a protocol
    property layered on top — e.g. a two-phase broadcast — so this is
    the right per-broadcast success probability to plug into the SRG
    analysis, not a statement about partial delivery.
    """
    return BroadcastNetwork(
        reliability=all_terminal_reliability(graph),
        bandwidth=bandwidth,
    )
