"""Reliability-based trace abstraction and limit averages.

An implementation trace is a sequence of communicator valuations, one
per time instant.  The abstraction ``rho`` maps it to a 0/1 trace per
communicator: ``Z_j(c) = 1`` iff the set of replica values of ``c`` at
its ``j``-th access instant contains at least one non-bottom value.
The *limit average* of the abstract trace is the long-run fraction of
reliable accesses; the implementation is reliable for ``c`` when this
limit average is at least the LRC ``mu_c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.model.values import is_reliable_value


def limit_average(bits: Sequence[int] | np.ndarray) -> float:
    """Return the average of a finite prefix of an abstract trace.

    This is the natural estimator of
    ``limavg(tau) = lim (1/n) sum Z_i``; by the strong law of large
    numbers it converges to the SRG with probability 1 when the
    per-iteration reliability events are i.i.d.
    """
    array = np.asarray(bits, dtype=float)
    if array.size == 0:
        raise AnalysisError("limit average of an empty trace is undefined")
    return float(array.mean())


def running_average(bits: Sequence[int] | np.ndarray) -> np.ndarray:
    """Return the sequence of prefix averages ``(1/n) sum_{i<n} Z_i``.

    Useful for plotting SLLN convergence (experiment E6).
    """
    array = np.asarray(bits, dtype=float)
    if array.size == 0:
        raise AnalysisError("running average of an empty trace is undefined")
    return np.cumsum(array) / np.arange(1, array.size + 1)


@dataclass
class AbstractTrace:
    """The reliability-based abstract trace of one communicator.

    ``bits[j]`` is ``Z_j(c)``: 1 when the ``j``-th periodic access of
    the communicator observed a reliable value.
    """

    communicator: str
    bits: np.ndarray

    @classmethod
    def from_values(
        cls, communicator: str, values: Iterable[Any]
    ) -> "AbstractTrace":
        """Abstract a sequence of observed values (possibly ``BOTTOM``).

        Each element may also be a *set* of replica values, in which
        case the access is reliable when any member is reliable — this
        matches the formal semantics where ``X_i(c)`` is a subset of
        ``type_c^bottom x hset``.
        """
        bits = []
        for value in values:
            if isinstance(value, (set, frozenset, list, tuple)):
                bits.append(int(any(is_reliable_value(v) for v in value)))
            else:
                bits.append(int(is_reliable_value(value)))
        return cls(communicator, np.asarray(bits, dtype=np.int8))

    @classmethod
    def from_bits(
        cls, communicator: str, bits: "Sequence[int] | np.ndarray"
    ) -> "AbstractTrace":
        """Wrap an already-abstracted 0/1 sequence as a trace."""
        return cls(communicator, np.asarray(bits, dtype=np.int8))

    def __len__(self) -> int:
        return int(self.bits.size)

    def limit_average(self) -> float:
        """Return the prefix average of this trace."""
        return limit_average(self.bits)

    def running_average(self) -> np.ndarray:
        """Return the prefix-average curve of this trace."""
        return running_average(self.bits)

    def satisfies(self, lrc: float, slack: float = 0.0) -> bool:
        """Return ``True`` iff the prefix average is at least ``lrc - slack``.

        *slack* absorbs finite-sample noise when the trace is a
        simulation of bounded length.
        """
        return self.limit_average() >= lrc - slack

    def reliable_count(self) -> int:
        """Return the number of reliable accesses in the prefix."""
        return int(self.bits.sum())
