"""From hardware failure rates to per-invocation reliabilities.

The paper's SRG inputs — ``hrel(h)`` and ``srel(s)`` — are
per-invocation success probabilities, but hardware datasheets quote
failure *rates*: MTTF hours, FIT (failures per 10^9 device-hours), or
a failure probability per hour.  Under the standard
exponential-failure model, a component with constant rate ``lambda``
survives an exposure of length ``d`` with probability
``exp(-lambda * d)``; the exposure of one task invocation is its LET
window (the replica must stay alive from release to broadcast).

These helpers perform the conversions so architectures can be built
from datasheet numbers::

    hrel = per_invocation_reliability(rate_from_fit(500), exposure_ms=500)
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError

#: Milliseconds per hour, the unit bridge for datasheet rates.
MS_PER_HOUR = 3_600_000.0


def rate_from_mttf(mttf_hours: float) -> float:
    """Return the failure rate (per hour) of an exponential component."""
    if mttf_hours <= 0:
        raise AnalysisError(f"MTTF must be positive, got {mttf_hours}")
    return 1.0 / mttf_hours


def rate_from_fit(fit: float) -> float:
    """Convert FIT (failures per 10^9 device-hours) to a rate per hour."""
    if fit < 0:
        raise AnalysisError(f"FIT must be non-negative, got {fit}")
    return fit / 1.0e9


def per_invocation_reliability(
    rate_per_hour: float, exposure_ms: float
) -> float:
    """Return ``exp(-rate * exposure)`` for one invocation.

    *exposure_ms* is the invocation's exposure window in milliseconds
    (typically the task's LET length, conservatively the specification
    period).
    """
    if rate_per_hour < 0:
        raise AnalysisError(
            f"failure rate must be non-negative, got {rate_per_hour}"
        )
    if exposure_ms < 0:
        raise AnalysisError(
            f"exposure must be non-negative, got {exposure_ms}"
        )
    return math.exp(-rate_per_hour * exposure_ms / MS_PER_HOUR)


def invocation_rate_from_reliability(
    reliability: float, exposure_ms: float
) -> float:
    """Invert :func:`per_invocation_reliability` (rate per hour)."""
    if not 0.0 < reliability <= 1.0:
        raise AnalysisError(
            f"reliability must lie in (0, 1], got {reliability}"
        )
    if exposure_ms <= 0:
        raise AnalysisError(
            f"exposure must be positive, got {exposure_ms}"
        )
    return -math.log(reliability) * MS_PER_HOUR / exposure_ms


def mission_reliability(
    per_invocation: float, invocations: int
) -> float:
    """Probability that *invocations* consecutive invocations all succeed.

    Useful to translate an SRG into a mission-level figure ("the
    controller survives an 8-hour shift"): independent invocations
    compose as a power.
    """
    if not 0.0 <= per_invocation <= 1.0:
        raise AnalysisError(
            f"per-invocation reliability must lie in [0, 1], got "
            f"{per_invocation}"
        )
    if invocations < 0:
        raise AnalysisError(
            f"invocations must be non-negative, got {invocations}"
        )
    return per_invocation**invocations
