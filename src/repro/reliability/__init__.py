"""Reliability analysis: SRGs, LRCs, traces, and Proposition 1.

This package implements Section 3 of the paper:

* :mod:`repro.reliability.rbd` — reliability block diagrams, the
  AND/OR-network substrate the SRG formulas are drawn from;
* :mod:`repro.reliability.srg` — singular reliability guarantees:
  task reliability under replication and the inductive communicator
  SRG formulas for the three input failure models;
* :mod:`repro.reliability.traces` — the reliability-based abstraction
  ``rho`` of implementation traces and limit averages;
* :mod:`repro.reliability.analysis` — the reliability check of
  Proposition 1 (``lambda_c >= mu_c`` for every communicator of a
  memory-free specification) and its time-dependent generalisation.
"""

from repro.reliability.rbd import Block, KOutOfN, Parallel, Series, Unit
from repro.reliability.srg import (
    communicator_srgs,
    input_communicator_srg,
    srg_block,
    task_reliability,
)
from repro.reliability.traces import (
    AbstractTrace,
    limit_average,
    running_average,
)
from repro.reliability.analysis import (
    CommunicatorVerdict,
    EmpiricalReliabilityReport,
    ReliabilityReport,
    check_reliability,
    check_reliability_empirical,
    check_reliability_timedep,
)
from repro.reliability.stats import (
    ComplianceVerdict,
    LRCTest,
    binomial_confidence_interval,
    lrc_test,
    lrc_test_from_counts,
    required_samples,
)
from repro.reliability.sensitivity import (
    ComponentSensitivity,
    UpgradeOption,
    minimal_upgrade,
    srg_sensitivities,
    upgrade_options,
)
from repro.reliability.rates import (
    mission_reliability,
    per_invocation_reliability,
    rate_from_fit,
    rate_from_mttf,
)
from repro.reliability.network import (
    all_terminal_reliability,
    broadcast_network_from_topology,
    two_terminal_reliability,
)
from repro.reliability.markov import (
    CycleVerdict,
    analyze_memory_cycles,
    memory_aware_reliable,
    parallel_cycle_limit_average,
)
from repro.reliability.faulttree import (
    AndGate,
    BasicEvent,
    OrGate,
    VotingGate,
    from_rbd,
    minimal_cut_sets,
    rare_event_bound,
)

__all__ = [
    "AbstractTrace",
    "AndGate",
    "BasicEvent",
    "Block",
    "CommunicatorVerdict",
    "ComplianceVerdict",
    "EmpiricalReliabilityReport",
    "LRCTest",
    "binomial_confidence_interval",
    "check_reliability_empirical",
    "lrc_test",
    "lrc_test_from_counts",
    "required_samples",
    "ComponentSensitivity",
    "CycleVerdict",
    "OrGate",
    "analyze_memory_cycles",
    "memory_aware_reliable",
    "parallel_cycle_limit_average",
    "UpgradeOption",
    "VotingGate",
    "all_terminal_reliability",
    "broadcast_network_from_topology",
    "from_rbd",
    "minimal_cut_sets",
    "minimal_upgrade",
    "mission_reliability",
    "per_invocation_reliability",
    "rare_event_bound",
    "rate_from_fit",
    "rate_from_mttf",
    "srg_sensitivities",
    "two_terminal_reliability",
    "upgrade_options",
    "KOutOfN",
    "Parallel",
    "ReliabilityReport",
    "Series",
    "Unit",
    "check_reliability",
    "check_reliability_timedep",
    "communicator_srgs",
    "input_communicator_srg",
    "limit_average",
    "running_average",
    "srg_block",
    "task_reliability",
]
