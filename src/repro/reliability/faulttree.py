"""Fault trees — the dual view of reliability block diagrams.

The paper's Section 1 lists fault trees (Kececioglu [12]) among the
methods for computing SRGs.  A fault tree describes how a *top event*
(system failure) arises from basic component failures through AND/OR
(and k-of-n) gates; it is the failure-space dual of the RBD success
view: an RBD series block fails when *any* element fails (an OR gate
over failures) and a parallel block when *all* fail (an AND gate).

Provided here:

* gate classes with exact probability evaluation (independent basic
  events);
* :func:`minimal_cut_sets` — the minimal sets of basic events whose
  joint occurrence triggers the top event, computed by expansion with
  absorption (MOCUS-style, fine for the tree sizes of this domain);
* the rare-event upper bound from cut sets, and its comparison against
  the exact probability;
* :func:`from_rbd` — mechanical dualisation of an RBD into the fault
  tree of its failure event, with equality of probabilities asserted
  by the test suite.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError
from repro.reliability.rbd import Block, KOutOfN, Parallel, Series, Unit


class Event:
    """Base class of fault-tree nodes."""

    def probability(self) -> float:
        """Return the probability that this event occurs."""
        raise NotImplementedError

    def cut_sets(self) -> list[frozenset[str]]:
        """Return the (not necessarily minimal) cut sets."""
        raise NotImplementedError


@dataclass(frozen=True)
class BasicEvent(Event):
    """A component failure with a fixed probability."""

    name: str
    probability_value: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability_value <= 1.0:
            raise AnalysisError(
                f"event {self.name!r}: probability must lie in [0, 1], "
                f"got {self.probability_value}"
            )

    def probability(self) -> float:
        return self.probability_value

    def cut_sets(self) -> list[frozenset[str]]:
        return [frozenset({self.name})]


class OrGate(Event):
    """Occurs when any input event occurs."""

    def __init__(self, inputs: Sequence[Event]):
        if not inputs:
            raise AnalysisError("an OR gate needs at least one input")
        self.inputs = tuple(inputs)

    def probability(self) -> float:
        survival = 1.0
        for event in self.inputs:
            survival *= 1.0 - event.probability()
        return 1.0 - survival

    def cut_sets(self) -> list[frozenset[str]]:
        sets: list[frozenset[str]] = []
        for event in self.inputs:
            sets.extend(event.cut_sets())
        return sets


class AndGate(Event):
    """Occurs when all input events occur."""

    def __init__(self, inputs: Sequence[Event]):
        if not inputs:
            raise AnalysisError("an AND gate needs at least one input")
        self.inputs = tuple(inputs)

    def probability(self) -> float:
        return math.prod(event.probability() for event in self.inputs)

    def cut_sets(self) -> list[frozenset[str]]:
        product: list[frozenset[str]] = [frozenset()]
        for event in self.inputs:
            product = [
                left | right
                for left in product
                for right in event.cut_sets()
            ]
        return product


class VotingGate(Event):
    """Occurs when at least *k* of the input events occur."""

    def __init__(self, k: int, inputs: Sequence[Event]):
        if not inputs:
            raise AnalysisError("a voting gate needs at least one input")
        if not 1 <= k <= len(inputs):
            raise AnalysisError(
                f"k must lie in [1, {len(inputs)}], got {k}"
            )
        self.k = k
        self.inputs = tuple(inputs)

    def probability(self) -> float:
        probabilities = [event.probability() for event in self.inputs]
        total = 0.0
        for pattern in itertools.product(
            (True, False), repeat=len(probabilities)
        ):
            if sum(pattern) < self.k:
                continue
            weight = 1.0
            for occurs, p in zip(pattern, probabilities):
                weight *= p if occurs else (1.0 - p)
            total += weight
        return total

    def cut_sets(self) -> list[frozenset[str]]:
        sets: list[frozenset[str]] = []
        for combo in itertools.combinations(self.inputs, self.k):
            sets.extend(AndGate(combo).cut_sets())
        return sets


def minimal_cut_sets(top: Event) -> list[frozenset[str]]:
    """Return the minimal cut sets of the top event.

    Expansion with absorption: a cut set is dropped when a strict
    subset is also a cut set.  The result is sorted by size then by
    the sorted member names, so it is deterministic.
    """
    raw = {frozenset(s) for s in top.cut_sets()}
    minimal = [
        candidate
        for candidate in raw
        if not any(
            other < candidate for other in raw if other != candidate
        )
    ]
    return sorted(minimal, key=lambda s: (len(s), sorted(s)))


def rare_event_bound(top: Event) -> float:
    """Return the rare-event (union) upper bound from minimal cut sets.

    ``P(top) <= sum over minimal cut sets of prod of member
    probabilities``; tight when basic-event probabilities are small.
    Needs every basic event to appear at most once per cut set (always
    true after minimisation) and pulls the member probabilities from
    the tree.
    """
    probabilities = _basic_probabilities(top)
    total = 0.0
    for cut in minimal_cut_sets(top):
        total += math.prod(probabilities[name] for name in cut)
    return min(total, 1.0)


def _basic_probabilities(top: Event) -> dict[str, float]:
    table: dict[str, float] = {}

    def walk(event: Event) -> None:
        if isinstance(event, BasicEvent):
            existing = table.get(event.name)
            if existing is not None and existing != event.probability_value:
                raise AnalysisError(
                    f"basic event {event.name!r} appears with two "
                    f"different probabilities"
                )
            table[event.name] = event.probability_value
            return
        for child in event.inputs:  # type: ignore[attr-defined]
            walk(child)

    walk(top)
    return table


def from_rbd(block: Block, prefix: str = "") -> Event:
    """Dualise an RBD into the fault tree of its failure event.

    Series -> OR over component failures, Parallel -> AND,
    k-of-n working -> (n-k+1)-of-n failing.  The returned tree's
    probability equals ``1 - block.reliability()`` exactly.
    """
    if isinstance(block, Unit):
        name = block.label or f"{prefix}unit"
        return BasicEvent(name, 1.0 - block.probability)
    if isinstance(block, Series):
        return OrGate(
            [
                from_rbd(child, f"{prefix}{index}.")
                for index, child in enumerate(block.blocks)
            ]
        )
    if isinstance(block, Parallel):
        return AndGate(
            [
                from_rbd(child, f"{prefix}{index}.")
                for index, child in enumerate(block.blocks)
            ]
        )
    if isinstance(block, KOutOfN):
        n = len(block.blocks)
        return VotingGate(
            n - block.k + 1,
            [
                from_rbd(child, f"{prefix}{index}.")
                for index, child in enumerate(block.blocks)
            ],
        )
    raise AnalysisError(f"cannot dualise RBD block {block!r}")
