"""The reliability analysis of Proposition 1 and its generalisation.

Proposition 1: given a memory-free, race-free specification, an
implementation is reliable if ``lambda_c >= mu_c`` for every
communicator ``c``.  The proof is by the strong law of large numbers —
the per-iteration reliability events are independent with success
probability at least ``lambda_c``, so the long-run fraction of
reliable accesses is at least ``lambda_c`` with probability 1.

For specifications *with memory* (communicator cycles) the check is
extended with the safety condition of Section 3: every cycle must
contain a task with the independent input failure model, otherwise one
unreliable write poisons the cycle forever and the limit average drops
to 0 regardless of the SRGs.

For *time-dependent* implementations (a periodic sequence of static
mappings) the per-iteration success probability of communicator ``c``
cycles through the per-phase SRGs, and the limit average equals their
arithmetic mean; reliability requires that mean to be at least
``mu_c``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.arch.architecture import Architecture
from repro.mapping.implementation import Implementation
from repro.mapping.timedep import TimeDependentImplementation
from repro.model.graph import is_memory_free, unsafe_cycles
from repro.model.specification import Specification
from repro.reliability.srg import communicator_srgs
from repro.reliability.stats import ComplianceVerdict, LRCTest

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.batch import BatchResult

#: Absolute tolerance of the SRG >= LRC comparison.  SRGs are products
#: and averages of floats, so an exact boundary case (e.g. the paper's
#: alternating mapping achieving exactly 0.9) can land one ulp short;
#: the tolerance is far below any meaningful reliability difference.
LRC_TOLERANCE = 1e-9


@dataclass(frozen=True)
class CommunicatorVerdict:
    """Per-communicator outcome of a reliability analysis."""

    communicator: str
    srg: float
    lrc: float

    @property
    def margin(self) -> float:
        """Return ``srg - lrc`` (non-negative iff the LRC is met)."""
        return self.srg - self.lrc

    @property
    def satisfied(self) -> bool:
        """Return ``True`` iff the SRG meets the LRC (within tolerance)."""
        return self.srg >= self.lrc - LRC_TOLERANCE


@dataclass(frozen=True)
class ReliabilityReport:
    """Result of a reliability analysis over all communicators."""

    verdicts: tuple[CommunicatorVerdict, ...]
    memory_free: bool
    unsafe_cycles: tuple[tuple[str, ...], ...] = field(default_factory=tuple)

    @property
    def reliable(self) -> bool:
        """Return ``True`` iff the implementation is reliable.

        Requires every LRC to be met and, for specifications with
        memory, every communicator cycle to contain an
        independent-model breaker task.
        """
        if self.unsafe_cycles:
            return False
        return all(v.satisfied for v in self.verdicts)

    def srgs(self) -> dict[str, float]:
        """Return the computed SRG per communicator."""
        return {v.communicator: v.srg for v in self.verdicts}

    def violations(self) -> list[CommunicatorVerdict]:
        """Return the verdicts whose LRC is violated, worst first."""
        return sorted(
            (v for v in self.verdicts if not v.satisfied),
            key=lambda v: v.margin,
        )

    def verdict_for(self, communicator: str) -> CommunicatorVerdict:
        """Return the verdict of the named communicator."""
        for verdict in self.verdicts:
            if verdict.communicator == communicator:
                return verdict
        raise KeyError(communicator)

    def summary(self) -> str:
        """Return a human-readable multi-line summary."""
        lines = []
        status = "RELIABLE" if self.reliable else "NOT RELIABLE"
        lines.append(f"reliability analysis: {status}")
        if not self.memory_free:
            note = (
                "all cycles broken by independent-model tasks"
                if not self.unsafe_cycles
                else f"UNSAFE cycles: {list(self.unsafe_cycles)}"
            )
            lines.append(f"  specification has memory ({note})")
        for v in sorted(self.verdicts, key=lambda v: v.communicator):
            mark = "ok " if v.satisfied else "FAIL"
            lines.append(
                f"  [{mark}] {v.communicator}: SRG={v.srg:.9f} "
                f"LRC={v.lrc:.9f} margin={v.margin:+.9f}"
            )
        return "\n".join(lines)


def check_reliability(
    spec: Specification,
    arch: Architecture,
    implementation: Implementation,
) -> ReliabilityReport:
    """Run the Proposition 1 reliability analysis on a static mapping.

    Computes every communicator's SRG under *implementation* and
    compares it against the communicator's LRC.  For specifications
    with memory, the report additionally flags communicator cycles
    lacking an independent-model breaker; such implementations are
    never reliable (the limit average collapses to 0).
    """
    srgs = communicator_srgs(spec, implementation, arch)
    verdicts = tuple(
        CommunicatorVerdict(name, srgs[name], comm.lrc)
        for name, comm in sorted(spec.communicators.items())
    )
    memory_free = is_memory_free(spec)
    bad_cycles = (
        tuple(tuple(cycle) for cycle in unsafe_cycles(spec))
        if not memory_free
        else ()
    )
    return ReliabilityReport(
        verdicts=verdicts,
        memory_free=memory_free,
        unsafe_cycles=bad_cycles,
    )


@dataclass(frozen=True)
class EmpiricalReliabilityReport:
    """Monte-Carlo counterpart of :class:`ReliabilityReport`.

    Carries the batch result, the per-communicator binomial LRC tests
    on the pooled counts, and the analytic SRGs they should converge
    to (Proposition 1 / SLLN).
    """

    result: "BatchResult"
    tests: Mapping[str, LRCTest]
    analytic_srgs: Mapping[str, float]

    @property
    def reliable(self) -> bool:
        """``True`` iff no communicator's LRC test *violates*.

        An ``undecided`` verdict counts as compatible with
        reliability — the data could not reject compliance.
        """
        return all(
            t.verdict is not ComplianceVerdict.VIOLATES
            for t in self.tests.values()
        )

    def summary(self) -> str:
        """Return a human-readable multi-line summary."""
        lines = [
            f"empirical reliability check "
            f"({self.result.runs} runs x {self.result.iterations} "
            f"iterations, {self.result.executor})"
        ]
        estimates = self.result.srg_estimates()
        for name in sorted(self.tests):
            test = self.tests[name]
            lines.append(
                f"  [{test.verdict.value:9s}] {name}: observed "
                f"{estimates[name]:.6f}  SRG {self.analytic_srgs[name]:.6f}"
                f"  LRC {test.lrc:.6f}"
            )
        return "\n".join(lines)


def check_reliability_empirical(
    spec: Specification,
    arch: Architecture,
    implementation: "Implementation | TimeDependentImplementation",
    runs: int = 32,
    iterations: int = 512,
    seed: int = 0,
    confidence: float = 0.99,
) -> EmpiricalReliabilityReport:
    """Check the LRCs by batched Monte-Carlo under the Bernoulli model.

    The empirical companion of :func:`check_reliability`: simulates
    ``runs x iterations`` periods through the vectorized batch
    executor with per-invocation Bernoulli faults (the stochastic
    model of Proposition 1), then subjects each communicator's pooled
    reliable-access counts to the one-sided binomial compliance test.
    Task functions need not be bound — the batch executor evaluates
    only the reliability abstraction.
    """
    from repro.runtime.batch import BatchSimulator
    from repro.runtime.faults import BernoulliFaults

    simulator = BatchSimulator(
        spec,
        arch,
        implementation,
        faults=BernoulliFaults(arch),
        seed=seed,
    )
    result = simulator.run_batch(runs, iterations)
    if isinstance(implementation, TimeDependentImplementation):
        phase_srgs = [
            communicator_srgs(spec, phase, arch)
            for phase in implementation.phases
        ]
        analytic = {
            name: sum(p[name] for p in phase_srgs) / len(phase_srgs)
            for name in spec.communicators
        }
    else:
        analytic = communicator_srgs(spec, implementation, arch)
    return EmpiricalReliabilityReport(
        result=result,
        tests=result.lrc_tests(confidence),
        analytic_srgs=analytic,
    )


def check_reliability_timedep(
    spec: Specification,
    arch: Architecture,
    implementation: TimeDependentImplementation,
) -> ReliabilityReport:
    """Reliability analysis for a periodic time-dependent mapping.

    The per-iteration reliability of communicator ``c`` cycles through
    the SRGs of the phases; the limit average of the abstract trace is
    their arithmetic mean (the iteration index modulo the phase count
    visits every phase equally often), so the reported "SRG" of each
    communicator is that mean.
    """
    phase_srgs = [
        communicator_srgs(spec, phase, arch)
        for phase in implementation.phases
    ]
    count = len(phase_srgs)
    verdicts = tuple(
        CommunicatorVerdict(
            name,
            sum(phase[name] for phase in phase_srgs) / count,
            comm.lrc,
        )
        for name, comm in sorted(spec.communicators.items())
    )
    memory_free = is_memory_free(spec)
    bad_cycles = (
        tuple(tuple(cycle) for cycle in unsafe_cycles(spec))
        if not memory_free
        else ()
    )
    return ReliabilityReport(
        verdicts=verdicts,
        memory_free=memory_free,
        unsafe_cycles=bad_cycles,
    )
