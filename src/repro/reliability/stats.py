"""Statistical tests for LRC compliance of finite traces.

Proposition 1 speaks about limit averages — infinite traces.  A
simulation only ever yields a finite prefix, so deciding "does this
implementation meet its LRCs?" from observed data is a hypothesis
test, not a comparison.  This module provides the standard machinery:

* an exact one-sided binomial test of ``H0: p >= lrc`` against
  ``H1: p < lrc`` (rejecting H0 means the trace is evidence of an LRC
  violation);
* Clopper–Pearson confidence intervals for the per-access reliability;
* a three-way verdict (*meets* / *violates* / *undecided*) per
  communicator, used by the Monte-Carlo tooling when it reports
  runtime compliance.

The per-access reliability events of the Bernoulli fault model are
i.i.d., which is exactly the regime these tests assume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from scipy import stats as scipy_stats

from repro.errors import AnalysisError
from repro.reliability.traces import AbstractTrace


class ComplianceVerdict(enum.Enum):
    """Outcome of a statistical LRC check on a finite trace."""

    MEETS = "meets"
    VIOLATES = "violates"
    UNDECIDED = "undecided"


@dataclass(frozen=True)
class LRCTest:
    """Result of testing one communicator's trace against its LRC."""

    communicator: str
    lrc: float
    samples: int
    successes: int
    p_value_violation: float  # P(X <= successes | p = lrc)
    p_value_compliance: float  # P(X >= successes | p = lrc)
    confidence_interval: tuple[float, float]
    verdict: ComplianceVerdict

    @property
    def observed(self) -> float:
        """The observed reliable fraction."""
        return self.successes / self.samples


def binomial_confidence_interval(
    successes: int, samples: int, confidence: float = 0.99
) -> tuple[float, float]:
    """Return the Clopper–Pearson interval for a binomial proportion."""
    if samples <= 0:
        raise AnalysisError("confidence interval needs samples > 0")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    alpha = 1.0 - confidence
    if successes == 0:
        lower = 0.0
    else:
        lower = scipy_stats.beta.ppf(
            alpha / 2.0, successes, samples - successes + 1
        )
    if successes == samples:
        upper = 1.0
    else:
        upper = scipy_stats.beta.ppf(
            1.0 - alpha / 2.0, successes + 1, samples - successes
        )
    return float(lower), float(upper)


def lrc_test_from_counts(
    communicator: str,
    successes: int,
    samples: int,
    lrc: float,
    confidence: float = 0.99,
) -> LRCTest:
    """Test aggregated reliable-access counts against an LRC.

    The count-based entry point of the compliance test: feeds directly
    off :class:`~repro.runtime.batch.BatchResult` success counts (or
    any pooled binomial sample) without materializing a bit trace.
    Verdict semantics are those of :func:`lrc_test`.
    """
    if samples <= 0:
        raise AnalysisError("cannot test an empty sample")
    if not 0 <= successes <= samples:
        raise AnalysisError(
            f"successes must lie in [0, {samples}], got {successes}"
        )
    if not 0.0 < lrc <= 1.0:
        raise AnalysisError(f"LRC must lie in (0, 1], got {lrc}")
    alpha = 1.0 - confidence
    # P(X <= successes) under p = lrc: small means "too few successes
    # to be compatible with p >= lrc".
    p_violation = float(
        scipy_stats.binom.cdf(successes, samples, lrc)
    )
    # P(X >= successes) under p = lrc: small means "too many successes
    # to be compatible with p <= lrc".
    p_compliance = float(
        scipy_stats.binom.sf(successes - 1, samples, lrc)
    )
    if p_violation < alpha:
        verdict = ComplianceVerdict.VIOLATES
    elif p_compliance < alpha:
        verdict = ComplianceVerdict.MEETS
    else:
        verdict = ComplianceVerdict.UNDECIDED
    return LRCTest(
        communicator=communicator,
        lrc=lrc,
        samples=samples,
        successes=successes,
        p_value_violation=p_violation,
        p_value_compliance=p_compliance,
        confidence_interval=binomial_confidence_interval(
            successes, samples, confidence
        ),
        verdict=verdict,
    )


def lrc_test(
    trace: AbstractTrace,
    lrc: float,
    confidence: float = 0.99,
) -> LRCTest:
    """Test a finite abstract trace against an LRC.

    The verdict is *violates* when the one-sided binomial test rejects
    ``p >= lrc`` at the given confidence, *meets* when it rejects
    ``p <= lrc``, and *undecided* when the data cannot separate the
    two (e.g. the SRG sits exactly at the LRC, as in the paper's
    alternating-mapping example where the limit average equals 0.9
    exactly).
    """
    if len(trace) == 0:
        raise AnalysisError("cannot test an empty trace")
    return lrc_test_from_counts(
        trace.communicator,
        successes=trace.reliable_count(),
        samples=len(trace),
        lrc=lrc,
        confidence=confidence,
    )


def interval_half_width(
    successes: int, samples: int, confidence: float = 0.99
) -> float:
    """Half-width of the Clopper–Pearson interval for a proportion.

    The convergence diagnostic of the streaming estimator: the
    interval ``[lower, upper]`` shrinks as pooled samples accumulate,
    and ``(upper - lower) / 2`` is the precision the estimate has
    reached so far.
    """
    lower, upper = binomial_confidence_interval(
        successes, samples, confidence
    )
    return (upper - lower) / 2.0


def sprt_bounds(confidence: float = 0.99) -> tuple[float, float]:
    """Wald SPRT decision bounds ``(accept, reject)`` on the LLR.

    Symmetric error budget ``alpha = beta = 1 - confidence``: the test
    accepts ``H1: p >= lrc + delta`` once the log-likelihood ratio
    climbs past ``log((1 - beta) / alpha)`` and accepts
    ``H0: p <= lrc - delta`` once it falls below
    ``log(beta / (1 - alpha))``.
    """
    import math

    if not 0.0 < confidence < 1.0:
        raise AnalysisError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    alpha = 1.0 - confidence
    return (
        math.log((1.0 - alpha) / alpha),
        math.log(alpha / (1.0 - alpha)),
    )


def sprt_log_likelihood(
    successes: int,
    samples: int,
    lrc: float,
    indifference: float = 0.002,
) -> float:
    """Wald SPRT log-likelihood ratio for one LRC.

    Tests ``H1: p >= lrc + indifference`` against
    ``H0: p <= lrc - indifference`` on pooled binomial counts.  The
    statistic is a pure function of the counts, so it can be
    recomputed at any checkpoint boundary without per-sample state —
    which is what makes sequential stopping deterministic across
    executors.
    """
    import math

    if samples < 0 or not 0 <= successes <= samples:
        raise AnalysisError(
            f"successes must lie in [0, {samples}], got {successes}"
        )
    if indifference <= 0.0:
        raise AnalysisError(
            f"indifference must be positive, got {indifference}"
        )
    p0 = lrc - indifference
    p1 = lrc + indifference
    if not 0.0 < p0 < p1 < 1.0:
        raise AnalysisError(
            f"indifference region ({p0}, {p1}) must lie inside (0, 1); "
            f"shrink indifference for LRC {lrc}"
        )
    failures = samples - successes
    return successes * math.log(p1 / p0) + failures * math.log(
        (1.0 - p1) / (1.0 - p0)
    )


def sprt_verdict(
    successes: int,
    samples: int,
    lrc: float,
    confidence: float = 0.99,
    indifference: float = 0.002,
) -> ComplianceVerdict:
    """Sequential accept/reject verdict for one LRC.

    *Meets* when the SPRT accepts ``p >= lrc + indifference``,
    *violates* when it accepts ``p <= lrc - indifference``, and
    *undecided* while the log-likelihood ratio sits between the Wald
    bounds.  A true rate inside the indifference region may stay
    undecided forever — callers must pair this with a run budget.
    """
    accept, reject = sprt_bounds(confidence)
    llr = sprt_log_likelihood(successes, samples, lrc, indifference)
    if llr >= accept:
        return ComplianceVerdict.MEETS
    if llr <= reject:
        return ComplianceVerdict.VIOLATES
    return ComplianceVerdict.UNDECIDED


def required_samples(
    lrc: float, margin: float, confidence: float = 0.99
) -> int:
    """Estimate the trace length needed to resolve an SRG margin.

    Uses the Hoeffding bound: to distinguish ``p = lrc + margin`` (or
    ``lrc - margin``) from ``p = lrc`` with the given confidence, about
    ``ln(1/alpha) / (2 margin^2)`` samples suffice.  Useful to size
    Monte-Carlo runs before launching them.
    """
    import math

    if margin <= 0:
        raise AnalysisError(f"margin must be positive, got {margin}")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    del lrc  # the bound is distribution-free in p
    alpha = 1.0 - confidence
    return math.ceil(math.log(1.0 / alpha) / (2.0 * margin * margin))
