"""Sensitivity of SRGs to component reliabilities, and upgrade advice.

The separation of LRCs (requirements) from SRGs (platform guarantees)
makes a natural design-space exploration possible: when an LRC is
violated, one can either replicate (Section 4's scenarios) or *upgrade
a component*.  This module answers two questions the paper's flow
raises implicitly:

* how sensitive is each communicator's SRG to each host's and
  sensor's reliability (a Birnbaum-style importance measure, computed
  by central finite differences on the SRG induction — the SRGs are
  multilinear in the component reliabilities, so the differences are
  exact up to rounding);
* what is the *minimal single-component upgrade* that makes the
  implementation reliable, if one exists (binary search on the
  component's reliability).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.architecture import Architecture
from repro.arch.host import Host
from repro.arch.sensor import Sensor
from repro.errors import AnalysisError
from repro.mapping.implementation import Implementation
from repro.model.specification import Specification
from repro.reliability.analysis import LRC_TOLERANCE
from repro.reliability.srg import communicator_srgs


@dataclass(frozen=True)
class ComponentSensitivity:
    """Partial derivatives of every SRG w.r.t. one component."""

    component: str  # "host:h1" or "sensor:s1"
    reliability: float
    derivatives: dict[str, float]  # communicator -> d(SRG)/d(rel)

    def most_affected(self) -> str:
        """Return the communicator whose SRG reacts most strongly."""
        return max(self.derivatives, key=lambda c: self.derivatives[c])


@dataclass(frozen=True)
class UpgradeOption:
    """A single-component upgrade that restores reliability."""

    component: str
    current: float
    required: float

    @property
    def delta(self) -> float:
        """The reliability improvement the upgrade demands."""
        return self.required - self.current


def _with_host_reliability(
    arch: Architecture, host: str, reliability: float
) -> Architecture:
    hosts = [
        Host(h.name, reliability if h.name == host else h.reliability)
        for h in arch.hosts.values()
    ]
    return Architecture(
        hosts=hosts,
        sensors=arch.sensors.values(),
        metrics=arch.metrics,
        network=arch.network,
    )


def _with_sensor_reliability(
    arch: Architecture, sensor: str, reliability: float
) -> Architecture:
    sensors = [
        Sensor(s.name, reliability if s.name == sensor else s.reliability)
        for s in arch.sensors.values()
    ]
    return Architecture(
        hosts=arch.hosts.values(),
        sensors=sensors,
        metrics=arch.metrics,
        network=arch.network,
    )


def _perturbed(
    arch: Architecture, component: str, reliability: float
) -> Architecture:
    kind, _, name = component.partition(":")
    if kind == "host":
        return _with_host_reliability(arch, name, reliability)
    if kind == "sensor":
        return _with_sensor_reliability(arch, name, reliability)
    raise AnalysisError(
        f"component {component!r} must be 'host:NAME' or 'sensor:NAME'"
    )


def _component_reliability(arch: Architecture, component: str) -> float:
    kind, _, name = component.partition(":")
    if kind == "host":
        return arch.hrel(name)
    if kind == "sensor":
        return arch.srel(name)
    raise AnalysisError(
        f"component {component!r} must be 'host:NAME' or 'sensor:NAME'"
    )


def all_components(arch: Architecture) -> list[str]:
    """Return every component identifier of *arch*."""
    return [f"host:{name}" for name in arch.host_names()] + [
        f"sensor:{name}" for name in arch.sensor_names()
    ]


def srg_sensitivities(
    spec: Specification,
    arch: Architecture,
    implementation: Implementation,
    epsilon: float = 1e-6,
) -> list[ComponentSensitivity]:
    """Return d(SRG_c)/d(rel) for every (component, communicator) pair.

    Central finite differences with step *epsilon*; since every SRG is
    a multilinear polynomial in the component reliabilities, the
    central difference equals the true partial derivative up to
    floating-point rounding.
    """
    results = []
    for component in all_components(arch):
        value = _component_reliability(arch, component)
        low = max(value - epsilon, 1e-12)
        high = min(value + epsilon, 1.0)
        if high <= low:
            raise AnalysisError(
                f"cannot perturb component {component!r} at "
                f"reliability {value}"
            )
        srgs_low = communicator_srgs(
            spec, implementation, _perturbed(arch, component, low)
        )
        srgs_high = communicator_srgs(
            spec, implementation, _perturbed(arch, component, high)
        )
        derivatives = {
            name: (srgs_high[name] - srgs_low[name]) / (high - low)
            for name in spec.communicators
        }
        results.append(
            ComponentSensitivity(
                component=component,
                reliability=value,
                derivatives=derivatives,
            )
        )
    return results


def _is_reliable(
    spec: Specification,
    arch: Architecture,
    implementation: Implementation,
) -> bool:
    srgs = communicator_srgs(spec, implementation, arch)
    return all(
        srgs[name] >= comm.lrc - LRC_TOLERANCE
        for name, comm in spec.communicators.items()
    )


def minimal_upgrade(
    spec: Specification,
    arch: Architecture,
    implementation: Implementation,
    component: str,
    precision: float = 1e-9,
) -> float | None:
    """Return the smallest reliability of *component* meeting all LRCs.

    ``None`` when even a perfect component does not make the
    implementation reliable.  SRGs are monotone in every component
    reliability, so binary search applies.
    """
    if _is_reliable(spec, arch, implementation):
        return _component_reliability(arch, component)
    if not _is_reliable(
        spec, _perturbed(arch, component, 1.0), implementation
    ):
        return None
    low = _component_reliability(arch, component)
    high = 1.0
    while high - low > precision:
        middle = (low + high) / 2.0
        if _is_reliable(
            spec, _perturbed(arch, component, middle), implementation
        ):
            high = middle
        else:
            low = middle
    return high


def upgrade_options(
    spec: Specification,
    arch: Architecture,
    implementation: Implementation,
) -> list[UpgradeOption]:
    """Return the feasible single-component upgrades, cheapest first.

    Each option names a component and the minimal reliability it must
    reach for the implementation to satisfy every LRC; options are
    sorted by the required improvement.
    """
    options = []
    for component in all_components(arch):
        required = minimal_upgrade(spec, arch, implementation, component)
        if required is None:
            continue
        current = _component_reliability(arch, component)
        if required > current:
            options.append(
                UpgradeOption(
                    component=component,
                    current=current,
                    required=required,
                )
            )
    return sorted(options, key=lambda option: option.delta)
