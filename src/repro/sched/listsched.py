"""Non-preemptive list scheduling — the ablation against EDF.

The timeline builder of :mod:`repro.sched.timeline` uses preemptive
EDF, which is optimal per resource.  Real time-triggered runtimes
often run tasks non-preemptively; this module builds timelines the
same two-phase way (host CPUs, then the broadcast medium) but places
each job as one contiguous slice, earliest-deadline-first at the
earliest gap after its release.

Non-preemptive scheduling is sufficient but not optimal: job sets
exist that EDF fits and list scheduling does not (a long low-urgency
job can block a later-released urgent one).  Benchmark
``test_bench_ablation_scheduler`` quantifies the feasibility-region
gap on random job sets, which is the ablation DESIGN.md calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.arch.architecture import Architecture
from repro.mapping.implementation import Implementation
from repro.model.specification import Specification
from repro.sched.edf import ScheduledSlice
from repro.sched.jobs import Job, expand_jobs, jobs_on_host
from repro.sched.timeline import BroadcastSlot, DistributedTimeline


@dataclass(frozen=True)
class ListScheduleResult:
    """Outcome of non-preemptive list scheduling on one resource."""

    slices: tuple[ScheduledSlice, ...]
    completion: dict[str, int]
    misses: tuple[str, ...]

    @property
    def feasible(self) -> bool:
        return not self.misses


def list_schedule(
    jobs: Sequence[Job],
    demand: Callable[[Job], int] | None = None,
    deadline: Callable[[Job], int] | None = None,
) -> ListScheduleResult:
    """Schedule *jobs* non-preemptively on one resource.

    Jobs are considered in EDF priority order (deadline, release,
    label); each is placed in the earliest idle gap at or after its
    release that fits its whole demand.  A job whose placement ends
    after its deadline is a miss (it is still placed, so the schedule
    remains a complete artifact).
    """
    if demand is None:
        demand = lambda job: job.wcet  # noqa: E731
    if deadline is None:
        deadline = lambda job: job.compute_deadline  # noqa: E731

    ordered = sorted(
        jobs, key=lambda j: (deadline(j), j.release, j.label())
    )
    busy: list[tuple[int, int]] = []  # sorted, disjoint (start, end)
    slices: list[ScheduledSlice] = []
    completion: dict[str, int] = {}
    misses: list[str] = []

    for job in ordered:
        need = demand(job)
        start = job.release
        for gap_start, gap_end in busy:
            if start + need <= gap_start:
                break
            start = max(start, gap_end)
        end = start + need
        busy.append((start, end))
        busy.sort()
        slices.append(
            ScheduledSlice(
                start=start, end=end, task=job.task, host=job.host
            )
        )
        completion[job.label()] = end
        if end > deadline(job):
            misses.append(job.label())

    return ListScheduleResult(
        slices=tuple(sorted(slices, key=lambda s: s.start)),
        completion=completion,
        misses=tuple(sorted(misses)),
    )


def build_timeline_nonpreemptive(
    spec: Specification,
    arch: Architecture,
    implementation: Implementation,
) -> DistributedTimeline:
    """Construct a distributed timeline with non-preemptive slices.

    Same two-phase structure as
    :func:`repro.sched.timeline.build_timeline`, but each task
    replication occupies one contiguous CPU slice and each broadcast
    one contiguous network slot.  The result is directly executable by
    a runtime without a preemption mechanism.
    """
    jobs = expand_jobs(spec, arch, implementation)
    host_slices: dict[str, tuple[ScheduledSlice, ...]] = {}
    misses: list[str] = []
    completions: dict[tuple[str, str], int] = {}
    for host in sorted({job.host for job in jobs}):
        result = list_schedule(jobs_on_host(jobs, host))
        host_slices[host] = result.slices
        misses.extend(f"cpu:{label}" for label in result.misses)
        for job in jobs_on_host(jobs, host):
            label = job.label()
            if label in result.completion:
                completions[(job.task, job.host)] = result.completion[label]

    network_jobs = []
    for job in jobs:
        if job.wctt == 0:
            continue
        completed = completions.get((job.task, job.host))
        if completed is None:
            continue
        network_jobs.append(
            Job(
                deadline=job.deadline,
                release=completed,
                task=job.task,
                host=job.host,
                wcet=job.wctt,
                wctt=0,
            )
        )
    net_result = list_schedule(
        network_jobs,
        demand=lambda j: j.wcet,
        deadline=lambda j: j.deadline,
    )
    misses.extend(f"net:{label}" for label in net_result.misses)
    broadcasts = tuple(
        BroadcastSlot(
            start=piece.start, end=piece.end, task=piece.task,
            host=piece.host,
        )
        for piece in net_result.slices
    )
    return DistributedTimeline(
        period=spec.period(),
        host_slices=host_slices,
        broadcasts=broadcasts,
        feasible=not misses,
        misses=tuple(sorted(misses)),
    )
