"""Constructive distributed timelines.

A distributed timeline is an explicit static schedule over one
specification period: per-host CPU slices for every task replication
plus broadcast slots on the shared network.  The construction is
two-phase:

1. schedule each host's jobs with preemptive EDF against the
   computation deadline ``write_t - wctt``;
2. schedule the broadcasts with EDF on the network (released when the
   computation completes, due at the write time).

Both phases use optimal single-resource EDF, so phase 1 succeeds iff
the per-host job sets are feasible; phase 2 is a sufficient test
(network feasibility with fixed computation completions).  A returned
timeline is a *certificate*: it can be replayed and checked to respect
every LET window, and the runtime's E-machine executes it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.architecture import Architecture
from repro.mapping.implementation import Implementation
from repro.model.specification import Specification
from repro.sched.edf import EDFResult, ScheduledSlice, edf_schedule
from repro.sched.jobs import Job, expand_jobs, jobs_on_host


@dataclass(frozen=True)
class BroadcastSlot:
    """A scheduled broadcast of one task replication's outputs."""

    start: int
    end: int
    task: str
    host: str

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class DistributedTimeline:
    """An explicit static schedule over one specification period.

    Attributes
    ----------
    period:
        The specification period ``pi_S``; the timeline repeats with it.
    host_slices:
        CPU execution slices per host, in start order.
    broadcasts:
        Broadcast slots on the shared medium, in start order.
    feasible:
        ``True`` iff every job met its computation deadline and every
        broadcast its write time.
    misses:
        Labels of the violating jobs/broadcasts when infeasible.
    """

    period: int
    host_slices: dict[str, tuple[ScheduledSlice, ...]]
    broadcasts: tuple[BroadcastSlot, ...]
    feasible: bool
    misses: tuple[str, ...] = field(default_factory=tuple)

    def completion_of(self, task: str, host: str) -> int | None:
        """Return the computation completion time of ``(task, host)``."""
        end = None
        for piece in self.host_slices.get(host, ()):
            if piece.task == task:
                end = piece.end if end is None else max(end, piece.end)
        return end

    def broadcast_of(self, task: str, host: str) -> BroadcastSlot | None:
        """Return the broadcast slot of ``(task, host)``, if scheduled."""
        for slot in self.broadcasts:
            if slot.task == task and slot.host == host:
                return slot
        return None

    def verify(self, spec: Specification, bandwidth: int = 1) -> list[str]:
        """Replay the timeline against the LET windows of *spec*.

        Returns a list of violation descriptions (empty when the
        timeline is a valid certificate): a slice starting before its
        task's read time, or a broadcast ending after its write time,
        or overlapping slices on one host, or more than *bandwidth*
        simultaneous broadcasts on the medium.
        """
        problems: list[str] = []
        periods = spec.periods()
        for host, slices in self.host_slices.items():
            ordered = sorted(slices, key=lambda s: s.start)
            for earlier, later in zip(ordered, ordered[1:]):
                if later.start < earlier.end:
                    problems.append(
                        f"host {host}: slices {earlier.task} and "
                        f"{later.task} overlap at {later.start}"
                    )
            for piece in slices:
                task = spec.tasks[piece.task]
                if piece.start < task.read_time(periods):
                    problems.append(
                        f"{piece.task}@{host}: starts at {piece.start} "
                        f"before read time {task.read_time(periods)}"
                    )
        # Sweep the broadcast slots and check the medium never carries
        # more than `bandwidth` simultaneous transmissions.
        events: list[tuple[int, int]] = []
        for slot in self.broadcasts:
            events.append((slot.start, 1))
            events.append((slot.end, -1))
        active = 0
        for _, delta in sorted(events):
            active += delta
            if active > bandwidth:
                problems.append(
                    f"network: more than {bandwidth} simultaneous "
                    f"broadcasts"
                )
                break
        for slot in self.broadcasts:
            task = spec.tasks[slot.task]
            write = task.write_time(periods)
            if slot.end > write:
                problems.append(
                    f"broadcast {slot.task}@{slot.host}: ends at "
                    f"{slot.end} after write time {write}"
                )
            completion = self.completion_of(slot.task, slot.host)
            if completion is not None and slot.start < completion:
                problems.append(
                    f"broadcast {slot.task}@{slot.host}: starts at "
                    f"{slot.start} before computation completes at "
                    f"{completion}"
                )
        return problems

    def render(self) -> str:
        """Return an ASCII rendering of the timeline for inspection."""
        lines = [f"distributed timeline (period {self.period})"]
        for host in sorted(self.host_slices):
            lines.append(f"  host {host}:")
            for piece in self.host_slices[host]:
                lines.append(
                    f"    [{piece.start:>5} .. {piece.end:>5}] {piece.task}"
                )
        lines.append("  network:")
        for slot in self.broadcasts:
            lines.append(
                f"    [{slot.start:>5} .. {slot.end:>5}] "
                f"{slot.task}@{slot.host}"
            )
        if not self.feasible:
            lines.append(f"  INFEASIBLE: misses {list(self.misses)}")
        return "\n".join(lines)


def build_timeline(
    spec: Specification,
    arch: Architecture,
    implementation: Implementation,
) -> DistributedTimeline:
    """Construct a distributed timeline for one specification period.

    Always returns a timeline; check :attr:`DistributedTimeline.feasible`
    (and :attr:`misses`) to learn whether it certifies schedulability.
    """
    jobs = expand_jobs(spec, arch, implementation)
    host_slices: dict[str, tuple[ScheduledSlice, ...]] = {}
    misses: list[str] = []
    completions: dict[tuple[str, str], int] = {}
    for host in sorted({job.host for job in jobs}):
        result: EDFResult = edf_schedule(jobs_on_host(jobs, host))
        host_slices[host] = result.slices
        misses.extend(f"cpu:{label}" for label in result.misses)
        for job in jobs_on_host(jobs, host):
            label = job.label()
            if label in result.completion:
                completions[(job.task, job.host)] = result.completion[label]

    # Phase 2: broadcasts on the shared medium, released at computation
    # completion, due at the write time, demand = WCTT.
    network_jobs = []
    for job in jobs:
        if job.wctt == 0:
            continue
        completed = completions.get((job.task, job.host))
        if completed is None:
            continue
        network_jobs.append(
            Job(
                deadline=job.deadline,
                release=completed,
                task=job.task,
                host=job.host,
                wcet=job.wctt,  # demand on the network resource
                wctt=0,
            )
        )
    net_result = edf_schedule(
        network_jobs,
        demand=lambda j: j.wcet,
        deadline=lambda j: j.deadline,
        capacity=arch.network.bandwidth,
    )
    misses.extend(f"net:{label}" for label in net_result.misses)
    broadcasts = tuple(
        BroadcastSlot(
            start=piece.start, end=piece.end, task=piece.task, host=piece.host
        )
        for piece in net_result.slices
    )
    return DistributedTimeline(
        period=spec.period(),
        host_slices=host_slices,
        broadcasts=broadcasts,
        feasible=not misses,
        misses=tuple(sorted(misses)),
    )
