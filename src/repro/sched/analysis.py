"""The schedulability analysis and its report.

An implementation is schedulable when every task replication completes
execution and output transmission inside its LET window.  The check
combines:

* a quick necessary test — each job must fit its own window and each
  host's (and the network's) total utilisation must not exceed 1;
* the exact per-host processor-demand criterion against computation
  deadlines ``write_t - wctt``;
* the constructive timeline of :mod:`repro.sched.timeline`, whose
  feasibility is the final verdict (sufficient for the joint CPU +
  network problem) and which doubles as the schedule executed by the
  runtime's E-machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.architecture import Architecture
from repro.mapping.implementation import Implementation
from repro.model.specification import Specification
from repro.sched.edf import demand_bound_feasible
from repro.sched.jobs import expand_jobs, jobs_on_host
from repro.sched.timeline import DistributedTimeline, build_timeline


@dataclass(frozen=True)
class HostLoad:
    """Utilisation summary of one host over a specification period."""

    host: str
    demand: int
    period: int
    job_count: int

    @property
    def utilisation(self) -> float:
        return self.demand / self.period if self.period else 0.0


@dataclass(frozen=True)
class SchedulabilityReport:
    """Result of a schedulability analysis."""

    schedulable: bool
    timeline: DistributedTimeline
    host_loads: tuple[HostLoad, ...]
    network_load: HostLoad
    reasons: tuple[str, ...] = ()

    def summary(self) -> str:
        """Return a human-readable multi-line summary."""
        status = "SCHEDULABLE" if self.schedulable else "NOT SCHEDULABLE"
        lines = [f"schedulability analysis: {status}"]
        for load in self.host_loads:
            lines.append(
                f"  host {load.host}: {load.job_count} jobs, demand "
                f"{load.demand}/{load.period} "
                f"(utilisation {load.utilisation:.3f})"
            )
        lines.append(
            f"  network: demand {self.network_load.demand}/"
            f"{self.network_load.period} "
            f"(utilisation {self.network_load.utilisation:.3f})"
        )
        for reason in self.reasons:
            lines.append(f"  reason: {reason}")
        return "\n".join(lines)


def check_schedulability(
    spec: Specification,
    arch: Architecture,
    implementation: Implementation,
) -> SchedulabilityReport:
    """Check that *implementation* meets every LET window on *arch*."""
    jobs = expand_jobs(spec, arch, implementation)
    period = spec.period()
    reasons: list[str] = []

    for job in jobs:
        if not job.fits_window():
            reasons.append(
                f"{job.label()}: wcet {job.wcet} + wctt {job.wctt} exceeds "
                f"the LET window [{job.release}, {job.deadline}]"
            )

    host_loads: list[HostLoad] = []
    for host in sorted(arch.hosts):
        on_host = jobs_on_host(jobs, host)
        demand = sum(job.wcet for job in on_host)
        host_loads.append(
            HostLoad(
                host=host,
                demand=demand,
                period=period,
                job_count=len(on_host),
            )
        )
        if demand > period:
            reasons.append(
                f"host {host}: utilisation {demand}/{period} exceeds 1"
            )
        elif not demand_bound_feasible(on_host):
            reasons.append(
                f"host {host}: processor-demand criterion violated"
            )

    network_demand = sum(job.wctt for job in jobs)
    network_capacity = period * arch.network.bandwidth
    network_load = HostLoad(
        host="<network>",
        demand=network_demand,
        period=network_capacity,
        job_count=sum(1 for job in jobs if job.wctt > 0),
    )
    if network_demand > network_capacity:
        reasons.append(
            f"network: utilisation {network_demand}/{network_capacity} "
            f"exceeds 1"
        )

    timeline = build_timeline(spec, arch, implementation)
    if not timeline.feasible:
        reasons.extend(
            f"timeline miss: {label}" for label in timeline.misses
        )

    return SchedulabilityReport(
        schedulable=timeline.feasible,
        timeline=timeline,
        host_loads=tuple(host_loads),
        network_load=network_load,
        reasons=tuple(reasons),
    )
