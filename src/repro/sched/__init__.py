"""Schedulability analysis for LET tasks with replication.

An implementation is schedulable when every replication of every task
completes execution *and* transmission of its outputs between the
task's read time and write time (its logical execution time window).
This package expands the task set into per-host jobs over one
specification period, runs exact per-resource EDF feasibility tests,
and constructs an explicit distributed timeline (CPU slices per host
plus broadcast slots on the shared network) as a certificate.
"""

from repro.sched.jobs import Job, expand_jobs
from repro.sched.edf import (
    ScheduledSlice,
    demand_bound_feasible,
    edf_schedule,
)
from repro.sched.timeline import DistributedTimeline, build_timeline
from repro.sched.analysis import (
    HostLoad,
    SchedulabilityReport,
    check_schedulability,
)

__all__ = [
    "DistributedTimeline",
    "HostLoad",
    "Job",
    "SchedulabilityReport",
    "ScheduledSlice",
    "build_timeline",
    "check_schedulability",
    "demand_bound_feasible",
    "edf_schedule",
    "expand_jobs",
]
