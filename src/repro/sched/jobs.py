"""Job expansion: from task replications to schedulable jobs.

Each task replication ``(t, h)`` gives one *job* per specification
period with release at the task's read time, an absolute deadline at
its write time, a computation demand of ``wemap(t, h)``, and a
transmission demand of ``wtmap(t, h)`` on the shared broadcast medium.
Because the computation must finish before the broadcast starts, the
job's *computation deadline* is ``write_t - wtmap(t, h)``.

All tasks repeat with the specification period ``pi_S`` and every LET
window lies inside one period, so feasibility over a single period
implies feasibility of the infinite periodic schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.architecture import Architecture
from repro.errors import AnalysisError
from repro.mapping.implementation import Implementation
from repro.model.specification import Specification


@dataclass(frozen=True, order=True)
class Job:
    """One periodic job of a task replication.

    Sort order is (deadline, release, name) so that a sorted job list
    is already in EDF order for synchronous arrivals.
    """

    deadline: int
    release: int
    task: str
    host: str
    wcet: int
    wctt: int

    def __post_init__(self) -> None:
        if self.release < 0:
            raise AnalysisError(
                f"job {self.task}@{self.host}: negative release "
                f"{self.release}"
            )
        if self.wcet <= 0 or self.wctt < 0:
            raise AnalysisError(
                f"job {self.task}@{self.host}: demands must be positive "
                f"(wcet={self.wcet}, wctt={self.wctt})"
            )

    @property
    def compute_deadline(self) -> int:
        """Deadline for the computation part, leaving room to broadcast."""
        return self.deadline - self.wctt

    @property
    def window(self) -> int:
        """Length of the LET window."""
        return self.deadline - self.release

    def fits_window(self) -> bool:
        """Return ``True`` iff wcet + wctt fits in the LET window at all."""
        return self.wcet + self.wctt <= self.window

    def label(self) -> str:
        """Return a short human-readable identifier."""
        return f"{self.task}@{self.host}"


def expand_jobs(
    spec: Specification,
    arch: Architecture,
    implementation: Implementation,
) -> list[Job]:
    """Return one job per task replication over one period.

    Jobs are returned in EDF order (deadline, release, name).
    """
    implementation.validate(spec, arch)
    periods = spec.periods()
    jobs: list[Job] = []
    for task in spec.tasks.values():
        release = task.read_time(periods)
        deadline = task.write_time(periods)
        for host in sorted(implementation.hosts_of(task.name)):
            jobs.append(
                Job(
                    deadline=deadline,
                    release=release,
                    task=task.name,
                    host=host,
                    wcet=arch.wcet(task.name, host),
                    wctt=arch.wctt(task.name, host),
                )
            )
    return sorted(jobs)


def jobs_on_host(jobs: list[Job], host: str) -> list[Job]:
    """Filter *jobs* to those executing on *host*, preserving order."""
    return [job for job in jobs if job.host == host]
