"""Earliest-deadline-first scheduling of release/deadline jobs.

Two complementary tools:

* :func:`demand_bound_feasible` — the exact processor-demand criterion
  for preemptive uniprocessor scheduling of independent jobs: a job set
  is feasible iff for every interval ``[a, b]`` spanned by a release
  and a deadline, the total demand of jobs contained in the interval
  does not exceed ``b - a``.

* :func:`edf_schedule` — an event-driven preemptive EDF simulator that
  constructs the explicit schedule (a list of execution slices) and
  reports deadline misses.  EDF is optimal on one processor, so the
  simulation misses a deadline iff the demand criterion fails; the
  test suite asserts this agreement on random job sets.

Both operate on abstract ``(release, deadline, demand)`` triples so the
same machinery schedules CPU computation on a host and broadcast slots
on the network.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import AnalysisError
from repro.sched.jobs import Job


@dataclass(frozen=True)
class ScheduledSlice:
    """A maximal contiguous execution slice of one job."""

    start: int
    end: int
    task: str
    host: str

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise AnalysisError(
                f"slice for {self.task}@{self.host}: end {self.end} must "
                f"exceed start {self.start}"
            )

    @property
    def duration(self) -> int:
        return self.end - self.start


def demand_bound_feasible(
    jobs: Sequence[Job],
    demand: Callable[[Job], int] | None = None,
    deadline: Callable[[Job], int] | None = None,
) -> bool:
    """Exact preemptive-EDF feasibility via the processor-demand test.

    *demand* extracts each job's execution requirement (default: its
    WCET) and *deadline* its absolute deadline (default: the
    computation deadline ``write - wctt``).  Feasible iff for all
    interval endpoints ``a < b`` drawn from releases and deadlines::

        sum { demand(j) : a <= release(j), deadline(j) <= b } <= b - a
    """
    if demand is None:
        demand = lambda job: job.wcet  # noqa: E731
    if deadline is None:
        deadline = lambda job: job.compute_deadline  # noqa: E731
    if not jobs:
        return True
    releases = sorted({job.release for job in jobs})
    deadlines = sorted({deadline(job) for job in jobs})
    for a in releases:
        for b in deadlines:
            if b <= a:
                continue
            load = sum(
                demand(job)
                for job in jobs
                if job.release >= a and deadline(job) <= b
            )
            if load > b - a:
                return False
    return True


@dataclass
class _Active:
    """Mutable bookkeeping for a job admitted to the EDF ready queue."""

    deadline: int
    order: int
    job: Job
    remaining: int

    def __lt__(self, other: "_Active") -> bool:
        return (self.deadline, self.order) < (other.deadline, other.order)


@dataclass(frozen=True)
class EDFResult:
    """Outcome of an EDF simulation."""

    slices: tuple[ScheduledSlice, ...]
    completion: dict[str, int]
    misses: tuple[str, ...]

    @property
    def feasible(self) -> bool:
        return not self.misses


def edf_schedule(
    jobs: Sequence[Job],
    demand: Callable[[Job], int] | None = None,
    deadline: Callable[[Job], int] | None = None,
    capacity: int = 1,
) -> EDFResult:
    """Simulate preemptive EDF on *capacity* identical unit resources.

    Returns the explicit schedule, the completion time of every job
    (keyed by ``job.label()``), and the labels of jobs that missed
    their deadline.  With ``capacity == 1`` this realises optimal
    uniprocessor EDF; larger capacities model a multi-slot medium
    (global EDF, used as a constructive sufficient test).
    """
    if demand is None:
        demand = lambda job: job.wcet  # noqa: E731
    if deadline is None:
        deadline = lambda job: job.compute_deadline  # noqa: E731
    if capacity < 1:
        raise AnalysisError(f"capacity must be >= 1, got {capacity}")

    pending = sorted(jobs, key=lambda j: (j.release, deadline(j), j.label()))
    ready: list[_Active] = []
    slices: list[ScheduledSlice] = []
    completion: dict[str, int] = {}
    misses: list[str] = []
    index = 0
    time = pending[0].release if pending else 0
    order = 0

    while index < len(pending) or ready:
        while index < len(pending) and pending[index].release <= time:
            job = pending[index]
            heapq.heappush(
                ready, _Active(deadline(job), order, job, demand(job))
            )
            order += 1
            index += 1
        if not ready:
            time = pending[index].release
            continue
        # Run up to `capacity` earliest-deadline jobs until the next
        # release or the earliest completion among the running jobs.
        running: list[_Active] = []
        for _ in range(min(capacity, len(ready))):
            running.append(heapq.heappop(ready))
        horizon = pending[index].release if index < len(pending) else None
        step = min(active.remaining for active in running)
        if horizon is not None:
            step = min(step, horizon - time)
        if step <= 0:
            raise AnalysisError("EDF simulation failed to make progress")
        for active in running:
            slices.append(
                ScheduledSlice(
                    start=time,
                    end=time + step,
                    task=active.job.task,
                    host=active.job.host,
                )
            )
            active.remaining -= step
        time += step
        for active in running:
            if active.remaining == 0:
                label = active.job.label()
                completion[label] = time
                if time > deadline(active.job):
                    misses.append(label)
            else:
                heapq.heappush(ready, active)

    return EDFResult(
        slices=tuple(_coalesce(slices)),
        completion=completion,
        misses=tuple(sorted(misses)),
    )


def _coalesce(slices: list[ScheduledSlice]) -> list[ScheduledSlice]:
    """Merge adjacent slices of the same job into maximal slices."""
    merged: list[ScheduledSlice] = []
    for piece in sorted(slices, key=lambda s: (s.task, s.host, s.start)):
        if (
            merged
            and merged[-1].task == piece.task
            and merged[-1].host == piece.host
            and merged[-1].end == piece.start
        ):
            merged[-1] = ScheduledSlice(
                start=merged[-1].start,
                end=piece.end,
                task=piece.task,
                host=piece.host,
            )
        else:
            merged.append(piece)
    return sorted(merged, key=lambda s: (s.start, s.host, s.task))
