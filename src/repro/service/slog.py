"""Structured JSONL service log.

Every daemon-side state transition — job lifecycle events, submission
rejections, chaos notes — is appended as one JSON object per line,
stamped with a globally monotone ``seq``, a wall-clock ``ts``, and
(for job events) the job's ``trace_id``/``job_id``, so the log joins
against the distributed job trace and the per-job event stream by id.

The log is an operator artifact, not a durability mechanism (the run
ledger owns durability): writes are flushed per line but not fsynced,
and a ``None`` path degrades to an in-memory ring buffer (``recent``)
that tests and the chaos harness can read back without touching disk.

This module reads the wall clock (event timestamps) and is on the
determinism-lint allowlist; timestamps never reach simulation state.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, TextIO

#: In-memory tail kept regardless of whether a file is attached.
RECENT_LIMIT = 2048


class ServiceLog:
    """Thread-safe append-only JSONL event log.

    Parameters
    ----------
    path:
        File to append JSONL lines to (created with parents).  ``None``
        keeps events only in the in-memory ``recent`` ring.
    stream:
        Alternative already-open text stream (takes precedence over
        *path*; not closed by :meth:`close`).
    """

    def __init__(
        self,
        path: "str | Path | None" = None,
        stream: "TextIO | None" = None,
    ) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self.recent: deque[dict] = deque(maxlen=RECENT_LIMIT)
        self.path = None if path is None else Path(path)
        self._owned: "TextIO | None" = None
        self._stream = stream
        if stream is None and self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._owned = self.path.open("a", encoding="utf-8")
            self._stream = self._owned

    def emit(self, event: str, **fields: Any) -> dict:
        """Append one structured event; returns the record written."""
        with self._lock:
            record = {
                "seq": self._seq,
                "ts": time.time(),
                "event": event,
                **fields,
            }
            self._seq += 1
            self.recent.append(record)
            if self._stream is not None:
                try:
                    self._stream.write(
                        json.dumps(record, default=str) + "\n"
                    )
                    self._stream.flush()
                except (OSError, ValueError):
                    # A torn log line must never take the service
                    # down; the in-memory ring still has the event.
                    pass
            return record

    def close(self) -> None:
        with self._lock:
            if self._owned is not None:
                try:
                    self._owned.close()
                except OSError:  # pragma: no cover
                    pass
                self._owned = None
                self._stream = None
