"""HTTP front-end of the reliability service (``repro serve``).

Stdlib only: :class:`http.server.ThreadingHTTPServer` with JSON
request/response bodies.  Endpoints:

``POST /jobs``
    Submit one job document (see :mod:`repro.service.jobs`); replies
    ``202 {"id": ..., "state": "queued"}``.  Add ``?wait=1`` to block
    until the job finishes and get the full job document instead.
    When the bounded queue is full the reply is ``429`` with a
    ``Retry-After`` header; while draining it is ``503``.
``POST /jobs/<id>/cancel``
    Cancel a job; queued jobs never start, a running job's late
    result is discarded.  Replies with the job document.
``GET /jobs``
    Summaries of every submitted job, oldest first.
``GET /jobs/<id>``
    Full job document, including the result once done.
``GET /jobs/<id>/events?since=N``
    Progress events with ``seq >= N``; long-polls up to 10 s for the
    next event, so clients can follow progress without busy-waiting.
``GET /jobs/<id>/stream``
    JSON-lines stream of progress events until the job finishes.
``GET /jobs/<id>/trace``
    The job's merged Chrome trace (daemon lifecycle + shard spans),
    ready for ``chrome://tracing`` / ``repro trace``.
``GET /jobs/<id>/convergence``
    The latest convergence snapshot of an adaptive simulate job
    (per-communicator rate, interval half-width, LRC margin, and
    sequential verdict); ``convergence`` is null for fixed-run jobs
    and before the first checkpoint.
``GET /metrics``
    Content-negotiated: Prometheus text exposition (Content-Type
    ``text/plain; version=0.0.4``) when the client sends
    ``Accept: text/plain``/``openmetrics`` or ``?format=prometheus``;
    otherwise the legacy flat JSON counter object
    (``application/json``), so pre-PR 9 clients are unchanged.
``GET /healthz``
    Liveness probe: queue depth, worker liveness, cache stats,
    uptime, package version, rolling SLOs, and active trace ids.

Every request lands in the ``repro_service_requests_total`` counter
and ``repro_service_request_seconds`` histogram, labelled by a
bounded-cardinality endpoint pattern (job ids are collapsed to
``{id}``).  ``POST /jobs`` honours the ``X-Repro-Trace-Id`` header:
the client-minted trace id is attached to the job and echoed in the
202 reply.

Errors reply with ``{"error": ...}`` and status 400 (bad document),
404 (unknown job/path), 429 (queue full, with ``Retry-After``),
503 (draining), or 500 (handler bug).

``serve`` installs a SIGTERM handler that drains gracefully: running
jobs finish, new submissions are rejected with 503, and the ledger —
fsynced on every append — is durable before the process exits.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError
from repro.service.jobs import (
    ReliabilityService,
    ServiceDraining,
    ServiceError,
    ServiceQueueFull,
)
from repro.telemetry.distributed import TRACE_HEADER

#: Long-poll ceiling of ``/events`` in seconds.
EVENT_POLL_TIMEOUT = 10.0

#: The Prometheus text exposition content type (the 0.0.4 format).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`ReliabilityService`."""

    service: ReliabilityService  # injected by make_server
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        pass  # tests and daemons don't want per-request stderr noise

    def _reply(
        self,
        status: int,
        document: Any = None,
        headers: "Mapping[str, str] | None" = None,
        content_type: str = "application/json",
        body: "bytes | None" = None,
    ) -> None:
        if body is None:
            body = json.dumps(document).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        status: int,
        message: str,
        headers: "Mapping[str, str] | None" = None,
    ) -> None:
        self._reply(status, {"error": message}, headers=headers)

    def _read_document(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ServiceError(f"request body is not JSON: {error}")

    # -- request metrics ------------------------------------------------

    def _endpoint(self) -> str:
        """Bounded-cardinality endpoint label for request metrics."""
        parts = [
            part for part in urlparse(self.path).path.split("/")
            if part
        ]
        if not parts:
            return "/"
        if parts[0] != "jobs" or len(parts) == 1:
            return "/" + parts[0] if len(parts) == 1 else "/other"
        if len(parts) == 2:
            return "/jobs/{id}"
        if len(parts) == 3 and parts[2] in (
            "events", "stream", "cancel", "trace", "convergence",
        ):
            return "/jobs/{id}/" + parts[2]
        return "/other"

    def _timed(self, method: str, handler: Callable[[], None]) -> None:
        start = time.perf_counter()
        self._status = 0
        try:
            handler()
        finally:
            try:
                self.service.metrics.observe_request(
                    self._endpoint(), method, self._status,
                    time.perf_counter() - start,
                )
            except Exception:  # pragma: no cover - metrics bug
                pass

    # -- verbs ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        self._timed("POST", self._handle_post)

    def _handle_post(self) -> None:
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "cancel"
            ):
                job = self.service.cancel(parts[1])
                self._reply(200, job.to_dict())
                return
            if url.path != "/jobs":
                self._error(404, f"no such endpoint: POST {url.path}")
                return
            document = self._read_document()
            if not isinstance(document, dict):
                raise ServiceError("job document must be a JSON object")
            trace_id = self.headers.get(TRACE_HEADER) or None
            job = self.service.submit(document, trace_id=trace_id)
            query = parse_qs(url.query)
            if query.get("wait", ["0"])[0] in ("1", "true"):
                job.wait()
                self._reply(200, job.to_dict())
            else:
                self._reply(
                    202,
                    {
                        "id": job.id,
                        "state": job.state,
                        "trace_id": job.trace_id,
                    },
                )
        except ServiceQueueFull as error:
            self._error(
                429,
                str(error),
                headers={
                    "Retry-After": format(error.retry_after_s, "g")
                },
            )
        except ServiceDraining as error:
            self._error(503, str(error))
        except ReproError as error:
            self._error(400, str(error))
        except Exception as error:  # pragma: no cover - handler bug
            self._error(500, f"{type(error).__name__}: {error}")

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        self._timed("GET", self._handle_get)

    def _handle_get(self) -> None:
        url = urlparse(self.path)
        try:
            self._route_get(url)
        except ServiceError as error:
            self._error(404, str(error))
        except ReproError as error:
            self._error(400, str(error))
        except Exception as error:  # pragma: no cover - handler bug
            self._error(500, f"{type(error).__name__}: {error}")

    def _route_get(self, url: Any) -> None:
        parts = [part for part in url.path.split("/") if part]
        if parts == ["healthz"]:
            self._reply(200, self.service.health())
        elif parts == ["metrics"]:
            self._metrics(parse_qs(url.query))
        elif parts == ["jobs"]:
            self._reply(
                200,
                {
                    "jobs": [
                        job.to_dict() for job in self.service.jobs()
                    ]
                },
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            self._reply(200, self.service.get(parts[1]).to_dict())
        elif (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "events"
        ):
            query = parse_qs(url.query)
            since = int(query.get("since", ["0"])[0])
            job = self.service.get(parts[1])
            events = job.events_since(
                since, timeout=EVENT_POLL_TIMEOUT
            )
            self._reply(
                200,
                {"job": job.id, "done": job.done, "events": events},
            )
        elif (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "stream"
        ):
            self._stream(self.service.get(parts[1]))
        elif (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "trace"
        ):
            self._reply(200, self.service.job_trace(parts[1]))
        elif (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "convergence"
        ):
            job = self.service.get(parts[1])
            self._reply(
                200,
                {
                    "job": job.id,
                    "state": job.state,
                    "convergence": job.convergence,
                },
            )
        else:
            self._error(404, f"no such endpoint: GET {url.path}")

    def _metrics(self, query: "Mapping[str, list[str]]") -> None:
        """``/metrics`` with content negotiation.

        Prometheus exposition when asked for explicitly
        (``?format=prometheus``) or via ``Accept`` (``text/plain`` or
        an OpenMetrics type); the legacy flat JSON counters otherwise
        — including ``?format=json`` — so existing JSON clients keep
        the exact pre-PR 9 shape and Content-Type.
        """
        fmt = query.get("format", [""])[0].lower()
        accept = self.headers.get("Accept", "").lower()
        wants_prometheus = fmt == "prometheus" or (
            fmt != "json"
            and ("text/plain" in accept or "openmetrics" in accept)
        )
        if wants_prometheus:
            self._reply(
                200,
                content_type=PROMETHEUS_CONTENT_TYPE,
                body=self.service.metrics_exposition().encode("utf-8"),
            )
        else:
            self._reply(200, self.service.metrics.snapshot())

    def _stream(self, job: Any) -> None:
        self._status = 200
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        since = 0
        while True:
            events = job.events_since(
                since, timeout=EVENT_POLL_TIMEOUT
            )
            for event in events:
                line = json.dumps(event) + "\n"
                self.wfile.write(line.encode("utf-8"))
            self.wfile.flush()
            since += len(events)
            if job.done and len(job.events) <= since:
                return


def make_server(
    service: ReliabilityService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """Bind a (not yet serving) HTTP server to *service*.

    ``port=0`` picks a free port; read it back from
    ``server.server_address`` — the tests and the CLI banner both do.
    """

    class BoundHandler(_Handler):
        pass

    BoundHandler.service = service
    server = ThreadingHTTPServer((host, port), BoundHandler)
    server.daemon_threads = True
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 1,
    ledger: "str | None" = None,
    functions: "Mapping[str, Callable[..., Any]] | None" = None,
    conditions: "Mapping[str, Callable[..., Any]] | None" = None,
    banner: "Callable[[str], None] | None" = print,
    queue_limit: "int | None" = None,
    shard_retries: int = 2,
    shard_deadline_s: "float | None" = None,
    cache_entries: "int | None" = None,
    cache_bytes: "int | None" = None,
    cache_dir: "str | None" = None,
    default_timeout_s: "float | None" = None,
    drain_timeout_s: float = 30.0,
    log: "str | None" = None,
    tracing: bool = True,
) -> None:
    """Run the daemon until interrupted (the ``repro serve`` body).

    SIGTERM (and Ctrl-C) triggers a graceful drain: the listener
    stops accepting connections, running jobs finish (up to
    *drain_timeout_s*), still-queued jobs are cancelled only if the
    drain times out, and the fsynced ledger needs no further flush.
    """
    service = ReliabilityService(
        workers=workers,
        ledger=ledger,
        functions=functions,
        conditions=conditions,
        queue_limit=queue_limit,
        shard_retries=shard_retries,
        shard_deadline_s=shard_deadline_s,
        cache_entries=cache_entries,
        cache_bytes=cache_bytes,
        cache_dir=cache_dir,
        default_timeout_s=default_timeout_s,
        log=log,
        tracing=tracing,
    ).start()
    server = make_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    if banner is not None:
        banner(
            f"repro service listening on http://{bound_host}:"
            f"{bound_port} ({workers} worker"
            f"{'s' if workers != 1 else ''}"
            + (f", ledger {ledger}" if ledger else "")
            + (
                f", queue limit {queue_limit}"
                if queue_limit is not None else ""
            )
            + ")"
        )

    stop_requested = threading.Event()

    def _on_sigterm(signum: int, frame: Any) -> None:
        # Reject new jobs immediately; shut the listener down from a
        # helper thread (shutdown() deadlocks if called from the
        # serve_forever thread itself).
        service.begin_drain()
        stop_requested.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        previous = None
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.shutdown()
        server.server_close()
        if stop_requested.is_set():
            drained = service.drain(timeout=drain_timeout_s)
            if not drained and banner is not None:
                banner(
                    "repro service drain timed out; cancelling "
                    "queued jobs"
                )
        service.stop()
        if previous is not None:  # pragma: no branch
            signal.signal(signal.SIGTERM, previous)
