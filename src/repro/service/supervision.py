"""Supervised shard execution: crash/hang detection and bounded retry.

PR 7's :class:`~repro.runtime.executor.ShardedExecutor` is fail-silent:
a crashed worker aborts the whole batch, and a hung worker blocks the
parent forever.  :class:`SupervisedShardedExecutor` wraps the same
fork/slice/merge arithmetic in a supervision loop that

* detects worker *crash* (process death, pipe EOF), worker-reported
  *error*, and worker *hang* (a per-shard wall-clock deadline), and
* re-executes only the failed shard, with capped exponential backoff
  plus deterministic jitter, up to a bounded number of attempts.

Retried shards are **bit-identical** to their first execution by
construction: a shard's work is fully determined by its slice of the
``SeedSequence.spawn`` children, so replaying the slice replays the
exact same draws — supervision can never change a result, only rescue
it (asserted differentially in ``tests/test_supervision.py``).

Every retry surfaces as a typed :class:`ShardRetryEvent`, appended to
the attached :class:`~repro.telemetry.bus.TelemetryBus` (and kept on
``executor.retry_events``), so operators see *that* a fault happened
even though the answer is unchanged.

The module also defines the :class:`ChaosAction` / :class:`WorkerFaults`
fault-injection surface the :mod:`repro.chaos` harness drives: the
parent asks the plan for an action per ``(shard, attempt)`` and ships
it to the worker, which kills, hangs, or slows itself accordingly.
Production use simply leaves ``chaos=None``.

This module reads wall clocks (deadlines, backoff sleeps) and is on
the determinism-lint allowlist; clocks never reach simulation state.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, Sequence

import numpy as np

from repro.errors import RuntimeSimulationError
from repro.runtime.batch import BatchResult
from repro.runtime.executor import (
    _fork_context,
    _payload_of,
    _result_of,
    fold_shard_checkpoints,
    merge_batch_results,
    shard_slices,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.monitor import MonitorConfig
    from repro.runtime.batch import BatchSimulator
    from repro.telemetry.bus import TelemetryBus

#: Sleep used by an injected "hang": far beyond any sane deadline, so
#: the supervisor's terminate is what ends the worker.
HANG_SLEEP_S = 3600.0


@dataclass(frozen=True)
class ShardRetryEvent:
    """One supervised re-execution of a failed shard.

    ``reason`` is ``"crash"`` (process died / pipe EOF), ``"hang"``
    (per-shard deadline exceeded, worker killed), or ``"error"`` (the
    worker reported an exception).  ``attempt`` is the 0-based attempt
    that failed; the retry that follows is attempt ``attempt + 1``.
    """

    shard: int
    attempt: int
    reason: str
    detail: str = ""
    delay_s: float = 0.0
    run_start: int = 0
    run_stop: int = 0
    #: Replay-order key parity with resilience events (no run index).
    run: "int | None" = field(default=None, kw_only=True)
    #: Epoch timestamp of the retry decision (distributed tracing);
    #: 0.0 means "unstamped" and is dropped from the dict form so the
    #: serialized shape is unchanged for pre-tracing consumers.
    noted_at: float = field(default=0.0, kw_only=True)

    kind = "shard-retry"

    def to_dict(self) -> dict:
        doc = {"kind": self.kind}
        doc.update(asdict(self))
        if doc["run"] is None:
            del doc["run"]
        if not doc["noted_at"]:
            del doc["noted_at"]
        return doc


@dataclass(frozen=True)
class ChaosAction:
    """A fault the chaos harness injects into one worker attempt.

    ``kind`` is ``"kill"`` (hard ``os._exit``), ``"hang"`` (sleep past
    any deadline until terminated), ``"slow"`` (sleep ``delay_s`` then
    run normally), or ``"error"`` (raise inside the worker).
    """

    kind: str
    delay_s: float = 0.0


class WorkerFaults(Protocol):
    """A chaos plan consulted once per ``(shard, attempt)`` launch."""

    def action(
        self, shard: int, attempt: int
    ) -> "ChaosAction | None":
        ...


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with capped exponential backoff and jitter.

    ``retries`` is the number of *re*-executions allowed per shard
    (``retries=2`` means at most 3 attempts).  Delays grow as
    ``base_delay_s * 2**(attempt-1)`` capped at ``max_delay_s``, then
    stretched by up to ``jitter`` (a fraction) of deterministic,
    shard/attempt-derived noise — reproducible, yet de-synchronised
    across shards.
    """

    retries: int = 2
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise RuntimeSimulationError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise RuntimeSimulationError("backoff delays must be >= 0")

    def delay(self, shard: int, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based) of *shard*."""
        if attempt < 1:
            return 0.0
        base = min(
            self.max_delay_s,
            self.base_delay_s * (2.0 ** (attempt - 1)),
        )
        return base * (1.0 + self.jitter * _unit_noise(shard, attempt))


def _unit_noise(shard: int, attempt: int) -> float:
    """Deterministic pseudo-uniform value in ``[0, 1)``.

    Hash-derived so backoff jitter needs no RNG state (and therefore
    cannot perturb any seeded simulation stream).
    """
    digest = hashlib.sha256(
        f"shard-backoff:{shard}:{attempt}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(2**64)


def _supervised_worker(
    simulator, children, iterations, monitor, offset, conn, action,
    trace=None, checkpoints=None,
):
    """Entry point of one supervised shard worker.

    Identical to the unsupervised worker except for the optional
    injected *action*, applied before (or instead of) the real work.
    A failed attempt ships no span and no checkpoint events: only the
    attempt that succeeds records them, so a retried shard still
    yields exactly one span and one slice-local checkpoint stream.
    """
    from repro.telemetry.distributed import shard_span

    try:
        if action is not None:
            if action.kind == "kill":
                conn.close()
                os._exit(17)
            if action.kind == "hang":
                time.sleep(
                    action.delay_s if action.delay_s > 0
                    else HANG_SLEEP_S
                )
            elif action.kind == "slow":
                time.sleep(action.delay_s)
            elif action.kind == "error":
                raise RuntimeSimulationError(
                    "chaos: injected worker error"
                )
        marks: list = []
        with shard_span(
            trace, offset, offset + len(children)
        ) as recorder:
            result = simulator.run_slice(
                children, iterations, monitor, run_offset=offset,
                checkpoints=checkpoints,
                on_checkpoint=(
                    marks.append if checkpoints is not None else None
                ),
            )
        conn.send(
            (
                "ok",
                _payload_of(
                    result, tuple(recorder.spans), tuple(marks)
                ),
            )
        )
    except BaseException as error:  # ship the failure to the parent
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class _ShardState:
    """Supervision bookkeeping of one shard across its attempts."""

    def __init__(
        self, index: int, start: int, stop: int, offset: int = 0
    ) -> None:
        self.index = index
        self.start = start
        self.stop = stop
        #: Global run index of the whole batch's first run (nonzero
        #: when the adaptive driver executes a chunk mid-sequence);
        #: ``offset + start`` is this shard's global first run.
        self.offset = offset
        self.attempt = 0
        self.process: Any = None
        self.conn: Any = None
        self.deadline_at: "float | None" = None
        self.result: "BatchResult | None" = None
        self.spans: tuple = ()
        self.checkpoints: tuple = ()

    def kill(self) -> None:
        """Best-effort terminate of a live worker."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self.conn = None
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - stuck
                self.process.kill()
                self.process.join(timeout=5.0)
        self.process = None


class SupervisedShardedExecutor:
    """A :class:`~repro.runtime.executor.ShardedExecutor` that survives
    worker crash, hang, and transient error.

    Parameters
    ----------
    jobs:
        Worker shard count (>= 1).
    policy:
        :class:`RetryPolicy` bounding re-executions and backoff.
    deadline_s:
        Per-shard wall-clock deadline; a worker still silent past it
        is killed and retried.  ``None`` disables hang detection
        (crash/error supervision still applies).
    processes:
        ``False`` (or a platform without ``fork``) executes shards
        inline with the same retry loop around each slice.
    telemetry:
        Optional bus; :class:`ShardRetryEvent` instances are appended
        live, and the merged monitor-event stream is replayed in run
        order after completion — exactly like the unsupervised
        executor.
    chaos:
        Optional :class:`WorkerFaults` plan (testing/chaos only).
    trace:
        Optional :class:`~repro.telemetry.distributed.TraceContext`.
        When set, the successful attempt of every shard records one
        epoch-stamped span (stamped with the attempt number by the
        supervisor), merged in run order onto :attr:`shard_spans`
        after :meth:`execute`.  Failed attempts ship no span, so a
        kill/retry still leaves exactly one span per shard.
    """

    name = "supervised"

    def __init__(
        self,
        jobs: int,
        policy: "RetryPolicy | None" = None,
        deadline_s: "float | None" = None,
        processes: bool = True,
        telemetry: "TelemetryBus | None" = None,
        chaos: "WorkerFaults | None" = None,
        trace: "Any | None" = None,
    ) -> None:
        if jobs < 1:
            raise RuntimeSimulationError(
                f"jobs must be >= 1, got {jobs}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise RuntimeSimulationError(
                f"deadline_s must be > 0, got {deadline_s}"
            )
        self.jobs = jobs
        self.policy = policy or RetryPolicy()
        self.deadline_s = deadline_s
        self.processes = processes
        self.telemetry = telemetry
        self.chaos = chaos
        self.trace_context = trace
        #: Retry events of the most recent :meth:`execute` call.
        self.retry_events: list[ShardRetryEvent] = []
        #: Merged tracing spans of the most recent :meth:`execute`.
        self.shard_spans: list[dict] = []
        #: Globally-pooled convergence trajectory of the most recent
        #: :meth:`execute` call that requested checkpoints.
        self.checkpoint_events: list = []
        #: The checkpoint schedule of the in-flight :meth:`execute`
        #: (read by `_launch`, including relaunches after a retry).
        self._chunk_checkpoints: "Sequence[int] | None" = None

    # -- the BatchExecutor protocol -------------------------------------

    def execute(
        self,
        simulator: "BatchSimulator",
        children: "Sequence[np.random.SeedSequence]",
        iterations: int,
        monitor: "MonitorConfig | None" = None,
        *,
        run_offset: int = 0,
        checkpoints: "Sequence[int] | None" = None,
        on_checkpoint: "Any | None" = None,
    ) -> BatchResult:
        self.retry_events = []
        self.shard_spans = []
        self.checkpoint_events = []
        self._chunk_checkpoints = checkpoints
        want_marks = (
            checkpoints is not None or on_checkpoint is not None
        )
        slices = shard_slices(len(children), self.jobs)
        context = _fork_context() if self.processes else None
        if not slices:
            return simulator.run_slice(
                children, iterations, monitor, run_offset=run_offset
            )
        span_lists: list[tuple] = []
        mark_lists: list[tuple] = []
        if len(slices) <= 1 or context is None:
            shards = []
            for index, (start, stop) in enumerate(slices):
                result, spans, marks = self._execute_inline(
                    simulator, children, iterations, monitor,
                    index, start, stop, run_offset,
                    collect_marks=want_marks,
                )
                shards.append(result)
                span_lists.append(spans)
                mark_lists.append(marks)
        else:
            shards, span_lists, mark_lists = self._supervise(
                context, simulator, children, iterations, monitor,
                slices, run_offset,
            )
        merged = merge_batch_results(shards)
        self.checkpoint_events = fold_shard_checkpoints(mark_lists)
        if on_checkpoint is not None:
            for event in self.checkpoint_events:
                on_checkpoint(event)
        if self.telemetry is not None or self.trace_context is not None:
            from repro.telemetry.shardbuffer import (
                ShardEventBuffer,
                collect_spans,
                replay_sharded,
            )

            buffers = []
            for index, shard in enumerate(shards):
                buffer = ShardEventBuffer(shard=index)
                for event in shard.monitor_events:
                    buffer.on_event(event)
                if index < len(span_lists):
                    for span in span_lists[index]:
                        buffer.on_span(span)
                buffers.append(buffer)
            if self.telemetry is not None:
                replay_sharded(buffers, self.telemetry)
                if self.checkpoint_events:
                    self.telemetry.extend(self.checkpoint_events)
            self.shard_spans = collect_spans(buffers)
        return merged

    # -- retry bookkeeping ----------------------------------------------

    def _note_retry(
        self, state: _ShardState, reason: str, detail: str,
        delay: float,
    ) -> None:
        event = ShardRetryEvent(
            shard=state.index,
            attempt=state.attempt,
            reason=reason,
            detail=detail,
            delay_s=delay,
            run_start=state.offset + state.start,
            run_stop=state.offset + state.stop,
            noted_at=time.time(),
        )
        self.retry_events.append(event)
        if self.telemetry is not None:
            self.telemetry.append(event)

    def _give_up(self, state: _ShardState, detail: str) -> None:
        raise RuntimeSimulationError(
            f"shard {state.index} (runs {state.start}..{state.stop - 1})"
            f" failed after {state.attempt + 1} attempt(s): {detail}"
        )

    # -- inline path -----------------------------------------------------

    def _execute_inline(
        self, simulator, children, iterations, monitor,
        index, start, stop, run_offset=0, collect_marks=False,
    ) -> tuple[BatchResult, tuple, tuple]:
        from repro.telemetry.distributed import shard_span

        state = _ShardState(index, start, stop, offset=run_offset)
        while True:
            action = (
                self.chaos.action(state.index, state.attempt)
                if self.chaos is not None else None
            )
            try:
                if action is not None and action.kind in (
                    "kill", "hang", "error",
                ):
                    # Inline, every injected fault class degenerates
                    # to a raised error (there is no process to kill).
                    raise RuntimeSimulationError(
                        f"chaos: injected {action.kind}"
                    )
                if action is not None and action.kind == "slow":
                    time.sleep(action.delay_s)
                marks: list = []
                with shard_span(
                    self.trace_context,
                    run_offset + start, run_offset + stop,
                    attempt=state.attempt,
                ) as recorder:
                    result = simulator.run_slice(
                        children[start:stop], iterations, monitor,
                        run_offset=run_offset + start,
                        checkpoints=self._chunk_checkpoints,
                        on_checkpoint=(
                            marks.append if collect_marks else None
                        ),
                    )
                return result, tuple(recorder.spans), tuple(marks)
            except RuntimeSimulationError as error:
                if state.attempt >= self.policy.retries:
                    self._give_up(state, str(error))
                delay = self.policy.delay(
                    state.index, state.attempt + 1
                )
                self._note_retry(state, "error", str(error), delay)
                if delay > 0:
                    time.sleep(delay)
                state.attempt += 1

    # -- process path ----------------------------------------------------

    def _launch(self, context, simulator, children, iterations,
                monitor, state: _ShardState) -> None:
        action = (
            self.chaos.action(state.index, state.attempt)
            if self.chaos is not None else None
        )
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_supervised_worker,
            args=(
                simulator, children[state.start:state.stop],
                iterations, monitor, state.offset + state.start,
                child_conn, action, self.trace_context,
                self._chunk_checkpoints,
            ),
        )
        process.start()
        child_conn.close()
        state.process = process
        state.conn = parent_conn
        state.deadline_at = (
            None if self.deadline_s is None
            else time.monotonic() + self.deadline_s
        )

    def _supervise(
        self, context, simulator, children, iterations, monitor,
        slices, run_offset=0,
    ) -> tuple[list[BatchResult], list[tuple], list[tuple]]:
        from multiprocessing.connection import wait as conn_wait

        states = [
            _ShardState(index, start, stop, offset=run_offset)
            for index, (start, stop) in enumerate(slices)
        ]
        try:
            for state in states:
                self._launch(
                    context, simulator, children, iterations, monitor,
                    state,
                )
            #: Shards sleeping out a backoff: (wake_at, state).
            parked: list[tuple[float, _ShardState]] = []
            while True:
                active = {
                    state.conn: state
                    for state in states
                    if state.conn is not None
                }
                if not active and not parked:
                    break
                now = time.monotonic()
                # Wake parked shards whose backoff elapsed.
                due = [s for wake, s in parked if wake <= now]
                parked = [
                    (wake, s) for wake, s in parked if wake > now
                ]
                for state in due:
                    self._launch(
                        context, simulator, children, iterations,
                        monitor, state,
                    )
                    active[state.conn] = state
                # Earliest thing worth waking for: a shard deadline
                # or a parked retry.
                horizons = [
                    state.deadline_at
                    for state in active.values()
                    if state.deadline_at is not None
                ] + [wake for wake, _ in parked]
                timeout = (
                    None if not horizons
                    else max(0.0, min(horizons) - now)
                )
                if active:
                    ready = conn_wait(
                        list(active), timeout=timeout
                    )
                elif timeout:  # all shards parked: sleep it out
                    time.sleep(timeout)
                    ready = []
                else:
                    ready = []
                for conn in ready:
                    state = active[conn]
                    try:
                        status, payload = conn.recv()
                    except EOFError:
                        self._retire(state, "crash",
                                     "worker died before replying",
                                     parked)
                        continue
                    if status == "ok":
                        state.result = _result_of(
                            payload, simulator, iterations
                        )
                        # Workers don't know which attempt they are;
                        # the supervisor stamps it parent-side so the
                        # surviving span names the rescue attempt.
                        state.spans = tuple(
                            {**span, "attempt": state.attempt}
                            for span in payload.spans
                        )
                        state.checkpoints = tuple(payload.checkpoints)
                        conn.close()
                        state.conn = None
                        state.process.join()
                        state.process = None
                    else:
                        self._retire(state, "error", str(payload),
                                     parked)
                # Hang detection: anyone past their deadline?
                now = time.monotonic()
                for state in list(active.values()):
                    if (
                        state.conn is not None
                        and state.deadline_at is not None
                        and state.deadline_at <= now
                    ):
                        self._retire(
                            state, "hang",
                            f"no reply within {self.deadline_s}s "
                            f"deadline", parked,
                        )
        except BaseException:
            for state in states:
                state.kill()
            raise
        return (
            [state.result for state in states],
            [state.spans for state in states],
            [state.checkpoints for state in states],
        )

    def _retire(
        self, state: _ShardState, reason: str, detail: str,
        parked: "list[tuple[float, _ShardState]]",
    ) -> None:
        """Kill a failed attempt and park the shard for retry."""
        state.kill()
        if state.attempt >= self.policy.retries:
            self._give_up(state, f"{reason}: {detail}")
        delay = self.policy.delay(state.index, state.attempt + 1)
        self._note_retry(state, reason, detail, delay)
        state.attempt += 1
        parked.append((time.monotonic() + delay, state))
