"""Reliability-as-a-service: the cached Monte-Carlo query daemon.

PR 7's service layer puts a long-running process in front of the
simulation stack so repeated reliability queries over the same design
are answered from cache instead of recomputed:

* :class:`~repro.service.cache.ResultCache` memoizes Monte-Carlo
  batch results and analytic verification reports, keyed by the
  ledger's content hashes of the (spec, arch, impl) triple plus the
  seed/iterations/fault configuration.  A ``runs`` upgrade
  re-simulates only the missing tail of spawned seeds and merges —
  bit-identical to a fresh full batch under the spawn contract.
* :class:`~repro.service.jobs.ReliabilityService` owns the job queue,
  worker threads, progress-event streams, cache, and
  :class:`~repro.telemetry.ledger.RunLedger` persistence.
* :mod:`repro.service.server` exposes it over HTTP (stdlib
  ``ThreadingHTTPServer`` + JSON, zero dependencies) as the
  ``repro serve`` daemon; :mod:`repro.service.client` is the matching
  ``repro submit`` / ``repro jobs`` client.

PR 8 hardens the fleet: per-job deadlines and cancellation (terminal
states ``timed_out`` / ``cancelled``), a bounded queue with 429 +
``Retry-After`` backpressure, graceful drain on SIGTERM, an
LRU-bounded crash-safe cache, and
:class:`~repro.service.supervision.SupervisedShardedExecutor`, which
restarts crashed or hung shard workers bit-identically.  The
:mod:`repro.chaos` harness injects those faults deterministically and
asserts the guarantees hold.

PR 9 makes the fleet observable end to end: jobs carry distributed
trace ids from the client header through forked shard workers
(:meth:`~repro.service.jobs.ReliabilityService.job_trace` merges one
Chrome trace per job), :class:`~repro.service.cache.ServiceMetrics`
is backed by the PR 4 metrics registry with Prometheus exposition and
latency histograms, state transitions stream to a structured JSONL
:class:`~repro.service.slog.ServiceLog`, rolling SLOs
(:class:`~repro.service.slo.SloTracker`) surface in ``/healthz``, and
:mod:`repro.service.top` is the live ``repro top`` dashboard.

See ``docs/service.md`` for the wire API, cache semantics, and the
failure-mode guarantees, and ``docs/observability.md`` for tracing a
job across the fleet.
"""

from repro.service.cache import McKey, ResultCache, ServiceMetrics
from repro.service.client import (
    ServiceBusyError,
    ServiceClient,
    ServiceClientError,
)
from repro.service.jobs import (
    TERMINAL_STATES,
    Job,
    ReliabilityService,
    ServiceDraining,
    ServiceError,
    ServiceQueueFull,
)
from repro.service.server import serve
from repro.service.slo import SloTracker
from repro.service.slog import ServiceLog
from repro.service.supervision import (
    ChaosAction,
    RetryPolicy,
    ShardRetryEvent,
    SupervisedShardedExecutor,
)
from repro.service.top import (
    parse_prometheus,
    render_frame,
    run_top,
    scrape_metrics,
)

__all__ = [
    "ChaosAction",
    "Job",
    "McKey",
    "ReliabilityService",
    "ResultCache",
    "RetryPolicy",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceClientError",
    "ServiceDraining",
    "ServiceError",
    "ServiceLog",
    "ServiceMetrics",
    "ServiceQueueFull",
    "ShardRetryEvent",
    "SloTracker",
    "SupervisedShardedExecutor",
    "TERMINAL_STATES",
    "parse_prometheus",
    "render_frame",
    "run_top",
    "scrape_metrics",
    "serve",
]
