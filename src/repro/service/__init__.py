"""Reliability-as-a-service: the cached Monte-Carlo query daemon.

PR 7's service layer puts a long-running process in front of the
simulation stack so repeated reliability queries over the same design
are answered from cache instead of recomputed:

* :class:`~repro.service.cache.ResultCache` memoizes Monte-Carlo
  batch results and analytic verification reports, keyed by the
  ledger's content hashes of the (spec, arch, impl) triple plus the
  seed/iterations/fault configuration.  A ``runs`` upgrade
  re-simulates only the missing tail of spawned seeds and merges —
  bit-identical to a fresh full batch under the spawn contract.
* :class:`~repro.service.jobs.ReliabilityService` owns the job queue,
  worker threads, progress-event streams, cache, and
  :class:`~repro.telemetry.ledger.RunLedger` persistence.
* :mod:`repro.service.server` exposes it over HTTP (stdlib
  ``ThreadingHTTPServer`` + JSON, zero dependencies) as the
  ``repro serve`` daemon; :mod:`repro.service.client` is the matching
  ``repro submit`` / ``repro jobs`` client.

See ``docs/service.md`` for the wire API and cache semantics.
"""

from repro.service.cache import McKey, ResultCache, ServiceMetrics
from repro.service.jobs import Job, ReliabilityService
from repro.service.server import serve

__all__ = [
    "Job",
    "McKey",
    "ReliabilityService",
    "ResultCache",
    "ServiceMetrics",
    "serve",
]
