"""Rolling SLO tracking: job-latency quantiles and error-burn alarms.

The daemon records every finished job's submit-to-terminal latency and
outcome into a bounded sliding window; :meth:`SloTracker.snapshot`
derives p50/p90/p99 latency (nearest-rank over the window) and the
windowed error rate, with a simple burn alarm that trips when the
error rate exceeds the configured threshold over enough samples.
The snapshot is surfaced in ``/healthz`` and mirrored into gauge
metrics for Prometheus/`repro top`.

Deliberately clock-free: latencies are measured by the caller (the
service owns the clocks) and passed in, so this module stays off the
determinism-lint allowlist by construction.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ReproError


def _nearest_rank(sorted_values: list[float], q: float) -> float:
    """The nearest-rank *q*-quantile of an ascending non-empty list."""
    rank = max(1, round(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class SloTracker:
    """Sliding-window job latency/error SLO accounting.

    Parameters
    ----------
    window:
        Number of most recent finished jobs retained.
    error_burn_threshold:
        Windowed error-rate fraction above which ``burn_alarm`` trips.
    min_samples:
        Samples required before the alarm may trip (a single failed
        job on an idle daemon is not a burn).
    """

    def __init__(
        self,
        window: int = 512,
        error_burn_threshold: float = 0.1,
        min_samples: int = 10,
    ) -> None:
        if window < 1:
            raise ReproError(f"window must be >= 1, got {window}")
        if not 0.0 < error_burn_threshold <= 1.0:
            raise ReproError(
                "error_burn_threshold must be in (0, 1], got "
                f"{error_burn_threshold}"
            )
        self.window = window
        self.error_burn_threshold = error_burn_threshold
        self.min_samples = max(1, min_samples)
        self._lock = threading.Lock()
        self._samples: deque[tuple[float, bool]] = deque(maxlen=window)

    def record(self, latency_s: float, ok: bool) -> None:
        """Record one finished job (latency and success flag)."""
        with self._lock:
            self._samples.append((max(0.0, float(latency_s)), bool(ok)))

    def snapshot(self) -> dict:
        """The current SLO view (quantiles, error rate, burn alarm)."""
        with self._lock:
            samples = list(self._samples)
        doc: dict = {
            "window": self.window,
            "samples": len(samples),
            "error_burn_threshold": self.error_burn_threshold,
        }
        if not samples:
            doc.update(
                p50_s=None, p90_s=None, p99_s=None,
                error_rate=0.0, burn_alarm=False,
            )
            return doc
        latencies = sorted(latency for latency, _ in samples)
        failures = sum(1 for _, ok in samples if not ok)
        error_rate = failures / len(samples)
        doc.update(
            p50_s=_nearest_rank(latencies, 0.50),
            p90_s=_nearest_rank(latencies, 0.90),
            p99_s=_nearest_rank(latencies, 0.99),
            error_rate=error_rate,
            burn_alarm=(
                len(samples) >= self.min_samples
                and error_rate > self.error_burn_threshold
            ),
        )
        return doc
