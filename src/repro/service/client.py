"""Stdlib HTTP client for the reliability service.

Backs the ``repro submit`` / ``repro jobs`` CLI commands and is small
enough to script against directly:

>>> client = ServiceClient("127.0.0.1", 8765)   # doctest: +SKIP
>>> job = client.submit({"kind": "verify", ...})  # doctest: +SKIP

Uses :mod:`http.client` so the service stack stays dependency-free
end to end.

Backpressure (PR 8): a ``429`` reply from the bounded job queue is
retried client-side with exponential backoff, honouring the server's
``Retry-After`` hint, up to ``retries`` attempts before surfacing
:class:`ServiceBusyError`.  ``503`` (service draining) is never
retried — the daemon is going away.

Observability (PR 9): :meth:`ServiceClient.submit` mints a trace id
and propagates it in the ``X-Repro-Trace-Id`` header (disable with
``REPRO_TRACE=0`` in the environment — the daemon then mints one
server-side); every 429 backoff sleep is recorded as a structured
event on ``backoff_events`` (and through the ``on_log`` callback)
instead of sleeping silently; and client-side spans accumulate on
``trace_events`` so :meth:`ServiceClient.job_trace` can merge them
into the daemon's Chrome trace of the job.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Iterator, Mapping

from repro.errors import ReproError
from repro.telemetry.distributed import (
    TRACE_HEADER,
    client_span_record,
    merge_client_events,
    mint_trace_id,
    tracing_enabled,
)


class ServiceClientError(ReproError):
    """The daemon was unreachable or replied with an error."""


class ServiceBusyError(ServiceClientError):
    """The job queue stayed full through every 429 retry."""


class ServiceClient:
    """Talks to one ``repro serve`` daemon.

    Parameters
    ----------
    retries:
        How many times a 429 (queue full) submission is retried
        before :class:`ServiceBusyError`.  ``0`` disables retrying.
    backoff_s:
        Base of the exponential retry delay; the server's
        ``Retry-After`` header takes precedence when larger.
    on_log:
        Optional callback receiving each structured client event
        (429 backoffs) as a dict — the CLI prints them to stderr.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765,
        timeout: float = 60.0,
        retries: int = 4,
        backoff_s: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
        on_log: "Callable[[dict], None] | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self._sleep = sleep
        self.on_log = on_log
        #: Structured 429-backoff events (most recent last).
        self.backoff_events: list[dict] = []
        #: Client-side spans for the distributed job trace.
        self.trace_events: list[dict] = []
        #: Trace id of the most recent submission.
        self.last_trace_id: "str | None" = None

    # -- low-level ------------------------------------------------------

    def _request_once(
        self,
        method: str,
        path: str,
        document: "Any | None" = None,
        headers: "Mapping[str, str] | None" = None,
    ) -> "tuple[int, dict, Any]":
        """One HTTP round-trip → (status, headers-dict, body)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = (
                None if document is None
                else json.dumps(document).encode("utf-8")
            )
            send_headers = dict(headers or {})
            if body:
                send_headers["Content-Type"] = "application/json"
            connection.request(
                method, path, body=body, headers=send_headers
            )
            response = connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as error:
            raise ServiceClientError(
                f"cannot reach repro service at "
                f"{self.host}:{self.port}: {error}"
            )
        finally:
            connection.close()
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise ServiceClientError(
                f"service replied non-JSON ({response.status})"
            )
        return response.status, dict(response.getheaders()), parsed

    def _request(
        self,
        method: str,
        path: str,
        document: "Any | None" = None,
        headers: "Mapping[str, str] | None" = None,
        trace_id: "str | None" = None,
    ) -> Any:
        attempt = 0
        while True:
            status, reply_headers, parsed = self._request_once(
                method, path, document, headers=headers
            )
            if status == 429:
                message = str(parsed.get("error", "HTTP 429"))
                if attempt >= self.retries:
                    raise ServiceBusyError(
                        f"{message} (gave up after "
                        f"{attempt} retr"
                        f"{'y' if attempt == 1 else 'ies'})"
                    )
                attempt += 1
                delay = self.backoff_s * 2 ** (attempt - 1)
                hint = reply_headers.get("Retry-After")
                if hint is not None:
                    try:
                        delay = max(delay, float(hint))
                    except ValueError:
                        pass
                self._note_backoff(
                    path, attempt, delay, hint, trace_id
                )
                self._sleep(delay)
                continue
            if status >= 400:
                raise ServiceClientError(
                    str(parsed.get("error", f"HTTP {status}"))
                )
            return parsed

    def _note_backoff(
        self,
        path: str,
        attempt: int,
        delay: float,
        retry_after: "str | None",
        trace_id: "str | None",
    ) -> None:
        """Record one 429 backoff as a structured event (no silence)."""
        now = time.time()
        event = {
            "event": "backoff-429",
            "ts": now,
            "path": path,
            "attempt": attempt,
            "delay_s": delay,
            "retry_after": retry_after,
            "trace_id": trace_id,
        }
        self.backoff_events.append(event)
        if trace_id is not None:
            self.trace_events.append(
                client_span_record(
                    trace_id, "backoff-429", now, delay,
                    attempt=attempt, path=path,
                )
            )
        if self.on_log is not None:
            try:
                self.on_log(event)
            except Exception:  # log hook must not break the retry
                pass

    # -- API ------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def submit(
        self, document: Mapping[str, Any], wait: bool = False
    ) -> dict:
        """Submit a job; with *wait* the reply is the finished job.

        Mints a distributed trace id and sends it in the
        ``X-Repro-Trace-Id`` header (unless ``REPRO_TRACE=0``); the
        submit round-trip — including any 429 backoff sleeps — is
        recorded as client-side spans for :meth:`job_trace`.
        """
        suffix = "?wait=1" if wait else ""
        headers: dict[str, str] = {}
        trace_id: "str | None" = None
        if tracing_enabled():
            trace_id = mint_trace_id()
            headers[TRACE_HEADER] = trace_id
        started = time.time()
        reply = self._request(
            "POST", f"/jobs{suffix}", dict(document),
            headers=headers, trace_id=trace_id,
        )
        # The daemon mints server-side when no header was sent;
        # either way the reply names the id this job traces under.
        trace_id = reply.get("trace_id", trace_id) or trace_id
        self.last_trace_id = trace_id
        if trace_id is not None:
            self.trace_events.append(
                client_span_record(
                    trace_id, "submit", started,
                    time.time() - started,
                    job_id=reply.get("id"),
                )
            )
        return reply

    def cancel(self, job_id: str) -> dict:
        """Cancel a job (queued: never starts; running: discarded)."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def job_trace(self, job_id: str) -> dict:
        """The job's merged Chrome trace, with client spans folded in.

        Fetches the daemon-built trace (lifecycle + shard + retry
        spans) and appends this client's own spans that share the
        job's trace id — one coherent timeline across every process.
        """
        doc = self._request("GET", f"/jobs/{job_id}/trace")
        trace_id = doc.get("otherData", {}).get("trace_id")
        mine = [
            span for span in self.trace_events
            if span.get("trace_id") == trace_id
        ]
        return merge_client_events(doc, mine)

    def convergence(self, job_id: str) -> dict:
        """The job's latest convergence snapshot.

        ``{"job": ..., "state": ..., "convergence": ...}`` where
        ``convergence`` is the per-communicator diagnostics dict of an
        adaptive simulate job's most recent checkpoint, or ``None``
        for fixed-run jobs (and before the first checkpoint).
        """
        return self._request("GET", f"/jobs/{job_id}/convergence")

    def jobs(self) -> list[dict]:
        return list(self._request("GET", "/jobs").get("jobs", []))

    def events(self, job_id: str, since: int = 0) -> dict:
        return self._request(
            "GET", f"/jobs/{job_id}/events?since={since}"
        )

    def follow(
        self,
        job_id: str,
        on_event: "Callable[[dict], None] | None" = None,
    ) -> dict:
        """Long-poll progress events until the job finishes.

        Calls *on_event* for every event in order and returns the
        final job document.
        """
        since = 0
        while True:
            reply = self.events(job_id, since=since)
            for event in reply.get("events", []):
                if on_event is not None:
                    on_event(event)
            since += len(reply.get("events", []))
            if reply.get("done"):
                return self.job(job_id)

    def iter_events(self, job_id: str) -> Iterator[dict]:
        """Yield progress events until the job reaches a terminal state."""
        since = 0
        done = False
        while not done:
            reply = self.events(job_id, since=since)
            events = reply.get("events", [])
            yield from events
            since += len(events)
            done = bool(reply.get("done")) and not events
