"""Stdlib HTTP client for the reliability service.

Backs the ``repro submit`` / ``repro jobs`` CLI commands and is small
enough to script against directly:

>>> client = ServiceClient("127.0.0.1", 8765)   # doctest: +SKIP
>>> job = client.submit({"kind": "verify", ...})  # doctest: +SKIP

Uses :mod:`http.client` so the service stack stays dependency-free
end to end.

Backpressure (PR 8): a ``429`` reply from the bounded job queue is
retried client-side with exponential backoff, honouring the server's
``Retry-After`` hint, up to ``retries`` attempts before surfacing
:class:`ServiceBusyError`.  ``503`` (service draining) is never
retried — the daemon is going away.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Iterator, Mapping

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """The daemon was unreachable or replied with an error."""


class ServiceBusyError(ServiceClientError):
    """The job queue stayed full through every 429 retry."""


class ServiceClient:
    """Talks to one ``repro serve`` daemon.

    Parameters
    ----------
    retries:
        How many times a 429 (queue full) submission is retried
        before :class:`ServiceBusyError`.  ``0`` disables retrying.
    backoff_s:
        Base of the exponential retry delay; the server's
        ``Retry-After`` header takes precedence when larger.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765,
        timeout: float = 60.0,
        retries: int = 4,
        backoff_s: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self._sleep = sleep

    # -- low-level ------------------------------------------------------

    def _request_once(
        self, method: str, path: str, document: "Any | None" = None
    ) -> "tuple[int, dict, Any]":
        """One HTTP round-trip → (status, headers-dict, body)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = (
                None if document is None
                else json.dumps(document).encode("utf-8")
            )
            headers = (
                {"Content-Type": "application/json"} if body else {}
            )
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as error:
            raise ServiceClientError(
                f"cannot reach repro service at "
                f"{self.host}:{self.port}: {error}"
            )
        finally:
            connection.close()
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise ServiceClientError(
                f"service replied non-JSON ({response.status})"
            )
        return response.status, dict(response.getheaders()), parsed

    def _request(
        self, method: str, path: str, document: "Any | None" = None
    ) -> Any:
        attempt = 0
        while True:
            status, headers, parsed = self._request_once(
                method, path, document
            )
            if status == 429:
                message = str(parsed.get("error", "HTTP 429"))
                if attempt >= self.retries:
                    raise ServiceBusyError(
                        f"{message} (gave up after "
                        f"{attempt} retr"
                        f"{'y' if attempt == 1 else 'ies'})"
                    )
                attempt += 1
                delay = self.backoff_s * 2 ** (attempt - 1)
                hint = headers.get("Retry-After")
                if hint is not None:
                    try:
                        delay = max(delay, float(hint))
                    except ValueError:
                        pass
                self._sleep(delay)
                continue
            if status >= 400:
                raise ServiceClientError(
                    str(parsed.get("error", f"HTTP {status}"))
                )
            return parsed

    # -- API ------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def submit(
        self, document: Mapping[str, Any], wait: bool = False
    ) -> dict:
        """Submit a job; with *wait* the reply is the finished job."""
        suffix = "?wait=1" if wait else ""
        return self._request("POST", f"/jobs{suffix}", dict(document))

    def cancel(self, job_id: str) -> dict:
        """Cancel a job (queued: never starts; running: discarded)."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return list(self._request("GET", "/jobs").get("jobs", []))

    def events(self, job_id: str, since: int = 0) -> dict:
        return self._request(
            "GET", f"/jobs/{job_id}/events?since={since}"
        )

    def follow(
        self,
        job_id: str,
        on_event: "Callable[[dict], None] | None" = None,
    ) -> dict:
        """Long-poll progress events until the job finishes.

        Calls *on_event* for every event in order and returns the
        final job document.
        """
        since = 0
        while True:
            reply = self.events(job_id, since=since)
            for event in reply.get("events", []):
                if on_event is not None:
                    on_event(event)
            since += len(reply.get("events", []))
            if reply.get("done"):
                return self.job(job_id)

    def iter_events(self, job_id: str) -> Iterator[dict]:
        """Yield progress events until the job reaches a terminal state."""
        since = 0
        done = False
        while not done:
            reply = self.events(job_id, since=since)
            events = reply.get("events", [])
            yield from events
            since += len(events)
            done = bool(reply.get("done")) and not events
