"""``repro top``: a live curses dashboard over ``/metrics`` + ``/healthz``.

Polls one ``repro serve`` daemon, parsing its Prometheus text
exposition (:func:`parse_prometheus` — also the parser the chaos
harness and CI use to validate the exposition) and its health
document, and renders queue depth, worker/shard liveness, job
throughput, cache hit ratio, rolling latency quantiles, the
error-burn alarm, and the currently active trace ids.

Stdlib only: :mod:`curses` for the live screen, plain ``print`` for
``--once`` (tests, non-TTY pipes).  The module itself reads no
clocks — polling sleeps go through :func:`time.sleep` (legal
everywhere) and all timing data comes from the daemon.
"""

from __future__ import annotations

import http.client
import math
import time
from typing import Any, Callable, Mapping

from repro.errors import ReproError

#: Samples of one metric: list of (labels-dict, value).
Samples = list[tuple[dict, float]]


def _parse_labels(text: str, line: str) -> dict:
    """Parse the ``{a="b",...}`` label block of one exposition line."""
    labels: dict[str, str] = {}
    index = 0
    while index < len(text):
        if text[index] == ",":
            index += 1
            continue
        equals = text.find("=", index)
        if equals < 0 or len(text) <= equals + 1:
            raise ReproError(f"malformed label set in line: {line!r}")
        name = text[index:equals].strip()
        if text[equals + 1] != '"':
            raise ReproError(f"unquoted label value in line: {line!r}")
        value_chars: list[str] = []
        cursor = equals + 2
        while cursor < len(text):
            char = text[cursor]
            if char == "\\" and cursor + 1 < len(text):
                escape = text[cursor + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(
                        escape, "\\" + escape
                    )
                )
                cursor += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            cursor += 1
        else:
            raise ReproError(
                f"unterminated label value in line: {line!r}"
            )
        labels[name] = "".join(value_chars)
        index = cursor + 1
    return labels


def parse_prometheus(text: str) -> dict[str, Samples]:
    """Parse Prometheus text exposition → ``{metric: [(labels, v)]}``.

    Strict enough to catch a broken exposition (the CI chaos-smoke
    assertion): every non-comment line must be
    ``name[{labels}] value``, values must parse as floats (``+Inf``/
    ``-Inf``/``NaN`` included), label values must be quoted with
    closed braces.  Raises :class:`~repro.errors.ReproError` on the
    first malformed line.
    """
    metrics: dict[str, Samples] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            brace = line.index("{")
            close = line.rfind("}")
            if close < brace:
                raise ReproError(
                    f"unbalanced braces in line: {line!r}"
                )
            name = line[:brace].strip()
            labels = _parse_labels(line[brace + 1:close], line)
            rest = line[close + 1:].strip()
        else:
            fields = line.split()
            if len(fields) < 2:
                raise ReproError(f"malformed sample line: {line!r}")
            name, rest = fields[0], " ".join(fields[1:])
            labels = {}
        if not name:
            raise ReproError(f"sample without a name: {line!r}")
        value_text = rest.split()[0] if rest else ""
        try:
            value = float(value_text.replace("+Inf", "inf"))
        except ValueError:
            raise ReproError(
                f"non-numeric sample value in line: {line!r}"
            )
        metrics.setdefault(name, []).append((labels, value))
    return metrics


def scrape_metrics(
    host: str, port: int, timeout: float = 10.0
) -> tuple[int, str, str]:
    """GET ``/metrics`` asking for Prometheus text.

    Returns ``(status, content_type, body)`` — the caller decides
    whether to parse or assert on them.
    """
    connection = http.client.HTTPConnection(
        host, port, timeout=timeout
    )
    try:
        connection.request(
            "GET", "/metrics",
            headers={"Accept": "text/plain; version=0.0.4"},
        )
        response = connection.getresponse()
        body = response.read().decode("utf-8", "replace")
        return (
            response.status,
            response.getheader("Content-Type", ""),
            body,
        )
    except (OSError, http.client.HTTPException) as error:
        raise ReproError(
            f"cannot scrape {host}:{port}/metrics: {error}"
        )
    finally:
        connection.close()


def _fetch_health(host: str, port: int, timeout: float = 10.0) -> dict:
    import json

    connection = http.client.HTTPConnection(
        host, port, timeout=timeout
    )
    try:
        connection.request("GET", "/healthz")
        response = connection.getresponse()
        return json.loads(response.read().decode("utf-8"))
    except (OSError, http.client.HTTPException, ValueError) as error:
        raise ReproError(
            f"cannot reach {host}:{port}/healthz: {error}"
        )
    finally:
        connection.close()


def _sum_where(samples: Samples, **want: str) -> float:
    return sum(
        value for labels, value in samples
        if all(labels.get(k) == v for k, v in want.items())
    )


def _fmt_seconds(value: "float | None") -> str:
    if value is None or (
        isinstance(value, float) and math.isnan(value)
    ):
        return "-"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def render_frame(
    metrics: Mapping[str, Samples], health: Mapping[str, Any],
    width: int = 78,
) -> str:
    """One dashboard frame as plain text (shared by curses & --once)."""
    jobs = metrics.get("repro_service_jobs_total", [])
    cache = metrics.get("repro_service_cache_events_total", [])
    retries = sum(
        value for _, value in
        metrics.get("repro_service_shard_retries_total", [])
    )
    mc_hits = _sum_where(cache, cache="mc", outcome="hit")
    mc_partial = _sum_where(cache, cache="mc", outcome="partial")
    mc_misses = _sum_where(cache, cache="mc", outcome="miss")
    lookups = mc_hits + mc_partial + mc_misses
    hit_ratio = (mc_hits + mc_partial) / lookups if lookups else 0.0
    slo = health.get("slo", {})
    status = str(health.get("status", "?"))
    if slo.get("burn_alarm"):
        status += "  ** ERROR BURN **"
    lines = [
        f"repro top — {status}  v{health.get('version', '?')}  "
        f"up {float(health.get('uptime_seconds', 0.0)):.0f}s",
        "-" * width,
        f"queue {health.get('queue_depth', 0)}"
        f"/{health.get('queue_limit') or '∞'}"
        f"   running {health.get('jobs_running', 0)}"
        f"   workers {health.get('workers_alive', 0)}"
        f"/{health.get('workers', 0)} alive"
        f"   shard retries {retries:.0f}",
        "jobs  "
        + "  ".join(
            f"{event}:{_sum_where(jobs, event=event):.0f}"
            for event in (
                "submitted", "completed", "failed", "timed_out",
                "cancelled", "rejected",
            )
        ),
        f"cache hit ratio {hit_ratio:6.1%}  "
        f"(hit {mc_hits:.0f} / partial {mc_partial:.0f} / "
        f"miss {mc_misses:.0f})",
        f"job latency  p50 {_fmt_seconds(slo.get('p50_s'))}  "
        f"p90 {_fmt_seconds(slo.get('p90_s'))}  "
        f"p99 {_fmt_seconds(slo.get('p99_s'))}  "
        f"error rate {float(slo.get('error_rate', 0.0)):.1%}  "
        f"({slo.get('samples', 0)} in window)",
    ]
    active = list(health.get("active_traces", []))
    lines.append(
        f"active traces ({len(active)}): "
        + (" ".join(active[:6]) if active else "none")
    )
    lines.extend(_convergence_lines(metrics))
    return "\n".join(line[:width] for line in lines)


def _convergence_lines(metrics: Mapping[str, Samples]) -> list[str]:
    """The adaptive-convergence pane (empty before any checkpoint).

    One line per communicator showing the latest interval half-width,
    relative half-width, and LRC margin gauges, plus an adaptive
    stop/savings summary — together a glanceable answer to "has the
    estimator converged and how much slack does each LRC have".
    """
    half = metrics.get("repro_service_convergence_half_width", [])
    rel = metrics.get("repro_service_convergence_rel_half_width", [])
    margin = metrics.get("repro_service_convergence_margin", [])
    if not half and not rel:
        return []

    def by_comm(samples: Samples) -> dict[str, float]:
        return {
            labels.get("communicator", "?"): value
            for labels, value in samples
        }

    halves, rels, margins = by_comm(half), by_comm(rel), by_comm(margin)
    stops = sum(
        value for _, value in
        metrics.get("repro_service_adaptive_stops_total", [])
    )
    saved = sum(
        value for _, value in
        metrics.get("repro_service_adaptive_runs_saved_total", [])
    )
    lines = [
        f"convergence (latest checkpoint)   adaptive stops "
        f"{stops:.0f}   runs saved {saved:.0f}",
    ]
    for name in sorted(set(halves) | set(rels)):
        margin_value = margins.get(name)
        margin_text = (
            f"{margin_value:+.4f}" if margin_value is not None else "-"
        )
        lines.append(
            f"  {name:<10} ±{halves.get(name, float('nan')):.4f}"
            f"  rel {rels.get(name, float('nan')):.4f}"
            f"  margin {margin_text}"
        )
    return lines


def run_top(
    host: str = "127.0.0.1",
    port: int = 8765,
    interval: float = 1.0,
    once: bool = False,
    out: Callable[[str], None] = print,
    err: "Callable[[str], None] | None" = None,
) -> int:
    """The ``repro top`` body.  Returns a process exit code.

    ``once`` prints a single frame and returns — usable in pipes,
    tests, and CI.  Otherwise a curses screen refreshes every
    *interval* seconds until ``q``.

    An unreachable daemon, an unparseable ``/metrics`` exposition, or
    a non-TTY terminal (curses init failure) produce a one-line
    message on *err* and exit code 1 — never a traceback.
    """
    if err is None:
        import functools
        import sys

        err = functools.partial(print, file=sys.stderr)
    if once:
        try:
            metrics = parse_prometheus(scrape_metrics(host, port)[2])
            out(render_frame(metrics, _fetch_health(host, port)))
        except ReproError as error:
            err(f"repro top: {error}")
            return 1
        return 0

    import curses

    def _loop(screen: Any) -> None:
        curses.curs_set(0)
        screen.nodelay(True)
        while True:
            try:
                metrics = parse_prometheus(
                    scrape_metrics(host, port)[2]
                )
                frame = render_frame(
                    metrics, _fetch_health(host, port),
                    width=max(20, screen.getmaxyx()[1] - 2),
                )
            except ReproError as error:
                frame = f"repro top — {error}"
            screen.erase()
            for row, line in enumerate(frame.splitlines()):
                if row >= screen.getmaxyx()[0] - 1:
                    break
                try:
                    screen.addstr(row, 0, line)
                except curses.error:  # pragma: no cover - tiny term
                    pass
            screen.refresh()
            # Poll the keyboard while sleeping out the interval so
            # 'q' quits promptly even with slow refresh rates.
            slept = 0.0
            while slept < interval:
                if screen.getch() in (ord("q"), ord("Q")):
                    return
                time.sleep(0.1)
                slept += 0.1

    try:
        curses.wrapper(_loop)
    except curses.error as error:
        err(f"repro top: cannot initialise terminal: {error}")
        return 1
    except ReproError as error:  # pragma: no cover - loop catches
        err(f"repro top: {error}")
        return 1
    return 0
