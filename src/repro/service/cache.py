"""Result memoization for the reliability service.

The cache is keyed by *content*, not by request text: the service
rebuilds the design objects from the submitted JSON and hashes their
canonical ``to_dict`` forms through the ledger's
:func:`~repro.telemetry.ledger.content_hash` — so two clients
submitting the same design with different key order or ``40.0`` vs
``40`` spellings share one cache line (guarded by the canonicalisation
tests in ``tests/test_ledger.py``).

Monte-Carlo entries store the *full* :class:`BatchResult` at the
largest ``runs`` ever computed for the key.  Because batch run ``k``
is seeded by ``SeedSequence(seed).spawn(runs)[k]`` and spawn keys are
prefix-stable, a smaller ``runs`` query is exactly a prefix slice of
the stored result, and a larger one only needs the missing tail of
children simulated and merged.  :meth:`ResultCache.plan` classifies a
query into ``hit`` / ``partial`` / ``miss`` accordingly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.batch import BatchResult


@dataclass(frozen=True)
class McKey:
    """Everything that determines a Monte-Carlo batch bit-for-bit.

    Two queries with equal keys denote the same simulation, so any
    prefix of one is a prefix of the other — the invariant the
    hit/partial/miss logic rests on.
    """

    spec_hash: str
    arch_hash: str
    impl_hash: "str | None"
    seed: int
    iterations: int
    bernoulli: bool
    monitor_window: "int | None"


class ServiceMetrics:
    """Thread-safe monotonic counters, exported at ``/metrics``.

    The acceptance tests read these to prove cache behaviour: a
    repeated identical job must bump ``mc_cache_hits`` while leaving
    ``runs_simulated_total`` unchanged; a runs upgrade must add only
    the delta.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "mc_cache_hits": 0,
            "mc_cache_partial": 0,
            "mc_cache_misses": 0,
            "verify_cache_hits": 0,
            "verify_cache_misses": 0,
            "runs_simulated_total": 0,
        }

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)


class ResultCache:
    """Memo of Monte-Carlo batches and verification reports."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._mc: "dict[McKey, BatchResult]" = {}
        self._verify: dict[Any, dict] = {}

    # -- Monte-Carlo entries -------------------------------------------

    def plan(
        self, key: McKey, runs: int
    ) -> "tuple[str, BatchResult | None]":
        """Classify a query: ``(kind, cached)``.

        ``("hit", cached)`` — ``cached.runs >= runs``; slice, don't
        simulate.  ``("partial", cached)`` — simulate only runs
        ``cached.runs..runs-1`` and merge.  ``("miss", None)`` —
        simulate everything.
        """
        with self._lock:
            cached = self._mc.get(key)
        if cached is None:
            return "miss", None
        if cached.runs >= runs:
            return "hit", cached
        return "partial", cached

    def store(self, key: McKey, result: "BatchResult") -> None:
        """Store *result* if it extends the cached entry."""
        with self._lock:
            cached = self._mc.get(key)
            if cached is None or result.runs > cached.runs:
                self._mc[key] = result

    # -- verification reports ------------------------------------------

    def get_verify(self, key: Any) -> "dict | None":
        with self._lock:
            return self._verify.get(key)

    def store_verify(self, key: Any, report: dict) -> None:
        with self._lock:
            self._verify[key] = report

    def __len__(self) -> int:
        with self._lock:
            return len(self._mc) + len(self._verify)
