"""Result memoization for the reliability service.

The cache is keyed by *content*, not by request text: the service
rebuilds the design objects from the submitted JSON and hashes their
canonical ``to_dict`` forms through the ledger's
:func:`~repro.telemetry.ledger.content_hash` — so two clients
submitting the same design with different key order or ``40.0`` vs
``40`` spellings share one cache line (guarded by the canonicalisation
tests in ``tests/test_ledger.py``).

Monte-Carlo entries store the *full* :class:`BatchResult` at the
largest ``runs`` ever computed for the key.  Because batch run ``k``
is seeded by ``SeedSequence(seed).spawn(runs)[k]`` and spawn keys are
prefix-stable, a smaller ``runs`` query is exactly a prefix slice of
the stored result, and a larger one only needs the missing tail of
children simulated and merged.  :meth:`ResultCache.plan` classifies a
query into ``hit`` / ``partial`` / ``miss`` accordingly.

PR 8 hardens and bounds the store:

* **LRU bounds** — ``max_entries`` / ``max_bytes`` cap the in-memory
  footprint; least-recently-used entries are evicted (never the one
  just stored) and evictions are counted through the attached
  :class:`ServiceMetrics`.
* **Crash-safe persistence** — with a ``root`` directory, entries are
  spilled to one JSON file each, written atomically (temp file +
  rename via :func:`~repro.telemetry.ledger.write_atomic`) with an
  embedded content checksum.  A truncated or garbled file is detected
  on load, quarantined to ``<name>.corrupt``, and treated as a cache
  miss — a half-written cache can cost a recomputation, never a wrong
  answer or a crash.  Memory eviction keeps the disk copy, so a
  bounded memory cache still answers from disk.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.telemetry.ledger import content_hash, write_atomic

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.batch import BatchResult


@dataclass(frozen=True)
class McKey:
    """Everything that determines a Monte-Carlo batch bit-for-bit.

    Two queries with equal keys denote the same simulation, so any
    prefix of one is a prefix of the other — the invariant the
    hit/partial/miss logic rests on.
    """

    spec_hash: str
    arch_hash: str
    impl_hash: "str | None"
    seed: int
    iterations: int
    bernoulli: bool
    monitor_window: "int | None"


#: Legacy flat counter name → (registry metric name, labels, help).
#: The flat names are the service's stable JSON contract (`/metrics`
#: default shape, chaos invariants, acceptance tests); the registry
#: names are what Prometheus scrapes see.
_LEGACY_COUNTERS: dict[str, tuple[str, tuple, str]] = {
    **{
        f"jobs_{event}": (
            "repro_service_jobs_total",
            (("event", event),),
            "Jobs by lifecycle event.",
        )
        for event in (
            "submitted", "completed", "failed", "timed_out",
            "cancelled", "rejected",
        )
    },
    **{
        f"mc_cache_{legacy}": (
            "repro_service_cache_events_total",
            (("cache", "mc"), ("outcome", outcome)),
            "Cache lookups and evictions by outcome.",
        )
        for legacy, outcome in (
            ("hits", "hit"), ("partial", "partial"), ("misses", "miss"),
        )
    },
    "mc_cache_evictions": (
        "repro_service_cache_events_total",
        (("cache", "mc"), ("outcome", "eviction")),
        "Cache lookups and evictions by outcome.",
    ),
    "mc_cache_disk_hits": (
        "repro_service_cache_events_total",
        (("cache", "mc"), ("outcome", "disk_hit")),
        "Cache lookups and evictions by outcome.",
    ),
    "verify_cache_hits": (
        "repro_service_cache_events_total",
        (("cache", "verify"), ("outcome", "hit")),
        "Cache lookups and evictions by outcome.",
    ),
    "verify_cache_misses": (
        "repro_service_cache_events_total",
        (("cache", "verify"), ("outcome", "miss")),
        "Cache lookups and evictions by outcome.",
    ),
    "verify_cache_evictions": (
        "repro_service_cache_events_total",
        (("cache", "verify"), ("outcome", "eviction")),
        "Cache lookups and evictions by outcome.",
    ),
    "cache_corrupt_quarantined": (
        "repro_service_cache_corrupt_quarantined_total",
        (),
        "Corrupt cache files quarantined on load.",
    ),
    "shard_retries": (
        "repro_service_shard_retries_total",
        (),
        "Supervised shard worker retries.",
    ),
    "runs_simulated_total": (
        "repro_service_runs_simulated",
        (),
        "Monte-Carlo runs actually simulated (cache hits excluded).",
    ),
}


class ServiceMetrics:
    """Thread-safe service metrics over the PR 4 ``MetricsRegistry``.

    The PR 7/8 facade API is preserved exactly — ``add``/``get``/
    ``snapshot`` over the flat counter names the acceptance tests and
    chaos invariants read (a repeated identical job must bump
    ``mc_cache_hits`` while leaving ``runs_simulated_total`` unchanged;
    a runs upgrade must add only the delta) — but the storage is a
    :class:`~repro.telemetry.metrics.MetricsRegistry`, which adds
    labelled counters, latency histograms (per endpoint, per job
    stage, per job outcome), gauges, and Prometheus text exposition
    (:meth:`to_prometheus`) on top of the same numbers.

    The registry itself is not internally locked; every touch goes
    through ``self._lock``.
    """

    def __init__(self, registry: "Any | None" = None) -> None:
        import threading

        from repro.telemetry.metrics import MetricsRegistry

        self._lock = threading.Lock()
        self.registry = registry or MetricsRegistry()
        self._legacy: dict[str, Any] = {}
        for name, (metric, labels, help_text) in (
            _LEGACY_COUNTERS.items()
        ):
            self._legacy[name] = self.registry.counter(
                metric, labels=dict(labels), help=help_text
            )
        self._gauges: dict[tuple, Any] = {}

    # -- the legacy flat-counter API ------------------------------------

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            counter = self._legacy.get(name)
            if counter is None:
                counter = self.registry.counter(
                    f"repro_service_{name}_total"
                )
                self._legacy[name] = counter
            counter.inc(amount)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                name: int(counter.value)
                for name, counter in self._legacy.items()
            }

    def get(self, name: str) -> int:
        with self._lock:
            counter = self._legacy.get(name)
            return 0 if counter is None else int(counter.value)

    # -- the labelled / histogram layer ---------------------------------

    def observe_request(
        self, endpoint: str, method: str, status: int, seconds: float
    ) -> None:
        """Record one HTTP request (counter + latency histogram)."""
        with self._lock:
            self.registry.counter(
                "repro_service_requests_total",
                labels={
                    "endpoint": endpoint,
                    "method": method,
                    "status": str(status),
                },
                help="HTTP requests by endpoint, method, and status.",
            ).inc()
            self.registry.histogram(
                "repro_service_request_seconds",
                labels={"endpoint": endpoint},
                help="HTTP request latency.",
                unit="seconds",
            ).observe(seconds)

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Record one job-pipeline stage duration."""
        with self._lock:
            self.registry.histogram(
                "repro_service_job_stage_seconds",
                labels={"stage": stage},
                help="Job pipeline stage latency.",
                unit="seconds",
            ).observe(seconds)

    def observe_job(
        self, kind: str, outcome: str, seconds: float
    ) -> None:
        """Record one finished job's submit-to-terminal latency."""
        with self._lock:
            self.registry.histogram(
                "repro_service_job_seconds",
                labels={"kind": kind, "outcome": outcome},
                help="Whole-job latency from submit to terminal state.",
                unit="seconds",
            ).observe(seconds)

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: "dict[str, str] | None" = None,
        help: str = "",
    ) -> None:
        with self._lock:
            key = (name, tuple(sorted((labels or {}).items())))
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self.registry.gauge(
                    name, labels=labels, help=help
                )
                self._gauges[key] = gauge
            gauge.set(value)

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every registered metric."""
        with self._lock:
            return self.registry.to_prometheus()

    def registry_snapshot(self) -> dict:
        """The registry's structured (labelled) snapshot."""
        with self._lock:
            return self.registry.snapshot()


def _estimate_bytes(result: "BatchResult") -> int:
    """Rough in-memory footprint of one cached batch result."""
    size = 512  # object + dict overhead
    for counts in result.reliable_counts.values():
        size += int(getattr(counts, "nbytes", 64))
    size += 128 * len(result.monitor_events)
    return size


class ResultCache:
    """Memo of Monte-Carlo batches and verification reports.

    Parameters
    ----------
    max_entries / max_bytes:
        LRU bounds on the in-memory Monte-Carlo store (``None`` means
        unbounded, the PR 7 behaviour).  ``max_entries`` also bounds
        the on-disk spill directory.  Verify reports share
        ``max_entries`` (they are tiny, so no byte bound).
    root:
        Optional spill directory for crash-safe persistence.
    metrics:
        Optional :class:`ServiceMetrics` receiving eviction /
        quarantine / disk-hit counters.
    """

    def __init__(
        self,
        max_entries: "int | None" = None,
        max_bytes: "int | None" = None,
        root: "str | Path | None" = None,
        metrics: "ServiceMetrics | None" = None,
    ) -> None:
        import threading

        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(
                f"max_bytes must be >= 1, got {max_bytes}"
            )
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.root = None if root is None else Path(root)
        self.metrics = metrics
        self._lock = threading.Lock()
        self._mc: "OrderedDict[McKey, BatchResult]" = OrderedDict()
        self._mc_bytes: dict[McKey, int] = {}
        self._verify: "OrderedDict[Any, dict]" = OrderedDict()

    def _bump(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.add(name, amount)

    # -- Monte-Carlo entries -------------------------------------------

    def plan(
        self, key: McKey, runs: int, spec: Any = None
    ) -> "tuple[str, BatchResult | None]":
        """Classify a query: ``(kind, cached)``.

        ``("hit", cached)`` — ``cached.runs >= runs``; slice, don't
        simulate.  ``("partial", cached)`` — simulate only runs
        ``cached.runs..runs-1`` and merge.  ``("miss", None)`` —
        simulate everything.

        A memory miss falls through to the spill directory (when
        configured); *spec* is needed to rebuild a
        :class:`BatchResult` from its serialised form, so without it
        disk entries cannot be thawed and count as misses.
        """
        with self._lock:
            cached = self._mc.get(key)
            if cached is not None:
                self._mc.move_to_end(key)
        if cached is None and self.root is not None and spec is not None:
            cached = self._load_mc(key, spec)
            if cached is not None:
                self._bump("mc_cache_disk_hits")
                self._admit(key, cached, spill=False)
        if cached is None:
            return "miss", None
        if cached.runs >= runs:
            return "hit", cached
        return "partial", cached

    def store(self, key: McKey, result: "BatchResult") -> None:
        """Store *result* if it extends the cached entry."""
        with self._lock:
            cached = self._mc.get(key)
            extends = cached is None or result.runs > cached.runs
        if extends:
            self._admit(key, result, spill=True)

    def _admit(
        self, key: McKey, result: "BatchResult", spill: bool
    ) -> None:
        """Insert into the LRU store, evict over-limit tails, spill."""
        with self._lock:
            self._mc[key] = result
            self._mc.move_to_end(key)
            self._mc_bytes[key] = _estimate_bytes(result)
            evicted = 0
            while len(self._mc) > 1 and (
                (
                    self.max_entries is not None
                    and len(self._mc) > self.max_entries
                )
                or (
                    self.max_bytes is not None
                    and sum(self._mc_bytes.values()) > self.max_bytes
                )
            ):
                victim, _ = self._mc.popitem(last=False)
                self._mc_bytes.pop(victim, None)
                evicted += 1
        if evicted:
            self._bump("mc_cache_evictions", evicted)
        if spill and self.root is not None:
            self._spill_mc(key, result)

    # -- verification reports ------------------------------------------

    def get_verify(self, key: Any) -> "dict | None":
        with self._lock:
            cached = self._verify.get(key)
            if cached is not None:
                self._verify.move_to_end(key)
        if cached is None and self.root is not None:
            cached = self._load_verify(key)
            if cached is not None:
                self.store_verify(key, cached, spill=False)
        return cached

    def store_verify(
        self, key: Any, report: dict, spill: bool = True
    ) -> None:
        evicted = 0
        with self._lock:
            self._verify[key] = report
            self._verify.move_to_end(key)
            while (
                self.max_entries is not None
                and len(self._verify) > max(1, self.max_entries)
            ):
                self._verify.popitem(last=False)
                evicted += 1
        if evicted:
            self._bump("verify_cache_evictions", evicted)
        if spill and self.root is not None:
            self._spill_verify(key, report)

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Occupancy snapshot for ``/healthz``."""
        with self._lock:
            doc = {
                "mc_entries": len(self._mc),
                "mc_bytes": sum(self._mc_bytes.values()),
                "verify_entries": len(self._verify),
            }
        if self.root is not None:
            doc["disk_entries"] = (
                len(list(self.root.glob("*.json")))
                if self.root.is_dir() else 0
            )
        return doc

    def __len__(self) -> int:
        with self._lock:
            return len(self._mc) + len(self._verify)

    # -- the spill directory --------------------------------------------

    def _mc_path(self, key: McKey) -> Path:
        assert self.root is not None
        return self.root / f"mc-{content_hash(asdict(key))}.json"

    def _verify_path(self, key: Any) -> Path:
        assert self.root is not None
        return self.root / f"verify-{content_hash(list(key))}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt spill file aside and count it."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:  # pragma: no cover - already gone
            pass
        self._bump("cache_corrupt_quarantined")

    def _read_sealed(self, path: Path) -> "dict | None":
        """Load one checksummed spill file; quarantine on corruption."""
        if not path.exists():
            return None
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self._quarantine(path)
            return None
        if not isinstance(doc, dict):
            self._quarantine(path)
            return None
        check = doc.pop("check", None)
        if check is None or check != content_hash(doc):
            self._quarantine(path)
            return None
        return doc

    def _write_sealed(self, path: Path, doc: dict) -> None:
        sealed = {**doc, "check": content_hash(doc)}
        write_atomic(path, json.dumps(sealed, sort_keys=True))
        self._trim_disk()

    def _trim_disk(self) -> None:
        """Bound the spill directory, oldest files first.

        Disk is the capacity-extending tier behind the in-memory LRU,
        so its budget is deliberately much larger than
        ``max_entries`` — an evicted entry must still thaw from disk.
        """
        if self.max_entries is None or self.root is None:
            return
        budget = max(64, 8 * self.max_entries)
        files = sorted(
            self.root.glob("*.json"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        while len(files) > budget:
            victim = files.pop(0)
            try:
                victim.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                pass

    def _spill_mc(self, key: McKey, result: "BatchResult") -> None:
        doc = {
            "kind": "mc",
            "key": asdict(key),
            "runs": int(result.runs),
            "iterations": int(result.iterations),
            "executor": result.executor,
            "samples_per_run": {
                name: int(value)
                for name, value in result.samples_per_run.items()
            },
            "counts": {
                name: [int(v) for v in counts]
                for name, counts in result.reliable_counts.items()
            },
            "events": [
                event.to_dict() for event in result.monitor_events
            ],
        }
        self._write_sealed(self._mc_path(key), doc)

    def _load_mc(self, key: McKey, spec: Any) -> "BatchResult | None":
        path = self._mc_path(key)
        doc = self._read_sealed(path)
        if doc is None:
            return None
        try:
            if doc.get("kind") != "mc" or doc.get("key") != asdict(key):
                raise ValueError("key mismatch")
            from repro.resilience.events import event_from_dict
            from repro.runtime.batch import BatchResult

            return BatchResult(
                spec=spec,
                runs=int(doc["runs"]),
                iterations=int(doc["iterations"]),
                reliable_counts={
                    name: np.asarray(values, dtype=np.int64)
                    for name, values in doc["counts"].items()
                },
                samples_per_run={
                    name: int(value)
                    for name, value in doc["samples_per_run"].items()
                },
                executor=str(doc["executor"]),
                monitor_events=tuple(
                    event_from_dict(event) for event in doc["events"]
                ),
            )
        except Exception:
            # Checksum passed but the payload does not reconstruct
            # (schema drift, key collision): same quarantine path.
            self._quarantine(path)
            return None

    def _spill_verify(self, key: Any, report: dict) -> None:
        self._write_sealed(
            self._verify_path(key),
            {"kind": "verify", "key": list(key), "report": report},
        )

    def _load_verify(self, key: Any) -> "dict | None":
        path = self._verify_path(key)
        doc = self._read_sealed(path)
        if doc is None:
            return None
        if doc.get("kind") != "verify" or tuple(
            doc.get("key", ())
        ) != tuple(key):
            self._quarantine(path)
            return None
        report = doc.get("report")
        return report if isinstance(report, dict) else None
