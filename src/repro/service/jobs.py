"""The reliability service: job queue, workers, cache, persistence.

:class:`ReliabilityService` accepts JSON job documents describing a
(spec, arch, impl, runs, seed) query, executes them on a pool of
worker threads, memoizes results in a
:class:`~repro.service.cache.ResultCache`, persists every completed
job to the :class:`~repro.telemetry.ledger.RunLedger`, and streams
per-job progress events that clients can follow (long-poll or
line-stream, see :mod:`repro.service.server`).

Job document fields (``kind`` selects the pipeline):

``kind: "simulate"``
    ``spec`` (specification dict) or ``htl`` (source text), ``arch``
    (dict), ``impl`` (dict), ``runs``, ``iterations``, ``seed``
    (default 0), ``jobs`` (shard count, default 1), ``bernoulli``
    (default true), ``monitor_window`` (optional int), ``timeout_s``
    (optional per-job deadline).
``kind: "verify"``
    ``spec``/``htl``, ``arch``, optional ``impl`` — the analytic
    abstract-interpretation verdict, memoized by design fingerprint.

Cache semantics (the PR 7 contract): an identical repeated simulate
job answers from cache without simulating; a ``runs`` upgrade
simulates only the tail ``cached.runs..runs-1`` — seeded by
``SeedSequence(seed, spawn_key=(k,))``, which equals
``SeedSequence(seed).spawn(runs)[k]`` — and merges, so the reply is
bit-identical to a fresh full batch.  Both facts are asserted through
the :class:`~repro.service.cache.ServiceMetrics` counters.

Robustness (PR 8): every submitted job reaches a **terminal state** —
``done``, ``failed``, ``timed_out``, or ``cancelled``.  A per-job
deadline (``timeout_s``) is enforced by a reaper thread whether the
job is still queued or already running (a late worker result is
discarded, never resurrected); the queue is bounded
(:class:`ServiceQueueFull` maps to HTTP 429 + ``Retry-After``);
:meth:`ReliabilityService.drain` finishes accepted work while
rejecting new submissions (:class:`ServiceDraining` → 503), and
:meth:`ReliabilityService.stop` cancels still-queued jobs so waiters
return promptly instead of blocking out their full timeout.  Sharded
cache misses run under the
:class:`~repro.service.supervision.SupervisedShardedExecutor`, so a
crashed or hung shard worker is retried (bit-identically) instead of
failing the job.

Observability (PR 9): every job carries a ``trace_id`` (client-minted
or server-minted), job-lifecycle stages feed latency histograms in
:class:`ServiceMetrics`, state transitions stream to a structured
JSONL :class:`~repro.service.slog.ServiceLog`, finished jobs feed a
rolling :class:`~repro.service.slo.SloTracker` (p99 latency, error
burn) surfaced in :meth:`ReliabilityService.health`, and
:meth:`ReliabilityService.job_trace` merges the job's events with the
shard workers' spans into one Chrome trace spanning every process.
Tracing is observer-only: spans ride outside batch payloads, so
results stay bit-identical with tracing on or off.

This module reads the wall clock (job timestamps, deadlines) and is
therefore on the determinism-lint allowlist; timestamps never reach
simulation state.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import ReproError
from repro.service.cache import McKey, ResultCache, ServiceMetrics
from repro.service.slo import SloTracker
from repro.service.slog import ServiceLog
from repro.telemetry.distributed import (
    TraceContext,
    build_job_trace,
    mint_trace_id,
)

#: States a job can never leave.
TERMINAL_STATES = frozenset(
    {"done", "failed", "timed_out", "cancelled"}
)


class ServiceError(ReproError):
    """A job document is malformed or names an unknown job."""


class ServiceQueueFull(ServiceError):
    """The bounded job queue is at capacity (HTTP 429).

    ``retry_after_s`` is the backpressure hint clients should wait
    before retrying (the server forwards it as ``Retry-After``).
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceDraining(ServiceError):
    """The service is draining/stopped and rejects new jobs (503)."""


class Job:
    """One submitted query: state, progress events, result."""

    def __init__(
        self,
        job_id: str,
        document: dict,
        timeout_s: "float | None" = None,
        trace_id: "str | None" = None,
        observer: "Callable[[Job, dict], None] | None" = None,
    ) -> None:
        self.id = job_id
        self.document = document
        # queued | running | done | failed | timed_out | cancelled
        self.state = "queued"
        self.error: "str | None" = None
        self.result: "dict | None" = None
        self.submitted_at = time.time()
        self.finished_at: "float | None" = None
        self.timeout_s = timeout_s
        self.deadline = (
            None if timeout_s is None
            else time.monotonic() + timeout_s
        )
        #: Distributed-tracing correlation key: client-minted (sent in
        #: the X-Repro-Trace-Id header) or server-minted here.
        self.trace_id = trace_id or mint_trace_id()
        #: Worker shard spans collected after a sharded execution.
        self.spans: list[dict] = []
        #: Latest convergence snapshot of an adaptive simulate job
        #: (updated at every checkpoint boundary while running).
        self.convergence: "dict | None" = None
        #: Called as ``observer(job, event)`` after every emit —
        #: the service hooks the structured log here.  Set before the
        #: "queued" emit so no transition escapes the log.
        self.observer = observer
        self.events: list[dict] = []
        self.condition = threading.Condition()
        self.emit("queued")

    def emit(self, state: str, **detail: Any) -> None:
        """Append one progress event and wake any waiters."""
        with self.condition:
            event = {
                "seq": len(self.events),
                "job": self.id,
                "state": state,
                "at": time.time(),
                **detail,
            }
            self.events.append(event)
            self.condition.notify_all()
        if self.observer is not None:
            # Outside the condition: the observer writes a log line
            # and must not hold up (or deadlock against) waiters.
            try:
                self.observer(self, event)
            except Exception:  # pragma: no cover - log must not kill
                pass

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def start_running(self) -> bool:
        """Move ``queued`` → ``running``; ``False`` if already terminal.

        The terminal check and the transition happen under the job
        condition, so a racing deadline/cancel cannot interleave.
        """
        with self.condition:
            if self.state in TERMINAL_STATES:
                return False
            self.state = "running"
        self.emit("running")
        return True

    def finish(
        self,
        state: str,
        error: "str | None" = None,
        result: "dict | None" = None,
        **detail: Any,
    ) -> bool:
        """First terminal transition wins; later ones are discarded.

        Returns ``True`` when this call performed the transition.  A
        worker completing after a timeout (or a reaper firing after
        completion) therefore cannot flip the state back — the losing
        side's result/error is simply dropped.
        """
        if state not in TERMINAL_STATES:
            raise ServiceError(f"{state!r} is not a terminal state")
        with self.condition:
            if self.state in TERMINAL_STATES:
                return False
            self.state = state
            self.error = error
            if result is not None:
                self.result = result
            self.finished_at = time.time()
        if error is not None:
            detail.setdefault("error", error)
        self.emit(state, **detail)
        return True

    def overdue(self, now: "float | None" = None) -> bool:
        """Whether the deadline has passed (terminal jobs never are)."""
        if self.deadline is None or self.done:
            return False
        return (
            time.monotonic() if now is None else now
        ) >= self.deadline

    def wait(self, timeout: "float | None" = None) -> bool:
        """Block until the job reaches a terminal state.

        Spurious wakeups re-check the remaining budget against
        ``time.monotonic()``; a service stop cancels queued jobs and
        notifies, so waiters return promptly rather than sleeping out
        their full timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.condition:
            while self.state not in TERMINAL_STATES:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self.condition.wait(remaining)
        return True

    def events_since(
        self, since: int, timeout: "float | None" = None
    ) -> list[dict]:
        """Events with ``seq >= since``; block up to *timeout* for one."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.condition:
            while (
                len(self.events) <= since
                and self.state not in TERMINAL_STATES
            ):
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self.condition.wait(remaining)
            return list(self.events[since:])

    def to_dict(self) -> dict:
        doc = {
            "id": self.id,
            "kind": self.document.get("kind", "simulate"),
            "state": self.state,
            "trace_id": self.trace_id,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "events": len(self.events),
        }
        if self.timeout_s is not None:
            doc["timeout_s"] = self.timeout_s
        if self.error is not None:
            doc["error"] = self.error
        if self.convergence is not None:
            doc["convergence"] = self.convergence
        if self.result is not None:
            doc["result"] = self.result
        return doc


class ReliabilityService:
    """Executes reliability queries behind a queue, cache, and ledger.

    Parameters
    ----------
    workers:
        Worker-thread count (each drains the shared job queue).
    ledger:
        Optional ledger directory; completed jobs append a
        :class:`~repro.telemetry.ledger.RunRecord` (the advisory
        append lock makes concurrent workers safe).
    functions / conditions:
        Callable registries bound into submitted specifications,
        exactly like the CLI's ``--bindings`` module.
    queue_limit:
        Maximum *queued* (accepted, not yet started) jobs; above it,
        :meth:`submit` raises :class:`ServiceQueueFull` (429).
        ``None`` keeps the PR 7 unbounded queue.
    shard_retries / shard_deadline_s:
        Supervision knobs for sharded cache misses: re-executions
        allowed per failed shard worker, and the per-shard hang
        deadline (``None`` disables hang detection).
    cache_entries / cache_bytes / cache_dir:
        :class:`~repro.service.cache.ResultCache` LRU bounds and
        crash-safe spill directory.
    default_timeout_s:
        Deadline applied to jobs that do not carry ``timeout_s``.
    executor_factory:
        Testing/chaos hook: ``factory(shards) -> BatchExecutor``
        overriding the supervised default for sharded misses.
    log:
        Structured JSONL service log: a
        :class:`~repro.service.slog.ServiceLog`, a path to append to,
        or ``None`` for an in-memory-only log (always on — the ring
        buffer is cheap and the chaos harness reads it).
    tracing:
        ``False`` disables distributed span collection (jobs still
        carry trace ids; the benchmark guard compares both modes).
    slo_window:
        Finished-job window for the rolling SLO tracker.
    """

    def __init__(
        self,
        workers: int = 1,
        ledger: "str | None" = None,
        functions: "Mapping[str, Callable[..., Any]] | None" = None,
        conditions: "Mapping[str, Callable[..., Any]] | None" = None,
        queue_limit: "int | None" = None,
        shard_retries: int = 2,
        shard_deadline_s: "float | None" = None,
        cache_entries: "int | None" = None,
        cache_bytes: "int | None" = None,
        cache_dir: "str | None" = None,
        default_timeout_s: "float | None" = None,
        executor_factory: "Callable[[int], Any] | None" = None,
        log: "ServiceLog | str | None" = None,
        tracing: bool = True,
        slo_window: int = 512,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if queue_limit is not None and queue_limit < 1:
            raise ServiceError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        if shard_retries < 0:
            raise ServiceError(
                f"shard_retries must be >= 0, got {shard_retries}"
            )
        self.metrics = ServiceMetrics()
        self.cache = ResultCache(
            max_entries=cache_entries,
            max_bytes=cache_bytes,
            root=cache_dir,
            metrics=self.metrics,
        )
        self.ledger_dir = ledger
        self.functions = dict(functions or {})
        self.conditions = dict(conditions or {})
        self.queue_limit = queue_limit
        self.shard_retries = shard_retries
        self.shard_deadline_s = shard_deadline_s
        self.default_timeout_s = default_timeout_s
        self.executor_factory = executor_factory
        self.tracing = tracing
        self.log = (
            log if isinstance(log, ServiceLog) else ServiceLog(log)
        )
        self.slo = SloTracker(window=slo_window)
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._queue: "queue.Queue[Job | None]" = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._counter = 0
        self._queued = 0   # accepted, not yet picked up by a worker
        self._running = 0  # currently executing
        self._idle = threading.Condition(self._lock)
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        self._started = False
        self._draining = False
        self._reaper_wake = threading.Event()
        self._reaper_stop = threading.Event()
        self._reaper: "threading.Thread | None" = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ReliabilityService":
        if not self._started:
            self._started = True
            self._draining = False
            for thread in self._threads:
                thread.start()
            self._reaper_stop.clear()
            self._reaper = threading.Thread(
                target=self._reap, name="repro-reaper", daemon=True
            )
            self._reaper.start()
        return self

    def begin_drain(self) -> None:
        """Reject new submissions; accepted work keeps running."""
        self._draining = True

    def drain(self, timeout: "float | None" = None) -> bool:
        """Graceful shutdown: finish accepted jobs, reject new ones.

        Blocks until every queued and running job reached a terminal
        state (or *timeout* elapsed), then stops the worker and
        reaper threads.  The ledger needs no explicit flush — every
        append is flushed and fsynced — so when this returns, all
        completed work is durable.  Returns ``False`` on timeout.
        """
        self.begin_drain()
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._idle:
            while self._queued or self._running:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        self._shutdown_threads()
        return True

    def stop(self) -> None:
        """Fast shutdown: cancel queued jobs, let running ones finish.

        Cancelling the queued jobs moves them to a terminal state and
        notifies their conditions, so ``Job.wait`` callers return
        promptly instead of blocking until their full timeout.
        """
        if not self._started:
            return
        self.begin_drain()
        with self._lock:
            pending = [
                job for job in self._jobs.values()
                if job.state == "queued"
            ]
        for job in pending:
            if job.finish("cancelled", error="service stopped"):
                self.metrics.add("jobs_cancelled")
        self._shutdown_threads()
        self.log.emit("service-stopped")
        self.log.close()

    def _shutdown_threads(self) -> None:
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
        self._reaper_stop.set()
        self._reaper_wake.set()
        if self._reaper is not None:
            self._reaper.join()
            self._reaper = None
        self._started = False

    def __enter__(self) -> "ReliabilityService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- submission / lookup -------------------------------------------

    def submit(
        self,
        document: Mapping[str, Any],
        trace_id: "str | None" = None,
    ) -> Job:
        """Validate and enqueue one job document.

        *trace_id* is the client-propagated distributed-tracing id
        (from the ``X-Repro-Trace-Id`` header); ``None`` mints one
        server-side, so every job is traceable either way.
        """
        if self._draining:
            self.log.emit(
                "rejected", reason="draining", trace_id=trace_id
            )
            raise ServiceDraining(
                "service is draining and not accepting jobs"
            )
        doc = dict(document)
        kind = doc.setdefault("kind", "simulate")
        if kind not in ("simulate", "verify"):
            raise ServiceError(f"unknown job kind {kind!r}")
        if "spec" not in doc and "htl" not in doc:
            raise ServiceError("job needs a 'spec' dict or 'htl' source")
        if "arch" not in doc:
            raise ServiceError("job needs an 'arch' dict")
        if kind == "simulate":
            if "impl" not in doc:
                raise ServiceError("simulate job needs an 'impl' dict")
            runs = doc.setdefault("runs", 1)
            iterations = doc.setdefault("iterations", 1)
            if not isinstance(runs, int) or runs < 1:
                raise ServiceError(f"runs must be >= 1, got {runs!r}")
            if not isinstance(iterations, int) or iterations < 1:
                raise ServiceError(
                    f"iterations must be >= 1, got {iterations!r}"
                )
            jobs = doc.setdefault("jobs", 1)
            if not isinstance(jobs, int) or jobs < 1:
                raise ServiceError(f"jobs must be >= 1, got {jobs!r}")
            self._validate_adaptive(doc)
        elif doc.get("adaptive"):
            raise ServiceError(
                "adaptive stopping applies to simulate jobs only"
            )
        seed = doc.setdefault("seed", 0)
        if not isinstance(seed, int):
            raise ServiceError(f"seed must be an int, got {seed!r}")
        timeout_s = doc.get("timeout_s", self.default_timeout_s)
        if timeout_s is not None:
            if (
                isinstance(timeout_s, bool)
                or not isinstance(timeout_s, (int, float))
                or timeout_s <= 0
            ):
                raise ServiceError(
                    f"timeout_s must be a positive number, "
                    f"got {timeout_s!r}"
                )
            timeout_s = float(timeout_s)
        with self._lock:
            if (
                self.queue_limit is not None
                and self._queued >= self.queue_limit
            ):
                self.metrics.add("jobs_rejected")
                self.log.emit(
                    "rejected", reason="queue-full",
                    queue_depth=self._queued,
                    queue_limit=self.queue_limit,
                    trace_id=trace_id,
                )
                raise ServiceQueueFull(
                    f"job queue is full "
                    f"({self._queued}/{self.queue_limit} queued); "
                    f"retry later",
                    retry_after_s=1.0,
                )
            self._counter += 1
            job = Job(
                f"job-{self._counter}", doc, timeout_s=timeout_s,
                trace_id=trace_id, observer=self._on_job_event,
            )
            self._jobs[job.id] = job
            self._queued += 1
        self.metrics.add("jobs_submitted")
        self._queue.put(job)
        if job.deadline is not None:
            self._reaper_wake.set()
        return job

    @staticmethod
    def _validate_adaptive(doc: dict) -> None:
        """Validate the adaptive-stopping fields of a simulate job.

        ``adaptive: true`` turns ``runs`` into a budget (``max_runs``)
        the :class:`~repro.telemetry.convergence.StoppingRule` may cut
        short; the optional knobs mirror the rule's parameters.
        """
        adaptive = doc.get("adaptive", False)
        if not isinstance(adaptive, bool):
            raise ServiceError(
                f"adaptive must be a bool, got {adaptive!r}"
            )
        if not adaptive:
            return
        target = doc.get("target_rel_half_width")
        if target is not None and (
            isinstance(target, bool)
            or not isinstance(target, (int, float))
            or target <= 0
        ):
            raise ServiceError(
                f"target_rel_half_width must be a positive number, "
                f"got {target!r}"
            )
        min_runs = doc.get("min_runs")
        if min_runs is not None and (
            not isinstance(min_runs, int) or min_runs < 1
        ):
            raise ServiceError(
                f"min_runs must be >= 1, got {min_runs!r}"
            )
        confidence = doc.get("stop_confidence")
        if confidence is not None and (
            isinstance(confidence, bool)
            or not isinstance(confidence, (int, float))
            or not 0.0 < confidence < 1.0
        ):
            raise ServiceError(
                f"stop_confidence must lie in (0, 1), "
                f"got {confidence!r}"
            )
        indifference = doc.get("indifference")
        if indifference is not None and (
            isinstance(indifference, bool)
            or not isinstance(indifference, (int, float))
            or indifference <= 0
        ):
            raise ServiceError(
                f"indifference must be positive, got {indifference!r}"
            )
        sequential = doc.get("sequential", True)
        if not isinstance(sequential, bool):
            raise ServiceError(
                f"sequential must be a bool, got {sequential!r}"
            )

    def _on_job_event(self, job: Job, event: dict) -> None:
        """Mirror one job state transition into the structured log."""
        detail = {
            key: value
            for key, value in event.items()
            if key not in ("seq", "job", "state", "at")
        }
        self.log.emit(
            event["state"],
            trace_id=job.trace_id,
            job_id=job.id,
            job_seq=event["seq"],
            at=event["at"],
            **detail,
        )

    def cancel(self, job_id: str) -> Job:
        """Cancel a job; running work is discarded on completion."""
        job = self.get(job_id)
        if job.finish("cancelled", error="cancelled by client"):
            self.metrics.add("jobs_cancelled")
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        with self._lock:
            return [
                self._jobs[key]
                for key in sorted(
                    self._jobs,
                    key=lambda k: int(k.rsplit("-", 1)[1]),
                )
            ]

    def queue_depth(self) -> int:
        """Accepted jobs not yet picked up by a worker."""
        with self._lock:
            return self._queued

    def uptime_seconds(self) -> float:
        """Monotonic seconds since this service object was created."""
        return time.monotonic() - self._started_monotonic

    def health(self) -> dict:
        """The ``/healthz`` document: liveness, depth, cache, SLOs."""
        from repro import __version__

        with self._lock:
            queued, running = self._queued, self._running
            active = [
                job.trace_id
                for job in self._jobs.values()
                if not job.done
            ]
        alive = sum(
            1 for thread in self._threads if thread.is_alive()
        )
        return {
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "uptime_seconds": self.uptime_seconds(),
            "queue_depth": queued,
            "queue_limit": self.queue_limit,
            "jobs_running": running,
            "workers": len(self._threads),
            "workers_alive": alive,
            "cache": self.cache.stats(),
            "slo": self.slo.snapshot(),
            "active_traces": active[:32],
        }

    def job_trace(self, job_id: str) -> dict:
        """One merged Chrome trace for *job_id* across every process.

        Combines the job's daemon-side lifecycle events (including
        supervised shard-retry events) with the worker shard spans
        collected after execution; the client merges its own spans in
        afterwards (``ServiceClient.job_trace``).  Loads directly in
        ``chrome://tracing``/Perfetto and in ``repro trace``.
        """
        job = self.get(job_id)
        with job.condition:
            events = list(job.events)
            spans = list(job.spans)
        return build_job_trace(
            trace_id=job.trace_id,
            job_id=job.id,
            events=events,
            spans=spans,
            submitted_at=job.submitted_at,
            finished_at=job.finished_at,
        )

    def metrics_exposition(self) -> str:
        """Prometheus text exposition, with live gauges refreshed.

        Counters and histograms accrue as work happens; point-in-time
        state (queue depth, liveness, uptime, SLO view, cache sizes)
        is mirrored into gauges here, at scrape time.
        """
        health = self.health()
        gauge = self.metrics.set_gauge
        gauge(
            "repro_service_queue_depth", health["queue_depth"],
            help="Accepted jobs not yet picked up by a worker.",
        )
        gauge(
            "repro_service_jobs_running", health["jobs_running"],
            help="Jobs currently executing.",
        )
        gauge(
            "repro_service_workers", health["workers"],
            help="Configured worker threads.",
        )
        gauge(
            "repro_service_workers_alive", health["workers_alive"],
            help="Worker threads currently alive.",
        )
        gauge(
            "repro_service_uptime_seconds", health["uptime_seconds"],
            help="Seconds since the service started.",
        )
        slo = health["slo"]
        for quantile in ("p50_s", "p90_s", "p99_s"):
            if slo.get(quantile) is not None:
                gauge(
                    "repro_service_job_latency_seconds",
                    slo[quantile],
                    labels={"quantile": quantile[:-2]},
                    help="Rolling job latency quantiles (SLO window).",
                )
        gauge(
            "repro_service_error_rate", slo["error_rate"],
            help="Windowed failed-job fraction.",
        )
        gauge(
            "repro_service_burn_alarm",
            1.0 if slo["burn_alarm"] else 0.0,
            help="1 when the error-rate burn alarm is tripped.",
        )
        for key, value in health["cache"].items():
            if isinstance(value, (int, float)):
                gauge(
                    "repro_service_cache_size",
                    value,
                    labels={"stat": key},
                    help="Result-cache sizes by statistic.",
                )
        return self.metrics.to_prometheus()

    def run_pending(self) -> None:
        """Drain the queue synchronously (test/CLI convenience)."""
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            if job is not None:
                self._claim_and_execute(job)

    # -- execution ------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._claim_and_execute(job)

    def _claim_and_execute(self, job: Job) -> None:
        with self._lock:
            self._queued -= 1
            self._running += 1
        try:
            self.metrics.observe_stage(
                "queued", max(0.0, time.time() - job.submitted_at)
            )
            # A job cancelled or timed out while queued is already
            # terminal: never start it.
            if job.overdue():
                if job.finish(
                    "timed_out",
                    error=f"deadline of {job.timeout_s}s exceeded "
                    f"while queued",
                ):
                    self.metrics.add("jobs_timed_out")
                return
            if job.start_running():
                self._execute(job)
        finally:
            self._record_outcome(job)
            with self._idle:
                self._running -= 1
                self._idle.notify_all()

    def _execute(self, job: Job) -> None:
        try:
            if job.document["kind"] == "verify":
                result = self._verify(job)
            else:
                result = self._simulate(job)
        except Exception as error:
            message = f"{type(error).__name__}: {error}"
            if job.finish("failed", error=message):
                self.metrics.add("jobs_failed")
                if not isinstance(error, ReproError):
                    traceback.print_exc()
            return
        # finish() is idempotent: if the reaper timed the job out (or
        # a client cancelled it) while we were simulating, this loses
        # the race and the late result is discarded.
        if job.finish("done", result=result):
            self.metrics.add("jobs_completed")

    def _record_outcome(self, job: Job) -> None:
        """Feed a finished job into the latency/SLO accounting."""
        if not job.done or job.finished_at is None:
            return
        latency = max(0.0, job.finished_at - job.submitted_at)
        kind = job.document.get("kind", "simulate")
        self.metrics.observe_job(kind, job.state, latency)
        if job.state != "cancelled":
            # A client cancel is neither a success nor an error burn.
            self.slo.record(latency, ok=job.state == "done")

    # -- deadline enforcement -------------------------------------------

    def _reap(self) -> None:
        """Move overdue jobs to ``timed_out``, queued or running."""
        while not self._reaper_stop.is_set():
            now = time.monotonic()
            horizon: "float | None" = None
            with self._lock:
                watched = [
                    job for job in self._jobs.values()
                    if job.deadline is not None and not job.done
                ]
            for job in watched:
                if job.overdue(now):
                    if job.finish(
                        "timed_out",
                        error=f"deadline of {job.timeout_s}s exceeded",
                    ):
                        self.metrics.add("jobs_timed_out")
                elif horizon is None or job.deadline < horizon:
                    horizon = job.deadline
            timeout = (
                None if horizon is None
                else max(0.0, horizon - time.monotonic())
            )
            self._reaper_wake.wait(timeout)
            self._reaper_wake.clear()

    # -- design construction -------------------------------------------

    def _design(self, doc: Mapping[str, Any], need_impl: bool):
        from repro.htl.compiler import compile_program
        from repro.io import (
            architecture_from_dict,
            implementation_from_dict,
            specification_from_dict,
        )

        if "htl" in doc:
            spec = compile_program(
                str(doc["htl"]),
                functions=self.functions,
                conditions=self.conditions,
            ).specification()
        else:
            spec = specification_from_dict(
                doc["spec"], functions=self.functions
            )
        arch = architecture_from_dict(doc["arch"])
        impl = None
        if doc.get("impl") is not None:
            impl = implementation_from_dict(doc["impl"])
        if need_impl and impl is None:
            raise ServiceError("simulate job needs an 'impl' dict")
        return spec, arch, impl

    # -- pipelines ------------------------------------------------------

    def _verify(self, job: Job) -> dict:
        from repro.analysis import Verifier

        spec, arch, impl = self._design(job.document, need_impl=False)
        fingerprint = Verifier.design_fingerprint(spec, arch, impl)
        cached = self.cache.get_verify(fingerprint)
        if cached is not None:
            self.metrics.add("verify_cache_hits")
            job.emit("cache", cache="hit")
            return {**cached, "cache": "hit"}
        self.metrics.add("verify_cache_misses")
        job.emit("cache", cache="miss")
        report = Verifier().verify(spec, arch, impl)
        doc = {
            "kind": "verify",
            "spec_hash": fingerprint[0],
            "arch_hash": fingerprint[1],
            "impl_hash": fingerprint[2],
            "feasible": report.feasible,
            "proved": report.proved,
            "summary": report.summary(),
            "report": report.to_dict(),
            "cache": "miss",
        }
        self.cache.store_verify(fingerprint, doc)
        return doc

    def _executor(self, shards: int):
        """The batch executor of a sharded cache miss."""
        if self.executor_factory is not None:
            return self.executor_factory(shards)
        from repro.service.supervision import (
            RetryPolicy,
            SupervisedShardedExecutor,
        )

        return SupervisedShardedExecutor(
            shards,
            policy=RetryPolicy(retries=self.shard_retries),
            deadline_s=self.shard_deadline_s,
        )

    def _note_shard_retries(self, job: Job, executor: Any) -> None:
        """Surface supervised retries on the job stream and counters."""
        events = getattr(executor, "retry_events", None) or ()
        for event in events:
            job.emit("shard-retry", **event.to_dict())
        if events:
            self.metrics.add("shard_retries", len(events))
        # Worker shard spans ride on the executor after execution;
        # collect them onto the job for the merged distributed trace.
        job.spans.extend(getattr(executor, "shard_spans", None) or ())

    def _simulate(self, job: Job) -> dict:
        from repro.analysis import Verifier
        from repro.runtime.batch import BatchSimulator
        from repro.runtime.executor import (
            merge_batch_results,
            slice_batch_result,
        )
        from repro.runtime.faults import BernoulliFaults

        doc = job.document
        spec, arch, impl = self._design(doc, need_impl=True)
        runs = int(doc["runs"])
        iterations = int(doc["iterations"])
        seed = int(doc["seed"])
        shards = int(doc.get("jobs", 1))
        bernoulli = bool(doc.get("bernoulli", True))
        slack = float(doc.get("slack", 0.01))
        window = doc.get("monitor_window")
        monitor = None
        if window is not None:
            from repro.resilience import MonitorConfig

            monitor = MonitorConfig(window=int(window))
        fingerprint = Verifier.design_fingerprint(spec, arch, impl)
        key = McKey(
            spec_hash=fingerprint[0],
            arch_hash=fingerprint[1],
            impl_hash=fingerprint[2],
            seed=seed,
            iterations=iterations,
            bernoulli=bernoulli,
            monitor_window=None if window is None else int(window),
        )
        executor = self._executor(shards) if shards > 1 else None
        if executor is not None and self.tracing:
            # Plain attribute set so chaos/test executor factories
            # participate without changing their constructors.
            executor.trace_context = TraceContext(
                job.trace_id, job.id
            )

        def simulator() -> BatchSimulator:
            return BatchSimulator(
                spec, arch, impl,
                faults=BernoulliFaults(arch) if bernoulli else None,
                seed=seed,
                executor=executor,
            )

        if doc.get("adaptive"):
            return self._simulate_adaptive(
                job, doc, spec, arch, impl, key, simulator, executor,
                runs, iterations, seed, monitor, slack,
            )

        stage_t0 = time.perf_counter()
        kind, cached = self.cache.plan(key, runs, spec=spec)
        self.metrics.observe_stage(
            "cache-lookup", time.perf_counter() - stage_t0
        )
        simulated = 0
        if kind == "hit":
            self.metrics.add("mc_cache_hits")
            job.emit("cache", cache="hit", cached_runs=cached.runs)
            result = slice_batch_result(cached, runs)
        elif kind == "partial":
            simulated = runs - cached.runs
            self.metrics.add("mc_cache_partial")
            self.metrics.add("runs_simulated_total", simulated)
            job.emit(
                "cache", cache="partial",
                cached_runs=cached.runs, delta=simulated,
            )
            # Tail children: spawn(runs)[k] == SeedSequence(seed,
            # spawn_key=(k,)), so only the missing suffix is built.
            children = [
                np.random.SeedSequence(seed, spawn_key=(k,))
                for k in range(cached.runs, runs)
            ]
            job.emit("simulating", runs=simulated, offset=cached.runs)
            stage_t0 = time.perf_counter()
            tail = simulator().run_slice(
                children, iterations, monitor,
                run_offset=cached.runs,
            )
            self.metrics.observe_stage(
                "simulate", time.perf_counter() - stage_t0
            )
            if executor is not None:
                self._note_shard_retries(job, executor)
            job.emit(
                "merging", cached_runs=cached.runs,
                tail_runs=tail.runs,
            )
            stage_t0 = time.perf_counter()
            result = merge_batch_results([cached, tail])
            self.metrics.observe_stage(
                "merge", time.perf_counter() - stage_t0
            )
            self.cache.store(key, result)
        else:
            simulated = runs
            self.metrics.add("mc_cache_misses")
            self.metrics.add("runs_simulated_total", runs)
            job.emit("cache", cache="miss")
            job.emit("simulating", runs=runs, offset=0)
            stage_t0 = time.perf_counter()
            result = simulator().run_batch(
                runs, iterations, monitor=monitor
            )
            self.metrics.observe_stage(
                "simulate", time.perf_counter() - stage_t0
            )
            if executor is not None:
                self._note_shard_retries(job, executor)
            self.cache.store(key, result)
        stage_t0 = time.perf_counter()
        entry = self._persist(job, spec, arch, impl, result, seed, runs)
        self.metrics.observe_stage(
            "persist", time.perf_counter() - stage_t0
        )
        averages = result.limit_averages()
        rates = {
            name: float(averages[name].mean())
            for name in sorted(averages)
        }
        return {
            "kind": "simulate",
            "spec_hash": key.spec_hash,
            "arch_hash": key.arch_hash,
            "impl_hash": key.impl_hash,
            "seed": seed,
            "runs": runs,
            "iterations": iterations,
            "executor": result.executor,
            "cache": kind,
            "simulated_runs": simulated,
            "rates": rates,
            "lrcs": {
                name: comm.lrc
                for name, comm in sorted(spec.communicators.items())
            },
            "satisfied": bool(result.satisfies_lrcs(slack=slack)),
            "monitor_events": len(result.monitor_events),
            "ledger_entry": entry,
        }

    def _simulate_adaptive(
        self, job: Job, doc, spec, arch, impl, key, simulator,
        executor, max_runs: int, iterations: int, seed: int,
        monitor, slack: float,
    ) -> dict:
        """The adaptive-stopping simulate pipeline.

        ``runs`` is the budget; the batch grows chunk by chunk along
        the stopping rule's checkpoint schedule, a convergence
        snapshot is evaluated at every boundary (and surfaced on the
        job event stream, the job document, and the metrics gauges),
        and the rule decides — from pooled counts only — whether to
        stop.  Cached runs replay through the identical snapshot
        sequence via ``prefix_pooled_counts``, so a cache hit stops at
        exactly the run count a cold execution would have chosen, and
        the stored batch makes any later fixed-run request with
        ``runs <= stopped_at`` a prefix hit.
        """
        from repro.runtime.executor import (
            merge_batch_results,
            slice_batch_result,
        )
        from repro.telemetry.convergence import (
            AdaptiveResult,
            StoppingRule,
            snapshot_from_counts,
        )

        rule = StoppingRule(
            target_rel_half_width=doc.get("target_rel_half_width"),
            sequential=bool(doc.get("sequential", True)),
            confidence=float(doc.get("stop_confidence", 0.99)),
            indifference=float(doc.get("indifference", 0.002)),
            min_runs=int(doc.get("min_runs", 64)),
        )
        schedule = rule.schedule(max_runs)
        lrcs = {
            name: comm.lrc
            for name, comm in spec.communicators.items()
        }
        stage_t0 = time.perf_counter()
        plan_kind, cached = self.cache.plan(key, max_runs, spec=spec)
        self.metrics.observe_stage(
            "cache-lookup", time.perf_counter() - stage_t0
        )
        job.emit(
            "cache", cache=plan_kind,
            cached_runs=0 if cached is None else cached.runs,
        )
        sim = None
        merged = cached
        simulated = 0
        snapshots = []
        decision = None
        for boundary in schedule:
            have = 0 if merged is None else merged.runs
            if boundary > have:
                children = [
                    np.random.SeedSequence(seed, spawn_key=(k,))
                    for k in range(have, boundary)
                ]
                job.emit(
                    "simulating", runs=len(children), offset=have,
                )
                if sim is None:
                    sim = simulator()
                stage_t0 = time.perf_counter()
                chunk = sim.executor.execute(
                    sim, children, iterations, monitor,
                    run_offset=have,
                )
                self.metrics.observe_stage(
                    "simulate", time.perf_counter() - stage_t0
                )
                simulated += chunk.runs
                if executor is not None:
                    self._note_shard_retries(job, executor)
                merged = (
                    chunk if merged is None
                    else merge_batch_results([merged, chunk])
                )
            snapshot = snapshot_from_counts(
                boundary,
                merged.prefix_pooled_counts(boundary),
                lrcs,
                confidence=rule.confidence,
                indifference=rule.indifference,
            )
            snapshots.append(snapshot)
            job.convergence = snapshot.to_dict()
            decision = rule.decide(snapshot, max_runs)
            job.emit(
                "checkpoint",
                run=boundary,
                decided=snapshot.decided(),
                max_rel_half_width=snapshot.max_rel_half_width(),
                stop=decision.stop,
            )
            self._record_convergence_gauges(snapshot)
            if decision.stop:
                break
        assert merged is not None and decision is not None
        stopped = decision.run
        adaptive = AdaptiveResult(
            result=merged,
            stopped_at=stopped,
            max_runs=max_runs,
            schedule=schedule,
            snapshots=tuple(snapshots),
            decision=decision,
        )
        if stopped < max_runs:
            self.metrics.add("adaptive_stops")
            self.metrics.add(
                "adaptive_runs_saved", max_runs - stopped
            )
        job.emit(
            "stopping",
            run=stopped,
            reason=decision.reason,
            runs_saved=adaptive.runs_saved,
        )
        # The cache keeps the longest computed batch: any later
        # fixed-run request with runs <= merged.runs is a prefix hit.
        if simulated:
            self.metrics.add("runs_simulated_total", simulated)
            self.cache.store(key, merged)
        if simulated == 0:
            kind = "hit"
            self.metrics.add("mc_cache_hits")
        elif cached is not None:
            kind = "partial"
            self.metrics.add("mc_cache_partial")
        else:
            kind = "miss"
            self.metrics.add("mc_cache_misses")
        result = (
            slice_batch_result(merged, stopped)
            if merged.runs > stopped else merged
        )
        stage_t0 = time.perf_counter()
        entry = self._persist(
            job, spec, arch, impl, result, seed, stopped,
            metrics={"adaptive": adaptive.to_dict()},
        )
        self.metrics.observe_stage(
            "persist", time.perf_counter() - stage_t0
        )
        averages = result.limit_averages()
        rates = {
            name: float(averages[name].mean())
            for name in sorted(averages)
        }
        return {
            "kind": "simulate",
            "spec_hash": key.spec_hash,
            "arch_hash": key.arch_hash,
            "impl_hash": key.impl_hash,
            "seed": seed,
            "runs": stopped,
            "iterations": iterations,
            "executor": result.executor,
            "cache": kind,
            "simulated_runs": simulated,
            "adaptive": adaptive.to_dict(),
            "rates": rates,
            "lrcs": {
                name: comm.lrc
                for name, comm in sorted(spec.communicators.items())
            },
            "satisfied": bool(result.satisfies_lrcs(slack=slack)),
            "monitor_events": len(result.monitor_events),
            "ledger_entry": entry,
        }

    def _record_convergence_gauges(self, snapshot) -> None:
        """Mirror one snapshot into the ``/metrics`` gauges.

        Labelled by communicator only (not by job) to keep label
        cardinality bounded; concurrent adaptive jobs overwrite each
        other last-writer-wins, which is the usual Prometheus gauge
        semantics for "most recent observation".
        """
        for diag in snapshot.diagnostics:
            labels = {"communicator": diag.communicator}
            self.metrics.set_gauge(
                "repro_service_convergence_half_width",
                diag.half_width,
                labels=labels,
                help="Clopper-Pearson interval half-width at the "
                "latest adaptive checkpoint.",
            )
            self.metrics.set_gauge(
                "repro_service_convergence_rel_half_width",
                diag.rel_half_width,
                labels=labels,
                help="Relative interval half-width at the latest "
                "adaptive checkpoint.",
            )
            self.metrics.set_gauge(
                "repro_service_convergence_margin",
                diag.margin,
                labels=labels,
                help="Empirical LRC margin at the latest adaptive "
                "checkpoint.",
            )

    def _persist(
        self, job: Job, spec, arch, impl, result, seed: int, runs: int,
        metrics: "dict | None" = None,
    ) -> "int | None":
        if self.ledger_dir is None:
            return None
        from repro.telemetry import (
            RunLedger,
            derive_run_id,
            record_from_result,
        )

        record = record_from_result(
            spec, arch, impl, result,
            run_id=derive_run_id(seed),
            command="batch",
            seed=seed,
            runs=runs,
            metrics=metrics,
        )
        index = RunLedger(self.ledger_dir).append(record)
        job.emit("ledger", entry=index)
        return index
