"""The reliability service: job queue, workers, cache, persistence.

:class:`ReliabilityService` accepts JSON job documents describing a
(spec, arch, impl, runs, seed) query, executes them on a pool of
worker threads, memoizes results in a
:class:`~repro.service.cache.ResultCache`, persists every completed
job to the :class:`~repro.telemetry.ledger.RunLedger`, and streams
per-job progress events that clients can follow (long-poll or
line-stream, see :mod:`repro.service.server`).

Job document fields (``kind`` selects the pipeline):

``kind: "simulate"``
    ``spec`` (specification dict) or ``htl`` (source text), ``arch``
    (dict), ``impl`` (dict), ``runs``, ``iterations``, ``seed``
    (default 0), ``jobs`` (shard count, default 1), ``bernoulli``
    (default true), ``monitor_window`` (optional int).
``kind: "verify"``
    ``spec``/``htl``, ``arch``, optional ``impl`` — the analytic
    abstract-interpretation verdict, memoized by design fingerprint.

Cache semantics (the tentpole contract): an identical repeated
simulate job answers from cache without simulating; a ``runs``
upgrade simulates only the tail ``cached.runs..runs-1`` — seeded by
``SeedSequence(seed, spawn_key=(k,))``, which equals
``SeedSequence(seed).spawn(runs)[k]`` — and merges, so the reply is
bit-identical to a fresh full batch.  Both facts are asserted through
the :class:`~repro.service.cache.ServiceMetrics` counters.

This module reads the wall clock (job timestamps) and is therefore on
the determinism-lint allowlist; timestamps never reach simulation
state.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import ReproError
from repro.service.cache import McKey, ResultCache, ServiceMetrics


class ServiceError(ReproError):
    """A job document is malformed or names an unknown job."""


class Job:
    """One submitted query: state, progress events, result."""

    def __init__(self, job_id: str, document: dict) -> None:
        self.id = job_id
        self.document = document
        self.state = "queued"  # queued | running | done | failed
        self.error: "str | None" = None
        self.result: "dict | None" = None
        self.submitted_at = time.time()
        self.finished_at: "float | None" = None
        self.events: list[dict] = []
        self.condition = threading.Condition()
        self.emit("queued")

    def emit(self, state: str, **detail: Any) -> None:
        """Append one progress event and wake any waiters."""
        with self.condition:
            self.events.append(
                {
                    "seq": len(self.events),
                    "job": self.id,
                    "state": state,
                    "at": time.time(),
                    **detail,
                }
            )
            self.condition.notify_all()

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed")

    def wait(self, timeout: "float | None" = None) -> bool:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.condition:
            while not self.done:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self.condition.wait(remaining)
        return True

    def events_since(
        self, since: int, timeout: "float | None" = None
    ) -> list[dict]:
        """Events with ``seq >= since``; block up to *timeout* for one."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.condition:
            while len(self.events) <= since and not self.done:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self.condition.wait(remaining)
            return list(self.events[since:])

    def to_dict(self) -> dict:
        doc = {
            "id": self.id,
            "kind": self.document.get("kind", "simulate"),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "events": len(self.events),
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.result is not None:
            doc["result"] = self.result
        return doc


class ReliabilityService:
    """Executes reliability queries behind a queue, cache, and ledger.

    Parameters
    ----------
    workers:
        Worker-thread count (each drains the shared job queue).
    ledger:
        Optional ledger directory; completed jobs append a
        :class:`~repro.telemetry.ledger.RunRecord` (the advisory
        append lock makes concurrent workers safe).
    functions / conditions:
        Callable registries bound into submitted specifications,
        exactly like the CLI's ``--bindings`` module.
    """

    def __init__(
        self,
        workers: int = 1,
        ledger: "str | None" = None,
        functions: "Mapping[str, Callable[..., Any]] | None" = None,
        conditions: "Mapping[str, Callable[..., Any]] | None" = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.cache = ResultCache()
        self.metrics = ServiceMetrics()
        self.ledger_dir = ledger
        self.functions = dict(functions or {})
        self.conditions = dict(conditions or {})
        self._queue: "queue.Queue[Job | None]" = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._counter = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        self._started = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ReliabilityService":
        if not self._started:
            self._started = True
            for thread in self._threads:
                thread.start()
        return self

    def stop(self) -> None:
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
        self._started = False

    def __enter__(self) -> "ReliabilityService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- submission / lookup -------------------------------------------

    def submit(self, document: Mapping[str, Any]) -> Job:
        """Validate and enqueue one job document."""
        doc = dict(document)
        kind = doc.setdefault("kind", "simulate")
        if kind not in ("simulate", "verify"):
            raise ServiceError(f"unknown job kind {kind!r}")
        if "spec" not in doc and "htl" not in doc:
            raise ServiceError("job needs a 'spec' dict or 'htl' source")
        if "arch" not in doc:
            raise ServiceError("job needs an 'arch' dict")
        if kind == "simulate":
            if "impl" not in doc:
                raise ServiceError("simulate job needs an 'impl' dict")
            runs = doc.setdefault("runs", 1)
            iterations = doc.setdefault("iterations", 1)
            if not isinstance(runs, int) or runs < 1:
                raise ServiceError(f"runs must be >= 1, got {runs!r}")
            if not isinstance(iterations, int) or iterations < 1:
                raise ServiceError(
                    f"iterations must be >= 1, got {iterations!r}"
                )
            jobs = doc.setdefault("jobs", 1)
            if not isinstance(jobs, int) or jobs < 1:
                raise ServiceError(f"jobs must be >= 1, got {jobs!r}")
        seed = doc.setdefault("seed", 0)
        if not isinstance(seed, int):
            raise ServiceError(f"seed must be an int, got {seed!r}")
        with self._lock:
            self._counter += 1
            job = Job(f"job-{self._counter}", doc)
            self._jobs[job.id] = job
        self.metrics.add("jobs_submitted")
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        with self._lock:
            return [
                self._jobs[key]
                for key in sorted(
                    self._jobs,
                    key=lambda k: int(k.rsplit("-", 1)[1]),
                )
            ]

    def run_pending(self) -> None:
        """Drain the queue synchronously (test/CLI convenience)."""
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            if job is not None:
                self._execute(job)

    # -- execution ------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._execute(job)

    def _execute(self, job: Job) -> None:
        job.state = "running"
        job.emit("running")
        try:
            if job.document["kind"] == "verify":
                job.result = self._verify(job)
            else:
                job.result = self._simulate(job)
        except Exception as error:
            job.state = "failed"
            job.error = f"{type(error).__name__}: {error}"
            job.finished_at = time.time()
            self.metrics.add("jobs_failed")
            job.emit("failed", error=job.error)
            if not isinstance(error, ReproError):
                traceback.print_exc()
            return
        job.state = "done"
        job.finished_at = time.time()
        self.metrics.add("jobs_completed")
        job.emit("done")

    # -- design construction -------------------------------------------

    def _design(self, doc: Mapping[str, Any], need_impl: bool):
        from repro.htl.compiler import compile_program
        from repro.io import (
            architecture_from_dict,
            implementation_from_dict,
            specification_from_dict,
        )

        if "htl" in doc:
            spec = compile_program(
                str(doc["htl"]),
                functions=self.functions,
                conditions=self.conditions,
            ).specification()
        else:
            spec = specification_from_dict(
                doc["spec"], functions=self.functions
            )
        arch = architecture_from_dict(doc["arch"])
        impl = None
        if doc.get("impl") is not None:
            impl = implementation_from_dict(doc["impl"])
        if need_impl and impl is None:
            raise ServiceError("simulate job needs an 'impl' dict")
        return spec, arch, impl

    # -- pipelines ------------------------------------------------------

    def _verify(self, job: Job) -> dict:
        from repro.analysis import Verifier

        spec, arch, impl = self._design(job.document, need_impl=False)
        fingerprint = Verifier.design_fingerprint(spec, arch, impl)
        cached = self.cache.get_verify(fingerprint)
        if cached is not None:
            self.metrics.add("verify_cache_hits")
            job.emit("cache", cache="hit")
            return {**cached, "cache": "hit"}
        self.metrics.add("verify_cache_misses")
        job.emit("cache", cache="miss")
        report = Verifier().verify(spec, arch, impl)
        doc = {
            "kind": "verify",
            "spec_hash": fingerprint[0],
            "arch_hash": fingerprint[1],
            "impl_hash": fingerprint[2],
            "feasible": report.feasible,
            "proved": report.proved,
            "summary": report.summary(),
            "report": report.to_dict(),
            "cache": "miss",
        }
        self.cache.store_verify(fingerprint, doc)
        return doc

    def _simulate(self, job: Job) -> dict:
        from repro.analysis import Verifier
        from repro.runtime.batch import BatchSimulator
        from repro.runtime.executor import (
            ShardedExecutor,
            merge_batch_results,
            slice_batch_result,
        )
        from repro.runtime.faults import BernoulliFaults

        doc = job.document
        spec, arch, impl = self._design(doc, need_impl=True)
        runs = int(doc["runs"])
        iterations = int(doc["iterations"])
        seed = int(doc["seed"])
        shards = int(doc.get("jobs", 1))
        bernoulli = bool(doc.get("bernoulli", True))
        slack = float(doc.get("slack", 0.01))
        window = doc.get("monitor_window")
        monitor = None
        if window is not None:
            from repro.resilience import MonitorConfig

            monitor = MonitorConfig(window=int(window))
        fingerprint = Verifier.design_fingerprint(spec, arch, impl)
        key = McKey(
            spec_hash=fingerprint[0],
            arch_hash=fingerprint[1],
            impl_hash=fingerprint[2],
            seed=seed,
            iterations=iterations,
            bernoulli=bernoulli,
            monitor_window=None if window is None else int(window),
        )

        def simulator() -> BatchSimulator:
            return BatchSimulator(
                spec, arch, impl,
                faults=BernoulliFaults(arch) if bernoulli else None,
                seed=seed,
                executor=(
                    ShardedExecutor(shards) if shards > 1 else None
                ),
            )

        kind, cached = self.cache.plan(key, runs)
        simulated = 0
        if kind == "hit":
            self.metrics.add("mc_cache_hits")
            job.emit("cache", cache="hit", cached_runs=cached.runs)
            result = slice_batch_result(cached, runs)
        elif kind == "partial":
            simulated = runs - cached.runs
            self.metrics.add("mc_cache_partial")
            self.metrics.add("runs_simulated_total", simulated)
            job.emit(
                "cache", cache="partial",
                cached_runs=cached.runs, delta=simulated,
            )
            # Tail children: spawn(runs)[k] == SeedSequence(seed,
            # spawn_key=(k,)), so only the missing suffix is built.
            children = [
                np.random.SeedSequence(seed, spawn_key=(k,))
                for k in range(cached.runs, runs)
            ]
            job.emit("simulating", runs=simulated, offset=cached.runs)
            tail = simulator().run_slice(
                children, iterations, monitor,
                run_offset=cached.runs,
            )
            result = merge_batch_results([cached, tail])
            self.cache.store(key, result)
        else:
            simulated = runs
            self.metrics.add("mc_cache_misses")
            self.metrics.add("runs_simulated_total", runs)
            job.emit("cache", cache="miss")
            job.emit("simulating", runs=runs, offset=0)
            result = simulator().run_batch(
                runs, iterations, monitor=monitor
            )
            self.cache.store(key, result)
        entry = self._persist(job, spec, arch, impl, result, seed, runs)
        averages = result.limit_averages()
        rates = {
            name: float(averages[name].mean())
            for name in sorted(averages)
        }
        return {
            "kind": "simulate",
            "spec_hash": key.spec_hash,
            "arch_hash": key.arch_hash,
            "impl_hash": key.impl_hash,
            "seed": seed,
            "runs": runs,
            "iterations": iterations,
            "executor": result.executor,
            "cache": kind,
            "simulated_runs": simulated,
            "rates": rates,
            "lrcs": {
                name: comm.lrc
                for name, comm in sorted(spec.communicators.items())
            },
            "satisfied": bool(result.satisfies_lrcs(slack=slack)),
            "monitor_events": len(result.monitor_events),
            "ledger_entry": entry,
        }

    def _persist(
        self, job: Job, spec, arch, impl, result, seed: int, runs: int
    ) -> "int | None":
        if self.ledger_dir is None:
            return None
        from repro.telemetry import (
            RunLedger,
            derive_run_id,
            record_from_result,
        )

        record = record_from_result(
            spec, arch, impl, result,
            run_id=derive_run_id(seed),
            command="batch",
            seed=seed,
            runs=runs,
        )
        index = RunLedger(self.ledger_dir).append(record)
        job.emit("ledger", entry=index)
        return index
