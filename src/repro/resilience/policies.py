"""Recovery policies: what to do once a host is declared dead.

A policy is consulted by the resilience executive at an iteration
boundary with the full :class:`RecoveryContext` and either returns a
*verified* new configuration — an implementation avoiding the dead
hosts together with the reliability report certifying that the
recomputed SRGs still meet every constraint — or ``None``, meaning
the policy cannot help and the executive should try the next one.

Two built-in policies cover the mixed-criticality reflex:

* :class:`ReReplicatePolicy` first tries the minimal repair (drop the
  dead hosts from every task's replica set and keep everything else),
  and falls back to a full :func:`~repro.synthesis.replication.
  synthesize_replication` run restricted to the surviving hosts.  In
  both cases the new mapping is committed only if Proposition 1 holds
  for it (``lambda_c >= mu_c`` for every communicator).
* :class:`DegradePolicy` switches to a *declared* safe configuration
  with explicitly reduced constraints — the rely/guarantee degrade of
  mixed-criticality scheduling — for the case where no surviving
  mapping can meet the original LRCs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.arch.architecture import Architecture
from repro.errors import SynthesisError
from repro.mapping.implementation import Implementation
from repro.model.specification import Specification
from repro.reliability.analysis import (
    CommunicatorVerdict,
    ReliabilityReport,
    check_reliability,
)
from repro.synthesis.replication import synthesize_replication


@dataclass(frozen=True)
class RecoveryContext:
    """Everything a policy may base its decision on."""

    spec: Specification
    arch: Architecture
    implementation: Implementation
    dead_hosts: frozenset[str]
    time: int

    def surviving_architecture(self) -> "Architecture | None":
        """Return *arch* restricted to the surviving hosts.

        ``None`` when no host survives (nothing can be recovered).
        """
        survivors = [
            host
            for name, host in sorted(self.arch.hosts.items())
            if name not in self.dead_hosts
        ]
        if not survivors:
            return None
        return Architecture(
            hosts=survivors,
            sensors=self.arch.sensors.values(),
            metrics=self.arch.metrics,
            network=self.arch.network,
        )

    def pruned_implementation(self) -> "Implementation | None":
        """Return the current mapping with dead hosts dropped.

        ``None`` when some task loses its entire replica set — the
        minimal repair is then impossible and a policy must remap.
        """
        assignment: dict[str, frozenset[str]] = {}
        for task, hosts in self.implementation.assignment.items():
            alive = hosts - self.dead_hosts
            if not alive:
                return None
            assignment[task] = alive
        return Implementation(
            assignment, self.implementation.sensor_binding
        )


@dataclass(frozen=True)
class RecoveryOutcome:
    """A verified configuration a policy proposes to commit.

    ``report`` certifies the proposal: for a re-replication it is the
    Proposition 1 check against the original LRCs; for a degrade it is
    the check against the policy's declared reduced LRCs.
    """

    policy: str
    implementation: Implementation
    report: ReliabilityReport
    degraded: bool = False


class RecoveryPolicy(abc.ABC):
    """Interface consulted by the resilience executive."""

    #: Short name used in events and CLI flags.
    name = "abstract"

    @abc.abstractmethod
    def recover(self, context: RecoveryContext) -> "RecoveryOutcome | None":
        """Return a verified new configuration, or ``None`` to pass."""


@dataclass(frozen=True)
class ReReplicatePolicy(RecoveryPolicy):
    """Re-map the dead hosts' replicas onto the surviving hosts.

    Tries the minimal repair first (prune dead hosts, keep the rest of
    the mapping untouched) and only falls back to a full replication
    synthesis over the surviving architecture when pruning is
    impossible or no longer reliable.  Either way the outcome is
    committed only if the recomputed SRGs satisfy every LRC.
    """

    max_replicas: "int | None" = None
    require_schedulable: bool = False
    node_limit: int = 200_000

    name = "re-replicate"

    def recover(self, context: RecoveryContext) -> "RecoveryOutcome | None":
        surviving = context.surviving_architecture()
        if surviving is None:
            return None
        pruned = context.pruned_implementation()
        if pruned is not None:
            report = check_reliability(context.spec, surviving, pruned)
            if report.reliable:
                return RecoveryOutcome(
                    policy=self.name,
                    implementation=pruned,
                    report=report,
                )
        try:
            result = synthesize_replication(
                context.spec,
                surviving,
                max_replicas=self.max_replicas,
                require_schedulable=self.require_schedulable,
                node_limit=self.node_limit,
            )
        except SynthesisError:
            return None
        if not result.reliability.reliable:
            return None
        return RecoveryOutcome(
            policy=self.name,
            implementation=result.implementation,
            report=result.reliability,
        )


@dataclass(frozen=True)
class DegradePolicy(RecoveryPolicy):
    """Fall back to a declared safe/reduced configuration.

    *implementation* is the declared degraded mapping (dead hosts are
    pruned from it before use) and *lrcs* the reduced per-communicator
    constraints whose guarantees the safe mode promises; communicators
    not listed are unconstrained in degraded operation.  The policy
    verifies the recomputed SRGs against those reduced constraints
    before offering the switch — a degrade whose own guarantees do not
    hold is refused.
    """

    implementation: Implementation
    lrcs: Mapping[str, float] = field(default_factory=dict)

    name = "degrade"

    def recover(self, context: RecoveryContext) -> "RecoveryOutcome | None":
        surviving = context.surviving_architecture()
        if surviving is None:
            return None
        assignment: dict[str, frozenset[str]] = {}
        for task, hosts in self.implementation.assignment.items():
            alive = hosts - context.dead_hosts
            if not alive:
                return None
            assignment[task] = alive
        degraded = Implementation(
            assignment, self.implementation.sensor_binding
        )
        base = check_reliability(context.spec, surviving, degraded)
        verdicts = tuple(
            CommunicatorVerdict(
                communicator=v.communicator,
                srg=v.srg,
                lrc=self.lrcs.get(v.communicator, 0.0),
            )
            for v in base.verdicts
        )
        report = ReliabilityReport(
            verdicts=verdicts,
            memory_free=base.memory_free,
            unsafe_cycles=base.unsafe_cycles,
        )
        if not report.reliable:
            return None
        return RecoveryOutcome(
            policy=self.name,
            implementation=degraded,
            report=report,
            degraded=True,
        )


def first_applicable(
    policies: Sequence[RecoveryPolicy], context: RecoveryContext
) -> "RecoveryOutcome | None":
    """Consult *policies* in order; return the first verified outcome."""
    for policy in policies:
        outcome = policy.recover(context)
        if outcome is not None:
            return outcome
    return None
