"""Fault-tolerant runtime: monitoring, failure detection, recovery.

The offline story of the paper — compute SRGs, check Proposition 1,
synthesize replication — assumes the fault model holds forever.  This
package closes the loop *online*: an LRC monitor watches windowed
reliable-write rates while the system runs, a watchdog turns broadcast
silence into host-failure verdicts, and recovery policies re-replicate
onto the survivors or degrade to a declared safe configuration — each
recovery verified against recomputed SRGs before it is committed.
"""

from repro.resilience.detector import (
    HostFailureDetector,
    HostStatus,
    WatchdogConfig,
)
from repro.resilience.events import (
    EVENT_KINDS,
    HostDead,
    HostRecovered,
    HostSuspected,
    LrcAlarm,
    LrcClear,
    RecoveryCommitted,
    RecoveryFailed,
    ResilienceEvent,
    event_from_dict,
    events_from_jsonl,
    events_to_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.resilience.executive import (
    ResilientBatchResult,
    ResilientResult,
    ResilientSimulator,
    resilient_batch,
)
from repro.resilience.monitor import (
    LrcMonitor,
    MonitorConfig,
    batch_monitor_events,
    sliding_window_counts,
)
from repro.resilience.policies import (
    DegradePolicy,
    RecoveryContext,
    RecoveryOutcome,
    RecoveryPolicy,
    ReReplicatePolicy,
    first_applicable,
)

__all__ = [
    "DegradePolicy",
    "EVENT_KINDS",
    "HostDead",
    "HostFailureDetector",
    "HostRecovered",
    "HostStatus",
    "HostSuspected",
    "LrcAlarm",
    "LrcClear",
    "LrcMonitor",
    "MonitorConfig",
    "RecoveryCommitted",
    "RecoveryContext",
    "RecoveryFailed",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "ReReplicatePolicy",
    "ResilienceEvent",
    "ResilientBatchResult",
    "ResilientResult",
    "ResilientSimulator",
    "WatchdogConfig",
    "batch_monitor_events",
    "event_from_dict",
    "events_from_jsonl",
    "events_to_jsonl",
    "first_applicable",
    "read_jsonl",
    "resilient_batch",
    "sliding_window_counts",
    "write_jsonl",
]
