"""The resilience executive: detect → decide → recover, online.

:class:`ResilientSimulator` runs a design one specification period at
a time on the scalar reference executor, with the online LRC monitor
attached to the simulator's per-write hook and the host-failure
watchdog fed from each period's replica outcomes.  When the watchdog
declares a host dead, the recovery policies are consulted at the
iteration boundary; a verified outcome is committed by recompiling
the simulation plan for the new mapping — deterministically, so the
PR 2 seed contract survives recovery: the same seed produces the same
fault draws, the same detection instants, the same recovery, and the
same event stream, run after run.

``resilient_batch`` loops the executive over ``SeedSequence.spawn``
children — the same spawning the batch executor uses — so run ``k``
of a resilient batch is bit-identical to a directly constructed
:class:`ResilientSimulator` seeded with child ``k``, events included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.arch.architecture import Architecture
from repro.errors import RuntimeSimulationError
from repro.mapping.implementation import Implementation
from repro.model.specification import Specification
from repro.reliability.traces import AbstractTrace
from repro.resilience.detector import (
    HostFailureDetector,
    WatchdogConfig,
)
from repro.resilience.events import (
    HostDead,
    LrcAlarm,
    LrcClear,
    RecoveryCommitted,
    RecoveryFailed,
    ResilienceEvent,
)
from repro.resilience.monitor import LrcMonitor, MonitorConfig
from repro.resilience.policies import (
    RecoveryContext,
    RecoveryOutcome,
    RecoveryPolicy,
    first_applicable,
)
from repro.runtime.engine import SimulationResult, Simulator
from repro.runtime.environment import Environment
from repro.runtime.faults import FaultInjector, NoFaults
from repro.runtime.voting import Voter, first_non_bottom
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.runid import derive_run_id
from repro.telemetry.sink import InstrumentationSink


class _EventRelay:
    """Shared event sink stamping correlation keys on emission.

    Replaces the bare list PR 3 shared between monitor, watchdog, and
    executive: every appended event is stamped with the run's stable
    ``run_id`` and its monotonic emission index ``seq`` (so merged
    batch streams sort deterministically), then fanned out to the
    telemetry sinks — one correlated stream per run.
    """

    __slots__ = ("events", "run_id", "sinks")

    def __init__(
        self,
        run_id: str,
        sinks: "tuple[InstrumentationSink, ...]" = (),
    ) -> None:
        self.events: list[ResilienceEvent] = []
        self.run_id = run_id
        self.sinks = sinks

    def append(self, event: ResilienceEvent) -> None:
        import dataclasses

        event = dataclasses.replace(
            event, run_id=self.run_id, seq=len(self.events)
        )
        self.events.append(event)
        for sink in self.sinks:
            sink.on_event(event)


def _implementation_key(
    implementation: Implementation,
) -> tuple:
    """Hashable identity of a static mapping (for the simulator cache)."""
    return (
        tuple(
            (task, tuple(sorted(hosts)))
            for task, hosts in sorted(implementation.assignment.items())
        ),
        tuple(
            (comm, tuple(sorted(sensors)))
            for comm, sensors in sorted(
                implementation.sensor_binding.items()
            )
        ),
    )


@dataclass
class ResilientResult:
    """Outcome of one resilient run: traces, events, and provenance.

    ``implementation_log`` records ``(period, implementation)`` for
    the initial mapping and every committed recovery; ``events`` is
    the full resilience stream (monitor, watchdog, recovery) in
    emission order, ready for :func:`~repro.resilience.events.
    events_to_jsonl`.
    """

    spec: Specification
    iterations: int
    values: dict[str, list[Any]]
    events: tuple[ResilienceEvent, ...]
    implementation_log: tuple[tuple[int, Implementation], ...]
    recoveries: tuple[RecoveryOutcome, ...]
    monitor: "LrcMonitor | None"
    detector: "HostFailureDetector | None"
    replica_attempts: dict[tuple[str, str], int] = field(
        default_factory=dict
    )
    replica_failures: dict[tuple[str, str], int] = field(
        default_factory=dict
    )
    final_store: dict[str, Any] = field(default_factory=dict)

    # -- trace statistics ----------------------------------------------

    def abstract(self) -> dict[str, AbstractTrace]:
        """Return the reliability-based abstract trace per communicator."""
        return {
            name: AbstractTrace.from_values(name, values)
            for name, values in self.values.items()
        }

    def limit_averages(self) -> dict[str, float]:
        """Return the observed reliable fraction per communicator."""
        return {
            name: trace.limit_average()
            for name, trace in self.abstract().items()
        }

    def satisfies_lrcs(self, slack: float = 0.0) -> bool:
        """Check every LRC against the observed limit averages."""
        averages = self.limit_averages()
        return all(
            averages[name] >= comm.lrc - slack
            for name, comm in self.spec.communicators.items()
        )

    # -- event queries --------------------------------------------------

    def events_of(self, *kinds: type) -> list[ResilienceEvent]:
        """Return the events that are instances of any of *kinds*."""
        return [e for e in self.events if isinstance(e, kinds)]

    def detection_time(self, host: str) -> "int | None":
        """Return the instant *host* was declared dead, or ``None``."""
        for event in self.events:
            if isinstance(event, HostDead) and event.host == host:
                return event.time
        return None

    def violation_windows(
        self, communicator: str
    ) -> list[tuple[int, "int | None"]]:
        """Return ``(alarm_time, clear_time)`` pairs for *communicator*.

        An open violation (never cleared) has ``clear_time = None``.
        """
        windows: list[tuple[int, "int | None"]] = []
        open_at: "int | None" = None
        for event in self.events:
            if isinstance(event, LrcAlarm) and (
                event.communicator == communicator
            ):
                open_at = event.time
            elif isinstance(event, LrcClear) and (
                event.communicator == communicator
            ):
                if open_at is not None:
                    windows.append((open_at, event.time))
                    open_at = None
        if open_at is not None:
            windows.append((open_at, None))
        return windows

    def windowed_rate(self, communicator: str) -> "float | None":
        """Return the monitor's final windowed rate for *communicator*."""
        if self.monitor is None:
            return None
        return self.monitor.rate(communicator)

    def summary(self) -> str:
        """Return a human-readable multi-line summary."""
        lines = [
            f"resilient simulation over {self.iterations} iterations "
            f"({len(self.recoveries)} recoveries, "
            f"{len(self.events)} events)"
        ]
        averages = self.limit_averages()
        for name in sorted(averages):
            lrc = self.spec.communicators[name].lrc
            mark = "ok " if averages[name] >= lrc else "LOW"
            windowed = self.windowed_rate(name)
            tail = (
                f", windowed {windowed:.4f}" if windowed is not None else ""
            )
            lines.append(
                f"  [{mark}] {name}: observed {averages[name]:.6f} "
                f"(LRC {lrc:.6f}{tail})"
            )
        for period, implementation in self.implementation_log[1:]:
            assignment = {
                task: sorted(hosts)
                for task, hosts in sorted(
                    implementation.assignment.items()
                )
            }
            lines.append(
                f"  recovery at period {period}: {assignment}"
            )
        return "\n".join(lines)


class ResilientSimulator:
    """Scalar executor with online monitoring and recovery.

    Parameters
    ----------
    spec, arch, implementation:
        The design to execute; *implementation* must be a static
        mapping (recovery rewrites it wholesale).
    monitor:
        :class:`MonitorConfig` enabling the online LRC monitor.
    watchdog:
        :class:`WatchdogConfig` enabling the host-failure detector.
        Required when *policies* are given.
    policies:
        Recovery policies consulted, in order, when the watchdog
        declares a host dead.  The first verified outcome is
        committed at the next iteration boundary.
    max_recoveries:
        Upper bound on committed recoveries per run.
    environment, faults, voter, actuator_communicators, seed:
        As for :class:`~repro.runtime.engine.Simulator`.  The seed
        governs every stochastic fault draw; two runs with the same
        seed produce identical traces *and* identical event streams.
    telemetry:
        Optional :class:`~repro.telemetry.bus.TelemetryBus`: its
        sinks (tracer, metrics) receive the engine hook stream of
        every chained period *and* each resilience event as it is
        emitted, and the bus collects the stamped events.
    sinks:
        Extra :class:`~repro.telemetry.sink.InstrumentationSink`
        subscribers (e.g. a
        :class:`~repro.telemetry.provenance.ProvenanceRecorder`)
        attached directly, without a bus; they see the same hook
        stream and stamped events as the bus sinks.
    run_id:
        Correlation key stamped on every event; defaults to
        :func:`~repro.telemetry.runid.derive_run_id` of the seed, so
        a ``resilient_batch`` run and its directly constructed
        equivalent agree without coordination.
    """

    def __init__(
        self,
        spec: Specification,
        arch: Architecture,
        implementation: Implementation,
        *,
        environment: "Environment | None" = None,
        faults: "FaultInjector | None" = None,
        voter: Voter = first_non_bottom,
        actuator_communicators: "Iterable[str] | None" = None,
        seed: "int | np.random.Generator" = 0,
        monitor: "MonitorConfig | None" = None,
        watchdog: "WatchdogConfig | None" = None,
        policies: Sequence[RecoveryPolicy] = (),
        max_recoveries: int = 4,
        telemetry: "TelemetryBus | None" = None,
        sinks: Iterable[InstrumentationSink] = (),
        run_id: "str | None" = None,
    ) -> None:
        if not isinstance(implementation, Implementation):
            raise RuntimeSimulationError(
                "ResilientSimulator needs a static Implementation; "
                "recovery rewrites the mapping at iteration boundaries"
            )
        if policies and watchdog is None:
            watchdog = WatchdogConfig()
        self.spec = spec
        self.arch = arch
        self.implementation = implementation
        self.environment = environment
        self.faults = faults or NoFaults()
        self.voter = voter
        self.actuators = actuator_communicators
        self.seed = seed
        self.monitor_config = monitor
        self.watchdog_config = watchdog
        self.policies = tuple(policies)
        self.max_recoveries = max_recoveries
        self.telemetry = telemetry
        self.sinks: "tuple[InstrumentationSink, ...]" = tuple(sinks)
        self.run_id = run_id

    # ------------------------------------------------------------------

    def _heard_hosts(
        self,
        implementation: Implementation,
        result: SimulationResult,
    ) -> dict[str, bool]:
        """Per-host: was any broadcast heard in the period just run?

        A host is heard when at least one of its replica invocations
        completed *and* its broadcast was delivered — exactly the
        complement of the engine's per-replica failure count, and the
        only liveness signal fail-silent hosts emit.
        """
        heard: dict[str, bool] = {}
        for task, hosts in implementation.assignment.items():
            for host in hosts:
                attempts = result.replica_attempts.get((task, host), 0)
                failures = result.replica_failures.get((task, host), 0)
                if attempts > failures:
                    heard[host] = True
                else:
                    heard.setdefault(host, False)
        return heard

    def run(self, iterations: int) -> ResilientResult:
        """Execute *iterations* periods with monitoring and recovery."""
        if iterations <= 0:
            raise RuntimeSimulationError(
                f"iterations must be positive, got {iterations}"
            )
        rng = (
            self.seed
            if isinstance(self.seed, np.random.Generator)
            else np.random.default_rng(self.seed)
        )
        run_id = (
            self.run_id if self.run_id is not None else derive_run_id(rng)
        )
        telemetry_sinks: "tuple[InstrumentationSink, ...]" = (
            self.telemetry.engine_sinks()
            if self.telemetry is not None
            else ()
        ) + self.sinks
        relay = _EventRelay(run_id, telemetry_sinks)
        events = relay.events
        monitor = (
            LrcMonitor(self.spec, self.monitor_config, sink=relay)
            if self.monitor_config is not None
            else None
        )
        detector = (
            HostFailureDetector(
                self.arch.hosts, self.watchdog_config, sink=relay
            )
            if self.watchdog_config is not None
            else None
        )

        simulators: dict[tuple, Simulator] = {}

        def simulator_for(implementation: Implementation) -> Simulator:
            key = _implementation_key(implementation)
            if key not in simulators:
                simulators[key] = Simulator(
                    self.spec,
                    self.arch,
                    implementation,
                    environment=self.environment,
                    faults=self.faults,
                    voter=self.voter,
                    actuator_communicators=self.actuators,
                    seed=rng,
                    monitor=monitor,
                    sinks=telemetry_sinks,
                )
            return simulators[key]

        current = self.implementation
        period = simulator_for(current).period
        self.faults.begin_run(rng, iterations * period)

        store: "dict[str, Any] | None" = None
        values: dict[str, list[Any]] = {
            name: [] for name in self.spec.communicators
        }
        attempts: dict[tuple[str, str], int] = {}
        failures: dict[tuple[str, str], int] = {}
        implementation_log: list[tuple[int, Implementation]] = [
            (0, current)
        ]
        recoveries: list[RecoveryOutcome] = []
        acted_on: frozenset[str] = frozenset()

        for index in range(iterations):
            simulator = simulator_for(current)
            result = simulator.run(
                1,
                start_time=index * period,
                initial_store=store,
                flush_final_commits=True,
                reset_faults=False,
            )
            store = result.final_store
            for name, trace in result.values.items():
                values[name].extend(trace)
            for key, count in result.replica_attempts.items():
                attempts[key] = attempts.get(key, 0) + count
            for key, count in result.replica_failures.items():
                failures[key] = failures.get(key, 0) + count

            boundary = (index + 1) * period
            if detector is None:
                continue
            for host, heard in sorted(
                self._heard_hosts(current, result).items()
            ):
                detector.observe(host, boundary, heard)

            dead = detector.dead_hosts()
            if (
                not (dead - acted_on)
                or not self.policies
                or len(recoveries) >= self.max_recoveries
            ):
                continue
            acted_on = dead
            context = RecoveryContext(
                spec=self.spec,
                arch=self.arch,
                implementation=current,
                dead_hosts=dead,
                time=boundary,
            )
            outcome = first_applicable(self.policies, context)
            if outcome is None:
                relay.append(
                    RecoveryFailed(
                        time=boundary,
                        dead_hosts=tuple(sorted(dead)),
                        reason=(
                            "no policy produced a configuration whose "
                            "recomputed SRGs meet the constraints"
                        ),
                    )
                )
                continue
            relay.append(
                RecoveryCommitted(
                    time=boundary,
                    policy=outcome.policy,
                    dead_hosts=tuple(sorted(dead)),
                    assignment={
                        task: tuple(sorted(hosts))
                        for task, hosts in sorted(
                            outcome.implementation.assignment.items()
                        )
                    },
                    srgs=outcome.report.srgs(),
                )
            )
            recoveries.append(outcome)
            current = outcome.implementation
            implementation_log.append((index + 1, current))

        if self.telemetry is not None:
            # The sinks saw each event live (via the relay); the bus
            # list just collects the stamped stream for export.
            self.telemetry.events.extend(events)

        return ResilientResult(
            spec=self.spec,
            iterations=iterations,
            values=values,
            events=tuple(events),
            implementation_log=tuple(implementation_log),
            recoveries=tuple(recoveries),
            monitor=monitor,
            detector=detector,
            replica_attempts=attempts,
            replica_failures=failures,
            final_store=store or {},
        )


@dataclass
class ResilientBatchResult:
    """Per-run reliable-access counts and events of a resilient batch."""

    spec: Specification
    runs: int
    iterations: int
    reliable_counts: dict[str, np.ndarray]
    samples_per_run: dict[str, int]
    events: tuple[ResilienceEvent, ...]
    recovery_counts: np.ndarray
    executor: str = "scalar-resilient"

    def limit_averages(self) -> dict[str, np.ndarray]:
        """Return the per-run reliable fraction per communicator."""
        return {
            name: counts / self.samples_per_run[name]
            for name, counts in self.reliable_counts.items()
        }

    def events_for_run(self, run: int) -> list[ResilienceEvent]:
        """Return run *run*'s slice of the event stream, in order."""
        return [e for e in self.events if e.run == run]


def resilient_batch(
    spec: Specification,
    arch: Architecture,
    implementation: Implementation,
    runs: int,
    iterations: int,
    seed: int = 0,
    *,
    environment_factory: "Callable[[], Environment] | None" = None,
    faults: "FaultInjector | None" = None,
    voter: Voter = first_non_bottom,
    actuator_communicators: "Iterable[str] | None" = None,
    monitor: "MonitorConfig | None" = None,
    watchdog: "WatchdogConfig | None" = None,
    policies: Sequence[RecoveryPolicy] = (),
    max_recoveries: int = 4,
) -> ResilientBatchResult:
    """Run *runs* independent resilient simulations on spawned seeds.

    Recovery decisions depend on each run's own fault draws, so the
    detect→decide→recover loop is inherently per-run; this helper
    preserves the batch seed contract by looping the scalar resilient
    executive over the same ``SeedSequence.spawn`` children the
    vectorized executor uses.  Run ``k`` (counts and events alike) is
    bit-identical to ``ResilientSimulator(...,
    seed=np.random.default_rng(children[k]))``.
    """
    if runs <= 0:
        raise RuntimeSimulationError(
            f"runs must be positive, got {runs}"
        )
    children = np.random.SeedSequence(seed).spawn(runs)
    counts = {
        name: np.zeros(runs, dtype=np.int64)
        for name in spec.communicators
    }
    samples: dict[str, int] = {}
    events: list[ResilienceEvent] = []
    recovery_counts = np.zeros(runs, dtype=np.int64)
    for k, child in enumerate(children):
        environment = (
            environment_factory()
            if environment_factory is not None
            else None
        )
        simulator = ResilientSimulator(
            spec,
            arch,
            implementation,
            environment=environment,
            faults=faults,
            voter=voter,
            actuator_communicators=actuator_communicators,
            seed=np.random.default_rng(child),
            monitor=monitor,
            watchdog=watchdog,
            policies=policies,
            max_recoveries=max_recoveries,
        )
        result = simulator.run(iterations)
        for name, trace in result.abstract().items():
            counts[name][k] = trace.reliable_count()
            samples[name] = len(trace)
        events.extend(
            _with_run(event, k) for event in result.events
        )
        recovery_counts[k] = len(result.recoveries)
    return ResilientBatchResult(
        spec=spec,
        runs=runs,
        iterations=iterations,
        reliable_counts=counts,
        samples_per_run=samples,
        events=tuple(events),
        recovery_counts=recovery_counts,
    )


def _with_run(event: ResilienceEvent, run: int) -> ResilienceEvent:
    """Return *event* tagged with the batch run index."""
    import dataclasses

    return dataclasses.replace(event, run=run)
